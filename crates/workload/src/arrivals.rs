//! Arrival processes and the workload generator.

use serde::{Deserialize, Serialize};
use tokenflow_sim::{SimDuration, SimRng, SimTime};

use crate::dist::{LengthDist, RateDist};
use crate::request::{RequestSpec, Workload};

/// How requests arrive over time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalSpec {
    /// `size` requests submitted simultaneously at `at` — the flash-crowd
    /// scenario of §7.3.
    Burst {
        /// Number of simultaneous requests.
        size: u32,
        /// Burst instant.
        at: SimTime,
    },
    /// Homogeneous Poisson arrivals at `rate` requests/second for
    /// `duration`.
    Poisson {
        /// Arrival rate (λ) in requests/second.
        rate: f64,
        /// Generation horizon.
        duration: SimDuration,
    },
    /// A two-state Markov-modulated Poisson process: calm traffic at
    /// `base_rate` punctuated by bursts at `burst_rate`. This reproduces the
    /// burstiness signature of the BurstGPT dataset (§7.1.2): long quiet
    /// stretches, then sharp multi-second spikes.
    Mmpp {
        /// Calm-state arrival rate, requests/second.
        base_rate: f64,
        /// Burst-state arrival rate, requests/second.
        burst_rate: f64,
        /// Mean dwell time in the calm state.
        mean_calm: SimDuration,
        /// Mean dwell time in the burst state.
        mean_burst: SimDuration,
        /// Generation horizon.
        duration: SimDuration,
    },
    /// A diurnal non-homogeneous Poisson process: intensity follows a
    /// raised-cosine day curve with `peak_rate` at the busiest moment and
    /// `trough_rate` at the quietest. Reproduces the industrial trace shape
    /// of Figure 11.
    Diurnal {
        /// Minimum arrival rate.
        trough_rate: f64,
        /// Maximum arrival rate.
        peak_rate: f64,
        /// Length of one synthetic "day" (the modulation period).
        period: SimDuration,
        /// Generation horizon.
        duration: SimDuration,
    },
}

impl ArrivalSpec {
    /// Samples arrival instants for this process.
    pub fn sample(&self, rng: &mut SimRng) -> Vec<SimTime> {
        match *self {
            ArrivalSpec::Burst { size, at } => vec![at; size as usize],
            ArrivalSpec::Poisson { rate, duration } => {
                assert!(rate > 0.0, "Poisson rate must be positive");
                let mut out = Vec::new();
                let mut t = 0.0;
                let horizon = duration.as_secs_f64();
                loop {
                    t += rng.exponential(rate);
                    if t >= horizon {
                        break;
                    }
                    out.push(SimTime::from_secs_f64(t));
                }
                out
            }
            ArrivalSpec::Mmpp {
                base_rate,
                burst_rate,
                mean_calm,
                mean_burst,
                duration,
            } => {
                assert!(
                    base_rate > 0.0 && burst_rate > 0.0,
                    "rates must be positive"
                );
                let mut out = Vec::new();
                let horizon = duration.as_secs_f64();
                let mut t = 0.0;
                let mut bursting = false;
                while t < horizon {
                    let dwell_mean = if bursting {
                        mean_burst.as_secs_f64()
                    } else {
                        mean_calm.as_secs_f64()
                    };
                    let dwell = rng.exponential(1.0 / dwell_mean).min(horizon - t);
                    let rate = if bursting { burst_rate } else { base_rate };
                    let mut s = 0.0;
                    loop {
                        s += rng.exponential(rate);
                        if s >= dwell {
                            break;
                        }
                        out.push(SimTime::from_secs_f64(t + s));
                    }
                    t += dwell;
                    bursting = !bursting;
                }
                out
            }
            ArrivalSpec::Diurnal {
                trough_rate,
                peak_rate,
                period,
                duration,
            } => {
                assert!(
                    trough_rate >= 0.0 && peak_rate >= trough_rate,
                    "need trough <= peak"
                );
                assert!(peak_rate > 0.0, "peak rate must be positive");
                // Thinning (Lewis–Shedler): generate at the peak rate, keep
                // each point with probability intensity(t)/peak.
                let mut out = Vec::new();
                let horizon = duration.as_secs_f64();
                let p = period.as_secs_f64();
                let mut t = 0.0;
                loop {
                    t += rng.exponential(peak_rate);
                    if t >= horizon {
                        break;
                    }
                    let phase = (t / p) * std::f64::consts::TAU;
                    // Raised cosine: trough at phase 0, peak mid-period.
                    let intensity =
                        trough_rate + (peak_rate - trough_rate) * (1.0 - phase.cos()) / 2.0;
                    if rng.chance(intensity / peak_rate) {
                        out.push(SimTime::from_secs_f64(t));
                    }
                }
                out
            }
        }
    }
}

/// A complete workload generator: arrivals × lengths × rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadGen {
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Prompt length distribution.
    pub prompt: LengthDist,
    /// Output length distribution.
    pub output: LengthDist,
    /// Required streaming-rate distribution.
    pub rate: RateDist,
}

impl WorkloadGen {
    /// Generates a workload deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Workload {
        let mut rng = SimRng::seed_from(seed);
        let mut arrival_rng = rng.fork(1);
        let mut len_rng = rng.fork(2);
        let mut rate_rng = rng.fork(3);
        let arrivals = self.arrivals.sample(&mut arrival_rng);
        let specs = arrivals
            .into_iter()
            .map(|arrival| RequestSpec {
                id: tokenflow_sim::RequestId(0), // renumbered by Workload::new
                arrival,
                prompt_tokens: self.prompt.sample(&mut len_rng),
                output_tokens: self.output.sample(&mut len_rng),
                rate: self.rate.sample(&mut rate_rng),
            })
            .collect();
        Workload::new(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_with(arrivals: ArrivalSpec) -> WorkloadGen {
        WorkloadGen {
            arrivals,
            prompt: LengthDist::Fixed(128),
            output: LengthDist::Fixed(256),
            rate: RateDist::Fixed(20.0),
        }
    }

    #[test]
    fn burst_arrivals_are_simultaneous() {
        let w = gen_with(ArrivalSpec::Burst {
            size: 40,
            at: SimTime::from_secs(1),
        })
        .generate(1);
        assert_eq!(w.len(), 40);
        assert!(w.iter().all(|s| s.arrival == SimTime::from_secs(1)));
    }

    #[test]
    fn poisson_count_close_to_rate_times_duration() {
        let w = gen_with(ArrivalSpec::Poisson {
            rate: 5.0,
            duration: SimDuration::from_secs(200),
        })
        .generate(7);
        // Expect ~1000 arrivals; allow 4 sigma (~±126).
        let n = w.len() as f64;
        assert!((n - 1000.0).abs() < 130.0, "count {n}");
    }

    #[test]
    fn poisson_interarrivals_memoryless() {
        let w = gen_with(ArrivalSpec::Poisson {
            rate: 10.0,
            duration: SimDuration::from_secs(500),
        })
        .generate(8);
        let times: Vec<f64> = w.iter().map(|s| s.arrival.as_secs_f64()).collect();
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 0.1).abs() < 0.01, "mean gap {mean}");
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare the index of dispersion of per-second counts.
        let seconds = 600u64;
        let dispersion = |w: &Workload| {
            let mut counts = vec![0f64; seconds as usize];
            for s in w.iter() {
                let sec = s.arrival.as_secs_f64() as usize;
                if sec < counts.len() {
                    counts[sec] += 1.0;
                }
            }
            let mean = counts.iter().sum::<f64>() / counts.len() as f64;
            let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
            var / mean.max(1e-9)
        };
        let poisson = gen_with(ArrivalSpec::Poisson {
            rate: 3.0,
            duration: SimDuration::from_secs(seconds),
        })
        .generate(9);
        let mmpp = gen_with(ArrivalSpec::Mmpp {
            base_rate: 1.0,
            burst_rate: 20.0,
            mean_calm: SimDuration::from_secs(30),
            mean_burst: SimDuration::from_secs(5),
            duration: SimDuration::from_secs(seconds),
        })
        .generate(9);
        assert!(
            dispersion(&mmpp) > 3.0 * dispersion(&poisson),
            "mmpp {} vs poisson {}",
            dispersion(&mmpp),
            dispersion(&poisson)
        );
    }

    #[test]
    fn diurnal_peaks_mid_period() {
        let w = gen_with(ArrivalSpec::Diurnal {
            trough_rate: 0.5,
            peak_rate: 20.0,
            period: SimDuration::from_secs(1_000),
            duration: SimDuration::from_secs(1_000),
        })
        .generate(10);
        // Count arrivals in the middle vs the edges of the period.
        let mid = w
            .iter()
            .filter(|s| {
                let t = s.arrival.as_secs_f64();
                (400.0..600.0).contains(&t)
            })
            .count();
        let edge = w
            .iter()
            .filter(|s| {
                let t = s.arrival.as_secs_f64();
                !(100.0..900.0).contains(&t)
            })
            .count();
        assert!(mid > 3 * edge, "mid {mid} vs edge {edge}");
    }

    #[test]
    fn generation_is_deterministic() {
        let g = gen_with(ArrivalSpec::Poisson {
            rate: 4.0,
            duration: SimDuration::from_secs(100),
        });
        assert_eq!(g.generate(42), g.generate(42));
        assert_ne!(g.generate(42), g.generate(43));
    }

    #[test]
    fn all_requests_within_horizon() {
        let d = SimDuration::from_secs(50);
        let w = gen_with(ArrivalSpec::Mmpp {
            base_rate: 2.0,
            burst_rate: 30.0,
            mean_calm: SimDuration::from_secs(10),
            mean_burst: SimDuration::from_secs(3),
            duration: d,
        })
        .generate(11);
        assert!(!w.is_empty());
        assert!(w.iter().all(|s| s.arrival < SimTime::ZERO + d));
    }
}
