//! Length and rate distributions for workload generation.

use serde::{Deserialize, Serialize};
use tokenflow_sim::SimRng;

/// Distribution of prompt or output lengths in tokens.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LengthDist {
    /// Every request gets exactly this many tokens.
    Fixed(u64),
    /// Normal distribution clamped to `[min, max]` (the paper's controlled
    /// tests use normally distributed lengths, §7.3).
    Normal {
        /// Mean length.
        mean: f64,
        /// Standard deviation.
        std: f64,
        /// Lower clamp.
        min: u64,
        /// Upper clamp.
        max: u64,
    },
    /// Lognormal distribution (ShareGPT-like heavy tail) clamped to
    /// `[min, max]`, parameterised by the target mean and std of the
    /// lognormal itself.
    LogNormal {
        /// Target mean length.
        mean: f64,
        /// Target standard deviation.
        std: f64,
        /// Lower clamp.
        min: u64,
        /// Upper clamp.
        max: u64,
    },
    /// Uniform over `[lo, hi]` inclusive.
    Uniform {
        /// Lower bound.
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
}

impl LengthDist {
    /// ShareGPT-like prompt lengths: heavy-tailed around a ~220-token mean.
    pub fn sharegpt_prompt() -> Self {
        LengthDist::LogNormal {
            mean: 220.0,
            std: 250.0,
            min: 4,
            max: 4096,
        }
    }

    /// ShareGPT-like output lengths: heavy-tailed around a ~320-token mean.
    pub fn sharegpt_output() -> Self {
        LengthDist::LogNormal {
            mean: 320.0,
            std: 280.0,
            min: 8,
            max: 4096,
        }
    }

    /// Draws one length.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        match *self {
            LengthDist::Fixed(n) => n.max(1),
            LengthDist::Normal {
                mean,
                std,
                min,
                max,
            } => {
                let x = rng.clamped_normal(mean, std, min.max(1) as f64, max as f64);
                x.round() as u64
            }
            LengthDist::LogNormal {
                mean,
                std,
                min,
                max,
            } => {
                let x = rng.lognormal_mean_std(mean, std);
                (x.round() as u64).clamp(min.max(1), max)
            }
            LengthDist::Uniform { lo, hi } => rng.uniform_u64(lo.max(1), hi.max(1)),
        }
    }

    /// The distribution's nominal mean.
    pub fn mean(&self) -> f64 {
        match *self {
            LengthDist::Fixed(n) => n as f64,
            LengthDist::Normal { mean, .. } | LengthDist::LogNormal { mean, .. } => mean,
            LengthDist::Uniform { lo, hi } => (lo + hi) as f64 / 2.0,
        }
    }
}

/// Distribution of required streaming rates in tokens/second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateDist {
    /// Every client consumes at the same rate.
    Fixed(f64),
    /// A discrete mix: `(weight, rate)` pairs — e.g. the Figure 19 workload
    /// is `[(0.4, 15.0), (0.6, 20.0)]`.
    Mix(Vec<(f64, f64)>),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl RateDist {
    /// Draws one rate.
    ///
    /// # Panics
    ///
    /// Panics if a mix is empty or weights are non-positive.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match self {
            RateDist::Fixed(r) => *r,
            RateDist::Mix(entries) => {
                let weights: Vec<f64> = entries.iter().map(|(w, _)| *w).collect();
                entries[rng.weighted_index(&weights)].1
            }
            RateDist::Uniform { lo, hi } => rng.uniform_range(*lo, *hi),
        }
    }

    /// The distribution's nominal mean.
    pub fn mean(&self) -> f64 {
        match self {
            RateDist::Fixed(r) => *r,
            RateDist::Mix(entries) => {
                let total: f64 = entries.iter().map(|(w, _)| w).sum();
                entries.iter().map(|(w, r)| w * r).sum::<f64>() / total
            }
            RateDist::Uniform { lo, hi } => (lo + hi) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_exact_and_nonzero() {
        let mut rng = SimRng::seed_from(1);
        assert_eq!(LengthDist::Fixed(7).sample(&mut rng), 7);
        assert_eq!(LengthDist::Fixed(0).sample(&mut rng), 1);
    }

    #[test]
    fn normal_respects_clamps() {
        let mut rng = SimRng::seed_from(2);
        let d = LengthDist::Normal {
            mean: 512.0,
            std: 2000.0,
            min: 100,
            max: 600,
        };
        for _ in 0..500 {
            let x = d.sample(&mut rng);
            assert!((100..=600).contains(&x));
        }
    }

    #[test]
    fn normal_mean_close_to_target() {
        let mut rng = SimRng::seed_from(3);
        let d = LengthDist::Normal {
            mean: 1024.0,
            std: 256.0,
            min: 1,
            max: 10_000,
        };
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum::<f64>() / n as f64;
        assert!((mean - 1024.0).abs() < 20.0, "mean {mean}");
    }

    #[test]
    fn lognormal_is_heavy_tailed() {
        let mut rng = SimRng::seed_from(4);
        let d = LengthDist::sharegpt_prompt();
        let samples: Vec<u64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        assert!(mean > median, "heavy tail: mean {mean} > median {median}");
    }

    #[test]
    fn uniform_in_bounds() {
        let mut rng = SimRng::seed_from(5);
        let d = LengthDist::Uniform { lo: 10, hi: 20 };
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            assert!((10..=20).contains(&x));
        }
    }

    #[test]
    fn rate_mix_hits_both_components() {
        let mut rng = SimRng::seed_from(6);
        let d = RateDist::Mix(vec![(0.4, 15.0), (0.6, 20.0)]);
        let mut c15 = 0;
        let mut c20 = 0;
        for _ in 0..5_000 {
            let r = d.sample(&mut rng);
            if r == 15.0 {
                c15 += 1;
            } else if r == 20.0 {
                c20 += 1;
            } else {
                panic!("unexpected rate {r}");
            }
        }
        let frac = c15 as f64 / (c15 + c20) as f64;
        assert!((frac - 0.4).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn means_are_consistent() {
        assert_eq!(LengthDist::Fixed(10).mean(), 10.0);
        assert_eq!(LengthDist::Uniform { lo: 10, hi: 20 }.mean(), 15.0);
        let mix = RateDist::Mix(vec![(0.4, 15.0), (0.6, 20.0)]);
        assert!((mix.mean() - 18.0).abs() < 1e-9);
    }
}
