//! Trace serialisation: save and replay workloads as CSV.
//!
//! The format is deliberately simple — one header line and one row per
//! request — so traces can be inspected, trimmed, or produced by external
//! tools. No third-party serialisation crates are required.

use std::fmt::Write as _;
use std::str::FromStr;

use tokenflow_sim::{RequestId, SimTime};

use crate::request::{RequestSpec, Workload};

/// Errors while parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The header line was missing or wrong.
    BadHeader,
    /// A data row was malformed; carries the 1-based line number.
    BadRow(usize),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadHeader => write!(f, "bad or missing trace header"),
            TraceError::BadRow(line) => write!(f, "malformed trace row at line {line}"),
        }
    }
}

impl std::error::Error for TraceError {}

const HEADER: &str = "arrival_us,prompt_tokens,output_tokens,rate_tps";

/// Serialises a workload to CSV.
pub fn to_csv(workload: &Workload) -> String {
    let mut out = String::with_capacity(32 * workload.len() + 64);
    out.push_str(HEADER);
    out.push('\n');
    for s in workload.iter() {
        let _ = writeln!(
            out,
            "{},{},{},{}",
            s.arrival.as_micros(),
            s.prompt_tokens,
            s.output_tokens,
            s.rate
        );
    }
    out
}

/// Parses a workload from CSV produced by [`to_csv`] (or hand-written in the
/// same format).
pub fn from_csv(text: &str) -> Result<Workload, TraceError> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == HEADER => {}
        _ => return Err(TraceError::BadHeader),
    }
    let mut specs = Vec::new();
    for (i, line) in lines {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |_: &str| {
            fields
                .next()
                .map(str::trim)
                .ok_or(TraceError::BadRow(i + 1))
        };
        let arrival: u64 = parse(next("arrival")?, i)?;
        let prompt: u64 = parse(next("prompt")?, i)?;
        let output: u64 = parse(next("output")?, i)?;
        let rate: f64 = parse(next("rate")?, i)?;
        if fields.next().is_some() || rate <= 0.0 || output == 0 {
            return Err(TraceError::BadRow(i + 1));
        }
        // Ids are assigned sequentially in row order here, and
        // `Workload::new` re-pins them to arrival order (its documented
        // contract), so a sorted trace round-trips ids exactly and an
        // unsorted one still yields dense arrival-ordered ids.
        specs.push(RequestSpec {
            id: RequestId(specs.len() as u64),
            arrival: SimTime::from_micros(arrival),
            prompt_tokens: prompt,
            output_tokens: output,
            rate,
        });
    }
    Ok(Workload::new(specs))
}

fn parse<T: FromStr>(s: &str, line: usize) -> Result<T, TraceError> {
    s.parse().map_err(|_| TraceError::BadRow(line + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalSpec, WorkloadGen};
    use crate::dist::{LengthDist, RateDist};
    use tokenflow_sim::SimDuration;

    fn sample_workload() -> Workload {
        WorkloadGen {
            arrivals: ArrivalSpec::Poisson {
                rate: 5.0,
                duration: SimDuration::from_secs(20),
            },
            prompt: LengthDist::Uniform { lo: 10, hi: 100 },
            output: LengthDist::Uniform { lo: 20, hi: 200 },
            rate: RateDist::Uniform { lo: 10.0, hi: 30.0 },
        }
        .generate(99)
    }

    #[test]
    fn roundtrip_preserves_workload() {
        let w = sample_workload();
        let csv = to_csv(&w);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(w, parsed);
    }

    #[test]
    fn roundtrip_preserves_request_ids() {
        // Ids are dense in arrival order before the save and must come
        // back identical after replay — schedulers key metrics by id, so
        // a replayed trace must be indistinguishable from the original.
        let w = sample_workload();
        assert!(!w.is_empty());
        let parsed = from_csv(&to_csv(&w)).unwrap();
        for (orig, back) in w.iter().zip(parsed.iter()) {
            assert_eq!(orig.id, back.id);
        }
        for (i, s) in parsed.iter().enumerate() {
            assert_eq!(s.id, RequestId(i as u64));
        }
    }

    #[test]
    fn unsorted_rows_get_dense_arrival_ordered_ids() {
        // A hand-written trace need not be sorted; ids still come out
        // dense in arrival order (the `Workload::new` contract).
        let csv = format!("{HEADER}\n3000,10,20,15.0\n1000,11,21,15.0\n2000,12,22,15.0\n");
        let w = from_csv(&csv).unwrap();
        let arrivals: Vec<u64> = w.iter().map(|s| s.arrival.as_micros()).collect();
        assert_eq!(arrivals, vec![1000, 2000, 3000]);
        for (i, s) in w.iter().enumerate() {
            assert_eq!(s.id, RequestId(i as u64));
        }
    }

    #[test]
    fn empty_workload_roundtrips() {
        let w = Workload::new(vec![]);
        assert_eq!(from_csv(&to_csv(&w)).unwrap(), w);
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(from_csv("nope\n1,2,3,4"), Err(TraceError::BadHeader));
        assert_eq!(from_csv(""), Err(TraceError::BadHeader));
    }

    #[test]
    fn malformed_rows_rejected() {
        let bad = format!("{HEADER}\n1,2,3\n");
        assert!(matches!(from_csv(&bad), Err(TraceError::BadRow(_))));
        let bad = format!("{HEADER}\n1,2,3,4,5\n");
        assert!(matches!(from_csv(&bad), Err(TraceError::BadRow(_))));
        let bad = format!("{HEADER}\nx,2,3,4\n");
        assert!(matches!(from_csv(&bad), Err(TraceError::BadRow(_))));
    }

    #[test]
    fn zero_rate_or_output_rejected() {
        let bad = format!("{HEADER}\n1,2,3,0\n");
        assert!(matches!(from_csv(&bad), Err(TraceError::BadRow(_))));
        let bad = format!("{HEADER}\n1,2,0,10\n");
        assert!(matches!(from_csv(&bad), Err(TraceError::BadRow(_))));
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = format!("{HEADER}\n\n100,10,20,15.5\n\n");
        let w = from_csv(&csv).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w.specs()[0].rate, 15.5);
    }
}
