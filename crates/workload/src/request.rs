//! Request specifications and workloads.

use serde::{Deserialize, Serialize};
use tokenflow_sim::{RequestId, SimDuration, SimTime};

/// Who consumes the stream (paper §8, "Handles Different Client Types").
///
/// Interactive clients are humans with a hard consumption rate the server
/// must match; agent clients (tool pipelines, LLM-to-LLM calls) declare a
/// *reference* rate that acts as a scheduling priority — they accelerate
/// when resources permit and are throttled first under load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ClientKind {
    /// A human reader/listener with a firm consumption rate.
    #[default]
    Interactive,
    /// A machine consumer with an elastic reference rate.
    Agent,
}

/// Everything the serving engine needs to know about one request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Dense identifier, assigned in arrival order.
    pub id: RequestId,
    /// Arrival (submission) time.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Number of tokens the request will generate.
    pub output_tokens: u64,
    /// Required streaming rate in tokens/second — the client's declared
    /// consumption speed (paper §8 "clients explicitly specify their desired
    /// output rate").
    pub rate: f64,
}

impl RequestSpec {
    /// Total context length at completion (prompt + all generated tokens).
    pub fn final_context(&self) -> u64 {
        self.prompt_tokens + self.output_tokens
    }

    /// Time needed to stream the whole response at the required rate.
    pub fn playback_secs(&self) -> f64 {
        self.output_tokens as f64 / self.rate
    }
}

/// Summary statistics of a workload, used to validate generators and to
/// print the Figure 11 distribution table.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadStats {
    /// Number of requests.
    pub count: usize,
    /// Time of the last arrival.
    pub span: SimTime,
    /// Mean prompt length.
    pub mean_prompt: f64,
    /// Mean output length.
    pub mean_output: f64,
    /// Median prompt length.
    pub p50_prompt: u64,
    /// 99th-percentile prompt length.
    pub p99_prompt: u64,
    /// Median output length.
    pub p50_output: u64,
    /// 99th-percentile output length.
    pub p99_output: u64,
    /// Mean required rate in tokens/second.
    pub mean_rate: f64,
    /// Largest number of arrivals inside any one-second window.
    pub peak_arrivals_per_sec: usize,
}

/// An ordered collection of requests.
///
/// Construction sorts by arrival and renumbers ids densely, so `specs[i].id
/// == RequestId(i)` always holds.
///
/// # Examples
///
/// ```
/// use tokenflow_sim::{RequestId, SimTime};
/// use tokenflow_workload::{RequestSpec, Workload};
///
/// let w = Workload::new(vec![
///     RequestSpec { id: RequestId(0), arrival: SimTime::from_secs(5),
///                   prompt_tokens: 10, output_tokens: 20, rate: 10.0 },
///     RequestSpec { id: RequestId(0), arrival: SimTime::from_secs(1),
///                   prompt_tokens: 10, output_tokens: 20, rate: 10.0 },
/// ]);
/// assert_eq!(w.get(RequestId(0)).arrival, SimTime::from_secs(1));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    specs: Vec<RequestSpec>,
}

impl Workload {
    /// Builds a workload, sorting by arrival time and renumbering ids.
    ///
    /// **Id contract:** incoming ids are ignored. Construction stably
    /// sorts by arrival (ties keep their input order) and reassigns ids
    /// densely, so `specs[i].id == RequestId(i)` holds afterwards — a
    /// workload saved to a trace and replayed therefore reproduces its
    /// ids exactly. Every composition helper ([`Workload::merge`],
    /// [`Workload::offset`]) goes through this constructor and inherits
    /// the contract.
    pub fn new(mut specs: Vec<RequestSpec>) -> Self {
        specs.sort_by_key(|s| s.arrival);
        for (i, s) in specs.iter_mut().enumerate() {
            s.id = RequestId(i as u64);
        }
        Workload { specs }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True when the workload has no requests.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Iterates over specs in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &RequestSpec> {
        self.specs.iter()
    }

    /// The spec for a given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn get(&self, id: RequestId) -> &RequestSpec {
        &self.specs[id.0 as usize]
    }

    /// All specs as a slice, in arrival order.
    pub fn specs(&self) -> &[RequestSpec] {
        &self.specs
    }

    /// Merges several workloads into one timeline (re-sorted and
    /// re-numbered per the [`Workload::new`] id contract).
    pub fn merge(parts: Vec<Workload>) -> Workload {
        let specs = parts.into_iter().flat_map(|w| w.specs).collect();
        Workload::new(specs)
    }

    /// Returns a copy with every arrival shifted `delta` later. Relative
    /// order (and therefore every id) is unchanged. Composition building
    /// block: generate phases at time zero, offset each into place, then
    /// [`merge`](Workload::merge) — the diurnal flash-crowd preset is
    /// built exactly this way.
    pub fn offset(&self, delta: SimDuration) -> Workload {
        Workload::new(
            self.specs
                .iter()
                .map(|s| RequestSpec {
                    arrival: s.arrival.saturating_add(delta),
                    ..*s
                })
                .collect(),
        )
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> WorkloadStats {
        let count = self.specs.len();
        if count == 0 {
            return WorkloadStats {
                count: 0,
                span: SimTime::ZERO,
                mean_prompt: 0.0,
                mean_output: 0.0,
                p50_prompt: 0,
                p99_prompt: 0,
                p50_output: 0,
                p99_output: 0,
                mean_rate: 0.0,
                peak_arrivals_per_sec: 0,
            };
        }
        let mut prompts: Vec<u64> = self.specs.iter().map(|s| s.prompt_tokens).collect();
        let mut outputs: Vec<u64> = self.specs.iter().map(|s| s.output_tokens).collect();
        prompts.sort_unstable();
        outputs.sort_unstable();
        let pct = |v: &[u64], p: f64| -> u64 {
            let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
            v[idx]
        };

        // Peak arrivals in any sliding one-second window (two-pointer scan).
        let mut peak = 0usize;
        let times: Vec<u64> = self.specs.iter().map(|s| s.arrival.as_micros()).collect();
        let mut lo = 0usize;
        for hi in 0..times.len() {
            while times[hi] - times[lo] >= 1_000_000 {
                lo += 1;
            }
            peak = peak.max(hi - lo + 1);
        }

        WorkloadStats {
            count,
            span: self
                .specs
                .last()
                .map(|s| s.arrival)
                .unwrap_or(SimTime::ZERO),
            mean_prompt: prompts.iter().sum::<u64>() as f64 / count as f64,
            mean_output: outputs.iter().sum::<u64>() as f64 / count as f64,
            p50_prompt: pct(&prompts, 0.50),
            p99_prompt: pct(&prompts, 0.99),
            p50_output: pct(&outputs, 0.50),
            p99_output: pct(&outputs, 0.99),
            mean_rate: self.specs.iter().map(|s| s.rate).sum::<f64>() / count as f64,
            peak_arrivals_per_sec: peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(arrival_ms: u64, prompt: u64, output: u64, rate: f64) -> RequestSpec {
        RequestSpec {
            id: RequestId(999),
            arrival: SimTime::from_millis(arrival_ms),
            prompt_tokens: prompt,
            output_tokens: output,
            rate,
        }
    }

    #[test]
    fn construction_sorts_and_renumbers() {
        let w = Workload::new(vec![spec(300, 1, 1, 1.0), spec(100, 2, 2, 1.0)]);
        assert_eq!(w.get(RequestId(0)).prompt_tokens, 2);
        assert_eq!(w.get(RequestId(1)).prompt_tokens, 1);
        for (i, s) in w.iter().enumerate() {
            assert_eq!(s.id, RequestId(i as u64));
        }
    }

    #[test]
    fn merge_interleaves_timelines() {
        let a = Workload::new(vec![spec(100, 1, 1, 1.0), spec(300, 1, 1, 1.0)]);
        let b = Workload::new(vec![spec(200, 2, 2, 1.0)]);
        let m = Workload::merge(vec![a, b]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(RequestId(1)).prompt_tokens, 2);
    }

    #[test]
    fn merge_keeps_arrivals_sorted_and_ids_dense() {
        let a = Workload::new(vec![spec(500, 1, 1, 1.0), spec(100, 1, 1, 1.0)]);
        let b = Workload::new(vec![spec(300, 2, 2, 1.0), spec(50, 2, 2, 1.0)]);
        let m = Workload::merge(vec![a, b]);
        let arrivals: Vec<SimTime> = m.iter().map(|s| s.arrival).collect();
        let mut sorted = arrivals.clone();
        sorted.sort();
        assert_eq!(arrivals, sorted);
        for (i, s) in m.iter().enumerate() {
            assert_eq!(s.id, RequestId(i as u64));
        }
    }

    #[test]
    fn offset_shifts_arrivals_preserving_order_and_ids() {
        let w = Workload::new(vec![
            spec(0, 1, 1, 1.0),
            spec(250, 2, 2, 2.0),
            spec(900, 3, 3, 3.0),
        ]);
        let shifted = w.offset(SimDuration::from_millis(1_000));
        assert_eq!(shifted.len(), w.len());
        for (orig, moved) in w.iter().zip(shifted.iter()) {
            assert_eq!(moved.id, orig.id);
            assert_eq!(
                moved.arrival.saturating_since(orig.arrival),
                SimDuration::from_millis(1_000)
            );
            assert_eq!(moved.prompt_tokens, orig.prompt_tokens);
            assert_eq!(moved.rate, orig.rate);
        }
    }

    #[test]
    fn offset_then_merge_composes_phases() {
        // The composition pattern the diurnal flash-crowd preset uses: a
        // burst generated at time zero lands mid-trace after an offset.
        let base = Workload::new(vec![spec(0, 1, 1, 1.0), spec(2_000, 1, 1, 1.0)]);
        let burst = Workload::new(vec![spec(0, 9, 9, 9.0), spec(0, 9, 9, 9.0)]);
        let m = Workload::merge(vec![base.clone(), burst.offset(SimDuration::from_secs(1))]);
        assert_eq!(m.len(), 4);
        // The burst sits between the base arrivals, ids renumbered.
        assert_eq!(m.get(RequestId(1)).prompt_tokens, 9);
        assert_eq!(m.get(RequestId(2)).prompt_tokens, 9);
        assert_eq!(m.get(RequestId(3)).arrival, SimTime::from_secs(2));
    }

    #[test]
    fn stats_basics() {
        let w = Workload::new(vec![
            spec(0, 100, 200, 10.0),
            spec(500, 300, 400, 20.0),
            spec(5_000, 500, 600, 30.0),
        ]);
        let s = w.stats();
        assert_eq!(s.count, 3);
        assert_eq!(s.span, SimTime::from_secs(5));
        assert_eq!(s.mean_prompt, 300.0);
        assert_eq!(s.p50_output, 400);
        assert_eq!(s.mean_rate, 20.0);
        // Two arrivals land within the first second.
        assert_eq!(s.peak_arrivals_per_sec, 2);
    }

    #[test]
    fn empty_stats_do_not_panic() {
        let s = Workload::new(vec![]).stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.peak_arrivals_per_sec, 0);
    }

    #[test]
    fn playback_and_context_helpers() {
        let s = spec(0, 128, 512, 16.0);
        assert_eq!(s.final_context(), 640);
        assert_eq!(s.playback_secs(), 32.0);
    }

    #[test]
    fn burst_peak_counts_simultaneous_arrivals() {
        let w = Workload::new((0..50).map(|_| spec(1_000, 1, 1, 1.0)).collect());
        assert_eq!(w.stats().peak_arrivals_per_sec, 50);
    }
}
