//! Workload generation for TokenFlow experiments.
//!
//! The paper evaluates on four workload families; each has a generator here:
//!
//! * **Controlled bursts** (§7.3, Table 1): `b` requests arriving at once —
//!   the flash-crowd scenario.
//! * **Poisson arrivals** (§7.3): rate-λ memoryless traffic.
//! * **BurstGPT-style traces** (§7.2): a Markov-modulated Poisson process
//!   alternating calm and burst phases, reproducing the burstiness of the
//!   published BurstGPT dataset.
//! * **Industrial traces** (§7.1.2, Fig. 11): a diurnal non-homogeneous
//!   Poisson process with a bimodal length mix (short chat turns plus long
//!   document tasks).
//!
//! Prompt/output lengths and per-request streaming rates are sampled from
//! configurable distributions ([`LengthDist`], [`RateDist`]); presets encode
//! the paper's exact Table 1 configurations.

// audit: tier(deterministic)
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod dist;
pub mod presets;
pub mod request;
pub mod trace;

pub use arrivals::{ArrivalSpec, WorkloadGen};
pub use dist::{LengthDist, RateDist};
pub use presets::{diurnal_flash_crowd, ControlledSetup};
pub use request::{ClientKind, RequestSpec, Workload, WorkloadStats};
