//! Paper workload presets.
//!
//! Encodes Table 1 (controlled request distributions) and the end-to-end
//! trace configurations of §7.2. Interpretation notes:
//!
//! * "SL"/"LL" in Table 1 we read as *short/long sequence lengths*: the
//!   short configuration uses 512-token prompts and 1024-token outputs on
//!   the RTX 4090 (the §7.3 averages), the long configuration 1024/2048;
//!   H200 outputs are scaled 2× per the text.
//! * Lengths are normally distributed around those means (σ = mean/4),
//!   matching "input/output lengths follow normal distributions".
//! * Required streaming rates default to 12 tokens/s — twice the average
//!   adult reading speed, the reference line drawn in Figure 2. The
//!   micro-experiments override this where the paper names explicit rates.

use serde::{Deserialize, Serialize};
use tokenflow_sim::{SimDuration, SimTime};

use crate::arrivals::{ArrivalSpec, WorkloadGen};
use crate::dist::{LengthDist, RateDist};
use crate::request::Workload;

/// Default required streaming rate for controlled tests, tokens/second:
/// twice the average adult reading speed, the reference line of Figure 2.
pub const DEFAULT_RATE: f64 = 12.0;

/// Sequence-length class of a controlled setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LengthClass {
    /// Short: 512-token prompts, 1024-token outputs (4090 scale).
    Short,
    /// Long: 1024-token prompts, 2048-token outputs (4090 scale).
    Long,
}

/// One row of Table 1: a controlled request-distribution configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlledSetup {
    /// Label as printed in the paper, e.g. `"H200 (a)"`.
    pub label: String,
    /// Arrival process.
    pub arrivals: ArrivalSpec,
    /// Length class.
    pub lengths: LengthClass,
    /// Output length multiplier (2 for H200 per §7.3).
    pub output_scale: u64,
}

fn normal(mean: u64) -> LengthDist {
    LengthDist::Normal {
        mean: mean as f64,
        std: mean as f64 / 4.0,
        min: 16,
        max: mean * 4,
    }
}

impl ControlledSetup {
    /// Builds the generator for this setup with the given streaming rate
    /// distribution.
    pub fn generator(&self, rate: RateDist) -> WorkloadGen {
        let (prompt_mean, output_mean) = match self.lengths {
            LengthClass::Short => (512, 1024),
            LengthClass::Long => (1024, 2048),
        };
        WorkloadGen {
            arrivals: self.arrivals.clone(),
            prompt: normal(prompt_mean),
            output: normal(output_mean * self.output_scale),
            rate,
        }
    }

    /// Generates the workload with the default rate.
    pub fn workload(&self, seed: u64) -> Workload {
        self.generator(RateDist::Fixed(DEFAULT_RATE)).generate(seed)
    }

    /// Table 1, RTX 4090 (a): burst `b = 60`, short lengths.
    pub fn rtx4090_a() -> Self {
        ControlledSetup {
            label: "4090 (a)".to_string(),
            arrivals: ArrivalSpec::Burst {
                size: 60,
                at: SimTime::ZERO,
            },
            lengths: LengthClass::Short,
            output_scale: 1,
        }
    }

    /// Table 1, RTX 4090 (b): burst `b = 80`, long lengths.
    pub fn rtx4090_b() -> Self {
        ControlledSetup {
            label: "4090 (b)".to_string(),
            arrivals: ArrivalSpec::Burst {
                size: 80,
                at: SimTime::ZERO,
            },
            lengths: LengthClass::Long,
            output_scale: 1,
        }
    }

    /// Table 1, RTX 4090 (c): Poisson `λ = 2`, short lengths.
    pub fn rtx4090_c() -> Self {
        ControlledSetup {
            label: "4090 (c)".to_string(),
            arrivals: ArrivalSpec::Poisson {
                rate: 2.0,
                duration: SimDuration::from_secs(60),
            },
            lengths: LengthClass::Short,
            output_scale: 1,
        }
    }

    /// Table 1, RTX 4090 (d): Poisson `λ = 4`, short lengths.
    pub fn rtx4090_d() -> Self {
        ControlledSetup {
            label: "4090 (d)".to_string(),
            arrivals: ArrivalSpec::Poisson {
                rate: 4.0,
                duration: SimDuration::from_secs(60),
            },
            lengths: LengthClass::Short,
            output_scale: 1,
        }
    }

    /// Table 1, H200 (a): burst `b = 400`, short lengths (outputs 2×).
    pub fn h200_a() -> Self {
        ControlledSetup {
            label: "H200 (a)".to_string(),
            arrivals: ArrivalSpec::Burst {
                size: 400,
                at: SimTime::ZERO,
            },
            lengths: LengthClass::Short,
            output_scale: 2,
        }
    }

    /// Table 1, H200 (b): burst `b = 200`, long lengths (outputs 2×).
    pub fn h200_b() -> Self {
        ControlledSetup {
            label: "H200 (b)".to_string(),
            arrivals: ArrivalSpec::Burst {
                size: 200,
                at: SimTime::ZERO,
            },
            lengths: LengthClass::Long,
            output_scale: 2,
        }
    }

    /// Table 1, H200 (c): Poisson `λ = 5`, short lengths (outputs 2×).
    pub fn h200_c() -> Self {
        ControlledSetup {
            label: "H200 (c)".to_string(),
            arrivals: ArrivalSpec::Poisson {
                rate: 5.0,
                duration: SimDuration::from_secs(60),
            },
            lengths: LengthClass::Short,
            output_scale: 2,
        }
    }

    /// Table 1, H200 (d): Poisson `λ = 10`, short lengths (outputs 2×).
    pub fn h200_d() -> Self {
        ControlledSetup {
            label: "H200 (d)".to_string(),
            arrivals: ArrivalSpec::Poisson {
                rate: 10.0,
                duration: SimDuration::from_secs(60),
            },
            lengths: LengthClass::Short,
            output_scale: 2,
        }
    }

    /// Looks a Table 1 setup up by its scenario-spec name (the
    /// kebab-case form the `tokenflow` CLI and `scenarios/` files use):
    /// `"rtx4090-a"` … `"rtx4090-d"`, `"h200-a"` … `"h200-d"`.
    /// Case-insensitive, like the model/hardware profile lookups.
    pub fn by_name(name: &str) -> Option<ControlledSetup> {
        Some(match name.to_ascii_lowercase().as_str() {
            "rtx4090-a" => Self::rtx4090_a(),
            "rtx4090-b" => Self::rtx4090_b(),
            "rtx4090-c" => Self::rtx4090_c(),
            "rtx4090-d" => Self::rtx4090_d(),
            "h200-a" => Self::h200_a(),
            "h200-b" => Self::h200_b(),
            "h200-c" => Self::h200_c(),
            "h200-d" => Self::h200_d(),
            _ => return None,
        })
    }

    /// All burst rows of Table 1 in figure order (Figure 16).
    pub fn burst_rows() -> Vec<ControlledSetup> {
        vec![
            Self::h200_a(),
            Self::h200_b(),
            Self::rtx4090_a(),
            Self::rtx4090_b(),
        ]
    }

    /// All Poisson rows of Table 1 in figure order (Figure 17).
    pub fn poisson_rows() -> Vec<ControlledSetup> {
        vec![
            Self::h200_c(),
            Self::h200_d(),
            Self::rtx4090_c(),
            Self::rtx4090_d(),
        ]
    }
}

/// A BurstGPT-style trace (§7.2): calm traffic with multi-second burst
/// phases, ShareGPT-like lengths.
pub fn burstgpt_trace(
    base_rate: f64,
    burst_rate: f64,
    duration: SimDuration,
    rate: RateDist,
) -> WorkloadGen {
    burstgpt_trace_scaled(base_rate, burst_rate, duration, rate, 1)
}

/// [`burstgpt_trace`] with outputs scaled `output_scale`× — used to stress
/// larger models whose capacity dwarfs ShareGPT's short answers.
pub fn burstgpt_trace_scaled(
    base_rate: f64,
    burst_rate: f64,
    duration: SimDuration,
    rate: RateDist,
    output_scale: u64,
) -> WorkloadGen {
    let output = match LengthDist::sharegpt_output() {
        LengthDist::LogNormal {
            mean,
            std,
            min,
            max,
        } => LengthDist::LogNormal {
            mean: mean * output_scale as f64,
            std: std * output_scale as f64,
            min,
            max: max * output_scale,
        },
        other => other,
    };
    WorkloadGen {
        arrivals: ArrivalSpec::Mmpp {
            base_rate,
            burst_rate,
            mean_calm: SimDuration::from_secs(25),
            mean_burst: SimDuration::from_secs(6),
            duration,
        },
        prompt: LengthDist::sharegpt_prompt(),
        output,
        rate,
    }
}

/// An industrial-style diurnal trace (Figure 11): raised-cosine intensity
/// and a bimodal length mix of short chat turns and long document tasks.
pub fn industrial_trace(peak_rate: f64, duration: SimDuration, rate: RateDist) -> WorkloadGen {
    WorkloadGen {
        arrivals: ArrivalSpec::Diurnal {
            trough_rate: peak_rate * 0.1,
            peak_rate,
            period: duration,
            duration,
        },
        // Bimodal mix approximated by a heavy-tailed lognormal: most
        // requests are short chat turns; the tail carries document tasks.
        prompt: LengthDist::LogNormal {
            mean: 350.0,
            std: 500.0,
            min: 8,
            max: 8192,
        },
        output: LengthDist::LogNormal {
            mean: 400.0,
            std: 420.0,
            min: 16,
            max: 4096,
        },
        rate,
    }
}

/// The autoscaling stress preset: a sinusoidal (diurnal) base rate with
/// a flash crowd superimposed at `crowd_at`.
///
/// This is the workload an elastic fleet must get right twice over: the
/// slow diurnal swell rewards draining replicas through the trough,
/// while the flash crowd punishes any fleet that cannot grow faster
/// than its prefill backlog. Built compositionally —
/// [`industrial_trace`]-style diurnal arrivals, plus a burst generated
/// at time zero and [`Workload::offset`] into place, merged on one
/// timeline — with short chat-turn lengths so fleet sweeps stay cheap.
pub fn diurnal_flash_crowd(
    peak_rate: f64,
    duration: SimDuration,
    crowd_size: u32,
    crowd_at: SimTime,
    rate: RateDist,
    seed: u64,
) -> Workload {
    let lengths = |mean: u64| LengthDist::Normal {
        mean: mean as f64,
        std: mean as f64 / 4.0,
        min: 16,
        max: mean * 4,
    };
    let base = WorkloadGen {
        arrivals: ArrivalSpec::Diurnal {
            trough_rate: peak_rate * 0.1,
            peak_rate,
            period: duration,
            duration,
        },
        prompt: lengths(256),
        output: lengths(512),
        rate: rate.clone(),
    }
    .generate(seed);
    let crowd = WorkloadGen {
        arrivals: ArrivalSpec::Burst {
            size: crowd_size,
            at: SimTime::ZERO,
        },
        prompt: lengths(256),
        output: lengths(512),
        rate,
    }
    // Decorrelate the crowd's samples from the base trace's.
    .generate(seed ^ 0x9e37_79b9_7f4a_7c15);
    Workload::merge(vec![
        base,
        crowd.offset(crowd_at.saturating_since(SimTime::ZERO)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_burst_sizes_match_paper() {
        assert!(matches!(
            ControlledSetup::rtx4090_a().arrivals,
            ArrivalSpec::Burst { size: 60, .. }
        ));
        assert!(matches!(
            ControlledSetup::rtx4090_b().arrivals,
            ArrivalSpec::Burst { size: 80, .. }
        ));
        assert!(matches!(
            ControlledSetup::h200_a().arrivals,
            ArrivalSpec::Burst { size: 400, .. }
        ));
        assert!(matches!(
            ControlledSetup::h200_b().arrivals,
            ArrivalSpec::Burst { size: 200, .. }
        ));
    }

    #[test]
    fn by_name_covers_every_table1_row_and_rejects_others() {
        for name in [
            "rtx4090-a",
            "rtx4090-b",
            "rtx4090-c",
            "rtx4090-d",
            "h200-a",
            "h200-b",
            "h200-c",
            "h200-d",
        ] {
            assert!(ControlledSetup::by_name(name).is_some(), "{name}");
        }
        assert!(ControlledSetup::by_name("tpu-a").is_none());
        assert_eq!(
            ControlledSetup::by_name("h200-b").unwrap(),
            ControlledSetup::h200_b()
        );
    }

    #[test]
    fn table1_poisson_rates_match_paper() {
        for (setup, expect) in [
            (ControlledSetup::rtx4090_c(), 2.0),
            (ControlledSetup::rtx4090_d(), 4.0),
            (ControlledSetup::h200_c(), 5.0),
            (ControlledSetup::h200_d(), 10.0),
        ] {
            match setup.arrivals {
                ArrivalSpec::Poisson { rate, .. } => assert_eq!(rate, expect),
                other => panic!("expected Poisson, got {other:?}"),
            }
        }
    }

    #[test]
    fn h200_outputs_scaled_2x() {
        let w4090 = ControlledSetup::rtx4090_a().workload(1);
        let wh200 = ControlledSetup::h200_a().workload(1);
        let m4090 = w4090.stats().mean_output;
        let mh200 = wh200.stats().mean_output;
        assert!(
            (mh200 / m4090 - 2.0).abs() < 0.2,
            "H200 {mh200} vs 4090 {m4090}"
        );
    }

    #[test]
    fn short_vs_long_lengths() {
        let short = ControlledSetup::rtx4090_a().workload(2).stats();
        let long = ControlledSetup::rtx4090_b().workload(2).stats();
        assert!((short.mean_prompt - 512.0).abs() < 60.0);
        assert!((long.mean_prompt - 1024.0).abs() < 80.0);
        assert!((short.mean_output - 1024.0).abs() < 80.0);
        assert!((long.mean_output - 2048.0).abs() < 120.0);
    }

    #[test]
    fn burst_workload_is_flash_crowd() {
        let w = ControlledSetup::h200_a().workload(3);
        assert_eq!(w.len(), 400);
        assert_eq!(w.stats().peak_arrivals_per_sec, 400);
    }

    #[test]
    fn burstgpt_trace_generates_bursts() {
        let g = burstgpt_trace(
            1.0,
            20.0,
            SimDuration::from_secs(300),
            RateDist::Fixed(20.0),
        );
        let w = g.generate(4);
        let s = w.stats();
        assert!(s.count > 50);
        assert!(
            s.peak_arrivals_per_sec >= 5,
            "peak {}",
            s.peak_arrivals_per_sec
        );
    }

    #[test]
    fn diurnal_flash_crowd_superimposes_burst_on_diurnal_base() {
        let duration = SimDuration::from_secs(600);
        let crowd_at = SimTime::from_secs(150);
        let w = diurnal_flash_crowd(2.0, duration, 80, crowd_at, RateDist::Fixed(15.0), 7);
        // The crowd dominates any one-second window.
        assert!(w.stats().peak_arrivals_per_sec >= 80);
        // Exactly the crowd arrives at the crowd instant.
        let at_crowd = w.iter().filter(|s| s.arrival == crowd_at).count();
        assert_eq!(at_crowd, 80);
        // The diurnal base is present on both sides of the crowd.
        assert!(w.iter().any(|s| s.arrival < crowd_at));
        assert!(w.iter().any(|s| s.arrival > crowd_at));
        // Composition preserves the workload id contract.
        for (i, s) in w.iter().enumerate() {
            assert_eq!(s.id, tokenflow_sim::RequestId(i as u64));
        }
    }

    #[test]
    fn diurnal_flash_crowd_is_deterministic() {
        let gen = |seed| {
            diurnal_flash_crowd(
                3.0,
                SimDuration::from_secs(300),
                40,
                SimTime::from_secs(60),
                RateDist::Uniform { lo: 8.0, hi: 24.0 },
                seed,
            )
        };
        assert_eq!(gen(11), gen(11));
        assert_ne!(gen(11), gen(12));
    }

    #[test]
    fn industrial_trace_has_heavy_tail() {
        let g = industrial_trace(5.0, SimDuration::from_secs(600), RateDist::Fixed(20.0));
        let s = g.generate(5).stats();
        assert!(s.p99_prompt > 3 * s.p50_prompt, "tail {s:?}");
    }
}
