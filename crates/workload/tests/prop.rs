//! Property tests on workload generation and trace serialisation.

use proptest::prelude::*;
use tokenflow_sim::{SimDuration, SimTime};
use tokenflow_workload::{trace, ArrivalSpec, LengthDist, RateDist, Workload};

fn arb_gen() -> impl Strategy<Value = tokenflow_workload::arrivals::WorkloadGen> {
    (1u32..40, 1u64..500, 1u64..500, 1.0f64..50.0).prop_map(|(n, p, o, r)| {
        tokenflow_workload::arrivals::WorkloadGen {
            arrivals: ArrivalSpec::Burst {
                size: n,
                at: SimTime::ZERO,
            },
            prompt: LengthDist::Uniform {
                lo: 1,
                hi: p.max(1),
            },
            output: LengthDist::Uniform {
                lo: 1,
                hi: o.max(1),
            },
            rate: RateDist::Fixed(r),
        }
    })
}

proptest! {
    #[test]
    fn generated_workloads_are_well_formed(g in arb_gen(), seed in 0u64..1_000) {
        let w = g.generate(seed);
        for (i, spec) in w.iter().enumerate() {
            prop_assert_eq!(spec.id.0, i as u64, "dense ids");
            prop_assert!(spec.output_tokens >= 1);
            prop_assert!(spec.prompt_tokens >= 1);
            prop_assert!(spec.rate > 0.0);
        }
        // Arrival order is sorted.
        for pair in w.specs().windows(2) {
            prop_assert!(pair[0].arrival <= pair[1].arrival);
        }
    }

    #[test]
    fn csv_roundtrip_is_lossless(g in arb_gen(), seed in 0u64..1_000) {
        let w = g.generate(seed);
        let parsed = trace::from_csv(&trace::to_csv(&w)).unwrap();
        prop_assert_eq!(parsed, w);
    }

    #[test]
    fn poisson_respects_horizon(rate in 0.5f64..30.0, secs in 1u64..120, seed in 0u64..500) {
        let spec = ArrivalSpec::Poisson {
            rate,
            duration: SimDuration::from_secs(secs),
        };
        let mut rng = tokenflow_sim::SimRng::seed_from(seed);
        for t in spec.sample(&mut rng) {
            prop_assert!(t < SimTime::ZERO + SimDuration::from_secs(secs));
        }
    }

    #[test]
    fn workload_stats_are_consistent(g in arb_gen(), seed in 0u64..1_000) {
        let w = g.generate(seed);
        let s = w.stats();
        prop_assert_eq!(s.count, w.len());
        prop_assert!(s.p50_prompt <= s.p99_prompt);
        prop_assert!(s.p50_output <= s.p99_output);
        prop_assert!(s.peak_arrivals_per_sec <= s.count);
        let merged = Workload::merge(vec![w.clone(), Workload::new(vec![])]);
        prop_assert_eq!(merged, w);
    }
}
