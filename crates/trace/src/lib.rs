//! Typed, sim-time-stamped decision-event journal for the serving stack.
//!
//! Every layer that makes a *decision* — the engine's admission,
//! preemption and batching stages, the KV orchestrator, the schedulers,
//! the cluster router, and the control plane — records it through a
//! [`TraceSink`] handle. The sink is a no-op by default: a disabled sink
//! is a single `Option` check, stores nothing, and never allocates, so
//! the zero-alloc steady-state contract of the engine hot path is
//! preserved byte-for-byte (see `DESIGN.md`, "Observability").
//!
//! With tracing on, the journal is *deterministic*: events are stamped
//! with simulation time (never wall clock), each emitting component owns
//! a [`TraceSource`] with a private monotone sequence number, and
//! [`TraceJournal::merge`] orders the union by `(time, source, seq)` — a
//! total order independent of executor interleaving. The same scenario
//! therefore produces the same journal under the sequential, scoped, and
//! pooled cluster executors.
//!
//! Two determinism domains exist. *Meta* events (plan-horizon arm/end)
//! describe the engine's internal fast-path machinery: they are
//! executor-invariant but, by construction, differ between fast-path-on
//! and fast-path-off runs. [`TraceJournal::canonical`] filters them out,
//! leaving the decision record that is additionally invariant under the
//! fast path — that filtered view is what trace digests pin.

// audit: tier(deterministic)
#![forbid(unsafe_code)]

use tokenflow_sim::{RequestId, SimTime};

/// Who emitted an event. The variant order is the merge tie-break order
/// at equal timestamps: control-plane decisions precede the dispatches
/// they enable, which precede replica-internal events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceSource {
    /// The cluster control plane (scale decisions).
    Control,
    /// The cluster coordinator (routing dispatches).
    Coordinator,
    /// One engine replica, by stable replica index.
    Replica(u32),
}

impl TraceSource {
    /// Short stable label, used by the JSONL rendering.
    pub fn label(self) -> String {
        match self {
            TraceSource::Control => "control".to_string(),
            TraceSource::Coordinator => "coordinator".to_string(),
            TraceSource::Replica(i) => format!("replica-{i}"),
        }
    }
}

/// Why a request was preempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptCause {
    /// A scheduler plan action chose to evict it.
    Planned,
    /// The admission stage reclaimed its memory under pool pressure.
    Reclaim,
}

impl PreemptCause {
    /// Stable lowercase label.
    pub const fn label(self) -> &'static str {
        match self {
            PreemptCause::Planned => "planned",
            PreemptCause::Reclaim => "reclaim",
        }
    }
}

/// Why an armed plan horizon stopped applying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizonEndReason {
    /// A decision event bumped the epoch before the horizon elapsed.
    Invalidated,
    /// The certified quiet window ran out.
    Expired,
}

impl HorizonEndReason {
    /// Stable lowercase label.
    pub const fn label(self) -> &'static str {
        match self {
            HorizonEndReason::Invalidated => "invalidated",
            HorizonEndReason::Expired => "expired",
        }
    }
}

/// One decision, with its payload.
///
/// Payloads carry the *inputs* of the decision where the outcome alone
/// would not explain it: admission records the prefill backlog the
/// request queued behind, repricing records before/after priorities,
/// dispatch records the considered per-replica scores, scaling records
/// the policy's term values.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// An arrival was ingested by the admission stage.
    Arrived {
        id: RequestId,
        /// The workload-specified arrival instant (the event itself is
        /// stamped at the ingesting iteration's start, which may be
        /// later).
        arrival: SimTime,
    },
    /// The coordinator routed a request to a replica.
    Dispatch {
        id: RequestId,
        replica: u32,
        /// Per-replica scores the router considered (lower wins); empty
        /// for load-oblivious routers, whose choice is positional.
        scores: Vec<f64>,
    },
    /// Admission started a prefill (first admission or a recompute
    /// resume).
    Admitted {
        id: RequestId,
        /// True when this admission re-prefills a preempted-and-discarded
        /// context rather than a fresh prompt.
        recompute: bool,
        /// Prompt tokens of *other* requests already queued for prefill
        /// at admission time — the head-of-line work this request waits
        /// behind.
        queued_behind_tokens: u64,
    },
    /// The batch stage processed a slice of a request's prefill.
    PrefillChunk {
        id: RequestId,
        tokens: u64,
        /// True when the slice completes the prefill.
        completes: bool,
    },
    /// A request streamed its first output token.
    FirstToken { id: RequestId },
    /// A request generated all its output tokens.
    Finished { id: RequestId },
    /// A request was preempted out of the decode batch.
    Preempted {
        id: RequestId,
        /// True when its KV was discarded (recompute later); false when
        /// offloaded to host memory.
        discard: bool,
        cause: PreemptCause,
    },
    /// The batch stage shed a request because the decode batch no longer
    /// fits in memory even after write-through reclaim.
    Shed { id: RequestId },
    /// A preempted request re-entered service from host memory.
    Resumed { id: RequestId },
    /// A scheduler's decode gate paused (`paused = true`) or released a
    /// running request. Only *transitions* are recorded.
    DecodeGate { id: RequestId, paused: bool },
    /// The KV orchestrator started evicting a request's KV to host.
    EvictStart { id: RequestId, tokens: u64 },
    /// A device-to-host eviction finished; the request is fully on CPU.
    EvictDone { id: RequestId },
    /// The KV orchestrator started loading a request's KV back to GPU.
    LoadStart { id: RequestId, tokens: u64 },
    /// A host-to-device load finished; the request rejoined the batch.
    LoadDone { id: RequestId },
    /// A scheduler's full pass changed a request's priority.
    Reprice {
        id: RequestId,
        before: f64,
        after: f64,
    },
    /// A scheduler's local search swapped one request for another.
    Swap {
        evicted: RequestId,
        admitted: RequestId,
        evicted_priority: f64,
        admitted_priority: f64,
    },
    /// The control plane decided to scale (Hold decisions are not
    /// recorded).
    Scale {
        /// Signed replica delta: `+n` scale-up, `-n` scale-down.
        delta: i64,
        /// False when a cooldown gate suppressed the decision.
        applied: bool,
        /// Active replicas before the decision was applied.
        active: u64,
        /// The policy's named term values behind the decision.
        terms: Vec<(&'static str, f64)>,
    },
    /// Meta: the engine armed a plan horizon (fast-path certificate).
    HorizonArmed {
        /// `SimTime::MAX` encodes an unbounded certificate.
        valid_until: SimTime,
        gates_static: bool,
    },
    /// Meta: an armed horizon stopped applying.
    HorizonEnded { reason: HorizonEndReason },
    /// A replica fail-stopped; its resident KV and in-flight streams are
    /// gone.
    ReplicaCrashed {
        replica: u32,
        /// Unfinished requests resident at the instant of the crash.
        lost: u64,
    },
    /// A replica's compute throughput changed (straggler window edge).
    /// `factor` is the throughput multiplier now in effect (`1.0`
    /// restores full speed).
    ReplicaDegraded { replica: u32, factor: f64 },
    /// A provisioning replica failed to boot and will never serve.
    BootFailed { replica: u32 },
    /// A replica's KV transfer link changed speed (link-fault window
    /// edge). `factor` is the bandwidth multiplier now in effect.
    LinkDegraded { replica: u32, factor: f64 },
    /// A request's in-flight state was lost to a replica crash.
    RequestLost { id: RequestId, replica: u32 },
    /// The recovery path scheduled a lost request for re-dispatch.
    RetryScheduled {
        id: RequestId,
        /// 1-based recovery attempt this schedules.
        attempt: u32,
    },
    /// A lost request exhausted its retry budget and was given up on.
    RequestAbandoned { id: RequestId, attempts: u32 },
    /// Pressure-triggered admission shed a first-attempt arrival at the
    /// dispatch barrier.
    AdmissionShed { id: RequestId },
}

impl TraceEventKind {
    /// Stable kind name, shared by the JSONL rendering and its
    /// validator.
    pub const fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Arrived { .. } => "arrived",
            TraceEventKind::Dispatch { .. } => "dispatch",
            TraceEventKind::Admitted { .. } => "admitted",
            TraceEventKind::PrefillChunk { .. } => "prefill_chunk",
            TraceEventKind::FirstToken { .. } => "first_token",
            TraceEventKind::Finished { .. } => "finished",
            TraceEventKind::Preempted { .. } => "preempted",
            TraceEventKind::Shed { .. } => "shed",
            TraceEventKind::Resumed { .. } => "resumed",
            TraceEventKind::DecodeGate { .. } => "decode_gate",
            TraceEventKind::EvictStart { .. } => "evict_start",
            TraceEventKind::EvictDone { .. } => "evict_done",
            TraceEventKind::LoadStart { .. } => "load_start",
            TraceEventKind::LoadDone { .. } => "load_done",
            TraceEventKind::Reprice { .. } => "reprice",
            TraceEventKind::Swap { .. } => "swap",
            TraceEventKind::Scale { .. } => "scale",
            TraceEventKind::HorizonArmed { .. } => "horizon_armed",
            TraceEventKind::HorizonEnded { .. } => "horizon_ended",
            TraceEventKind::ReplicaCrashed { .. } => "replica_crashed",
            TraceEventKind::ReplicaDegraded { .. } => "replica_degraded",
            TraceEventKind::BootFailed { .. } => "boot_failed",
            TraceEventKind::LinkDegraded { .. } => "link_degraded",
            TraceEventKind::RequestLost { .. } => "request_lost",
            TraceEventKind::RetryScheduled { .. } => "retry_scheduled",
            TraceEventKind::RequestAbandoned { .. } => "request_abandoned",
            TraceEventKind::AdmissionShed { .. } => "admission_shed",
        }
    }

    /// True for events describing fast-path machinery rather than
    /// serving decisions. Meta events are executor-invariant but not
    /// fast-path-invariant, so [`TraceJournal::canonical`] excludes
    /// them.
    pub const fn is_meta(&self) -> bool {
        matches!(
            self,
            TraceEventKind::HorizonArmed { .. } | TraceEventKind::HorizonEnded { .. }
        )
    }

    /// The request this event is primarily about, if any. For swaps that
    /// is the evicted side; use [`TraceEventKind::mentions`] to match
    /// either side.
    pub const fn request(&self) -> Option<RequestId> {
        match *self {
            TraceEventKind::Arrived { id, .. }
            | TraceEventKind::Dispatch { id, .. }
            | TraceEventKind::Admitted { id, .. }
            | TraceEventKind::PrefillChunk { id, .. }
            | TraceEventKind::FirstToken { id }
            | TraceEventKind::Finished { id }
            | TraceEventKind::Preempted { id, .. }
            | TraceEventKind::Shed { id }
            | TraceEventKind::Resumed { id }
            | TraceEventKind::DecodeGate { id, .. }
            | TraceEventKind::EvictStart { id, .. }
            | TraceEventKind::EvictDone { id }
            | TraceEventKind::LoadStart { id, .. }
            | TraceEventKind::LoadDone { id }
            | TraceEventKind::Reprice { id, .. }
            | TraceEventKind::RequestLost { id, .. }
            | TraceEventKind::RetryScheduled { id, .. }
            | TraceEventKind::RequestAbandoned { id, .. }
            | TraceEventKind::AdmissionShed { id } => Some(id),
            TraceEventKind::Swap { evicted, .. } => Some(evicted),
            TraceEventKind::Scale { .. }
            | TraceEventKind::HorizonArmed { .. }
            | TraceEventKind::HorizonEnded { .. }
            | TraceEventKind::ReplicaCrashed { .. }
            | TraceEventKind::ReplicaDegraded { .. }
            | TraceEventKind::BootFailed { .. }
            | TraceEventKind::LinkDegraded { .. } => None,
        }
    }

    /// True when the event involves `id` in any role.
    pub fn mentions(&self, id: RequestId) -> bool {
        match *self {
            TraceEventKind::Swap {
                evicted, admitted, ..
            } => evicted == id || admitted == id,
            ref other => other.request() == Some(id),
        }
    }

    /// Rewrites every request id through `f` (used by the cluster to map
    /// replica-local dense ids back to global workload ids).
    pub fn map_ids(&mut self, mut f: impl FnMut(RequestId) -> RequestId) {
        match self {
            TraceEventKind::Arrived { id, .. }
            | TraceEventKind::Dispatch { id, .. }
            | TraceEventKind::Admitted { id, .. }
            | TraceEventKind::PrefillChunk { id, .. }
            | TraceEventKind::FirstToken { id }
            | TraceEventKind::Finished { id }
            | TraceEventKind::Preempted { id, .. }
            | TraceEventKind::Shed { id }
            | TraceEventKind::Resumed { id }
            | TraceEventKind::DecodeGate { id, .. }
            | TraceEventKind::EvictStart { id, .. }
            | TraceEventKind::EvictDone { id }
            | TraceEventKind::LoadStart { id, .. }
            | TraceEventKind::LoadDone { id }
            | TraceEventKind::Reprice { id, .. }
            | TraceEventKind::RequestLost { id, .. }
            | TraceEventKind::RetryScheduled { id, .. }
            | TraceEventKind::RequestAbandoned { id, .. }
            | TraceEventKind::AdmissionShed { id } => *id = f(*id),
            TraceEventKind::Swap {
                evicted, admitted, ..
            } => {
                *evicted = f(*evicted);
                *admitted = f(*admitted);
            }
            TraceEventKind::Scale { .. }
            | TraceEventKind::HorizonArmed { .. }
            | TraceEventKind::HorizonEnded { .. }
            | TraceEventKind::ReplicaCrashed { .. }
            | TraceEventKind::ReplicaDegraded { .. }
            | TraceEventKind::BootFailed { .. }
            | TraceEventKind::LinkDegraded { .. } => {}
        }
    }
}

/// One journal entry: a decision stamped with when, who, and what.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the decision.
    pub time: SimTime,
    /// The emitting component.
    pub source: TraceSource,
    /// Per-source monotone sequence number. `(source, seq)` is unique,
    /// so the `(time, source, seq)` merge order is total.
    pub seq: u64,
    pub kind: TraceEventKind,
}

/// The recording handle threaded through the pipeline stages.
///
/// Disabled (the default), every call is an inlined `Option` check on a
/// null pointer-sized field — no storage, no allocation, no branches
/// beyond the check. Enabled, it buffers events in emission order for
/// one source.
#[derive(Debug, Default)]
pub struct TraceSink {
    inner: Option<Box<SinkInner>>,
}

#[derive(Debug)]
struct SinkInner {
    source: TraceSource,
    seq: u64,
    events: Vec<TraceEvent>,
    /// Per-request decode-gate state, so gate evaluations (which run
    /// every composed step) journal only *transitions*.
    gated: Vec<bool>,
}

impl TraceSink {
    /// The no-op sink.
    pub const fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// A recording sink for `source`.
    pub fn enabled(source: TraceSource) -> TraceSink {
        TraceSink {
            inner: Some(Box::new(SinkInner {
                source,
                seq: 0,
                events: Vec::new(),
                gated: Vec::new(),
            })),
        }
    }

    /// True when events are being recorded. Use to guard payload
    /// construction that would itself allocate (score vectors, term
    /// lists).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Re-labels the sink's source (no-op when disabled). The cluster
    /// uses this to assign stable replica indices, including to engines
    /// provisioned mid-run.
    pub fn set_source(&mut self, source: TraceSource) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.source = source;
        }
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, time: SimTime, kind: TraceEventKind) {
        if let Some(inner) = self.inner.as_deref_mut() {
            let seq = inner.seq;
            inner.seq += 1;
            inner.events.push(TraceEvent {
                time,
                source: inner.source,
                seq,
                kind,
            });
        }
    }

    /// Records a decode-gate evaluation, journaling only transitions
    /// (no-op when disabled). Requests start un-gated.
    #[inline]
    pub fn gate(&mut self, time: SimTime, id: RequestId, paused: bool) {
        if let Some(inner) = self.inner.as_deref_mut() {
            let idx = id.0 as usize;
            if inner.gated.len() <= idx {
                inner.gated.resize(idx + 1, false);
            }
            if inner.gated[idx] != paused {
                inner.gated[idx] = paused;
                let seq = inner.seq;
                inner.seq += 1;
                inner.events.push(TraceEvent {
                    time,
                    source: inner.source,
                    seq,
                    kind: TraceEventKind::DecodeGate { id, paused },
                });
            }
        }
    }

    /// Takes the buffered events, leaving the sink enabled and its
    /// sequence counter running.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        match self.inner.as_deref_mut() {
            Some(inner) => std::mem::take(&mut inner.events),
            None => Vec::new(),
        }
    }

    /// Consumes the sink into a single-source journal, or `None` when
    /// disabled.
    pub fn into_journal(mut self) -> Option<TraceJournal> {
        self.inner
            .take()
            .map(|inner| TraceJournal::merge(vec![inner.events]))
    }
}

/// A completed, merge-ordered event journal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceJournal {
    /// Events in `(time, source, seq)` order.
    pub events: Vec<TraceEvent>,
}

impl TraceJournal {
    /// Merges per-source event streams into the total `(time, source,
    /// seq)` order. The key is unique per event, so the result does not
    /// depend on the order of `parts` — which is what makes the merged
    /// journal executor-invariant.
    pub fn merge(parts: Vec<Vec<TraceEvent>>) -> TraceJournal {
        let mut events: Vec<TraceEvent> = parts.into_iter().flatten().collect();
        events.sort_unstable_by_key(|e| (e.time, e.source, e.seq));
        TraceJournal { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The canonical (non-meta) view: the decision record that is
    /// invariant under both executor choice and the plan-horizon fast
    /// path. Trace digests are taken over this view.
    pub fn canonical(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(|e| !e.kind.is_meta())
    }

    /// Events mentioning `id` in any role, in journal order.
    pub fn for_request(&self, id: RequestId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind.mentions(id))
    }

    /// Rewrites request ids through `f`, which receives the emitting
    /// source so per-replica id spaces can be mapped independently.
    pub fn map_ids(&mut self, mut f: impl FnMut(TraceSource, RequestId) -> RequestId) {
        for e in &mut self.events {
            let source = e.source;
            e.kind.map_ids(|id| f(source, id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(us: u64, source: TraceSource, seq: u64, id: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_micros(us),
            source,
            seq,
            kind: TraceEventKind::FirstToken { id: RequestId(id) },
        }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        sink.emit(SimTime::ZERO, TraceEventKind::Finished { id: RequestId(0) });
        sink.gate(SimTime::ZERO, RequestId(0), true);
        assert!(sink.drain().is_empty());
        assert!(sink.into_journal().is_none());
    }

    #[test]
    fn enabled_sink_stamps_source_and_sequence() {
        let mut sink = TraceSink::enabled(TraceSource::Replica(2));
        sink.emit(
            SimTime::from_micros(5),
            TraceEventKind::FirstToken { id: RequestId(1) },
        );
        sink.emit(
            SimTime::from_micros(5),
            TraceEventKind::Finished { id: RequestId(1) },
        );
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].source, TraceSource::Replica(2));
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        // Draining keeps the counter running: later events still sort
        // after earlier ones at equal timestamps.
        sink.emit(
            SimTime::from_micros(5),
            TraceEventKind::FirstToken { id: RequestId(2) },
        );
        assert_eq!(sink.drain()[0].seq, 2);
    }

    #[test]
    fn gate_records_transitions_only() {
        let mut sink = TraceSink::enabled(TraceSource::Replica(0));
        let t = SimTime::from_micros(1);
        sink.gate(t, RequestId(3), false); // initial state: no event
        sink.gate(t, RequestId(3), true); // transition
        sink.gate(t, RequestId(3), true); // steady: no event
        sink.gate(t, RequestId(3), false); // transition back
        let events = sink.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].kind,
            TraceEventKind::DecodeGate {
                id: RequestId(3),
                paused: true
            }
        );
        assert_eq!(
            events[1].kind,
            TraceEventKind::DecodeGate {
                id: RequestId(3),
                paused: false
            }
        );
    }

    #[test]
    fn merge_order_is_independent_of_part_order() {
        let a = vec![ev(10, TraceSource::Replica(0), 0, 1)];
        let b = vec![
            ev(5, TraceSource::Replica(1), 0, 2),
            ev(10, TraceSource::Replica(1), 1, 3),
        ];
        let c = vec![ev(10, TraceSource::Coordinator, 0, 4)];
        let fwd = TraceJournal::merge(vec![a.clone(), b.clone(), c.clone()]);
        let rev = TraceJournal::merge(vec![c, b, a]);
        assert_eq!(fwd, rev);
        // At t=10: coordinator before replicas, replica 0 before 1.
        let order: Vec<u64> = fwd
            .events
            .iter()
            .map(|e| e.kind.request().unwrap().0)
            .collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn canonical_filters_meta_events() {
        let mut sink = TraceSink::enabled(TraceSource::Replica(0));
        sink.emit(
            SimTime::ZERO,
            TraceEventKind::HorizonArmed {
                valid_until: SimTime::MAX,
                gates_static: true,
            },
        );
        sink.emit(
            SimTime::from_micros(1),
            TraceEventKind::FirstToken { id: RequestId(0) },
        );
        sink.emit(
            SimTime::from_micros(2),
            TraceEventKind::HorizonEnded {
                reason: HorizonEndReason::Expired,
            },
        );
        let journal = sink.into_journal().unwrap();
        assert_eq!(journal.len(), 3);
        assert_eq!(journal.canonical().count(), 1);
    }

    #[test]
    fn map_ids_rewrites_every_role() {
        let mut journal = TraceJournal::merge(vec![vec![
            TraceEvent {
                time: SimTime::ZERO,
                source: TraceSource::Replica(1),
                seq: 0,
                kind: TraceEventKind::Swap {
                    evicted: RequestId(0),
                    admitted: RequestId(1),
                    evicted_priority: 1.0,
                    admitted_priority: 2.0,
                },
            },
            ev(1, TraceSource::Replica(1), 1, 0),
        ]]);
        journal.map_ids(|source, id| {
            assert_eq!(source, TraceSource::Replica(1));
            RequestId(id.0 + 10)
        });
        assert!(journal.events[0].kind.mentions(RequestId(10)));
        assert!(journal.events[0].kind.mentions(RequestId(11)));
        assert_eq!(journal.events[1].kind.request(), Some(RequestId(10)));
    }
}
