//! determinism fixture: wall-clock reads are banned.

pub fn stamp() -> u128 {
    let t0 = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    let epoch = std::time::UNIX_EPOCH;
    let _ = (t0, wall, epoch);
    0
}
