//! determinism fixture: a justified allow suppresses the finding.

pub fn cores() -> usize {
    // audit: allow(determinism, reason = "sizing only; cannot reach an outcome byte")
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
