//! determinism fixture: unseeded randomness.

pub fn entropy() -> u64 {
    let rng = rand::thread_rng();
    let state = std::collections::hash_map::RandomState::new();
    let _ = (rng, state);
    0
}
