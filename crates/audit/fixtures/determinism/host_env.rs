//! determinism fixture: process environment and host identity.

pub fn who() -> String {
    let home = std::env::var("HOME").unwrap_or_default();
    let th = std::thread::current();
    let n = std::thread::available_parallelism();
    let _ = (th, n);
    home
}
