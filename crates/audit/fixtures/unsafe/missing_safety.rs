//! unsafe fixture: unsafe without a SAFETY comment.

pub fn read(p: *const u64) -> u64 {
    unsafe { *p }
}
