//! unsafe fixture: a SAFETY comment within range covers the site.

pub fn read(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees `p` is valid and aligned for reads.
    unsafe { *p }
}
