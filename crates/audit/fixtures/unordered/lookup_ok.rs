//! unordered fixture: lookup-only use of a hash map is fine.

use std::collections::HashMap;

pub fn hits(m: &HashMap<u64, u32>, wanted: &[u64]) -> u32 {
    let mut acc = 0;
    for k in wanted {
        if let Some(v) = m.get(k) {
            acc += *v;
        }
    }
    acc
}
