//! unordered fixture: iteration over hash-ordered collections.

use std::collections::{HashMap, HashSet};

pub struct State {
    pending: HashMap<u64, u32>,
    seen: HashSet<u64>,
}

impl State {
    pub fn sum(&self) -> u64 {
        let mut acc = 0;
        for k in self.pending.keys() {
            acc += *k;
        }
        for v in &self.seen {
            acc += *v;
        }
        acc += self.pending.values().map(|v| u64::from(*v)).sum::<u64>();
        let d: Vec<u64> = self.seen.iter().copied().collect();
        acc + d.len() as u64
    }
}
