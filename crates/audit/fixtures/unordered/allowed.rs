//! unordered fixture: an allowed drain.

use std::collections::HashSet;

pub fn clear(s: &mut HashSet<u64>) -> usize {
    let n = s.len();
    // audit: allow(unordered, reason = "drained to drop; order never observed")
    s.drain().count();
    n
}
