//! panic fixture: an allowed unwrap is excluded from the count.

pub fn checked(v: &[u64]) -> u64 {
    // audit: allow(panic, reason = "guarded by the caller's non-empty invariant")
    v.first().copied().unwrap()
}
