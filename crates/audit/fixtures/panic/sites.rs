//! panic fixture: every site class, with a cfg(test) module excluded.

pub fn pick(v: &[u64], i: usize) -> u64 {
    let first = v.first().unwrap();
    let second: u64 = v.get(1).copied().expect("fixture");
    if i > v.len() {
        panic!("out of range");
    }
    first + second + v[i]
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::pick(&[1, 2], 0);
        assert_eq!([9u64][0], 9);
    }
}
