//! annotation fixture: the grammar itself is validated.

// audit: allow(nonsense, reason = "x")
pub fn a() {}

// audit: allow(determinism, reason = "")
pub fn b() {}

// audit: allow(determinism)
pub fn c() {}

// audit: tier(quantum)
pub fn d() {}

// audit: allow(unordered, reason = "suppresses nothing here")
pub fn e() {}
