//! Typed diagnostics and the `// audit:` annotation grammar.
//!
//! Two annotation forms are recognized, both only in plain `//` line
//! comments (doc comments are documentation, not directives):
//!
//! * `// audit: tier(<deterministic|host>)` — a crate's capability tier,
//!   declared once in its crate root and cross-checked against the
//!   committed tier map in [`crate::tiers`].
//! * `// audit: allow(<pass>, reason = "...")` — suppresses diagnostics
//!   of one pass on the annotated line (a trailing comment) or on the
//!   next code line (a standalone comment). Annotations are themselves
//!   validated: unknown pass names, empty reasons, malformed grammar,
//!   and allows that suppress nothing are all errors — a stale allow is
//!   a hole in the contract.

use crate::lexer::{Tok, TokKind};

/// The audit passes. [`Pass::Annotation`] is the validator for the
/// annotation grammar itself and cannot be allowed away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// Bans wall-clock, host-environment, unseeded-randomness, and
    /// host-identity reads in the deterministic tier.
    Determinism,
    /// Flags iteration over hash-ordered collections in the
    /// deterministic tier.
    Unordered,
    /// Counts the panic surface of non-test library code against the
    /// committed baseline (a ratchet: it may only shrink).
    Panic,
    /// Requires `// SAFETY:` on every `unsafe` and `#![forbid
    /// (unsafe_code)]` on every crate without one.
    Unsafe,
    /// Validates `// audit:` annotations and tier declarations.
    Annotation,
}

impl Pass {
    /// The pass's name as written in annotations and reports.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Determinism => "determinism",
            Pass::Unordered => "unordered",
            Pass::Panic => "panic",
            Pass::Unsafe => "unsafe",
            Pass::Annotation => "annotation",
        }
    }

    /// Pass names an `allow(...)` may target.
    pub const ALLOWABLE: &'static [&'static str] = &["determinism", "unordered", "panic", "unsafe"];

    /// Parses an allowable pass name.
    pub fn from_allow_name(name: &str) -> Option<Pass> {
        match name {
            "determinism" => Some(Pass::Determinism),
            "unordered" => Some(Pass::Unordered),
            "panic" => Some(Pass::Panic),
            "unsafe" => Some(Pass::Unsafe),
            _ => None,
        }
    }
}

/// One finding, pinned to a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The pass that produced it.
    pub pass: Pass,
    /// A stable machine-readable code (`wall_clock`, `unordered_iteration`, ...).
    pub code: &'static str,
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line (0 for crate-level findings).
    pub line: u32,
    /// 1-based column (0 for crate-level findings).
    pub col: u32,
    /// Human explanation.
    pub message: String,
}

impl Diagnostic {
    /// `error[pass/code]: message` + ` --> file:line:col` rendering.
    pub fn render(&self) -> String {
        format!(
            "error[{}/{}]: {}\n  --> {}:{}:{}",
            self.pass.name(),
            self.code,
            self.message,
            self.file,
            self.line,
            self.col
        )
    }
}

/// A parsed `// audit: allow(...)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The pass it suppresses.
    pub pass: Pass,
    /// The stated justification (validated non-empty).
    pub reason: String,
    /// Line of the annotation comment.
    pub line: u32,
    /// The code line the annotation covers.
    pub target_line: u32,
}

/// A parsed `// audit: tier(...)` declaration.
#[derive(Debug, Clone)]
pub struct TierDecl {
    /// The declared tier name.
    pub tier: String,
    /// Line of the declaration.
    pub line: u32,
}

/// Everything extracted from one file's `// audit:` comments.
#[derive(Debug, Default)]
pub struct Annotations {
    /// Valid allows, in file order.
    pub allows: Vec<Allow>,
    /// Valid tier declarations, in file order.
    pub tiers: Vec<TierDecl>,
    /// Grammar violations (unknown pass, empty reason, malformed).
    pub errors: Vec<Diagnostic>,
}

/// Extracts and validates every `// audit:` annotation in a token
/// stream. `file` is used only for diagnostics.
pub fn parse_annotations(file: &str, toks: &[Tok]) -> Annotations {
    let mut out = Annotations::default();
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokKind::LineComment {
            continue;
        }
        // Plain `//` only: `///` and `//!` are documentation.
        let body = &tok.text;
        if body.starts_with("///") || body.starts_with("//!") {
            continue;
        }
        let Some(rest) = body
            .strip_prefix("//")
            .map(str::trim_start)
            .and_then(|s| s.strip_prefix("audit:"))
        else {
            continue;
        };
        let rest = rest.trim();
        let err = |code: &'static str, message: String| Diagnostic {
            pass: Pass::Annotation,
            code,
            file: file.to_string(),
            line: tok.line,
            col: tok.col,
            message,
        };
        if let Some(inner) = strip_call(rest, "tier") {
            match inner {
                Ok(name) if name == "deterministic" || name == "host" => {
                    out.tiers.push(TierDecl {
                        tier: name.to_string(),
                        line: tok.line,
                    });
                }
                Ok(name) => out.errors.push(err(
                    "unknown_tier",
                    format!("unknown tier `{name}` (expected `deterministic` or `host`)"),
                )),
                Err(()) => out.errors.push(err(
                    "malformed_annotation",
                    "malformed tier declaration: expected `tier(<name>)`".to_string(),
                )),
            }
        } else if let Some(inner) = strip_call(rest, "allow") {
            let Ok(inner) = inner else {
                out.errors.push(err(
                    "malformed_annotation",
                    "malformed allow: expected `allow(<pass>, reason = \"...\")`".to_string(),
                ));
                continue;
            };
            match parse_allow_body(inner) {
                Ok((pass_name, reason)) => match Pass::from_allow_name(pass_name) {
                    Some(pass) if !reason.trim().is_empty() => {
                        let target_line = allow_target_line(toks, i, tok.line);
                        out.allows.push(Allow {
                            pass,
                            reason: reason.to_string(),
                            line: tok.line,
                            target_line,
                        });
                    }
                    Some(_) => out.errors.push(err(
                        "empty_reason",
                        "allow reason must be non-empty: an annotation without a justification is a hole in the contract".to_string(),
                    )),
                    None => out.errors.push(err(
                        "unknown_pass",
                        format!(
                            "unknown pass `{pass_name}` (expected one of: {})",
                            Pass::ALLOWABLE.join(", ")
                        ),
                    )),
                },
                Err(msg) => out.errors.push(err("malformed_annotation", msg)),
            }
        } else {
            out.errors.push(err(
                "malformed_annotation",
                format!(
                    "unrecognized audit directive `{rest}` (expected `tier(...)` or `allow(...)`)"
                ),
            ));
        }
    }
    out
}

/// If `s` is `name( ... )`, the inner text; `Err` when the parens are
/// malformed; `None` when it is not this call at all.
fn strip_call<'a>(s: &'a str, name: &str) -> Option<Result<&'a str, ()>> {
    let rest = s.strip_prefix(name)?.trim_start();
    if !rest.starts_with('(') {
        return Some(Err(()));
    }
    match rest[1..].rfind(')') {
        Some(end) => Some(Ok(rest[1..1 + end].trim())),
        None => Some(Err(())),
    }
}

/// Parses `<pass>, reason = "..."`.
fn parse_allow_body(inner: &str) -> Result<(&str, &str), String> {
    let (pass, rest) = inner
        .split_once(',')
        .ok_or_else(|| "allow needs a reason: `allow(<pass>, reason = \"...\")`".to_string())?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("reason")
        .ok_or_else(|| format!("expected `reason = \"...\"`, found `{rest}`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('=')
        .ok_or_else(|| "expected `=` after `reason`".to_string())?
        .trim_start();
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| "reason must be a quoted string".to_string())?;
    let end = rest
        .rfind('"')
        .ok_or_else(|| "unterminated reason string".to_string())?;
    Ok((pass.trim(), &rest[..end]))
}

/// The code line an allow at token index `i` covers: its own line when
/// code precedes it there (a trailing comment), otherwise the line of
/// the next code token (a standalone comment above the statement).
fn allow_target_line(toks: &[Tok], i: usize, line: u32) -> u32 {
    let trailing = toks[..i]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .any(|t| !t.is_comment());
    if trailing {
        return line;
    }
    toks[i + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.line)
        .unwrap_or(line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn parses_trailing_and_standalone_allows() {
        let src = "let x = now(); // audit: allow(determinism, reason = \"test\")\n\
                   // audit: allow(unordered, reason = \"lookup only\")\n\
                   for k in m.keys() {}\n";
        let toks = lex(src);
        let ann = parse_annotations("f.rs", &toks);
        assert!(ann.errors.is_empty(), "{:?}", ann.errors);
        assert_eq!(ann.allows.len(), 2);
        assert_eq!(ann.allows[0].target_line, 1, "trailing covers own line");
        assert_eq!(
            ann.allows[1].target_line, 3,
            "standalone covers next code line"
        );
    }

    #[test]
    fn rejects_unknown_pass_empty_reason_and_malformed() {
        let src = "// audit: allow(nonsense, reason = \"x\")\n\
                   // audit: allow(determinism, reason = \"  \")\n\
                   // audit: allow(determinism)\n\
                   // audit: frobnicate(7)\n\
                   // audit: tier(quantum)\n";
        let ann = parse_annotations("f.rs", &lex(src));
        let codes: Vec<&str> = ann.errors.iter().map(|e| e.code).collect();
        assert_eq!(
            codes,
            vec![
                "unknown_pass",
                "empty_reason",
                "malformed_annotation",
                "malformed_annotation",
                "unknown_tier"
            ]
        );
        assert!(ann.allows.is_empty());
    }

    #[test]
    fn doc_comments_are_not_directives() {
        let src = "/// the `// audit: allow(nonsense, reason = \"x\")` grammar\n\
                   //! audit: tier(quantum)\nfn f() {}\n";
        let ann = parse_annotations("f.rs", &lex(src));
        assert!(ann.errors.is_empty());
        assert!(ann.allows.is_empty() && ann.tiers.is_empty());
    }

    #[test]
    fn tier_declarations_parse() {
        let ann = parse_annotations("f.rs", &lex("// audit: tier(deterministic)\n"));
        assert_eq!(ann.tiers.len(), 1);
        assert_eq!(ann.tiers[0].tier, "deterministic");
    }
}
