//! The four audit passes, each a pure function over one file's tokens.
//!
//! All passes are lexical: they see the token stream of
//! [`crate::lexer`], never an AST. That makes them fast, dependency-free
//! and — by design — slightly conservative heuristics whose exact
//! contract is pinned by the fixture suite in `fixtures/`. Where a
//! heuristic cannot prove innocence (e.g. a lookup-only hash map that a
//! pass still flags), the `// audit: allow(...)` grammar is the escape
//! hatch, and it demands a written reason.

use crate::diag::{Diagnostic, Pass};
use crate::lexer::{Tok, TokKind};

/// Keywords that can legitimately precede `[` without forming an index
/// expression (array literals, slice patterns, `return [..]`, ...).
const NON_INDEX_PREV: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "move", "mut", "ref", "const", "static", "break",
    "continue", "as", "where", "for", "while", "loop", "dyn", "impl", "fn", "type", "struct",
    "enum", "union", "unsafe", "pub", "use", "mod", "trait", "yield",
];

/// Methods whose call on a hash-ordered collection observes its
/// iteration order.
const ITERATING_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extract_if",
];

fn diagnostic(
    pass: Pass,
    code: &'static str,
    file: &str,
    tok: &Tok,
    message: String,
) -> Diagnostic {
    Diagnostic {
        pass,
        code,
        file: file.to_string(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// Indices of non-comment tokens, the stream every pass matches over.
pub fn code_indices(toks: &[Tok]) -> Vec<usize> {
    toks.iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect()
}

/// **Pass 1 — determinism.** Bans wall-clock reads, `std::env`,
/// unseeded randomness, and thread/host-identity reads. Deterministic
/// tier only.
pub fn determinism(file: &str, toks: &[Tok], code: &[usize]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let tok = |k: usize| &toks[code[k]];
    for k in 0..code.len() {
        let t = tok(k);
        if t.kind != TokKind::Ident {
            continue;
        }
        let path2 = |a: &str, b: &str, k: usize| {
            t.is_ident(a)
                && code.len() > k + 2
                && tok(k + 1).is_punct("::")
                && tok(k + 2).is_ident(b)
        };
        let hit: Option<(&'static str, String)> = if path2("Instant", "now", k) {
            Some((
                "wall_clock",
                "`Instant::now` reads the wall clock; deterministic-tier code must take time from the simulation clock".to_string(),
            ))
        } else if t.is_ident("SystemTime") || t.is_ident("UNIX_EPOCH") {
            Some((
                "wall_clock",
                format!("`{}` reads the wall clock; deterministic-tier code must take time from the simulation clock", t.text),
            ))
        } else if path2("std", "env", k) {
            Some((
                "host_env",
                "`std::env` reads process state; deterministic-tier behavior may only depend on explicit inputs".to_string(),
            ))
        } else if path2("thread", "current", k) || t.is_ident("ThreadId") {
            Some((
                "host_identity",
                "thread identity is host-dependent; deterministic-tier decisions may not observe which thread runs them".to_string(),
            ))
        } else if t.is_ident("available_parallelism") {
            Some((
                "host_identity",
                "`available_parallelism` is a host property; deterministic-tier decisions may not depend on core count".to_string(),
            ))
        } else if t.is_ident("thread_rng")
            || t.is_ident("from_entropy")
            || t.is_ident("OsRng")
            || t.is_ident("getrandom")
            || t.is_ident("RandomState")
        {
            Some((
                "unseeded_rng",
                format!("`{}` draws host entropy; deterministic-tier randomness must come from the seeded simulation RNG", t.text),
            ))
        } else {
            None
        };
        if let Some((codee, message)) = hit {
            out.push(diagnostic(Pass::Determinism, codee, file, t, message));
        }
    }
    out
}

/// **Pass 2 — unordered iteration.** Tracks bindings and fields whose
/// declared type mentions `HashMap`/`HashSet` and flags any operation
/// that observes their iteration order. Lookup-only use (`get`,
/// `contains`, `insert`, `remove`, `entry`, `len`) is fine.
pub fn unordered(file: &str, toks: &[Tok], code: &[usize]) -> Vec<Diagnostic> {
    let tok = |k: usize| &toks[code[k]];
    // Collect hash-typed names: `name: ... HashMap<..>` declarations
    // (fields, params, typed lets) and `let [mut] name = HashMap::...`.
    let mut names: Vec<String> = Vec::new();
    for k in 0..code.len() {
        let t = tok(k);
        if t.kind != TokKind::Ident {
            continue;
        }
        if tok(k).is_ident("let") {
            // let [mut] NAME ... = ... Hash{Map,Set} ... ;
            let mut j = k + 1;
            if j < code.len() && tok(j).is_ident("mut") {
                j += 1;
            }
            if j >= code.len() || tok(j).kind != TokKind::Ident {
                continue;
            }
            let name = tok(j).text.clone();
            for m in j + 1..(j + 40).min(code.len()) {
                let tm = tok(m);
                if tm.is_punct(";") {
                    break;
                }
                if tm.is_ident("HashMap") || tm.is_ident("HashSet") {
                    names.push(name.clone());
                    break;
                }
            }
        } else if k + 1 < code.len() && tok(k + 1).is_punct(":") {
            // NAME : <type tokens> — scan the type until a delimiter.
            let name = t.text.clone();
            for m in k + 2..(k + 14).min(code.len()) {
                let tm = tok(m);
                if tm.kind == TokKind::Punct
                    && matches!(tm.text.as_str(), "," | ";" | "{" | "}" | ")" | "=")
                {
                    break;
                }
                if tm.is_ident("HashMap") || tm.is_ident("HashSet") {
                    names.push(name.clone());
                    break;
                }
            }
        }
    }
    names.sort();
    names.dedup();
    let is_hash_name = |t: &Tok| t.kind == TokKind::Ident && names.binary_search(&t.text).is_ok();

    let mut out = Vec::new();
    for k in 0..code.len() {
        let t = tok(k);
        // `name.iter()` / `.keys()` / `.drain(..)` / ...
        if is_hash_name(t)
            && k + 2 < code.len()
            && tok(k + 1).is_punct(".")
            && tok(k + 2).kind == TokKind::Ident
            && ITERATING_METHODS.contains(&tok(k + 2).text.as_str())
        {
            out.push(diagnostic(
                Pass::Unordered,
                "unordered_iteration",
                file,
                t,
                format!(
                    "`{}.{}` observes hash order; use a BTreeMap/BTreeSet/sorted vec, or prove the order is harmless with an allow",
                    t.text,
                    tok(k + 2).text
                ),
            ));
        }
        // `for pat in <expr containing a bare hash name> {`
        if t.is_ident("for") {
            let Some(in_k) = (k + 1..(k + 24).min(code.len())).find(|&m| tok(m).is_ident("in"))
            else {
                continue;
            };
            for m in in_k + 1..(in_k + 24).min(code.len()) {
                let tm = tok(m);
                if tm.is_punct("{") || tm.is_punct(";") {
                    break;
                }
                // A bare mention not followed by `.` (method chains are
                // judged by the rule above on their own merits).
                if is_hash_name(tm) && !(m + 1 < code.len() && tok(m + 1).is_punct(".")) {
                    out.push(diagnostic(
                        Pass::Unordered,
                        "unordered_iteration",
                        file,
                        tm,
                        format!(
                            "`for` over `{}` observes hash order; use a BTreeMap/BTreeSet/sorted vec, or prove the order is harmless with an allow",
                            tm.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// **Pass 3 — panic surface.** Emits one site per `.unwrap()`,
/// `.expect(`, panic-family macro, and index expression in non-test
/// library code. The caller aggregates sites into the per-crate ratchet
/// counts; fixtures compare them directly.
pub fn panic_sites(file: &str, toks: &[Tok], code: &[usize]) -> Vec<Diagnostic> {
    let tok = |k: usize| &toks[code[k]];
    let excluded = cfg_test_spans(toks, code);
    let mut out = Vec::new();
    for k in 0..code.len() {
        if excluded.iter().any(|&(a, b)| k >= a && k <= b) {
            continue;
        }
        let t = tok(k);
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && k >= 1
            && tok(k - 1).is_punct(".")
            && k + 1 < code.len()
            && tok(k + 1).is_punct("(")
        {
            out.push(diagnostic(
                Pass::Panic,
                if t.text == "unwrap" {
                    "unwrap"
                } else {
                    "expect"
                },
                file,
                t,
                format!("`.{}()` can panic", t.text),
            ));
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && k + 1 < code.len()
            && tok(k + 1).is_punct("!")
        {
            out.push(diagnostic(
                Pass::Panic,
                "panic_macro",
                file,
                t,
                format!("`{}!` is an explicit panic", t.text),
            ));
        }
        if t.is_punct("[") && k >= 1 {
            let p = tok(k - 1);
            let indexes = match p.kind {
                TokKind::Ident => !NON_INDEX_PREV.contains(&p.text.as_str()),
                TokKind::Punct => p.text == ")" || p.text == "]",
                _ => false,
            };
            if indexes {
                out.push(diagnostic(
                    Pass::Panic,
                    "index",
                    file,
                    t,
                    "index expressions panic out of bounds".to_string(),
                ));
            }
        }
    }
    out
}

/// Spans (in code-index space) of `#[cfg(test)]`-gated items — the
/// in-file unit-test modules the panic ratchet must not count.
fn cfg_test_spans(toks: &[Tok], code: &[usize]) -> Vec<(usize, usize)> {
    let tok = |k: usize| &toks[code[k]];
    let mut spans = Vec::new();
    let mut k = 0;
    while k + 4 < code.len() {
        // `# [ cfg ( ... test ... ) ]`
        if tok(k).is_punct("#") && tok(k + 1).is_punct("[") && tok(k + 2).is_ident("cfg") {
            let mut depth = 0usize;
            let mut saw_test = false;
            let mut m = k + 3;
            while m < code.len() {
                let tm = tok(m);
                if tm.is_punct("(") {
                    depth += 1;
                } else if tm.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if tm.is_ident("test") {
                    saw_test = true;
                }
                m += 1;
            }
            // Past `) ]`: skip any further attributes, then the item.
            let mut item = m + 2;
            while item + 1 < code.len() && tok(item).is_punct("#") && tok(item + 1).is_punct("[") {
                let mut bd = 0usize;
                while item < code.len() {
                    if tok(item).is_punct("[") {
                        bd += 1;
                    } else if tok(item).is_punct("]") {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    }
                    item += 1;
                }
                item += 1;
            }
            if saw_test {
                // The gated item runs to its matching close brace (or
                // `;` for braceless items).
                let mut bd = 0usize;
                let mut end = item;
                while end < code.len() {
                    let te = tok(end);
                    if te.is_punct("{") {
                        bd += 1;
                    } else if te.is_punct("}") {
                        bd -= 1;
                        if bd == 0 {
                            break;
                        }
                    } else if te.is_punct(";") && bd == 0 {
                        break;
                    }
                    end += 1;
                }
                spans.push((k, end.min(code.len().saturating_sub(1))));
                k = end + 1;
                continue;
            }
            k = m + 1;
            continue;
        }
        k += 1;
    }
    spans
}

/// **Pass 4 — unsafe audit.** Every `unsafe` token must have a
/// `// SAFETY:` comment on its own line or within the eight lines above
/// it. The companion crate-level rule (`#![forbid(unsafe_code)]` on
/// crates with no unsafe at all) lives in the engine, which sees whole
/// crates.
pub fn unsafe_audit(file: &str, toks: &[Tok]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let covered = toks[..i].iter().any(|c| {
            c.is_comment() && c.text.contains("SAFETY:") && c.line <= t.line && c.line + 8 >= t.line
        });
        if !covered {
            out.push(diagnostic(
                Pass::Unsafe,
                "missing_safety_comment",
                file,
                t,
                "`unsafe` without an adjacent `// SAFETY:` comment stating the aliasing/lifetime argument".to_string(),
            ));
        }
    }
    out
}

/// Whether a token stream contains any (non-comment, non-literal)
/// `unsafe`.
pub fn has_unsafe(toks: &[Tok]) -> bool {
    toks.iter().any(|t| t.is_ident("unsafe"))
}

/// Whether a crate root declares `#![forbid(unsafe_code)]`.
pub fn has_forbid_unsafe(toks: &[Tok], code: &[usize]) -> bool {
    let tok = |k: usize| &toks[code[k]];
    (0..code.len().saturating_sub(6)).any(|k| {
        tok(k).is_punct("#")
            && tok(k + 1).is_punct("!")
            && tok(k + 2).is_punct("[")
            && tok(k + 3).is_ident("forbid")
            && tok(k + 4).is_punct("(")
            && tok(k + 5).is_ident("unsafe_code")
            && tok(k + 6).is_punct(")")
    })
}
