//! A hand-rolled Rust lexer: just enough token structure for the audit
//! passes, in the house style of `scenario::json` (byte scanner, no
//! `syn`, no regex).
//!
//! The passes only need to distinguish identifiers, literals, comments,
//! and punctuation, and to know where every token starts — so that is
//! all this lexer produces. Strings (including raw and byte strings),
//! char literals, lifetimes, and nested block comments are lexed
//! precisely so that an `unsafe` inside a string or a `HashMap` inside a
//! doc comment can never confuse a pass. `::` is the one multi-byte
//! punctuator that is coalesced, because the determinism pass matches
//! paths like `Instant::now`.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unsafe`, `HashMap`, `for`, ...).
    Ident,
    /// A numeric literal, including suffixes (`1_000u64`, `0.5`, `0xff`).
    Num,
    /// A string literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation byte, except `::` which is one token.
    Punct,
    /// A `//` comment, doc or plain, text including the slashes.
    LineComment,
    /// A `/* ... */` comment (nesting handled), text including markers.
    BlockComment,
}

/// One lexeme with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The lexeme kind.
    pub kind: TokKind,
    /// The raw source text of the lexeme.
    pub text: String,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the first byte.
    pub col: u32,
}

impl Tok {
    /// True for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// True when this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True when this is a punctuator with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn text_since(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.b[start..self.pos]).into_owned()
    }

    fn line_comment(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.bump();
        }
        self.text_since(start)
    }

    fn block_comment(&mut self) -> String {
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: tolerate, we are a linter
            }
        }
        self.text_since(start)
    }

    /// Consumes a `"..."` body (opening quote already consumed by the
    /// caller when `raw_hashes` is `None`; raw strings skip escapes).
    fn string_body(&mut self, raw_hashes: Option<usize>) {
        match raw_hashes {
            None => {
                while let Some(c) = self.bump() {
                    match c {
                        b'"' => return,
                        b'\\' => {
                            self.bump();
                        }
                        _ => {}
                    }
                }
            }
            Some(hashes) => {
                while let Some(c) = self.bump() {
                    if c == b'"' {
                        let mut ok = true;
                        for i in 0..hashes {
                            if self.peek_at(i) != Some(b'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            for _ in 0..hashes {
                                self.bump();
                            }
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Lexes after a `'`: a lifetime, or a char literal.
    fn lifetime_or_char(&mut self) {
        // `'a'` is a char; `'a` / `'static` / `'_` are lifetimes. The
        // disambiguator: an ident char followed by a closing quote is a
        // char literal, otherwise a run of ident chars is a lifetime.
        let first = self.peek();
        if first.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            && self.peek_at(1) != Some(b'\'')
        {
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            return; // lifetime
        }
        // Char literal: consume to the closing quote, honoring escapes.
        loop {
            match self.bump() {
                None | Some(b'\'') => return,
                Some(b'\\') => {
                    self.bump();
                }
                Some(_) => {}
            }
        }
    }

    fn number(&mut self) {
        loop {
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.bump();
            }
            // Exponent sign: `1e-3` / `2.5E+7`.
            let prev = self.b[self.pos - 1];
            if (prev == b'e' || prev == b'E')
                && matches!(self.peek(), Some(b'+' | b'-'))
                && self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
            {
                self.bump();
                continue;
            }
            // Fraction: `1.5`, but not the range `1..5` or a method `1.max`.
            if self.peek() == Some(b'.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
                continue;
            }
            return;
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexes one source file. Never fails: malformed trailing constructs are
/// tolerated (this is a linter, not a compiler front end), but every
/// well-formed Rust file produces a faithful token stream.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        b: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(c) = lx.peek() {
        if c.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let (line, col, start) = (lx.line, lx.col, lx.pos);
        let kind = match c {
            b'/' if lx.peek_at(1) == Some(b'/') => {
                lx.line_comment();
                TokKind::LineComment
            }
            b'/' if lx.peek_at(1) == Some(b'*') => {
                lx.block_comment();
                TokKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.string_body(None);
                TokKind::Str
            }
            b'r' | b'b' if raw_string_hashes(&lx).is_some() => {
                let hashes = raw_string_hashes(&lx).expect("checked");
                // Consume the prefix (`r`, `br`), the hashes, the quote.
                while lx.peek() != Some(b'"') {
                    lx.bump();
                }
                lx.bump();
                lx.string_body(Some(hashes));
                TokKind::Str
            }
            b'b' if lx.peek_at(1) == Some(b'"') => {
                lx.bump();
                lx.bump();
                lx.string_body(None);
                TokKind::Str
            }
            b'b' if lx.peek_at(1) == Some(b'\'') => {
                lx.bump();
                lx.bump();
                lx.lifetime_or_char();
                TokKind::Char
            }
            b'\'' => {
                lx.bump();
                let before = lx.pos;
                lx.lifetime_or_char();
                // Lifetimes never contain a closing quote.
                if lx.b[before..lx.pos].contains(&b'\'') {
                    TokKind::Char
                } else {
                    TokKind::Lifetime
                }
            }
            c if is_ident_start(c) => {
                while lx.peek().is_some_and(is_ident_continue) {
                    lx.bump();
                }
                TokKind::Ident
            }
            c if c.is_ascii_digit() => {
                lx.bump();
                lx.number();
                TokKind::Num
            }
            b':' if lx.peek_at(1) == Some(b':') => {
                lx.bump();
                lx.bump();
                TokKind::Punct
            }
            _ => {
                lx.bump();
                TokKind::Punct
            }
        };
        toks.push(Tok {
            kind,
            text: lx.text_since(start),
            line,
            col,
        });
    }
    toks
}

/// If the lexer sits on a raw-string prefix (`r"`, `r#`, `br#`, ...),
/// the number of hashes; `None` otherwise.
fn raw_string_hashes(lx: &Lexer) -> Option<usize> {
    let mut i = 0;
    if lx.peek_at(i) == Some(b'b') {
        i += 1;
    }
    if lx.peek_at(i) != Some(b'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while lx.peek_at(i + hashes) == Some(b'#') {
        hashes += 1;
    }
    if lx.peek_at(i + hashes) == Some(b'"') {
        Some(hashes)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_idents_paths_and_positions() {
        let toks = lex("let x = Instant::now();\nmap.keys()");
        assert!(toks[3].is_ident("Instant"));
        assert!(toks[4].is_punct("::"));
        assert!(toks[5].is_ident("now"));
        assert_eq!((toks[3].line, toks[3].col), (1, 9));
        let keys = toks.iter().find(|t| t.is_ident("keys")).expect("keys");
        assert_eq!(keys.line, 2);
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
// unsafe in a line comment
/* unsafe /* nested */ still comment */
let a = "unsafe { }";
let b = r#"HashMap "quoted" unsafe"#;
let c = 'u';
let lt: &'static str = "x";
"##;
        let toks = lex(src);
        let unsafe_code_tokens = toks
            .iter()
            .filter(|t| !t.is_comment() && t.kind != TokKind::Str && t.text.contains("unsafe"))
            .count();
        assert_eq!(unsafe_code_tokens, 0);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            3,
            "two strings plus one raw string"
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'u'"));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = kinds("for i in 0..n { x[i] = 1.5e-3; y = 1.max(2); }");
        assert!(toks.contains(&(TokKind::Num, "0".to_string())));
        assert!(toks.contains(&(TokKind::Num, "1.5e-3".to_string())));
        assert!(toks.contains(&(TokKind::Num, "1".to_string())));
        assert!(toks.contains(&(TokKind::Ident, "max".to_string())));
    }

    #[test]
    fn byte_and_escaped_char_literals() {
        let toks = lex(r#"let nl = b'\n'; let q = '\''; let bs = b"x";"#);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }
}
