//! Machine-readable report emission and the panic-surface baseline.
//!
//! The report (`tokenflow-audit/v1`) is what CI schema-validates; the
//! baseline (`tokenflow-audit-baseline/v1`) is the committed ratchet.
//! Both are emitted with a hand-rolled writer in the canonical style of
//! `scenario::json` — two-space indent, sorted-by-construction keys —
//! so a byte-for-byte stable artifact falls out of a stable audit.

use std::collections::BTreeMap;

use crate::AuditOutcome;

/// Renders the full audit report as canonical JSON.
pub fn report_json(outcome: &AuditOutcome, baseline: &BTreeMap<String, u64>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tokenflow-audit/v1\",\n");
    let clean = if outcome.findings.is_empty() {
        "true"
    } else {
        "false"
    };
    push_kv(&mut s, 2, "clean", clean, true);
    push_kv(
        &mut s,
        2,
        "files_scanned",
        &outcome.files_scanned.to_string(),
        true,
    );
    s.push_str("  \"crates\": [\n");
    for (i, c) in outcome.crates.iter().enumerate() {
        s.push_str("    {\n");
        push_str_kv(&mut s, 6, "name", c.name, true);
        push_str_kv(&mut s, 6, "tier", c.tier.name(), true);
        push_kv(&mut s, 6, "files", &c.files.to_string(), true);
        push_kv(&mut s, 6, "panic_surface", &c.panic_count.to_string(), true);
        let budget = baseline.get(c.name).copied();
        match budget {
            Some(b) => push_kv(&mut s, 6, "panic_baseline", &b.to_string(), false),
            None => push_kv(&mut s, 6, "panic_baseline", "null", false),
        }
        s.push_str(if i + 1 < outcome.crates.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"allows\": [\n");
    for (i, (file, a)) in outcome.allows.iter().enumerate() {
        s.push_str("    {\n");
        push_str_kv(&mut s, 6, "file", file, true);
        push_kv(&mut s, 6, "line", &a.line.to_string(), true);
        push_str_kv(&mut s, 6, "pass", a.pass.name(), true);
        push_str_kv(&mut s, 6, "reason", &a.reason, false);
        s.push_str(if i + 1 < outcome.allows.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"findings\": [\n");
    for (i, d) in outcome.findings.iter().enumerate() {
        s.push_str("    {\n");
        push_str_kv(&mut s, 6, "pass", d.pass.name(), true);
        push_str_kv(&mut s, 6, "code", d.code, true);
        push_str_kv(&mut s, 6, "file", &d.file, true);
        push_kv(&mut s, 6, "line", &d.line.to_string(), true);
        push_kv(&mut s, 6, "col", &d.col.to_string(), true);
        push_str_kv(&mut s, 6, "message", &d.message, false);
        s.push_str(if i + 1 < outcome.findings.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Renders the committed baseline file.
pub fn baseline_json(counts: &BTreeMap<String, u64>) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"tokenflow-audit-baseline/v1\",\n");
    s.push_str("  \"panic_surface\": {\n");
    for (i, (name, count)) in counts.iter().enumerate() {
        s.push_str("    ");
        write_str(&mut s, name);
        s.push_str(": ");
        s.push_str(&count.to_string());
        s.push_str(if i + 1 < counts.len() { ",\n" } else { "\n" });
    }
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

/// Parses a baseline file. This is a purpose-built reader for the flat
/// `"panic_surface": { "name": count, ... }` shape `baseline_json`
/// emits — the audit crate deliberately has zero dependencies, and the
/// full `scenario::json` parser would be one.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, u64>, String> {
    if !text.contains("\"tokenflow-audit-baseline/v1\"") {
        return Err("baseline missing schema tokenflow-audit-baseline/v1".to_string());
    }
    let start = text
        .find("\"panic_surface\"")
        .ok_or("baseline missing panic_surface")?;
    let body = &text[start..];
    let open = body.find('{').ok_or("panic_surface is not an object")?;
    let close = body[open..]
        .find('}')
        .ok_or("unterminated panic_surface object")?;
    let inner = &body[open + 1..open + close];
    let mut counts = BTreeMap::new();
    for entry in inner.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once(':')
            .ok_or_else(|| format!("malformed baseline entry `{entry}`"))?;
        let key = key.trim();
        let key = key
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("baseline key `{key}` is not a string"))?;
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("baseline count for `{key}` is not a non-negative integer"))?;
        counts.insert(key.to_string(), value);
    }
    Ok(counts)
}

fn push_kv(s: &mut String, indent: usize, key: &str, raw: &str, comma: bool) {
    for _ in 0..indent {
        s.push(' ');
    }
    write_str(s, key);
    s.push_str(": ");
    s.push_str(raw);
    s.push_str(if comma { ",\n" } else { "\n" });
}

fn push_str_kv(s: &mut String, indent: usize, key: &str, value: &str, comma: bool) {
    for _ in 0..indent {
        s.push(' ');
    }
    write_str(s, key);
    s.push_str(": ");
    write_str(s, value);
    s.push_str(if comma { ",\n" } else { "\n" });
}

/// JSON string escaping, in the style of `scenario::json::write_str`.
fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_round_trips() {
        let mut counts = BTreeMap::new();
        counts.insert("core".to_string(), 12u64);
        counts.insert("kv".to_string(), 0u64);
        let text = baseline_json(&counts);
        assert_eq!(parse_baseline(&text).unwrap(), counts);
    }

    #[test]
    fn baseline_rejects_wrong_schema() {
        assert!(parse_baseline("{\"schema\": \"other/v1\"}").is_err());
    }

    #[test]
    fn report_is_valid_shape_for_empty_outcome() {
        let outcome = AuditOutcome::default();
        let text = report_json(&outcome, &BTreeMap::new());
        assert!(text.contains("\"schema\": \"tokenflow-audit/v1\""));
        assert!(text.contains("\"clean\": true"));
    }
}
