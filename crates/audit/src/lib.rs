//! `audit` — workspace static analysis for the determinism contract.
//!
//! Everything this repository claims — executor byte-identity under
//! faults, pinned golden digests, zero-alloc fast-path steps, trace
//! merge-order invariance — rests on a determinism contract that the
//! dynamic suites can only *sample*: a property test catches an
//! unordered iteration or a stray wall-clock read only when some
//! scheduler or plan happens to tickle it. This crate enforces the
//! contract at the source level instead, so the hazard *cannot be
//! written*:
//!
//! 1. **determinism** — bans wall-clock (`Instant::now`, `SystemTime`),
//!    `std::env`, unseeded randomness, and thread/host-identity reads
//!    in the deterministic tier.
//! 2. **unordered** — flags iteration over `HashMap`/`HashSet`-typed
//!    bindings and fields in the deterministic tier (lookup-only use is
//!    fine; iteration needs a sorted structure or a justified allow).
//! 3. **panic** — counts `unwrap`/`expect`/panic-macros/index
//!    expressions in non-test library code against the committed
//!    `audit_baseline.json`, a ratchet that may only shrink.
//! 4. **unsafe** — every `unsafe` must carry a `// SAFETY:` comment,
//!    and every crate with no unsafe at all must
//!    `#![forbid(unsafe_code)]`.
//!
//! The tool is self-contained (hand-rolled lexer in the house style of
//! `scenario::json`; no `syn`, no dependencies) and exposes a library
//! surface so the fixture self-tests and the live-workspace test can
//! drive the exact code path the `cargo run -p audit` binary uses.
//! See DESIGN.md §8 for the tier map, the pass taxonomy, the annotation
//! grammar, and the baseline-ratchet policy.

// audit: tier(host)
#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod passes;
pub mod report;
pub mod tiers;

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use diag::{Allow, Annotations, Diagnostic, Pass};
use tiers::{CrateSpec, Scope, Tier, WORKSPACE};

/// Everything the audit learned about one file.
#[derive(Debug, Default)]
pub struct FileAudit {
    /// Findings after allow suppression, including annotation errors.
    pub diagnostics: Vec<Diagnostic>,
    /// Panic-surface sites after allow suppression (aggregated into the
    /// ratchet by the workspace engine; compared directly by fixtures).
    pub panic_sites: Vec<Diagnostic>,
    /// Valid allows (with their reasons), for the report.
    pub allows: Vec<Allow>,
    /// Tier declarations found in the file.
    pub tier_decls: Vec<diag::TierDecl>,
    /// Whether the file contains `unsafe` code.
    pub has_unsafe: bool,
    /// Whether the file declares `#![forbid(unsafe_code)]`.
    pub has_forbid: bool,
}

/// Audits one file's source text. This is the single code path shared
/// by the workspace engine, the fixture self-tests, and the binary.
pub fn audit_source(rel: &str, text: &str, tier: Tier, scope: Scope) -> FileAudit {
    let toks = lexer::lex(text);
    let code = passes::code_indices(&toks);
    let Annotations {
        allows,
        tiers: tier_decls,
        errors: mut annotation_errors,
    } = diag::parse_annotations(rel, &toks);

    let mut diagnostics = Vec::new();
    let mut panic_sites = Vec::new();
    if scope == Scope::Lib && tier == Tier::Deterministic {
        diagnostics.extend(passes::determinism(rel, &toks, &code));
        diagnostics.extend(passes::unordered(rel, &toks, &code));
    }
    if scope == Scope::Lib {
        panic_sites = passes::panic_sites(rel, &toks, &code);
    }
    diagnostics.extend(passes::unsafe_audit(rel, &toks));

    // Apply allows: each must suppress at least one finding, or it is
    // itself a finding — stale annotations are holes in the contract.
    for allow in &allows {
        let matches = |d: &Diagnostic| d.pass == allow.pass && d.line == allow.target_line;
        let before = diagnostics.len() + panic_sites.len();
        diagnostics.retain(|d| !matches(d));
        panic_sites.retain(|d| !matches(d));
        if diagnostics.len() + panic_sites.len() == before {
            annotation_errors.push(Diagnostic {
                pass: Pass::Annotation,
                code: "unused_allow",
                file: rel.to_string(),
                line: allow.line,
                col: 1,
                message: format!(
                    "allow({}) suppresses nothing on line {}; remove the stale annotation",
                    allow.pass.name(),
                    allow.target_line
                ),
            });
        }
    }
    diagnostics.extend(annotation_errors);

    FileAudit {
        has_unsafe: passes::has_unsafe(&toks),
        has_forbid: passes::has_forbid_unsafe(&toks, &code),
        diagnostics,
        panic_sites,
        allows,
        tier_decls,
    }
}

/// One crate's row in the workspace report.
#[derive(Debug)]
pub struct CrateReport {
    /// Short crate name (tier-map key).
    pub name: &'static str,
    /// The crate's declared tier.
    pub tier: Tier,
    /// Files scanned.
    pub files: usize,
    /// Panic-surface site count over non-test library code.
    pub panic_count: u64,
}

/// The whole-workspace audit result.
#[derive(Debug, Default)]
pub struct AuditOutcome {
    /// All findings, in (file, line, col) order.
    pub findings: Vec<Diagnostic>,
    /// Per-crate summary rows, in tier-map order.
    pub crates: Vec<CrateReport>,
    /// Every allow in the workspace, with its file.
    pub allows: Vec<(String, Allow)>,
    /// Total files scanned.
    pub files_scanned: usize,
}

impl AuditOutcome {
    /// Per-crate panic counts, the ratchet's current side.
    pub fn panic_counts(&self) -> BTreeMap<String, u64> {
        self.crates
            .iter()
            .map(|c| (c.name.to_string(), c.panic_count))
            .collect()
    }
}

/// Runs the four passes over every crate in the tier map.
pub fn run_audit(root: &Path) -> io::Result<AuditOutcome> {
    let mut outcome = AuditOutcome::default();
    for spec in WORKSPACE {
        let row = audit_crate(root, spec, &mut outcome)?;
        outcome.crates.push(row);
    }
    outcome
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(outcome)
}

fn audit_crate(
    root: &Path,
    spec: &CrateSpec,
    outcome: &mut AuditOutcome,
) -> io::Result<CrateReport> {
    let files = tiers::collect_files(root, spec)?;
    let root_rel = if spec.dir == "." {
        "src/lib.rs".to_string()
    } else {
        format!("{}/src/lib.rs", spec.dir)
    };
    let mut row = CrateReport {
        name: spec.name,
        tier: spec.tier,
        files: files.len(),
        panic_count: 0,
    };
    let mut lib_has_unsafe = false;
    let mut root_has_forbid = false;
    let mut root_file_seen = false;
    for file in &files {
        let text = fs::read_to_string(&file.abs)?;
        let mut audit = audit_source(&file.rel, &text, spec.tier, file.scope);
        outcome.findings.append(&mut audit.diagnostics);
        if file.scope == Scope::Lib {
            row.panic_count += audit.panic_sites.len() as u64;
            lib_has_unsafe |= audit.has_unsafe;
        }
        for allow in audit.allows.drain(..) {
            outcome.allows.push((file.rel.clone(), allow));
        }
        if file.rel == root_rel {
            root_file_seen = true;
            root_has_forbid = audit.has_forbid;
            check_crate_root(spec, &file.rel, &audit, outcome);
        } else {
            for decl in &audit.tier_decls {
                outcome.findings.push(Diagnostic {
                    pass: Pass::Annotation,
                    code: "misplaced_tier",
                    file: file.rel.clone(),
                    line: decl.line,
                    col: 1,
                    message: "tier declarations belong in the crate root (src/lib.rs)".to_string(),
                });
            }
        }
    }
    outcome.files_scanned += files.len();
    if !root_file_seen {
        outcome.findings.push(Diagnostic {
            pass: Pass::Annotation,
            code: "missing_tier",
            file: root_rel,
            line: 0,
            col: 0,
            message: format!(
                "crate `{}` has no src/lib.rs to declare its tier in",
                spec.name
            ),
        });
    } else if !lib_has_unsafe && !root_has_forbid {
        // The forbid rule needs the whole crate: a crate whose library
        // code has no unsafe must forbid it at the root. (Test, bench,
        // and example targets are separate crate roots and do not count
        // against the library's forbid.)
        outcome.findings.push(Diagnostic {
            pass: Pass::Unsafe,
            code: "missing_forbid",
            file: root_rel,
            line: 0,
            col: 0,
            message: format!(
                "crate `{}` has no unsafe code but does not declare `#![forbid(unsafe_code)]` in its crate root",
                spec.name
            ),
        });
    }
    Ok(row)
}

/// Crate-root checks: the tier declaration must exist and match the
/// committed map; crates with no unsafe library code must forbid it.
fn check_crate_root(spec: &CrateSpec, rel: &str, audit: &FileAudit, outcome: &mut AuditOutcome) {
    match audit.tier_decls.as_slice() {
        [] => outcome.findings.push(Diagnostic {
            pass: Pass::Annotation,
            code: "missing_tier",
            file: rel.to_string(),
            line: 0,
            col: 0,
            message: format!(
                "crate `{}` must declare `// audit: tier({})` in its crate root",
                spec.name,
                spec.tier.name()
            ),
        }),
        [decl] if decl.tier != spec.tier.name() => outcome.findings.push(Diagnostic {
            pass: Pass::Annotation,
            code: "tier_mismatch",
            file: rel.to_string(),
            line: decl.line,
            col: 1,
            message: format!(
                "crate `{}` declares tier `{}` but the committed tier map says `{}`",
                spec.name,
                decl.tier,
                spec.tier.name()
            ),
        }),
        [_] => {}
        more => outcome.findings.push(Diagnostic {
            pass: Pass::Annotation,
            code: "duplicate_tier",
            file: rel.to_string(),
            line: more[1].line,
            col: 1,
            message: format!("crate `{}` declares its tier more than once", spec.name),
        }),
    }
}

/// Compares current panic counts against the committed baseline,
/// producing ratchet findings for any growth (or any crate missing from
/// the baseline). Shrinkage is legal — re-pin with `--write-baseline`.
pub fn ratchet_findings(
    outcome: &AuditOutcome,
    baseline: &BTreeMap<String, u64>,
) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    for row in &outcome.crates {
        match baseline.get(row.name) {
            Some(&allowed) if row.panic_count <= allowed => {}
            Some(&allowed) => findings.push(Diagnostic {
                pass: Pass::Panic,
                code: "ratchet_regression",
                file: format!("{} (crate)", row.name),
                line: 0,
                col: 0,
                message: format!(
                    "panic surface of `{}` grew: {} sites > baseline {} — shrink it, or justify specific sites with `// audit: allow(panic, ...)`",
                    row.name, row.panic_count, allowed
                ),
            }),
            None => findings.push(Diagnostic {
                pass: Pass::Panic,
                code: "missing_baseline",
                file: format!("{} (crate)", row.name),
                line: 0,
                col: 0,
                message: format!(
                    "crate `{}` has no panic-surface baseline; run `cargo run -p audit -- --write-baseline`",
                    row.name
                ),
            }),
        }
    }
    findings
}
