//! The committed per-crate capability tier map.
//!
//! Every workspace crate is either **deterministic** — it may only
//! depend on the seeded simulation clock/RNG and must be byte-stable
//! across runs, hosts, and executors — or **host** — it is allowed to
//! touch wall clock, environment, and host identity because it sits
//! outside the reproducibility boundary (benchmark timing, the CLI
//! process surface, and this auditor itself).
//!
//! The map here is the contract of record. Each crate additionally
//! declares its own tier in its crate root (`// audit: tier(...)`), and
//! the audit cross-checks the two: a crate silently moving across the
//! boundary is a finding, not a drift. The `vendor/` stand-ins are
//! outside the map — they are pinned third-party substitutes, not
//! grown code.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A crate's capability tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Seeded-simulation code: no wall clock, no env, no host identity,
    /// no hash-ordered iteration.
    Deterministic,
    /// Process-boundary code: timing, CLI, filesystem, this tool.
    Host,
}

impl Tier {
    /// The tier's name as written in declarations and reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Deterministic => "deterministic",
            Tier::Host => "host",
        }
    }
}

/// One workspace crate: its short name, directory, and tier.
#[derive(Debug, Clone, Copy)]
pub struct CrateSpec {
    /// Short name used in reports and the panic baseline.
    pub name: &'static str,
    /// Directory relative to the workspace root.
    pub dir: &'static str,
    /// Declared capability tier.
    pub tier: Tier,
}

/// The committed tier map: every workspace crate, vendor excluded.
pub const WORKSPACE: &[CrateSpec] = &[
    CrateSpec {
        name: "sim",
        dir: "crates/sim",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "model",
        dir: "crates/model",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "kv",
        dir: "crates/kv",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "client",
        dir: "crates/client",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "workload",
        dir: "crates/workload",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "metrics",
        dir: "crates/metrics",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "trace",
        dir: "crates/trace",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "sched",
        dir: "crates/sched",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "core",
        dir: "crates/core",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "control",
        dir: "crates/control",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "fault",
        dir: "crates/fault",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "cluster",
        dir: "crates/cluster",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "scenario",
        dir: "crates/scenario",
        tier: Tier::Deterministic,
    },
    CrateSpec {
        name: "bench",
        dir: "crates/bench",
        tier: Tier::Host,
    },
    CrateSpec {
        name: "audit",
        dir: "crates/audit",
        tier: Tier::Host,
    },
    CrateSpec {
        name: "tokenflow",
        dir: ".",
        tier: Tier::Host,
    },
];

/// How a file participates in the audit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// `src/` library (and binary) code: all passes apply.
    Lib,
    /// `tests/`, `benches/`, `examples/`: host-driven harness code —
    /// only the unsafe-audit pass applies.
    Aux,
}

/// One source file to audit.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// Absolute path.
    pub abs: PathBuf,
    /// Which passes apply.
    pub scope: Scope,
}

/// Collects a crate's source files: `src/` as [`Scope::Lib`];
/// `tests/`, `benches/`, `examples/` as [`Scope::Aux`]. Paths come back
/// sorted so every report is deterministic.
pub fn collect_files(root: &Path, spec: &CrateSpec) -> io::Result<Vec<SourceFile>> {
    let base = root.join(spec.dir);
    let mut files = Vec::new();
    walk(&base.join("src"), Scope::Lib, &mut files)?;
    for aux in ["tests", "benches", "examples"] {
        walk(&base.join(aux), Scope::Aux, &mut files)?;
    }
    for f in &mut files {
        f.rel = f
            .abs
            .strip_prefix(root)
            .unwrap_or(&f.abs)
            .to_string_lossy()
            .replace('\\', "/");
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

fn walk(dir: &Path, scope: Scope, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk(&path, scope, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(SourceFile {
                rel: String::new(),
                abs: path,
                scope,
            });
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
