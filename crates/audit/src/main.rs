//! `cargo run -p audit` — the workspace determinism-contract auditor.
//!
//! Usage:
//!
//! ```text
//! audit [--root <dir>] [--json <path>] [--write-baseline]
//! ```
//!
//! Exit codes follow the house convention: `0` clean, `1` findings (or
//! an I/O failure), `2` usage error.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use audit::{ratchet_findings, report, run_audit, tiers};

const BASELINE_FILE: &str = "audit_baseline.json";

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
}

fn usage() -> ExitCode {
    eprintln!("usage: audit [--root <dir>] [--json <path>] [--write-baseline]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        root: None,
        json: None,
        write_baseline: false,
    };
    let mut it = env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => args.root = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--json" => args.json = Some(PathBuf::from(it.next().ok_or_else(usage)?)),
            "--write-baseline" => args.write_baseline = true,
            _ => return Err(usage()),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let root = match args
        .root
        .or_else(|| env::current_dir().ok().and_then(|d| tiers::find_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!(
                "audit: could not locate the workspace root (no Cargo.toml with [workspace])"
            );
            return ExitCode::from(1);
        }
    };

    let mut outcome = match run_audit(&root) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("audit: {e}");
            return ExitCode::from(1);
        }
    };

    let baseline_path = root.join(BASELINE_FILE);
    let baseline: BTreeMap<String, u64> = if args.write_baseline {
        let counts = outcome.panic_counts();
        let text = report::baseline_json(&counts);
        if let Err(e) = fs::write(&baseline_path, text) {
            eprintln!("audit: writing {}: {e}", baseline_path.display());
            return ExitCode::from(1);
        }
        println!(
            "wrote {} ({} crates)",
            baseline_path.display(),
            counts.len()
        );
        counts
    } else {
        match fs::read_to_string(&baseline_path) {
            Ok(text) => match report::parse_baseline(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("audit: {}: {e}", baseline_path.display());
                    return ExitCode::from(1);
                }
            },
            Err(e) => {
                eprintln!(
                    "audit: {}: {e} (run with --write-baseline to create it)",
                    baseline_path.display()
                );
                return ExitCode::from(1);
            }
        }
    };

    outcome
        .findings
        .extend(ratchet_findings(&outcome, &baseline));

    if let Some(path) = &args.json {
        let text = report::report_json(&outcome, &baseline);
        if let Err(e) = fs::write(path, text) {
            eprintln!("audit: writing {}: {e}", path.display());
            return ExitCode::from(1);
        }
    }

    for finding in &outcome.findings {
        eprintln!("{}\n", finding.render());
    }

    let panic_total: u64 = outcome.crates.iter().map(|c| c.panic_count).sum();
    let budget_total: u64 = baseline.values().sum();
    println!(
        "audit: {} files across {} crates; panic surface {panic_total}/{budget_total}; {} allows; {} findings",
        outcome.files_scanned,
        outcome.crates.len(),
        outcome.allows.len(),
        outcome.findings.len()
    );

    if outcome.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
