//! Fixture self-tests: each `fixtures/<pass>/<name>.rs` is audited as a
//! deterministic-tier library file and its diagnostics (including panic
//! sites) are compared line-by-line against `<name>.expected`.
//!
//! The expected format is one `pass/code:line` per line; `#` lines are
//! commentary. An empty expectation pins a clean (or fully allowed)
//! fixture — those cases are what keep the passes honest about false
//! positives, not just misses.

use std::fs;
use std::path::Path;

use audit::audit_source;
use audit::tiers::{Scope, Tier};

fn run_fixture(dir: &str, name: &str) {
    let base = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(dir);
    let src = fs::read_to_string(base.join(format!("{name}.rs"))).unwrap();
    let expected = fs::read_to_string(base.join(format!("{name}.expected"))).unwrap();
    let rel = format!("fixtures/{dir}/{name}.rs");
    let audit = audit_source(&rel, &src, Tier::Deterministic, Scope::Lib);

    let mut got: Vec<String> = audit
        .diagnostics
        .iter()
        .chain(audit.panic_sites.iter())
        .map(|d| format!("{}/{}:{}", d.pass.name(), d.code, d.line))
        .collect();
    got.sort();
    let mut want: Vec<String> = expected
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect();
    want.sort();
    assert_eq!(got, want, "fixture {dir}/{name} diagnostics diverged");
}

#[test]
fn determinism_wall_clock_fires() {
    run_fixture("determinism", "wall_clock");
}

#[test]
fn determinism_host_env_and_identity_fire() {
    run_fixture("determinism", "host_env");
}

#[test]
fn determinism_unseeded_rng_fires() {
    run_fixture("determinism", "rng");
}

#[test]
fn determinism_allow_suppresses() {
    run_fixture("determinism", "allowed");
}

#[test]
fn unordered_iteration_fires() {
    run_fixture("unordered", "iteration");
}

#[test]
fn unordered_lookup_only_is_clean() {
    run_fixture("unordered", "lookup_ok");
}

#[test]
fn unordered_allow_suppresses() {
    run_fixture("unordered", "allowed");
}

#[test]
fn panic_sites_fire_and_cfg_test_is_excluded() {
    run_fixture("panic", "sites");
}

#[test]
fn panic_allow_excludes_from_ratchet() {
    run_fixture("panic", "allowed");
}

#[test]
fn unsafe_without_safety_comment_fires() {
    run_fixture("unsafe", "missing_safety");
}

#[test]
fn unsafe_with_safety_comment_is_clean() {
    run_fixture("unsafe", "with_safety");
}

#[test]
fn annotation_grammar_is_validated() {
    run_fixture("annotation", "bad");
}

#[test]
fn host_tier_files_skip_determinism_and_unordered() {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = fs::read_to_string(base.join("determinism/wall_clock.rs")).unwrap();
    let audit = audit_source("wall_clock.rs", &src, Tier::Host, Scope::Lib);
    assert!(
        audit.diagnostics.is_empty(),
        "host tier must not be held to the determinism passes: {:?}",
        audit.diagnostics
    );
}

#[test]
fn aux_scope_only_runs_the_unsafe_pass() {
    let base = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let src = fs::read_to_string(base.join("panic/sites.rs")).unwrap();
    let audit = audit_source("sites.rs", &src, Tier::Deterministic, Scope::Aux);
    assert!(
        audit.panic_sites.is_empty(),
        "aux files are outside the panic ratchet"
    );
    assert!(audit.diagnostics.is_empty());
}
