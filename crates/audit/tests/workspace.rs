//! The live workspace must audit clean: zero findings, every crate at
//! or under its committed panic-surface baseline, and a well-formed
//! report. This is the same code path `cargo run -p audit` and the CI
//! job execute.

use std::fs;
use std::path::{Path, PathBuf};

use audit::{ratchet_findings, report, run_audit, tiers};

fn workspace_root() -> PathBuf {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    tiers::find_root(here).expect("workspace root above crates/audit")
}

fn render_all(findings: &[audit::diag::Diagnostic]) -> String {
    findings
        .iter()
        .map(|d| d.render())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn workspace_audits_clean() {
    let root = workspace_root();
    let outcome = run_audit(&root).unwrap();
    assert!(
        !outcome.crates.is_empty() && outcome.files_scanned > 0,
        "audit found no files — tier map or walker is broken"
    );
    assert!(
        outcome.findings.is_empty(),
        "workspace has unbaselined findings:\n{}",
        render_all(&outcome.findings)
    );
}

#[test]
fn panic_surface_is_within_the_committed_baseline() {
    let root = workspace_root();
    let outcome = run_audit(&root).unwrap();
    let text = fs::read_to_string(root.join("audit_baseline.json")).unwrap();
    let baseline = report::parse_baseline(&text).unwrap();
    let regressions = ratchet_findings(&outcome, &baseline);
    assert!(
        regressions.is_empty(),
        "panic-surface ratchet regressed:\n{}",
        render_all(&regressions)
    );
    // Every baselined crate still exists — a deleted crate should be
    // dropped from the baseline, not left to rot.
    let names: Vec<&str> = outcome.crates.iter().map(|c| c.name).collect();
    for name in baseline.keys() {
        assert!(
            names.contains(&name.as_str()),
            "baseline entry `{name}` names a crate not in the tier map"
        );
    }
}

#[test]
fn report_json_is_well_formed_and_clean() {
    let root = workspace_root();
    let outcome = run_audit(&root).unwrap();
    let text = fs::read_to_string(root.join("audit_baseline.json")).unwrap();
    let baseline = report::parse_baseline(&text).unwrap();
    let json = report::report_json(&outcome, &baseline);
    assert!(json.contains("\"schema\": \"tokenflow-audit/v1\""));
    assert!(json.contains("\"clean\": true"));
    // Every allow in the report carries a non-empty reason.
    for (_, allow) in &outcome.allows {
        assert!(!allow.reason.trim().is_empty());
    }
}
