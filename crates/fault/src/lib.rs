//! Deterministic fault injection and failure-recovery plumbing.
//!
//! A [`FaultPlan`] is pure data: every fault it describes happens at a
//! fixed simulation time, decided before the run starts. The cluster
//! applies the plan **only at arrival barriers** — fault times become
//! synthetic barriers, exactly like control ticks — so the coordinator is
//! the only actor that ever mutates replica state, and the sequential,
//! scoped, and pooled epoch executors stay byte-identical under any plan.
//!
//! Four fault shapes are modeled:
//!
//! * **Crash** ([`CrashFault`]) — fail-stop at time *t*: the replica
//!   loses all resident KV and every in-flight stream, stops billing,
//!   and never serves again.
//! * **Straggler** ([`WindowFault`] in `stragglers`) — a throughput
//!   multiplier over a window: every engine iteration inside the window
//!   is stretched by `1/factor`.
//! * **KV-link fault** ([`WindowFault`] in `kv_link`) — a bandwidth
//!   multiplier over a window: every evict/load transfer *enqueued*
//!   inside the window pays `1/factor` on the PCIe cost model.
//! * **Boot failure** (`boot_failures`) — a provisioning replica that
//!   never becomes Active: the control plane marks it Failed at its
//!   ready time instead of promoting it.
//!
//! Recovery is driven by the [`FaultDriver`]: when a crash loses
//! requests, each lost request is charged one attempt against the
//! [`RetryPolicy`] and either re-queued at `now + backoff(attempt)` (a
//! future synthetic barrier) or abandoned once its budget is exhausted.
//! Backoff is exponential in *simulation* time, so recovery is as
//! deterministic as the faults themselves.

// audit: tier(deterministic)
#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use tokenflow_sim::{SimDuration, SimTime};
use tokenflow_workload::RequestSpec;

/// A fail-stop replica crash at a fixed simulation time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashFault {
    /// Replica index (cluster submission order / provisioning ordinal).
    pub replica: usize,
    /// When the replica fails.
    pub at: SimTime,
}

/// A degradation window: the replica (or its host link) runs at
/// `factor` of its healthy throughput between `from` and `until`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowFault {
    /// Replica index.
    pub replica: usize,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive; the replica is healthy again from here).
    pub until: SimTime,
    /// Throughput multiplier in `(0, 1]` — 0.5 means half speed.
    pub factor: f64,
}

/// Bounded, deterministic exponential backoff for crash recovery.
///
/// A request lost to its `k`-th crash (1-based) is re-queued after
/// `min(base_backoff × multiplier^(k-1), max_backoff)` of simulation
/// time, for at most `max_attempts` retries; the next loss abandons it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries granted per request before it is abandoned.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDuration,
    /// Exponential growth factor (≥ 1) between consecutive retries.
    pub multiplier: f64,
    /// Ceiling on any single backoff.
    pub max_backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_millis(500),
            multiplier: 2.0,
            max_backoff: SimDuration::from_secs(8),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `attempt` is zero.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        assert!(attempt >= 1, "attempts are 1-based");
        let scaled = self
            .base_backoff
            .mul_f64(self.multiplier.powi(attempt as i32 - 1));
        scaled.min(self.max_backoff)
    }
}

/// The full fault schedule of one run. Pure data; see the module docs
/// for the barrier-aligned application contract.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Fail-stop crashes.
    pub crashes: Vec<CrashFault>,
    /// Compute-degradation windows (stragglers).
    pub stragglers: Vec<WindowFault>,
    /// KV-link (PCIe) degradation windows.
    pub kv_link: Vec<WindowFault>,
    /// Provisioning ordinals that fail to boot. Ordinal `i` is the
    /// replica at fleet index `i`: for a static cluster that is the
    /// initial replica, for an elastic fleet it also covers replicas
    /// provisioned later at that index.
    pub boot_failures: Vec<usize>,
    /// How lost requests are re-queued.
    pub retry: RetryPolicy,
    /// Admission shed threshold: when `Σ active rate / (active × Γ)`
    /// exceeds this at a dispatch barrier, first-attempt arrivals are
    /// rejected instead of admitted (retries always pass). `None`
    /// disables shedding.
    pub shed_utilization: Option<f64>,
}

impl FaultPlan {
    /// True when the plan can never perturb a run: no faults and no shed
    /// threshold. The cluster treats an empty plan exactly like no plan
    /// at all, which is what keeps a fault-free `FaultSpec` from moving
    /// any pinned golden digest.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty()
            && self.stragglers.is_empty()
            && self.kv_link.is_empty()
            && self.boot_failures.is_empty()
            && self.shed_utilization.is_none()
    }

    /// Largest replica index the plan references, if any.
    pub fn max_replica(&self) -> Option<usize> {
        let windows = self
            .stragglers
            .iter()
            .chain(&self.kv_link)
            .map(|w| w.replica);
        self.crashes
            .iter()
            .map(|c| c.replica)
            .chain(windows)
            .chain(self.boot_failures.iter().copied())
            .max()
    }
}

/// One coordinator-side action on the fault timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Fail-stop the replica, losing its residents.
    Crash {
        /// Replica index.
        replica: usize,
    },
    /// Set the replica's compute slowdown (1.0 restores full speed).
    SetCompute {
        /// Replica index.
        replica: usize,
        /// Iteration-time multiplier (≥ 1, or exactly 1 to restore).
        slowdown: f64,
    },
    /// Set the replica's KV-link slowdown (1.0 restores full speed).
    SetLink {
        /// Replica index.
        replica: usize,
        /// Transfer-time multiplier (≥ 1, or exactly 1 to restore).
        slowdown: f64,
    },
}

/// The verdict on one lost request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryVerdict {
    /// Re-queued: redispatch at `due` (attempt number is 1-based).
    Retry {
        /// When the retry becomes dispatchable.
        due: SimTime,
        /// Which attempt this is (1-based).
        attempt: u32,
    },
    /// Budget exhausted: the request is abandoned.
    Abandon {
        /// Retries that were attempted before giving up.
        attempts: u32,
    },
}

/// A re-queued lost request waiting for its backoff to elapse.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingRetry {
    /// When the retry becomes dispatchable.
    pub due: SimTime,
    /// Cluster-global request id.
    pub global: u64,
    /// Which attempt this is (1-based).
    pub attempt: u32,
    /// The original spec (retries re-prefill from scratch; the original
    /// arrival time is kept so TTFT honestly includes the disruption).
    pub spec: RequestSpec,
}

/// Counters the driver accumulates while a run executes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultTally {
    /// Crash actions applied to live replicas.
    pub crashes: u64,
    /// Requests lost to crashes (loss events, counting repeats).
    pub lost_events: u64,
    /// Requests abandoned after exhausting their retry budget.
    pub abandoned: u64,
    /// First-attempt arrivals rejected by shed mode.
    pub shed: u64,
}

/// Runtime state of one fault plan: the presorted action timeline, the
/// retry queue, and per-request recovery bookkeeping. Owned by the
/// cluster coordinator; all mutation happens at barriers.
#[derive(Debug)]
pub struct FaultDriver {
    plan: FaultPlan,
    /// `(time, seq, action)` sorted by time then construction order, so
    /// same-instant actions apply in a fixed order.
    actions: Vec<(SimTime, u32, FaultAction)>,
    cursor: usize,
    /// Pending retries sorted by `(due, global)`.
    retries: Vec<PendingRetry>,
    /// Per-global-request loss count. A `BTreeMap` so that
    /// [`FaultDriver::lost_requests`] iterates in key order — iterating
    /// a hash map here would be an order hazard the `audit` unordered-
    /// iteration pass rejects.
    attempts: BTreeMap<u64, u32>,
    /// When each retried request was first lost (recovery latency base).
    first_lost: BTreeMap<u64, SimTime>,
    /// Loss/abandon/shed counters.
    pub tally: FaultTally,
}

impl FaultDriver {
    /// Builds the driver, expanding the plan into a sorted action
    /// timeline (window faults become a set-at-`from` / restore-at-
    /// `until` action pair).
    pub fn new(plan: FaultPlan) -> FaultDriver {
        let mut actions: Vec<(SimTime, u32, FaultAction)> = Vec::new();
        let mut seq = 0u32;
        let mut push = |actions: &mut Vec<(SimTime, u32, FaultAction)>, at, action| {
            actions.push((at, seq, action));
            seq += 1;
        };
        for c in &plan.crashes {
            push(
                &mut actions,
                c.at,
                FaultAction::Crash { replica: c.replica },
            );
        }
        for w in &plan.stragglers {
            let slowdown = 1.0 / w.factor;
            push(
                &mut actions,
                w.from,
                FaultAction::SetCompute {
                    replica: w.replica,
                    slowdown,
                },
            );
            push(
                &mut actions,
                w.until,
                FaultAction::SetCompute {
                    replica: w.replica,
                    slowdown: 1.0,
                },
            );
        }
        for w in &plan.kv_link {
            let slowdown = 1.0 / w.factor;
            push(
                &mut actions,
                w.from,
                FaultAction::SetLink {
                    replica: w.replica,
                    slowdown,
                },
            );
            push(
                &mut actions,
                w.until,
                FaultAction::SetLink {
                    replica: w.replica,
                    slowdown: 1.0,
                },
            );
        }
        actions.sort_by_key(|&(at, seq, _)| (at, seq));
        FaultDriver {
            plan,
            actions,
            cursor: 0,
            retries: Vec::new(),
            attempts: BTreeMap::new(),
            first_lost: BTreeMap::new(),
            tally: FaultTally::default(),
        }
    }

    /// The plan this driver executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Earliest unapplied action time, if any.
    pub fn next_action_time(&self) -> Option<SimTime> {
        self.actions.get(self.cursor).map(|&(at, _, _)| at)
    }

    /// Earliest pending retry's due time, if any.
    pub fn next_retry_due(&self) -> Option<SimTime> {
        self.retries.first().map(|r| r.due)
    }

    /// True while any retry is waiting for its backoff — the run cannot
    /// quiesce until these are dispatched.
    pub fn has_pending_retries(&self) -> bool {
        !self.retries.is_empty()
    }

    /// Pops every action due at or before `now`, in timeline order.
    pub fn due_actions(&mut self, now: SimTime) -> Vec<(SimTime, FaultAction)> {
        let mut due = Vec::new();
        while let Some(&(at, _, action)) = self.actions.get(self.cursor) {
            if at > now {
                break;
            }
            due.push((at, action));
            self.cursor += 1;
        }
        due
    }

    /// Charges one loss against `global`'s retry budget: either schedules
    /// a retry (insert into the due queue, return its due time) or
    /// abandons the request.
    pub fn on_lost(&mut self, global: u64, spec: RequestSpec, now: SimTime) -> RetryVerdict {
        self.tally.lost_events += 1;
        self.first_lost.entry(global).or_insert(now);
        let attempt = {
            let a = self.attempts.entry(global).or_insert(0);
            *a += 1;
            *a
        };
        if attempt > self.plan.retry.max_attempts {
            self.tally.abandoned += 1;
            return RetryVerdict::Abandon {
                attempts: attempt - 1,
            };
        }
        let due = now.saturating_add(self.plan.retry.backoff(attempt));
        let entry = PendingRetry {
            due,
            global,
            attempt,
            spec,
        };
        let pos = self
            .retries
            .partition_point(|r| (r.due, r.global) <= (due, global));
        self.retries.insert(pos, entry);
        RetryVerdict::Retry { due, attempt }
    }

    /// Re-queues a retry whose due barrier found no dispatchable replica:
    /// it burns one more attempt and backs off again from `now`, or is
    /// abandoned. Deterministic and stall-free — the run never blocks on
    /// capacity that may not return.
    pub fn on_undispatchable(&mut self, retry: PendingRetry, now: SimTime) -> RetryVerdict {
        self.on_lost(retry.global, retry.spec, now)
    }

    /// Records one shed arrival.
    pub fn on_shed(&mut self) {
        self.tally.shed += 1;
    }

    /// Pops every retry due at or before `now`, in `(due, global)` order.
    pub fn due_retries(&mut self, now: SimTime) -> Vec<PendingRetry> {
        let n = self.retries.partition_point(|r| r.due <= now);
        self.retries.drain(..n).collect()
    }

    /// Total retry attempts charged to `global` so far.
    pub fn attempts_of(&self, global: u64) -> u32 {
        self.attempts.get(&global).copied().unwrap_or(0)
    }

    /// When `global` was first lost, if it ever was.
    pub fn first_lost_at(&self, global: u64) -> Option<SimTime> {
        self.first_lost.get(&global).copied()
    }

    /// Every request that was ever lost, as `(global, attempts,
    /// first_lost_at)` sorted by global id (deterministic report order —
    /// `attempts` is a `BTreeMap`, so iteration *is* key order).
    pub fn lost_requests(&self) -> Vec<(u64, u32, SimTime)> {
        self.attempts
            .iter()
            .map(|(&g, &a)| (g, a, self.first_lost[&g]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokenflow_sim::RequestId;

    fn spec(global: u64) -> RequestSpec {
        RequestSpec {
            id: RequestId(global),
            arrival: SimTime::ZERO,
            prompt_tokens: 64,
            output_tokens: 32,
            rate: 15.0,
        }
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: SimDuration::from_secs(1),
            multiplier: 2.0,
            max_backoff: SimDuration::from_secs(5),
        };
        assert_eq!(p.backoff(1), SimDuration::from_secs(1));
        assert_eq!(p.backoff(2), SimDuration::from_secs(2));
        assert_eq!(p.backoff(3), SimDuration::from_secs(4));
        // 8 s would exceed the cap.
        assert_eq!(p.backoff(4), SimDuration::from_secs(5));
    }

    #[test]
    fn empty_plan_is_empty_and_nonempty_plans_are_not() {
        assert!(FaultPlan::default().is_empty());
        let p = FaultPlan {
            shed_utilization: Some(0.9),
            ..FaultPlan::default()
        };
        assert!(!p.is_empty());
        let mut p = FaultPlan::default();
        p.crashes.push(CrashFault {
            replica: 0,
            at: SimTime::from_secs(1),
        });
        assert!(!p.is_empty());
    }

    #[test]
    fn max_replica_spans_all_fault_kinds() {
        let mut p = FaultPlan::default();
        assert_eq!(p.max_replica(), None);
        p.crashes.push(CrashFault {
            replica: 1,
            at: SimTime::ZERO,
        });
        p.kv_link.push(WindowFault {
            replica: 4,
            from: SimTime::ZERO,
            until: SimTime::from_secs(1),
            factor: 0.5,
        });
        p.boot_failures.push(2);
        assert_eq!(p.max_replica(), Some(4));
    }

    #[test]
    fn timeline_expands_windows_and_sorts_by_time() {
        let mut plan = FaultPlan::default();
        plan.stragglers.push(WindowFault {
            replica: 0,
            from: SimTime::from_secs(5),
            until: SimTime::from_secs(9),
            factor: 0.25,
        });
        plan.crashes.push(CrashFault {
            replica: 1,
            at: SimTime::from_secs(7),
        });
        let mut d = FaultDriver::new(plan);
        assert_eq!(d.next_action_time(), Some(SimTime::from_secs(5)));
        let due = d.due_actions(SimTime::from_secs(7));
        assert_eq!(due.len(), 2);
        assert_eq!(
            due[0].1,
            FaultAction::SetCompute {
                replica: 0,
                slowdown: 4.0
            }
        );
        assert_eq!(due[1].1, FaultAction::Crash { replica: 1 });
        // The restore half of the window is still pending.
        assert_eq!(d.next_action_time(), Some(SimTime::from_secs(9)));
        let rest = d.due_actions(SimTime::from_secs(100));
        assert_eq!(
            rest,
            vec![(
                SimTime::from_secs(9),
                FaultAction::SetCompute {
                    replica: 0,
                    slowdown: 1.0
                }
            )]
        );
        assert_eq!(d.next_action_time(), None);
    }

    #[test]
    fn losses_retry_with_backoff_then_abandon() {
        let plan = FaultPlan {
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: SimDuration::from_secs(1),
                multiplier: 2.0,
                max_backoff: SimDuration::from_secs(60),
            },
            ..FaultPlan::default()
        };
        let mut d = FaultDriver::new(plan);
        let t0 = SimTime::from_secs(10);
        let v1 = d.on_lost(7, spec(7), t0);
        assert_eq!(
            v1,
            RetryVerdict::Retry {
                due: SimTime::from_secs(11),
                attempt: 1
            }
        );
        assert!(d.has_pending_retries());
        assert_eq!(d.next_retry_due(), Some(SimTime::from_secs(11)));
        let popped = d.due_retries(SimTime::from_secs(11));
        assert_eq!(popped.len(), 1);
        assert_eq!(popped[0].global, 7);
        assert!(!d.has_pending_retries());

        // Second loss backs off 2 s; third exhausts the budget.
        let v2 = d.on_lost(7, spec(7), SimTime::from_secs(12));
        assert_eq!(
            v2,
            RetryVerdict::Retry {
                due: SimTime::from_secs(14),
                attempt: 2
            }
        );
        d.due_retries(SimTime::from_secs(14));
        let v3 = d.on_lost(7, spec(7), SimTime::from_secs(15));
        assert_eq!(v3, RetryVerdict::Abandon { attempts: 2 });
        assert_eq!(d.tally.lost_events, 3);
        assert_eq!(d.tally.abandoned, 1);
        assert_eq!(d.attempts_of(7), 3);
        assert_eq!(d.first_lost_at(7), Some(t0));
        assert_eq!(d.lost_requests(), vec![(7, 3, t0)]);
    }

    #[test]
    fn retry_queue_orders_by_due_then_global() {
        let mut d = FaultDriver::new(FaultPlan::default());
        // Same loss time, same backoff: pops ordered by global id.
        d.on_lost(9, spec(9), SimTime::from_secs(1));
        d.on_lost(3, spec(3), SimTime::from_secs(1));
        let due = d.due_retries(SimTime::from_secs(60));
        let ids: Vec<u64> = due.iter().map(|r| r.global).collect();
        assert_eq!(ids, vec![3, 9]);
    }
}
