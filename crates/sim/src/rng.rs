//! Deterministic random number generation for workloads and jitter.
//!
//! All randomness in the workspace flows through [`SimRng`], a seeded
//! xoshiro256++ generator (initialised via splitmix64, the reference
//! seeding procedure) with the handful of sampling helpers the workload
//! generators need (exponential, lognormal via Box–Muller, truncated
//! normal). Implementing the generator inline — rather than depending on
//! `rand`/`rand_distr` — pins down the exact bit stream *and* sampling
//! algorithms, so traces regenerate identically on every platform, every
//! toolchain, and every build of this workspace.

/// Expands a 64-bit seed into generator state (splitmix64).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded deterministic RNG with distribution helpers.
///
/// # Examples
///
/// ```
/// use tokenflow_sim::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives a child RNG with an independent stream.
    ///
    /// Use one child per component so adding draws in one component does not
    /// perturb the stream seen by another.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits).
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range [{lo}, {hi})");
        if lo == hi {
            return lo;
        }
        let x = lo + self.uniform() * (hi - lo);
        // The product can round up to exactly `hi` (e.g. when `hi - lo`
        // is a few ulps); clamp to keep the documented half-open interval.
        if x < hi {
            x
        } else {
            hi.next_down().max(lo)
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        // Multiply-shift range reduction (Lemire); the modulo bias at these
        // span sizes is far below anything the simulation could observe.
        lo + ((self.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Exponential variate with the given rate (mean `1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive, got {rate}");
        // Inverse-CDF sampling; `1 - u` avoids ln(0).
        let u = self.uniform();
        -(1.0 - u).ln() / rate
    }

    /// Standard normal variate via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller: two uniforms to one normal (the second is discarded to
        // keep the stream layout simple and deterministic).
        let u1: f64 = 1.0 - self.uniform(); // (0, 1] so ln is finite
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Normal variate clamped to `[lo, hi]`.
    pub fn clamped_normal(&mut self, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
        self.normal(mean, std_dev).clamp(lo, hi)
    }

    /// Lognormal variate parameterised by the *underlying* normal's `mu` and
    /// `sigma`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.standard_normal()).exp()
    }

    /// Lognormal variate parameterised by the desired mean and standard
    /// deviation of the lognormal itself.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive or `std_dev` is negative.
    pub fn lognormal_mean_std(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive, got {mean}");
        assert!(
            std_dev >= 0.0,
            "std_dev must be non-negative, got {std_dev}"
        );
        if std_dev == 0.0 {
            return mean;
        }
        let variance_ratio = (std_dev / mean).powi(2);
        let sigma2 = (1.0 + variance_ratio).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        self.lognormal(mu, sigma2.sqrt())
    }

    /// Chooses an index in `[0, weights.len())` proportionally to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.uniform() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut other = parent1.fork(2);
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::seed_from(11);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments_close() {
        let mut rng = SimRng::seed_from(12);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_mean_std_matches_target() {
        let mut rng = SimRng::seed_from(13);
        let n = 40_000;
        let samples: Vec<f64> = (0..n)
            .map(|_| rng.lognormal_mean_std(512.0, 256.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 512.0).abs() / 512.0 < 0.05, "mean {mean}");
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::seed_from(14);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..8_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    fn clamped_normal_stays_in_bounds() {
        let mut rng = SimRng::seed_from(15);
        for _ in 0..1_000 {
            let x = rng.clamped_normal(0.0, 100.0, -5.0, 5.0);
            assert!((-5.0..=5.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(16);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_bad_rate() {
        SimRng::seed_from(0).exponential(0.0);
    }
}
