//! A stable timestamped priority queue.
//!
//! [`EventQueue`] pops entries in non-decreasing time order; entries with
//! equal timestamps pop in insertion (FIFO) order. Stability matters for
//! reproducibility: the serving engine frequently schedules several events
//! at the same instant (e.g. a burst of request arrivals) and their relative
//! order must not depend on heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the event queue: a payload scheduled at a time.
#[derive(Debug, Clone)]
pub struct TimedEntry<E> {
    /// The instant at which the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used for FIFO tie-breaking.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E> PartialEq for TimedEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for TimedEntry<E> {}

impl<E> PartialOrd for TimedEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for TimedEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-priority queue of timestamped events with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use tokenflow_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "late");
/// q.push(SimTime::from_secs(1), "early");
/// q.push(SimTime::from_secs(1), "early-second");
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "early-second");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<TimedEntry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(TimedEntry { time, seq, event });
    }

    /// Removes and returns the earliest entry, or `None` when empty.
    pub fn pop(&mut self) -> Option<TimedEntry<E>> {
        self.heap.pop()
    }

    /// The timestamp of the earliest entry without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Borrows the earliest entry without removing it.
    pub fn peek(&self) -> Option<&TimedEntry<E>> {
        self.heap.peek()
    }

    /// Pops the earliest entry only if it fires at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<TimedEntry<E>> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.heap.pop()
        } else {
            None
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending entries.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3), 3u32);
        q.push(SimTime::from_secs(1), 1u32);
        q.push(SimTime::from_secs(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "a");
        q.push(SimTime::from_secs(3), "b");
        assert_eq!(q.pop_due(SimTime::from_secs(2)).unwrap().event, "a");
        assert!(q.pop_due(SimTime::from_secs(2)).is_none());
        assert_eq!(q.pop_due(SimTime::from_secs(3)).unwrap().event, "b");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), 42u32);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.peek().unwrap().event, 42);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(5), 5u32);
        q.push(SimTime::from_secs(1), 1u32);
        assert_eq!(q.pop().unwrap().event, 1);
        q.push(SimTime::from_secs(2), 2u32);
        q.push(SimTime::from_secs(4), 4u32);
        assert_eq!(q.pop().unwrap().event, 2);
        q.push(SimTime::from_secs(3), 3u32);
        let rest: Vec<u32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(rest, vec![3, 4, 5]);
    }
}
