//! Common identifier types shared across the workspace.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Unique identifier of a serving request.
///
/// Identifiers are dense (assigned 0, 1, 2, ... in arrival order by the
/// workload layer), so they double as stable tie-breakers in scheduling
/// decisions.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RequestId(pub u64);

impl RequestId {
    /// The raw index.
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

impl From<u64> for RequestId {
    fn from(v: u64) -> Self {
        RequestId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_ordering() {
        assert_eq!(RequestId(3).to_string(), "req#3");
        assert!(RequestId(1) < RequestId(2));
        assert_eq!(RequestId::from(5).index(), 5);
    }
}
