//! Deterministic discrete-time simulation substrate for TokenFlow.
//!
//! Every other crate in the workspace builds on the primitives defined here:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-microsecond time, so simulation
//!   runs are bit-reproducible across platforms and optimisation levels.
//! * [`EventQueue`] — a stable priority queue of timestamped events with
//!   FIFO tie-breaking.
//! * [`Clock`] — a monotonic simulation clock.
//! * [`SimRng`] — a seeded, deterministic random number generator.
//!
//! The simulation is *discrete-time* rather than wall-clock driven: the
//! serving engine advances the clock by exactly the duration the analytical
//! cost model assigns to each iteration, which mirrors how a real
//! continuous-batching engine experiences time (scheduling decisions happen
//! at iteration boundaries).

// audit: tier(deterministic)
#![forbid(unsafe_code)]

pub mod clock;
pub mod events;
pub mod ids;
pub mod rng;
pub mod time;

pub use clock::Clock;
pub use events::{EventQueue, TimedEntry};
pub use ids::RequestId;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
