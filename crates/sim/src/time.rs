//! Integer-microsecond time types.
//!
//! All simulation time is counted in microseconds since simulation start.
//! Integer arithmetic keeps runs exactly reproducible; one microsecond is
//! fine-grained enough for everything the serving stack measures (iteration
//! latencies are hundreds of microseconds to tens of milliseconds, PCIe
//! transfers tens of microseconds and up).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;

/// An instant in simulation time, measured in microseconds since start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, measured in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);

    /// The maximum representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time since start as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is actually later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The maximum representable duration; used as an "unbounded" sentinel.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// The duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True when this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    ///
    /// Panics if `f` is negative or not finite.
    pub fn mul_f64(self, f: f64) -> SimDuration {
        assert!(f.is_finite() && f >= 0.0, "invalid factor {f}");
        SimDuration((self.0 as f64 * f).round() as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(3).as_micros(), 3);
        assert_eq!(SimDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(SimDuration::from_millis(1500).as_millis_f64(), 1500.0);
    }

    #[test]
    fn from_secs_f64_rounds_to_nearest() {
        assert_eq!(SimTime::from_secs_f64(1e-6).as_micros(), 1);
        assert_eq!(SimTime::from_secs_f64(0.4e-6).as_micros(), 0);
        assert_eq!(SimTime::from_secs_f64(0.6e-6).as_micros(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn from_secs_f64_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t = SimTime::from_secs(1);
        let d = SimDuration::from_millis(250);
        assert_eq!((t + d).as_micros(), 1_250_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    fn checked_since_detects_order() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.checked_since(a), Some(SimDuration::from_secs(1)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn duration_scalar_ops() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_millis(50));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1);
        let db = SimDuration::from_secs(2);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
