//! The monotonic simulation clock.

use crate::time::{SimDuration, SimTime};

/// A monotonic simulation clock.
///
/// The engine owns one clock and advances it by exactly the duration the
/// cost model assigns to each iteration, or fast-forwards it to the next
/// pending event when idle. The clock refuses to move backwards.
///
/// # Examples
///
/// ```
/// use tokenflow_sim::{Clock, SimDuration, SimTime};
///
/// let mut clock = Clock::new();
/// assert_eq!(clock.now(), SimTime::ZERO);
/// clock.advance(SimDuration::from_millis(25));
/// assert_eq!(clock.now(), SimTime::from_millis(25));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Clock { now: SimTime::ZERO }
    }

    /// Creates a clock starting at `t`.
    pub fn starting_at(t: SimTime) -> Self {
        Clock { now: t }
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }

    /// Moves the clock forward to `t`.
    ///
    /// Returns the elapsed duration. If `t` is in the past the clock does not
    /// move and the elapsed duration is zero; monotonicity is an invariant.
    pub fn advance_to(&mut self, t: SimTime) -> SimDuration {
        if t <= self.now {
            return SimDuration::ZERO;
        }
        let elapsed = t - self.now;
        self.now = t;
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(Clock::new().now(), SimTime::ZERO);
    }

    #[test]
    fn starting_at_sets_origin() {
        let c = Clock::starting_at(SimTime::from_secs(7));
        assert_eq!(c.now(), SimTime::from_secs(7));
    }

    #[test]
    fn advance_accumulates() {
        let mut c = Clock::new();
        c.advance(SimDuration::from_millis(10));
        c.advance(SimDuration::from_millis(15));
        assert_eq!(c.now(), SimTime::from_millis(25));
    }

    #[test]
    fn advance_to_is_monotonic() {
        let mut c = Clock::new();
        c.advance_to(SimTime::from_secs(5));
        let back = c.advance_to(SimTime::from_secs(3));
        assert_eq!(back, SimDuration::ZERO);
        assert_eq!(c.now(), SimTime::from_secs(5));
    }

    #[test]
    fn advance_to_returns_elapsed() {
        let mut c = Clock::starting_at(SimTime::from_secs(1));
        let elapsed = c.advance_to(SimTime::from_secs(4));
        assert_eq!(elapsed, SimDuration::from_secs(3));
    }
}
