//! The SGLang-with-chunked-prefill baseline.
//!
//! Identical admission behaviour to [`FcfsScheduler`](crate::FcfsScheduler),
//! but prompt processing is split into fixed-size chunks mixed into decode
//! iterations (Sarathi-style). This smooths inter-token latency for running
//! requests during prefill spikes at a small TTFT cost — the second baseline
//! of the paper's evaluation ("SGLang (chunked)").

use tokenflow_sim::SimTime;

use crate::api::{PlanHorizon, PrefillPolicy, SchedContext, SchedPlan, Scheduler};
use crate::util::{fcfs_admissions, quiescent_across_transfers, AdmissionCosting};

/// SGLang FCFS scheduling with chunked prefill.
#[derive(Debug, Clone)]
pub struct ChunkedPrefillScheduler {
    chunk: u64,
}

impl ChunkedPrefillScheduler {
    /// Creates the scheduler with the default 512-token prefill chunk.
    pub fn new() -> Self {
        ChunkedPrefillScheduler { chunk: 512 }
    }

    /// Overrides the prefill chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_chunk(chunk: u64) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        ChunkedPrefillScheduler { chunk }
    }
}

impl Default for ChunkedPrefillScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for ChunkedPrefillScheduler {
    fn name(&self) -> &'static str {
        "SGLang (chunked)"
    }

    fn plan(&mut self, ctx: &SchedContext) -> SchedPlan {
        SchedPlan::of(fcfs_admissions(ctx, AdmissionCosting::Conservative, true))
    }

    /// Same certificate as [`FcfsScheduler`](crate::FcfsScheduler):
    /// admission is the only decision, so a batch full of running
    /// requests (or an empty waiting set with no transfer in flight)
    /// makes `plan` a no-op until the counts change.
    fn plan_horizon(&self, ctx: &SchedContext) -> Option<PlanHorizon> {
        quiescent_across_transfers(ctx).then_some(PlanHorizon {
            valid_until: SimTime::MAX,
            gates_static: true,
        })
    }

    fn prefill_policy(&self) -> PrefillPolicy {
        PrefillPolicy::Chunked(self.chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_policy_exposed() {
        assert_eq!(
            ChunkedPrefillScheduler::new().prefill_policy(),
            PrefillPolicy::Chunked(512)
        );
        assert_eq!(
            ChunkedPrefillScheduler::with_chunk(256).prefill_policy(),
            PrefillPolicy::Chunked(256)
        );
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let _ = ChunkedPrefillScheduler::with_chunk(0);
    }

    #[test]
    fn name_matches_paper_label() {
        assert_eq!(ChunkedPrefillScheduler::new().name(), "SGLang (chunked)");
    }

    #[test]
    fn horizon_matches_fcfs_certificate() {
        use crate::api::{ReqPhase, ReqView, SchedContextBuilder};
        use tokenflow_sim::RequestId;

        let running = ReqView {
            id: RequestId(0),
            phase: ReqPhase::Running,
            arrival: SimTime::ZERO,
            rate: 20.0,
            prompt_tokens: 100,
            context_tokens: 100,
            remaining_tokens: 200,
            buffered_tokens: 0,
            buffered_secs: 0.0,
            stalled: false,
            started: true,
            evict_secs: 0.0,
            load_secs: 0.0,
            reserved_tokens: 0,
            elastic: false,
            inbound: false,
        };
        let mut waiting = running;
        waiting.id = RequestId(1);
        waiting.phase = ReqPhase::WaitingNew;
        let build = |reqs: Vec<ReqView>| {
            SchedContextBuilder::new(SimTime::ZERO)
                .requests(reqs)
                .memory(10_000, 20_000)
                .profile(1e-4, 2_000.0)
                .link(25e9, 131_072)
                .max_batch(64)
                .build()
        };
        let s = ChunkedPrefillScheduler::new();
        let quiet = build(vec![running]);
        let h = s.plan_horizon(&quiet).expect("quiescent: horizon expected");
        assert_eq!(h.valid_until, SimTime::MAX);
        assert!(h.gates_static);
        let busy = build(vec![running, waiting]);
        assert_eq!(s.plan_horizon(&busy), None);
    }
}
