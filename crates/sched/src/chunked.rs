//! The SGLang-with-chunked-prefill baseline.
//!
//! Identical admission behaviour to [`FcfsScheduler`](crate::FcfsScheduler),
//! but prompt processing is split into fixed-size chunks mixed into decode
//! iterations (Sarathi-style). This smooths inter-token latency for running
//! requests during prefill spikes at a small TTFT cost — the second baseline
//! of the paper's evaluation ("SGLang (chunked)").

use crate::api::{PrefillPolicy, SchedContext, SchedPlan, Scheduler};
use crate::util::{fcfs_admissions, AdmissionCosting};

/// SGLang FCFS scheduling with chunked prefill.
#[derive(Debug, Clone)]
pub struct ChunkedPrefillScheduler {
    chunk: u64,
}

impl ChunkedPrefillScheduler {
    /// Creates the scheduler with the default 512-token prefill chunk.
    pub fn new() -> Self {
        ChunkedPrefillScheduler { chunk: 512 }
    }

    /// Overrides the prefill chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    pub fn with_chunk(chunk: u64) -> Self {
        assert!(chunk > 0, "chunk must be positive");
        ChunkedPrefillScheduler { chunk }
    }
}

impl Default for ChunkedPrefillScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for ChunkedPrefillScheduler {
    fn name(&self) -> &'static str {
        "SGLang (chunked)"
    }

    fn plan(&mut self, ctx: &SchedContext) -> SchedPlan {
        SchedPlan {
            actions: fcfs_admissions(ctx, AdmissionCosting::Conservative, true),
        }
    }

    fn prefill_policy(&self) -> PrefillPolicy {
        PrefillPolicy::Chunked(self.chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_policy_exposed() {
        assert_eq!(
            ChunkedPrefillScheduler::new().prefill_policy(),
            PrefillPolicy::Chunked(512)
        );
        assert_eq!(
            ChunkedPrefillScheduler::with_chunk(256).prefill_policy(),
            PrefillPolicy::Chunked(256)
        );
    }

    #[test]
    #[should_panic(expected = "chunk must be positive")]
    fn zero_chunk_rejected() {
        let _ = ChunkedPrefillScheduler::with_chunk(0);
    }

    #[test]
    fn name_matches_paper_label() {
        assert_eq!(ChunkedPrefillScheduler::new().name(), "SGLang (chunked)");
    }
}
