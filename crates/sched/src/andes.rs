//! An Andes-style QoE-aware preemptive baseline.
//!
//! Andes (Liu et al., 2024) schedules for client-perceived quality of
//! experience: requests whose token-delivery deadline is most at risk run
//! first, and requests holding comfortable buffer surpluses yield their
//! slots. Following the paper's §6 ("we also implemented the Andes in
//! SGLang using a recompute-based preemption approach"), preemption here
//! *discards* KV and resumes by recomputation — Andes has no hierarchical
//! memory manager, which is exactly the gap TokenFlow's co-design targets.
//!
//! Simplifications versus the original Andes (documented in DESIGN.md):
//! the knapsack over QoE gain/cost is approximated by urgency ordering
//! (buffer seconds ascending, then arrival), with a hysteresis threshold so
//! only victims with a real surplus are displaced.

use tokenflow_sim::{RequestId, SimDuration, SimTime};

use crate::api::{
    Action, PlanHorizon, PlanNote, PreemptMode, PrefillPolicy, ReqPhase, ReqView, SchedContext,
    SchedPlan, Scheduler,
};
use crate::util::{
    admission_cost, fcfs_admissions, largest_buffer_running, quiescent_across_transfers,
    AdmissionCosting,
};

/// QoE-aware preemptive scheduling in the style of Andes.
#[derive(Debug, Clone)]
pub struct AndesScheduler {
    /// Full re-ranking period.
    interval: SimDuration,
    /// A running victim must hold at least this many seconds of buffer to
    /// be displaced (hysteresis against thrash).
    min_victim_buffer_secs: f64,
    /// Admission decode-growth reserve, tokens.
    headroom: u64,
    /// Memory fill target as a fraction of total KV capacity.
    util_target: f64,
    last_schedule: Option<SimTime>,
    /// Urgency keys of the previous full pass, in ascending-id order.
    /// Maintained only while the context requests trace notes; decisions
    /// never read it.
    last_urgency: Vec<(RequestId, f64)>,
}

impl AndesScheduler {
    /// Creates the scheduler with defaults (500 ms interval, 2 s victim
    /// hysteresis).
    pub fn new() -> Self {
        AndesScheduler {
            interval: SimDuration::from_millis(500),
            min_victim_buffer_secs: 2.0,
            headroom: 512,
            util_target: 0.92,
            last_schedule: None,
            last_urgency: Vec::new(),
        }
    }

    /// Overrides the re-ranking interval.
    pub fn with_interval(mut self, interval: SimDuration) -> Self {
        self.interval = interval;
        self
    }

    fn urgency_key(r: &ReqView, now: SimTime) -> (f64, u64) {
        // Lower = more urgent. Unstarted requests are maximally urgent and
        // age-ordered; started requests order by buffer seconds.
        if r.started {
            (r.buffered_secs, r.id.0)
        } else {
            let waited = now.saturating_since(r.arrival).as_secs_f64();
            // Strictly more urgent than any started request, oldest first.
            (-1.0 - waited, r.id.0)
        }
    }
}

impl Default for AndesScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for AndesScheduler {
    fn name(&self) -> &'static str {
        "Andes"
    }

    fn plan(&mut self, ctx: &SchedContext) -> SchedPlan {
        let due = self
            .last_schedule
            .is_none_or(|t| ctx.now >= t + self.interval);
        if !due {
            // Between re-rankings only plain admissions happen.
            return SchedPlan::of(fcfs_admissions(
                ctx,
                AdmissionCosting::Headroom(self.headroom),
                false,
            ));
        }
        self.last_schedule = Some(ctx.now);

        // Rank every schedulable request by urgency.
        let mut candidates: Vec<&ReqView> = ctx
            .requests
            .iter()
            .filter(|r| {
                matches!(
                    r.phase,
                    ReqPhase::Running | ReqPhase::WaitingNew | ReqPhase::WaitingCpu
                )
            })
            .collect();
        // QoE repricing notes: `candidates` is still in ascending-id
        // order here (it follows the id-ordered context), as is the
        // previous pass's key list, so a merge walk pairs each request's
        // old urgency with its new one.
        let mut notes: Vec<PlanNote> = Vec::new();
        if ctx.trace_notes {
            let (mut a, mut b) = (0usize, 0usize);
            while a < self.last_urgency.len() && b < candidates.len() {
                let (prev_id, before) = self.last_urgency[a];
                let cur_id = candidates[b].id;
                match prev_id.cmp(&cur_id) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        let after = Self::urgency_key(candidates[b], ctx.now).0;
                        if before != after {
                            notes.push(PlanNote::Reprice {
                                id: cur_id,
                                before,
                                after,
                            });
                        }
                        a += 1;
                        b += 1;
                    }
                }
            }
            self.last_urgency.clear();
            self.last_urgency.extend(
                candidates
                    .iter()
                    .map(|r| (r.id, Self::urgency_key(r, ctx.now).0)),
            );
        }
        candidates.sort_by(|a, b| {
            Self::urgency_key(a, ctx.now)
                .partial_cmp(&Self::urgency_key(b, ctx.now))
                .expect("urgency keys are finite")
        });

        // Greedy slot fill under the memory target and batch cap,
        // discounting memory already committed to transitioning requests.
        let committed: u64 = ctx
            .in_phase(ReqPhase::Transitioning)
            .map(|r| r.context_tokens + r.reserved_tokens)
            .sum();
        let budget_total =
            ((ctx.gpu_total_tokens as f64 * self.util_target) as u64).saturating_sub(committed);
        let mut used = 0u64;
        let mut slots =
            (ctx.max_batch as usize).saturating_sub(ctx.count_phase(ReqPhase::Transitioning));
        let mut selected: Vec<RequestId> = Vec::new();
        for r in &candidates {
            if slots == 0 {
                break;
            }
            let cost = admission_cost(r, self.headroom);
            if used + cost > budget_total {
                continue;
            }
            used += cost;
            slots -= 1;
            selected.push(r.id);
        }

        // Displaced running requests without a real surplus are kept
        // (hysteresis): evicting them would trade one stall for another.
        // Because Andes resumes by *recompute*, the bar scales with the
        // victim's re-prefill cost — otherwise long contexts thrash.
        let mut keep_anyway: Vec<RequestId> = Vec::new();
        for r in ctx.in_phase(ReqPhase::Running) {
            let bar = self
                .min_victim_buffer_secs
                .max(4.0 * ctx.recompute_secs(r.context_tokens));
            if !selected.contains(&r.id) && r.buffered_secs < bar {
                keep_anyway.push(r.id);
            }
        }
        if !keep_anyway.is_empty() {
            // Make room by dropping the least-urgent selected non-running
            // entries.
            for victim in keep_anyway {
                if let Some(pos) = selected.iter().rposition(|id| {
                    ctx.requests
                        .iter()
                        .find(|r| r.id == *id)
                        .is_some_and(|r| r.phase != ReqPhase::Running)
                }) {
                    selected.remove(pos);
                }
                selected.push(victim);
            }
        }

        // Recompute-based preemption pays a full re-prefill per victim; a
        // sane implementation bounds that overhead to a fraction of the
        // interval, else long contexts thrash the GPU into pure prefill.
        let mut recompute_budget = 0.5 * self.interval.as_secs_f64();
        let mut actions = Vec::new();
        for r in ctx.in_phase(ReqPhase::Running) {
            if !selected.contains(&r.id) {
                let cost = ctx.recompute_secs(r.context_tokens);
                if cost > recompute_budget {
                    continue;
                }
                recompute_budget -= cost;
                actions.push(Action::Preempt {
                    id: r.id,
                    mode: PreemptMode::Discard,
                });
            }
        }
        let mut admits: Vec<&ReqView> = ctx
            .requests
            .iter()
            .filter(|r| {
                selected.contains(&r.id)
                    && matches!(r.phase, ReqPhase::WaitingNew | ReqPhase::WaitingCpu)
            })
            .collect();
        admits.sort_by_key(|r| (r.arrival, r.id));
        for r in admits {
            // Recompute-based resumption: even host-resident KV is
            // re-prefilled (Andes lacks the hierarchical manager).
            actions.push(Action::AdmitPrefill(r.id));
        }
        SchedPlan { actions, notes }
    }

    /// Between re-rankings the only decision is the FCFS admission
    /// sweep, so its quiescence certificate holds until the next full
    /// pass comes due. A due pass always mutates `last_schedule` (even
    /// when it emits nothing), so no horizon exists before the first
    /// pass has anchored the interval.
    fn plan_horizon(&self, ctx: &SchedContext) -> Option<PlanHorizon> {
        let last = self.last_schedule?;
        if !quiescent_across_transfers(ctx) {
            return None;
        }
        let valid_until = last + self.interval;
        (ctx.now < valid_until).then_some(PlanHorizon {
            valid_until,
            // Andes never gates decode, so the batch replays verbatim.
            gates_static: true,
        })
    }

    fn prefill_policy(&self) -> PrefillPolicy {
        PrefillPolicy::Full
    }

    fn emergency_preempt_mode(&self) -> PreemptMode {
        PreemptMode::Discard
    }

    fn emergency_victim(&self, ctx: &SchedContext) -> Option<RequestId> {
        largest_buffer_running(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u64, phase: ReqPhase) -> ReqView {
        ReqView {
            id: RequestId(id),
            phase,
            arrival: SimTime::from_secs(id),
            rate: 20.0,
            prompt_tokens: 100,
            context_tokens: 100,
            remaining_tokens: 200,
            buffered_tokens: 0,
            buffered_secs: 0.0,
            stalled: false,
            started: false,
            evict_secs: 0.0,
            load_secs: 0.0,
            reserved_tokens: 0,
            elastic: false,
            inbound: false,
        }
    }

    fn ctx(requests: Vec<ReqView>, free: u64, total: u64) -> SchedContext {
        crate::api::SchedContextBuilder::new(SimTime::from_secs(100))
            .requests(requests)
            .memory(free, total)
            .profile(1e-4, 2_000.0)
            .link(25e9, 131_072)
            .max_batch(64)
            .build()
    }

    #[test]
    fn preempts_rich_buffer_for_waiting_request() {
        let mut s = AndesScheduler::new();
        let mut rich = view(0, ReqPhase::Running);
        rich.started = true;
        rich.buffered_secs = 30.0;
        rich.buffered_tokens = 600;
        let waiting = view(1, ReqPhase::WaitingNew);
        // Memory so tight only one can run (cost 300 each, budget 368).
        let c = ctx(vec![rich, waiting], 0, 400);
        let plan = s.plan(&c);
        assert!(plan.actions.contains(&Action::Preempt {
            id: RequestId(0),
            mode: PreemptMode::Discard
        }));
        assert!(plan.actions.contains(&Action::AdmitPrefill(RequestId(1))));
    }

    #[test]
    fn hysteresis_protects_thin_buffers() {
        let mut s = AndesScheduler::new();
        let mut thin = view(0, ReqPhase::Running);
        thin.started = true;
        thin.buffered_secs = 0.5; // below the 2 s hysteresis
        let waiting = view(1, ReqPhase::WaitingNew);
        let c = ctx(vec![thin, waiting], 0, 400);
        let plan = s.plan(&c);
        assert!(
            !plan
                .actions
                .iter()
                .any(|a| matches!(a, Action::Preempt { id, .. } if *id == RequestId(0))),
            "thin buffer must not be preempted: {plan:?}"
        );
    }

    #[test]
    fn respects_interval_between_rerankings() {
        let mut s = AndesScheduler::new();
        let mut rich = view(0, ReqPhase::Running);
        rich.started = true;
        rich.buffered_secs = 30.0;
        let c = ctx(vec![rich, view(1, ReqPhase::WaitingNew)], 0, 400);
        let _ = s.plan(&c); // first call runs a full pass
        let plan = s.plan(&c); // immediate second call: admissions only
        assert!(
            plan.actions
                .iter()
                .all(|a| !matches!(a, Action::Preempt { .. })),
            "no preemption between intervals: {plan:?}"
        );
    }

    #[test]
    fn resumes_via_recompute_not_load() {
        let mut s = AndesScheduler::new();
        let cpu = view(0, ReqPhase::WaitingCpu);
        let c = ctx(vec![cpu], 10_000, 20_000);
        let plan = s.plan(&c);
        assert_eq!(plan.actions, vec![Action::AdmitPrefill(RequestId(0))]);
    }

    #[test]
    fn unstarted_requests_outrank_started() {
        let now = SimTime::from_secs(100);
        let mut started = view(0, ReqPhase::Running);
        started.started = true;
        started.buffered_secs = 0.0;
        let waiting = view(1, ReqPhase::WaitingNew);
        let ks = AndesScheduler::urgency_key(&started, now);
        let kw = AndesScheduler::urgency_key(&waiting, now);
        assert!(kw < ks, "waiting must be more urgent");
    }

    #[test]
    fn emergency_mode_is_discard() {
        let s = AndesScheduler::new();
        assert_eq!(s.emergency_preempt_mode(), PreemptMode::Discard);
    }

    #[test]
    fn no_horizon_before_first_pass() {
        let s = AndesScheduler::new();
        let c = ctx(vec![view(0, ReqPhase::Running)], 10_000, 20_000);
        assert_eq!(s.plan_horizon(&c), None);
    }

    #[test]
    fn horizon_runs_until_next_reranking() {
        let mut s = AndesScheduler::new();
        let c = ctx(vec![view(0, ReqPhase::Running)], 10_000, 20_000);
        let _ = s.plan(&c); // full pass anchors the interval at now = 100 s
        let h = s.plan_horizon(&c).expect("quiescent: horizon expected");
        assert_eq!(h.valid_until, SimTime::from_secs(100) + s.interval);
        assert!(h.gates_static);
    }

    #[test]
    fn no_horizon_with_pending_admission() {
        let mut s = AndesScheduler::new();
        let c = ctx(
            vec![view(0, ReqPhase::Running), view(1, ReqPhase::WaitingNew)],
            10_000,
            20_000,
        );
        let _ = s.plan(&c);
        assert_eq!(s.plan_horizon(&c), None);
    }
}
