//! Helpers shared by the scheduling policies.

use tokenflow_sim::RequestId;

use crate::api::{Action, ReqPhase, ReqView, SchedContext};

/// Memory a request needs to be admitted: its current context plus a small
/// decode-growth reserve, in tokens. Preemptive schedulers use this: they
/// reclaim memory later if growth outpaces the reserve.
pub fn admission_cost(view: &ReqView, headroom: u64) -> u64 {
    view.context_tokens + view.remaining_tokens.min(headroom)
}

/// Conservative admission cost in the SGLang/vLLM style: the full remaining
/// output is reserved up front, because a non-preemptive scheduler has no
/// cheap way to reclaim memory from a running request. This over-reserve is
/// precisely what serialises admission waves under burst (§2.3).
pub fn conservative_cost(view: &ReqView) -> u64 {
    view.context_tokens + view.remaining_tokens
}

/// How [`fcfs_admissions`] prices an admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionCosting {
    /// Reserve only a small growth headroom (preemptive schedulers).
    Headroom(u64),
    /// Reserve the full remaining output (SGLang/vLLM non-preemptive
    /// admission).
    Conservative,
}

/// True when [`fcfs_admissions`] provably returns an empty plan from the
/// context's phase counts alone: every batch slot is occupied, or nobody
/// is waiting. Deliberately **budget-independent** — memory freed by
/// decode progress could unblock a memory-stalled admission without any
/// engine-visible event, so a quiescence certificate (and the plan
/// horizons built on it) may only reason from the counts, which the
/// engine's decision epoch does protect.
pub fn fcfs_quiescent(ctx: &SchedContext) -> bool {
    let occupied = ctx.count_phase(ReqPhase::Running) + ctx.count_phase(ReqPhase::Transitioning);
    let waiting_total =
        ctx.count_phase(ReqPhase::WaitingNew) + ctx.count_phase(ReqPhase::WaitingCpu);
    occupied >= ctx.max_batch as usize || waiting_total == 0
}

/// True when [`fcfs_admissions`] provably returns an empty plan now
/// **and keeps doing so across in-flight KV transfer completions** — the
/// predicate plan horizons must use. A transfer completion flips a
/// request `Transitioning → Running` (load done) or `Transitioning →
/// WaitingCpu` (evict done) without any scheduler-visible decision, so a
/// horizon-grade certificate may not lean on the `Transitioning` count
/// staying put:
///
/// - `running + inbound_transitioning >= max_batch`: the quantity is
///   *flip-invariant*. An inbound completion (load done, prefill done)
///   moves a request from the inbound count into the running count —
///   sum unchanged; an outbound completion (evict done) touches
///   neither term. The running set itself never shrinks without an
///   epoch-tracked decision (preemption, finish, shed), and no new
///   transfer can start inside a horizon (starting one takes a plan
///   action or an emergency preemption, both epoch-tracked). Since
///   `occupied = running + transitioning ≥ running + inbound`, every
///   batch slot stays provably occupied at every instant of the
///   horizon, however in-flight transfers land.
/// - `waiting == 0 && transitioning == 0`: nobody to admit and no
///   transfer in flight whose completion could create a `WaitingCpu`
///   candidate.
///
/// Compared to [`fcfs_quiescent`] (which certifies a single call):
/// slots held by *outbound* transfers count there but not here,
/// because an evict completion would free them mid-horizon.
pub fn quiescent_across_transfers(ctx: &SchedContext) -> bool {
    let waiting_total =
        ctx.count_phase(ReqPhase::WaitingNew) + ctx.count_phase(ReqPhase::WaitingCpu);
    let inbound = ctx
        .in_phase(ReqPhase::Transitioning)
        .filter(|r| r.inbound)
        .count();
    ctx.count_phase(ReqPhase::Running) + inbound >= ctx.max_batch as usize
        || (waiting_total == 0 && ctx.count_phase(ReqPhase::Transitioning) == 0)
}

/// First-come-first-served admission of waiting requests.
///
/// Walks waiting requests in arrival order and admits while GPU memory and
/// batch slots last. With `strict_hol` (SGLang behaviour) admission stops at
/// the first request that does not fit — head-of-line blocking; without it,
/// later small requests may slip past a stuck large one.
pub fn fcfs_admissions(
    ctx: &SchedContext,
    costing: AdmissionCosting,
    strict_hol: bool,
) -> Vec<Action> {
    // This runs on the every-step fast path, so cheap exits come first:
    // with no batch slots (or nobody waiting) the admission loop below
    // could admit nothing regardless of memory — skip the O(live)
    // budget sums and the waiting-set sort entirely. (`fcfs_quiescent`
    // is the same predicate; the plan horizons lean on it being exactly
    // this early exit.)
    if fcfs_quiescent(ctx) {
        return Vec::new();
    }
    let occupied = ctx.count_phase(ReqPhase::Running) + ctx.count_phase(ReqPhase::Transitioning);
    let mut slots = (ctx.max_batch as usize).saturating_sub(occupied);

    let mut actions = Vec::new();
    // Free memory minus what admitted-but-unallocated requests will take.
    let committed: u64 = ctx.requests.iter().map(|r| r.reserved_tokens).sum();
    // The conservative (SGLang) regime additionally keeps the full
    // remaining output of every admitted request reserved for its lifetime.
    let conservative_reserve: u64 = if costing == AdmissionCosting::Conservative {
        ctx.requests
            .iter()
            .filter(|r| matches!(r.phase, ReqPhase::Running | ReqPhase::Transitioning))
            .map(|r| r.remaining_tokens)
            .sum()
    } else {
        0
    };
    let mut budget = ctx
        .gpu_free_tokens
        .saturating_sub(committed)
        .saturating_sub(conservative_reserve);

    let mut waiting: Vec<&ReqView> = ctx
        .requests
        .iter()
        .filter(|r| matches!(r.phase, ReqPhase::WaitingNew | ReqPhase::WaitingCpu))
        .collect();
    // Engine-built contexts list requests in id order, which for
    // generated workloads is already (arrival, id) order — checking
    // beats re-sorting an almost-always-sorted list every step.
    if !waiting.is_sorted_by_key(|r| (r.arrival, r.id)) {
        waiting.sort_by_key(|r| (r.arrival, r.id));
    }

    for r in waiting {
        if slots == 0 {
            break;
        }
        let cost = match costing {
            AdmissionCosting::Headroom(h) => admission_cost(r, h),
            AdmissionCosting::Conservative => conservative_cost(r),
        };
        if cost > budget {
            if strict_hol {
                break;
            }
            continue;
        }
        budget -= cost;
        slots -= 1;
        actions.push(match r.phase {
            ReqPhase::WaitingNew => Action::AdmitPrefill(r.id),
            ReqPhase::WaitingCpu => Action::Resume(r.id),
            _ => unreachable!("filtered to waiting phases"),
        });
    }
    actions
}

/// The running request holding the largest buffer (in seconds), if any —
/// the natural preemption victim for buffer-aware policies.
pub fn largest_buffer_running(ctx: &SchedContext) -> Option<RequestId> {
    ctx.in_phase(ReqPhase::Running)
        .max_by(|a, b| {
            a.buffered_secs
                .partial_cmp(&b.buffered_secs)
                .expect("buffer seconds are finite")
                .then(b.id.cmp(&a.id))
        })
        .map(|r| r.id)
}

/// Token value of generating for a request now, per the effective-token
/// rule: full value while the buffer holds < 10 % of the total output,
/// linearly decaying to zero at 20 %.
pub fn token_value(view: &ReqView) -> f64 {
    let generated = view.context_tokens - view.prompt_tokens;
    let total_output = (generated + view.remaining_tokens).max(1);
    let tau = 0.10 * total_output as f64;
    let cut = 0.20 * total_output as f64;
    let b = view.buffered_tokens as f64;
    if b <= tau {
        1.0
    } else if b >= cut {
        0.0
    } else {
        1.0 - (b - tau) / (cut - tau)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokenflow_sim::SimTime;

    pub(crate) fn view(id: u64, phase: ReqPhase) -> ReqView {
        ReqView {
            id: RequestId(id),
            phase,
            arrival: SimTime::from_secs(id),
            rate: 20.0,
            prompt_tokens: 100,
            context_tokens: 100,
            remaining_tokens: 200,
            buffered_tokens: 0,
            buffered_secs: 0.0,
            stalled: false,
            started: false,
            evict_secs: 0.0,
            load_secs: 0.0,
            reserved_tokens: 0,
            elastic: false,
            inbound: false,
        }
    }

    pub(crate) fn ctx(requests: Vec<ReqView>, free: u64) -> SchedContext {
        crate::api::SchedContextBuilder::new(SimTime::from_secs(100))
            .requests(requests)
            .memory(free, 20_000)
            .profile(1e-4, 2_000.0)
            .link(25e9, 131_072)
            .max_batch(8)
            .build()
    }

    #[test]
    fn admission_cost_includes_headroom() {
        let v = view(0, ReqPhase::WaitingNew);
        assert_eq!(admission_cost(&v, 64), 164);
        // Headroom capped by the remaining output.
        let mut tiny = v;
        tiny.remaining_tokens = 10;
        assert_eq!(admission_cost(&tiny, 64), 110);
    }

    #[test]
    fn conservative_cost_reserves_full_output() {
        let v = view(0, ReqPhase::WaitingNew);
        assert_eq!(conservative_cost(&v), 300);
    }

    #[test]
    fn conservative_admission_serialises_waves() {
        // Three requests each needing 300 conservative tokens; 700 free
        // admits only two.
        let c = ctx(
            vec![
                view(0, ReqPhase::WaitingNew),
                view(1, ReqPhase::WaitingNew),
                view(2, ReqPhase::WaitingNew),
            ],
            700,
        );
        let actions = fcfs_admissions(&c, AdmissionCosting::Conservative, true);
        assert_eq!(actions.len(), 2);
    }

    #[test]
    fn fcfs_admits_in_arrival_order() {
        let c = ctx(
            vec![
                view(2, ReqPhase::WaitingNew),
                view(0, ReqPhase::WaitingNew),
                view(1, ReqPhase::WaitingNew),
            ],
            10_000,
        );
        let actions = fcfs_admissions(&c, AdmissionCosting::Headroom(64), true);
        assert_eq!(
            actions,
            vec![
                Action::AdmitPrefill(RequestId(0)),
                Action::AdmitPrefill(RequestId(1)),
                Action::AdmitPrefill(RequestId(2)),
            ]
        );
    }

    #[test]
    fn fcfs_strict_hol_blocks_behind_large_request() {
        let mut big = view(0, ReqPhase::WaitingNew);
        big.context_tokens = 9_999;
        big.prompt_tokens = 9_999;
        let small = view(1, ReqPhase::WaitingNew);
        let c = ctx(vec![big, small], 500);
        assert!(fcfs_admissions(&c, AdmissionCosting::Headroom(64), true).is_empty());
        // Relaxed mode lets the small request through.
        let relaxed = fcfs_admissions(&c, AdmissionCosting::Headroom(64), false);
        assert_eq!(relaxed, vec![Action::AdmitPrefill(RequestId(1))]);
    }

    #[test]
    fn fcfs_respects_batch_slots() {
        let running: Vec<ReqView> = (0..8).map(|i| view(i, ReqPhase::Running)).collect();
        let mut all = running;
        all.push(view(8, ReqPhase::WaitingNew));
        let c = ctx(all, 10_000);
        assert!(fcfs_admissions(&c, AdmissionCosting::Headroom(64), true).is_empty());
    }

    #[test]
    fn fcfs_resumes_cpu_resident() {
        let c = ctx(vec![view(0, ReqPhase::WaitingCpu)], 10_000);
        assert_eq!(
            fcfs_admissions(&c, AdmissionCosting::Headroom(64), true),
            vec![Action::Resume(RequestId(0))]
        );
    }

    #[test]
    fn largest_buffer_victim() {
        let mut a = view(0, ReqPhase::Running);
        a.buffered_secs = 1.0;
        let mut b = view(1, ReqPhase::Running);
        b.buffered_secs = 5.0;
        let c = ctx(vec![a, b, view(2, ReqPhase::WaitingNew)], 0);
        assert_eq!(largest_buffer_running(&c), Some(RequestId(1)));
        let empty = ctx(vec![view(2, ReqPhase::WaitingNew)], 0);
        assert_eq!(largest_buffer_running(&empty), None);
    }

    #[test]
    fn token_value_decays_with_buffer() {
        let mut v = view(0, ReqPhase::Running);
        v.context_tokens = 200; // 100 generated
        v.remaining_tokens = 900; // total output 1000
        v.buffered_tokens = 50;
        assert_eq!(token_value(&v), 1.0);
        v.buffered_tokens = 150;
        assert!((token_value(&v) - 0.5).abs() < 1e-9);
        v.buffered_tokens = 500;
        assert_eq!(token_value(&v), 0.0);
    }
}
