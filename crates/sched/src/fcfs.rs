//! The SGLang-style FCFS baseline scheduler.
//!
//! Conservative first-come-first-served with prefill priority: requests are
//! admitted strictly in arrival order while GPU memory lasts (head-of-line
//! blocking included), never preempted proactively, and evicted for
//! recompute only when the engine hits memory pressure. This is the paper's
//! primary baseline and exhibits exactly the burst pathology of Figure 2:
//! queued requests starve on TTFT while running requests generate far
//! beyond their readers' consumption rate.

use tokenflow_sim::SimTime;

use crate::api::{PlanHorizon, PrefillPolicy, SchedContext, SchedPlan, Scheduler};
use crate::util::{fcfs_admissions, quiescent_across_transfers, AdmissionCosting};

/// SGLang-style conservative FCFS scheduling.
///
/// Admission reserves the request's **full remaining output** (as SGLang
/// and vLLM do for non-preemptive serving), which serialises admission
/// waves under burst — the Figure 2 pathology.
///
/// # Examples
///
/// ```
/// use tokenflow_sched::{FcfsScheduler, Scheduler};
///
/// let s = FcfsScheduler::new();
/// assert_eq!(s.name(), "SGLang");
/// ```
#[derive(Debug, Clone)]
pub struct FcfsScheduler {
    costing: AdmissionCosting,
}

impl FcfsScheduler {
    /// Creates the scheduler with SGLang's conservative full-output
    /// admission reserve.
    pub fn new() -> Self {
        FcfsScheduler {
            costing: AdmissionCosting::Conservative,
        }
    }

    /// Uses a small headroom reserve instead of the conservative one
    /// (useful for isolating admission effects in experiments).
    pub fn with_headroom(headroom: u64) -> Self {
        FcfsScheduler {
            costing: AdmissionCosting::Headroom(headroom),
        }
    }
}

impl Default for FcfsScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for FcfsScheduler {
    fn name(&self) -> &'static str {
        "SGLang"
    }

    fn plan(&mut self, ctx: &SchedContext) -> SchedPlan {
        SchedPlan::of(fcfs_admissions(ctx, self.costing, true))
    }

    /// FCFS is stateless and time-free: while every batch slot holds a
    /// *running* request (or nobody waits and no transfer is in
    /// flight), `plan` is a provable no-op until some epoch-tracked
    /// event changes the phase counts — an unbounded horizon that also
    /// survives in-flight transfer completions. The default gate never
    /// paces, so the batch replays.
    fn plan_horizon(&self, ctx: &SchedContext) -> Option<PlanHorizon> {
        quiescent_across_transfers(ctx).then_some(PlanHorizon {
            valid_until: SimTime::MAX,
            gates_static: true,
        })
    }

    fn prefill_policy(&self) -> PrefillPolicy {
        PrefillPolicy::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{Action, ReqPhase, ReqView};
    use tokenflow_sim::{RequestId, SimTime};

    fn view(id: u64, phase: ReqPhase) -> ReqView {
        ReqView {
            id: RequestId(id),
            phase,
            arrival: SimTime::from_secs(id),
            rate: 20.0,
            prompt_tokens: 100,
            context_tokens: 100,
            remaining_tokens: 200,
            buffered_tokens: 0,
            buffered_secs: 0.0,
            stalled: false,
            started: false,
            evict_secs: 0.0,
            load_secs: 0.0,
            reserved_tokens: 0,
            elastic: false,
            inbound: false,
        }
    }

    fn ctx(requests: Vec<ReqView>, free: u64) -> SchedContext {
        crate::api::SchedContextBuilder::new(SimTime::ZERO)
            .requests(requests)
            .memory(free, 20_000)
            .profile(1e-4, 2_000.0)
            .link(25e9, 131_072)
            .max_batch(64)
            .build()
    }

    #[test]
    fn admits_fifo_until_memory_runs_out() {
        let mut s = FcfsScheduler::new();
        // Conservative cost is 300 tokens each; 700 free fits two.
        let c = ctx(
            vec![
                view(0, ReqPhase::WaitingNew),
                view(1, ReqPhase::WaitingNew),
                view(2, ReqPhase::WaitingNew),
            ],
            700,
        );
        let plan = s.plan(&c);
        assert_eq!(
            plan.actions,
            vec![
                Action::AdmitPrefill(RequestId(0)),
                Action::AdmitPrefill(RequestId(1)),
            ]
        );
    }

    #[test]
    fn never_preempts() {
        let mut s = FcfsScheduler::new();
        let mut rich = view(0, ReqPhase::Running);
        rich.buffered_secs = 100.0;
        rich.buffered_tokens = 2_000;
        let c = ctx(vec![rich, view(1, ReqPhase::WaitingNew)], 0);
        let plan = s.plan(&c);
        assert!(
            plan.actions
                .iter()
                .all(|a| !matches!(a, Action::Preempt { .. })),
            "FCFS must not preempt: {plan:?}"
        );
    }

    #[test]
    fn idle_context_produces_empty_plan() {
        let mut s = FcfsScheduler::new();
        let c = ctx(vec![view(0, ReqPhase::Running)], 10_000);
        assert!(s.plan(&c).is_empty());
    }

    #[test]
    fn uses_full_prefill_policy() {
        assert_eq!(FcfsScheduler::new().prefill_policy(), PrefillPolicy::Full);
    }

    #[test]
    fn unbounded_horizon_when_nobody_waits() {
        let s = FcfsScheduler::new();
        let c = ctx(vec![view(0, ReqPhase::Running)], 10_000);
        let h = s.plan_horizon(&c).expect("quiescent: horizon expected");
        assert_eq!(h.valid_until, SimTime::MAX);
        assert!(h.gates_static);
    }

    #[test]
    fn no_horizon_while_waiting_and_slots_free() {
        let s = FcfsScheduler::new();
        // Even with zero free memory: conservative budgets can grow as
        // running requests deliver, so a pending admission blocks the
        // certificate regardless of the current budget.
        let c = ctx(
            vec![view(0, ReqPhase::Running), view(1, ReqPhase::WaitingNew)],
            0,
        );
        assert_eq!(s.plan_horizon(&c), None);
    }
}
