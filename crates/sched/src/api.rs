//! The engine-facing scheduling interface.

use tokenflow_sim::{RequestId, SimDuration, SimTime};

/// Lifecycle phase of a request as the scheduler sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReqPhase {
    /// Queued with no KV anywhere: needs a (re)prefill to run.
    WaitingNew,
    /// KV offloaded to host memory: needs a load (or recompute) to run.
    WaitingCpu,
    /// KV transfer in flight (evicting or loading); untouchable until the
    /// transition completes.
    Transitioning,
    /// In the running batch, generating tokens.
    Running,
}

/// Read-only per-request state exposed to schedulers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReqView {
    /// The request.
    pub id: RequestId,
    /// Current phase.
    pub phase: ReqPhase,
    /// Submission time.
    pub arrival: SimTime,
    /// Required streaming rate, tokens/second.
    pub rate: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Current context length (prompt + generated so far).
    pub context_tokens: u64,
    /// Output tokens still to generate.
    pub remaining_tokens: u64,
    /// Client buffer occupancy in tokens.
    pub buffered_tokens: u64,
    /// Client buffer occupancy in seconds at the required rate.
    pub buffered_secs: f64,
    /// Whether the client is stalled right now.
    pub stalled: bool,
    /// Whether the request has produced its first token.
    pub started: bool,
    /// Estimated seconds to evict this request now (D2H queue + dirty
    /// flush; near zero under write-through).
    pub evict_secs: f64,
    /// Estimated seconds to load this request's KV back (H2D queue + full
    /// context transfer).
    pub load_secs: f64,
    /// GPU tokens this request is committed to allocate but has not yet
    /// (admitted prompts still prefilling). Admission budgets must subtract
    /// these.
    pub reserved_tokens: u64,
    /// Elastic (agent) client: the rate is a reference priority, not a
    /// reader to protect — yield first under load, accelerate when idle
    /// (paper §8).
    pub elastic: bool,
    /// Transfer direction for [`ReqPhase::Transitioning`] requests: `true`
    /// when the request is headed *into* the decode batch (prefilling, or
    /// loading KV back onto the GPU), `false` when it is on its way out
    /// (evicting to host). Always `false` outside `Transitioning`.
    ///
    /// Horizon certificates need this distinction: an inbound transfer
    /// completes into `Running` (it keeps occupying its batch slot), while
    /// an outbound one completes into `WaitingCpu` (its slot frees). See
    /// [`crate::util::quiescent_across_transfers`].
    pub inbound: bool,
}

/// Read-only system state handed to [`Scheduler::plan`] each iteration.
#[derive(Debug, Clone)]
pub struct SchedContext {
    /// Current time.
    pub now: SimTime,
    /// All live requests (arrived, not finished), in arrival order.
    pub requests: Vec<ReqView>,
    /// Free GPU KV capacity in tokens.
    pub gpu_free_tokens: u64,
    /// Total GPU KV capacity in tokens.
    pub gpu_total_tokens: u64,
    /// Device-to-host transfer queue depth.
    pub d2h_queue_len: usize,
    /// Host-to-device transfer queue depth.
    pub h2d_queue_len: usize,
    /// Time for the D2H queue to drain.
    pub d2h_eta: SimDuration,
    /// Time for the H2D queue to drain.
    pub h2d_eta: SimDuration,
    /// Profiled prefill cost per token, seconds (sliding-window average).
    pub prefill_secs_per_token: f64,
    /// Profiled aggregate decode throughput Γ, tokens/second.
    pub decode_throughput: f64,
    /// Host link bandwidth, bytes/second.
    pub pcie_bandwidth: f64,
    /// KV bytes per token.
    pub kv_bytes_per_token: u64,
    /// Hard cap on concurrently running requests.
    pub max_batch: u32,
    /// True when the engine is recording a decision trace and wants
    /// [`SchedPlan::notes`] filled. Off (the default), schedulers must
    /// skip note bookkeeping entirely so the hot path stays
    /// allocation-free; decisions themselves must never depend on this
    /// flag.
    pub trace_notes: bool,
    /// Per-phase request counts, cached at construction so
    /// [`SchedContext::count_phase`] is O(1) on the engine's hot path
    /// (pacing gates query it per batch member per iteration). Private:
    /// contexts are built through [`SchedContextBuilder`] (or the
    /// engine's in-place rebuild), both of which keep it consistent;
    /// code that mutates `requests` directly afterwards must call
    /// [`SchedContext::recount_phases`].
    phase_counts: [usize; 4],
}

const fn phase_index(phase: ReqPhase) -> usize {
    match phase {
        ReqPhase::WaitingNew => 0,
        ReqPhase::WaitingCpu => 1,
        ReqPhase::Transitioning => 2,
        ReqPhase::Running => 3,
    }
}

impl SchedContext {
    /// Views filtered to a phase.
    pub fn in_phase(&self, phase: ReqPhase) -> impl Iterator<Item = &ReqView> {
        self.requests.iter().filter(move |r| r.phase == phase)
    }

    /// The view of one request, by binary search over the id-ordered
    /// request list.
    ///
    /// Engine-built contexts list requests in ascending id order (ids are
    /// dense and the engine walks its live-id index), which is what makes
    /// per-member lookups on the batch-composition hot path O(log live)
    /// instead of a linear scan. The ordering is asserted once per
    /// context build (see [`SchedContext::debug_assert_id_ordered`]), not
    /// here — this lookup runs per batch member per step. Hand-built
    /// contexts that violate the ordering get unspecified (but
    /// memory-safe) results.
    pub fn view_of(&self, id: RequestId) -> Option<&ReqView> {
        self.requests
            .binary_search_by(|r| r.id.cmp(&id))
            .ok()
            .map(|i| &self.requests[i])
    }

    /// Debug-build check that `requests` is in strictly ascending id
    /// order — the invariant [`SchedContext::view_of`] relies on. Called
    /// once per context (re)build; a no-op in release builds.
    pub fn debug_assert_id_ordered(&self) {
        debug_assert!(
            self.requests.windows(2).all(|w| w[0].id < w[1].id),
            "SchedContext requests must be in ascending id order"
        );
    }

    /// Number of requests in a phase — O(1), from the counts cached at
    /// construction (see [`SchedContext::recount_phases`]).
    pub fn count_phase(&self, phase: ReqPhase) -> usize {
        self.phase_counts[phase_index(phase)]
    }

    /// Mutable view of one request, by binary search (same ordering
    /// contract as [`SchedContext::view_of`]).
    ///
    /// This exists for the engine's plan-horizon fast path, which
    /// refreshes a member's gate-read fields in place between full
    /// context rebuilds. Callers that change a view's `phase` must call
    /// [`SchedContext::recount_phases`] afterwards or the cached counts
    /// go stale.
    pub fn view_mut_of(&mut self, id: RequestId) -> Option<&mut ReqView> {
        self.requests
            .binary_search_by(|r| r.id.cmp(&id))
            .ok()
            .map(|i| &mut self.requests[i])
    }

    /// Moves the context's clock without rebuilding anything else — the
    /// plan-horizon fast path advances retained contexts step by step.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Re-phases one request's view in place, keeping the cached phase
    /// counts consistent. Returns `false` (and changes nothing) when the
    /// request has no view here.
    ///
    /// This exists for the engine's plan-horizon fast path: a KV
    /// transfer completing inside a horizon flips a request
    /// `Transitioning → Running` (load done) or `Transitioning →
    /// WaitingCpu` (evict done), and the retained context must mirror
    /// the flip before gates read it again.
    pub fn update_phase(&mut self, id: RequestId, phase: ReqPhase) -> bool {
        let Ok(i) = self.requests.binary_search_by(|r| r.id.cmp(&id)) else {
            return false;
        };
        let old = self.requests[i].phase;
        if old != phase {
            self.phase_counts[phase_index(old)] -= 1;
            self.phase_counts[phase_index(phase)] += 1;
            self.requests[i].phase = phase;
            // Direction is a Transitioning-only attribute.
            if phase != ReqPhase::Transitioning {
                self.requests[i].inbound = false;
            }
        }
        true
    }

    /// Recomputes the cached per-phase counts from `requests`. Call after
    /// mutating the request list in place; the builder and the engine's
    /// context rebuild do this for you.
    pub fn recount_phases(&mut self) {
        let mut counts = [0usize; 4];
        for r in &self.requests {
            counts[phase_index(r.phase)] += 1;
        }
        self.phase_counts = counts;
    }

    /// Estimated time to transfer one request's full context over the host
    /// link.
    pub fn transfer_secs(&self, context_tokens: u64) -> f64 {
        (context_tokens * self.kv_bytes_per_token) as f64 / self.pcie_bandwidth
    }

    /// Estimated time to recompute a context from scratch (prefill).
    pub fn recompute_secs(&self, context_tokens: u64) -> f64 {
        context_tokens as f64 * self.prefill_secs_per_token
    }
}

/// How an eviction should be carried out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptMode {
    /// Offload the KV cache to host memory (resume by loading it back).
    Offload,
    /// Discard the KV cache (resume by recomputing the prefill). Baselines
    /// without hierarchical memory use this.
    Discard,
}

/// One scheduling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Start (or restart, after a discard) this request's prefill.
    AdmitPrefill(RequestId),
    /// Load this host-resident request's KV back onto the GPU.
    Resume(RequestId),
    /// Remove this running request from the batch.
    Preempt {
        /// The victim.
        id: RequestId,
        /// Offload or discard.
        mode: PreemptMode,
    },
}

/// A scheduler's explanation of *why* this pass decided what it did —
/// recorded only when [`SchedContext::trace_notes`] is set, and turned
/// into trace events by the engine. Notes never affect execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanNote {
    /// A full pass changed a request's priority.
    Reprice {
        id: RequestId,
        before: f64,
        after: f64,
    },
    /// A local-search step swapped one selected request for another.
    Swap {
        evicted: RequestId,
        admitted: RequestId,
        evicted_priority: f64,
        admitted_priority: f64,
    },
}

/// The scheduler's output for one iteration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedPlan {
    /// Decisions, applied in order.
    pub actions: Vec<Action>,
    /// Decision annotations for the trace journal; always empty unless
    /// the context set [`SchedContext::trace_notes`] (an empty `Vec`
    /// costs nothing — it never allocates).
    pub notes: Vec<PlanNote>,
}

impl SchedPlan {
    /// The empty plan.
    pub fn none() -> Self {
        SchedPlan::default()
    }

    /// A plan with actions and no notes.
    pub fn of(actions: Vec<Action>) -> Self {
        SchedPlan {
            actions,
            notes: Vec::new(),
        }
    }

    /// True when the plan makes no changes.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// A scheduler's certificate that its decision is invariant for a while.
///
/// Returned by [`Scheduler::plan_horizon`] *after* a plan has been
/// applied: it promises that, starting from the context it was asked
/// about, every [`Scheduler::plan`] call before `valid_until` would
/// return an empty plan **and leave the scheduler's internal state
/// untouched** — provided none of the engine's horizon-invalidating
/// events fire first (the engine tracks those with a decision-epoch
/// counter: arrivals, admissions, preemptions, resumes, prefill
/// progress, request completions, memory-fit interventions).
///
/// KV transfers *already in flight* when the horizon is issued are NOT
/// epoch events: the certificate must stay valid across their
/// completions, each of which flips one request `Transitioning →
/// Running` (load done) or `Transitioning → WaitingCpu` (evict done)
/// without any scheduler decision. The engine mirrors every flip into
/// the retained context (phases and counts, via
/// [`SchedContext::update_phase`]) and recomposes the batch before the
/// next certified step, so gates always read true phases — but the
/// *plan-is-a-no-op* promise has to survive the flips on its own; see
/// [`quiescent_across_transfers`](crate::util::quiescent_across_transfers)
/// for the standard admission-side argument. (New transfers cannot
/// start inside a horizon: starting one takes a plan action or an
/// emergency preemption, both epoch-tracked.)
///
/// `gates_static` additionally certifies that every
/// [`Scheduler::decode_gate`] answer is constant over the horizon, so the
/// engine may replay the retained iteration batch verbatim. When it is
/// `false`, gate answers may flip as client buffers drain, but they are
/// certified to depend only on the per-request *gate-read fields* —
/// `started`, `elastic`, `prompt_tokens`, `context_tokens`,
/// `remaining_tokens`, `buffered_tokens`, `buffered_secs`, `stalled` —
/// plus the context's phase counts; the engine refreshes exactly those
/// fields for running members and recomposes the batch, still skipping
/// the full context rebuild and the plan call.
///
/// Horizons are allowed to be conservative (shorter than the truth —
/// the engine just falls back to the full pipeline sooner); they must
/// never be optimistic, or the fast path would change behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanHorizon {
    /// First instant at which `plan` may act again. Steps whose start
    /// time is `>= valid_until` take the full pipeline.
    pub valid_until: SimTime,
    /// True when every decode-gate answer is also constant over the
    /// horizon, so the retained batch can be replayed without refresh.
    pub gates_static: bool,
}

/// How prefill work is batched into iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefillPolicy {
    /// Whole prompts run in dedicated prefill iterations, prioritised over
    /// decode (SGLang default).
    Full,
    /// At most this many prompt tokens are mixed into each decode iteration
    /// (Sarathi-style chunked prefill).
    Chunked(u64),
}

/// A scheduling policy.
///
/// Implementations must be deterministic: identical contexts must produce
/// identical plans, so simulation runs reproduce bit-for-bit.
///
/// `Send` is a supertrait so engines owning a policy can be advanced on
/// worker threads — the cluster crate's parallel epoch executor moves
/// whole replicas (engine + boxed scheduler) across threads between
/// arrival barriers. Policies hold only their own plain data (no shared
/// interior mutability), so the bound is free in practice.
pub trait Scheduler: Send {
    /// Short policy name for reports (e.g. `"TokenFlow"`).
    fn name(&self) -> &'static str;

    /// Produces this iteration's plan.
    fn plan(&mut self, ctx: &SchedContext) -> SchedPlan;

    /// Certifies, after this iteration's plan has been applied and the
    /// batch composed against `ctx`, how long the decision stays valid
    /// (see [`PlanHorizon`]). `None` — the default — means "no
    /// certificate": the engine runs the full pipeline every step.
    ///
    /// Implementations must be *conservative*: the engine skips its
    /// context rebuild and the `plan` call inside the horizon, so an
    /// optimistic horizon changes behavior. A policy should only return
    /// `Some` when it can prove from `ctx` alone that `plan` would
    /// no-op (and not mutate scheduler state) until `valid_until`,
    /// absent the engine's epoch-tracked events.
    fn plan_horizon(&self, ctx: &SchedContext) -> Option<PlanHorizon> {
        let _ = ctx;
        None
    }

    /// How the engine should batch prefill work.
    fn prefill_policy(&self) -> PrefillPolicy {
        PrefillPolicy::Full
    }

    /// Whether a running request should decode this iteration.
    ///
    /// Pacing policies return `false` for requests whose buffers are
    /// already past the useful threshold *when another request could use
    /// the capacity*; the default never gates.
    fn decode_gate(&self, view: &ReqView, ctx: &SchedContext) -> bool {
        let _ = (view, ctx);
        true
    }

    /// Preemption mode for the engine's emergency out-of-memory path.
    fn emergency_preempt_mode(&self) -> PreemptMode {
        PreemptMode::Discard
    }

    /// Victim choice for the engine's emergency out-of-memory path.
    ///
    /// The default mirrors SGLang/vLLM: preempt the most recently arrived
    /// running request (lowest FCFS priority).
    fn emergency_victim(&self, ctx: &SchedContext) -> Option<RequestId> {
        ctx.in_phase(ReqPhase::Running)
            .max_by_key(|r| (r.arrival, r.id))
            .map(|r| r.id)
    }
}

/// Boxed schedulers are schedulers: every trait method forwards, so
/// dynamic dispatch composes with APIs that take `impl Scheduler`.
impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn plan(&mut self, ctx: &SchedContext) -> SchedPlan {
        (**self).plan(ctx)
    }

    fn plan_horizon(&self, ctx: &SchedContext) -> Option<PlanHorizon> {
        (**self).plan_horizon(ctx)
    }

    fn prefill_policy(&self) -> PrefillPolicy {
        (**self).prefill_policy()
    }

    fn decode_gate(&self, view: &ReqView, ctx: &SchedContext) -> bool {
        (**self).decode_gate(view, ctx)
    }

    fn emergency_preempt_mode(&self) -> PreemptMode {
        (**self).emergency_preempt_mode()
    }

    fn emergency_victim(&self, ctx: &SchedContext) -> Option<RequestId> {
        (**self).emergency_victim(ctx)
    }
}

/// Incremental constructor for [`SchedContext`].
///
/// The engine's admission stage assembles contexts field group by field
/// group (request views, memory state, I/O state, profiled rates); the
/// builder keeps that assembly explicit and gives tests a way to construct
/// contexts without spelling out every field. Unset groups default to a
/// neutral idle system: no requests, no memory, empty I/O queues, zero
/// profiled rates, `max_batch` 1.
#[derive(Debug, Clone)]
pub struct SchedContextBuilder {
    ctx: SchedContext,
}

impl SchedContextBuilder {
    /// Starts a context at `now` with neutral defaults.
    pub fn new(now: SimTime) -> Self {
        SchedContextBuilder {
            ctx: SchedContext {
                now,
                requests: Vec::new(),
                gpu_free_tokens: 0,
                gpu_total_tokens: 0,
                d2h_queue_len: 0,
                h2d_queue_len: 0,
                d2h_eta: SimDuration::ZERO,
                h2d_eta: SimDuration::ZERO,
                prefill_secs_per_token: 0.0,
                decode_throughput: 0.0,
                pcie_bandwidth: 1.0,
                kv_bytes_per_token: 0,
                max_batch: 1,
                trace_notes: false,
                phase_counts: [0; 4],
            },
        }
    }

    /// Sets the live request views (arrival order).
    pub fn requests(mut self, views: Vec<ReqView>) -> Self {
        self.ctx.requests = views;
        self
    }

    /// Adds one request view.
    pub fn push_request(mut self, view: ReqView) -> Self {
        self.ctx.requests.push(view);
        self
    }

    /// Sets GPU KV capacity (free and total, in tokens).
    pub fn memory(mut self, free_tokens: u64, total_tokens: u64) -> Self {
        self.ctx.gpu_free_tokens = free_tokens;
        self.ctx.gpu_total_tokens = total_tokens;
        self
    }

    /// Sets host-link queue depths and drain ETAs.
    pub fn io_state(
        mut self,
        d2h_queue_len: usize,
        h2d_queue_len: usize,
        d2h_eta: SimDuration,
        h2d_eta: SimDuration,
    ) -> Self {
        self.ctx.d2h_queue_len = d2h_queue_len;
        self.ctx.h2d_queue_len = h2d_queue_len;
        self.ctx.d2h_eta = d2h_eta;
        self.ctx.h2d_eta = h2d_eta;
        self
    }

    /// Sets the profiled rates: prefill cost per token and the decode
    /// capacity estimate Γ.
    pub fn profile(mut self, prefill_secs_per_token: f64, decode_throughput: f64) -> Self {
        self.ctx.prefill_secs_per_token = prefill_secs_per_token;
        self.ctx.decode_throughput = decode_throughput;
        self
    }

    /// Sets the host-link bandwidth and KV footprint per token.
    pub fn link(mut self, pcie_bandwidth: f64, kv_bytes_per_token: u64) -> Self {
        self.ctx.pcie_bandwidth = pcie_bandwidth;
        self.ctx.kv_bytes_per_token = kv_bytes_per_token;
        self
    }

    /// Sets the hard cap on concurrently running requests.
    pub fn max_batch(mut self, max_batch: u32) -> Self {
        self.ctx.max_batch = max_batch;
        self
    }

    /// Finishes the context (computing the cached phase counts).
    pub fn build(self) -> SchedContext {
        let mut ctx = self.ctx;
        ctx.recount_phases();
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u64, phase: ReqPhase) -> ReqView {
        ReqView {
            id: RequestId(id),
            phase,
            arrival: SimTime::from_secs(id),
            rate: 20.0,
            prompt_tokens: 100,
            context_tokens: 100,
            remaining_tokens: 100,
            buffered_tokens: 0,
            buffered_secs: 0.0,
            stalled: false,
            started: false,
            evict_secs: 0.0,
            load_secs: 0.0,
            reserved_tokens: 0,
            elastic: false,
            inbound: false,
        }
    }

    fn ctx(requests: Vec<ReqView>) -> SchedContext {
        SchedContextBuilder::new(SimTime::ZERO)
            .requests(requests)
            .memory(10_000, 20_000)
            .profile(1e-4, 2_000.0)
            .link(25e9, 131_072)
            .max_batch(64)
            .build()
    }

    #[test]
    fn phase_filters() {
        let c = ctx(vec![
            view(0, ReqPhase::Running),
            view(1, ReqPhase::WaitingNew),
            view(2, ReqPhase::Running),
        ]);
        assert_eq!(c.count_phase(ReqPhase::Running), 2);
        assert_eq!(c.count_phase(ReqPhase::WaitingNew), 1);
        assert_eq!(c.count_phase(ReqPhase::WaitingCpu), 0);
    }

    #[test]
    fn transfer_and_recompute_estimates() {
        let c = ctx(vec![]);
        // 1000 tokens × 131072 B / 25 GB/s ≈ 5.24 ms.
        assert!((c.transfer_secs(1000) - 0.00524).abs() < 1e-4);
        // 1000 tokens × 0.1 ms = 0.1 s.
        assert!((c.recompute_secs(1000) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn default_emergency_victim_is_latest_arrival() {
        struct Dummy;
        impl Scheduler for Dummy {
            fn name(&self) -> &'static str {
                "dummy"
            }
            fn plan(&mut self, _ctx: &SchedContext) -> SchedPlan {
                SchedPlan::none()
            }
        }
        let c = ctx(vec![
            view(0, ReqPhase::Running),
            view(5, ReqPhase::Running),
            view(9, ReqPhase::WaitingNew),
        ]);
        assert_eq!(Dummy.emergency_victim(&c), Some(RequestId(5)));
    }

    #[test]
    fn empty_plan_is_empty() {
        assert!(SchedPlan::none().is_empty());
    }

    #[test]
    fn builder_defaults_are_neutral() {
        let c = SchedContextBuilder::new(SimTime::from_secs(3)).build();
        assert_eq!(c.now, SimTime::from_secs(3));
        assert!(c.requests.is_empty());
        assert_eq!(c.gpu_free_tokens, 0);
        assert_eq!(c.max_batch, 1);
    }

    #[test]
    fn builder_sets_all_field_groups() {
        let c = SchedContextBuilder::new(SimTime::ZERO)
            .push_request(view(0, ReqPhase::Running))
            .memory(1_000, 2_000)
            .io_state(
                3,
                4,
                SimDuration::from_millis(5),
                SimDuration::from_millis(6),
            )
            .profile(1e-4, 5_000.0)
            .link(25e9, 131_072)
            .max_batch(64)
            .build();
        assert_eq!(c.requests.len(), 1);
        assert_eq!((c.gpu_free_tokens, c.gpu_total_tokens), (1_000, 2_000));
        assert_eq!((c.d2h_queue_len, c.h2d_queue_len), (3, 4));
        assert_eq!(c.d2h_eta, SimDuration::from_millis(5));
        assert_eq!(c.decode_throughput, 5_000.0);
        assert_eq!(c.kv_bytes_per_token, 131_072);
        assert_eq!(c.max_batch, 64);
    }

    #[test]
    fn boxed_scheduler_forwards_every_method() {
        struct Custom;
        impl Scheduler for Custom {
            fn name(&self) -> &'static str {
                "custom"
            }
            fn plan(&mut self, _ctx: &SchedContext) -> SchedPlan {
                SchedPlan::none()
            }
            fn prefill_policy(&self) -> PrefillPolicy {
                PrefillPolicy::Chunked(77)
            }
            fn emergency_preempt_mode(&self) -> PreemptMode {
                PreemptMode::Offload
            }
        }
        let mut boxed: Box<dyn Scheduler> = Box::new(Custom);
        let c = ctx(vec![view(2, ReqPhase::Running)]);
        assert_eq!(boxed.name(), "custom");
        assert!(boxed.plan(&c).is_empty());
        assert_eq!(boxed.prefill_policy(), PrefillPolicy::Chunked(77));
        assert_eq!(boxed.emergency_preempt_mode(), PreemptMode::Offload);
        assert_eq!(boxed.emergency_victim(&c), Some(RequestId(2)));
    }
}
