//! Scheduling policies for LLM text streaming (paper §4).
//!
//! Four schedulers share one engine-facing interface ([`Scheduler`]):
//!
//! * [`FcfsScheduler`](fcfs::FcfsScheduler) — SGLang's conservative
//!   first-come-first-served, prefill-prioritised policy with reactive
//!   recompute-on-OOM preemption. The paper's primary baseline.
//! * [`ChunkedPrefillScheduler`](chunked::ChunkedPrefillScheduler) — SGLang
//!   with chunked prefill mixed into decode iterations.
//! * [`AndesScheduler`](andes::AndesScheduler) — a QoE-aware preemptive
//!   scheduler in the style of Andes: urgency-ranked slot allocation with
//!   recompute-based preemption and no memory-manager co-design.
//! * [`TokenFlowScheduler`](tokenflow::TokenFlowScheduler) — the paper's
//!   buffer-aware two-step scheduler: working-set determination (Eq. 4–5),
//!   admission guarded by victim buffer headroom, buffer balancing through
//!   the utility function (Eq. 3) with greedy selection plus adjacent-swap
//!   local search, recompute-vs-reload balancing (§4.2.3), and the
//!   `Σ rᵢ ≤ Γ` schedulability fallback to FCFS (§4.3).
//!
//! The interface is *plan-based*: each engine iteration the scheduler
//! receives a read-only [`SchedContext`] snapshot (request phases, buffer
//! occupancy, memory and I/O state, profiled rates) and returns a
//! [`SchedPlan`] of admissions, resumes, and preemptions, which the engine
//! applies through the KV manager.
//!
//! [`Scheduler`] requires `Send` (policies are plain owned data), so an
//! engine and its boxed policy can move to a worker thread — the cluster
//! crate's parallel epoch executor advances whole replicas on
//! `std::thread::scope` workers between arrival barriers.

// audit: tier(deterministic)
#![forbid(unsafe_code)]

pub mod andes;
pub mod api;
pub mod chunked;
pub mod fcfs;
pub mod tokenflow;
pub mod util;

pub use andes::AndesScheduler;
pub use api::{
    Action, PlanHorizon, PlanNote, PreemptMode, PrefillPolicy, ReqPhase, ReqView, SchedContext,
    SchedContextBuilder, SchedPlan, Scheduler,
};
pub use chunked::ChunkedPrefillScheduler;
pub use fcfs::FcfsScheduler;
pub use tokenflow::{TokenFlowParams, TokenFlowScheduler};
