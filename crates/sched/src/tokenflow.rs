//! The TokenFlow buffer-aware two-step scheduler (paper §4).
//!
//! Step 1 — **working-set determination** (§4.2.1): a static upper bound
//! `W_static = ⌊M/β⌋` (Eq. 4) from GPU capacity and the observed per-request
//! footprint, shrunk toward the current running count when the system is
//! under-utilised (Eq. 5). Scheduling is time-sliced: the full pass runs
//! every `Δt` and only under stress (pending requests, or a running buffer
//! below the critical threshold); otherwise a prefill-first fast path
//! admits arrivals like FCFS.
//!
//! Step 2 — **buffer balancing** (§4.2.2): every schedulable request gets a
//! priority `U_i = v_i·t′ + γ·φ(b_pred)` where `v_i` is the effective token
//! value at its buffer level, `t′` discounts candidates by their context
//! switch overhead, and `φ(b) = e^{−b}` boosts near-empty buffers. (The
//! paper writes `−γ·φ` while also calling φ a starvation-prevention boost
//! for empty buffers — §4.1/§4.2.2 make the intent unambiguous: smaller
//! buffer ⇒ higher priority — so the boost enters positively here.)
//! A greedy pass fills the working set under the memory budget; a local
//! search then swaps boundary pairs when that improves total utility.
//!
//! §4.2.3 — resumed requests pick the cheaper of reloading
//! (`t_IO = queueing + transfer`) and recomputation (sliding-window prefill
//! estimate). §4.3 — the working set's aggregate demand is capped at the
//! profiled capacity (`Σ rᵢ ≤ Γ` enforced during selection); excess
//! requests stay queued in arrival order, which is exactly the graceful
//! FCFS degradation the paper describes.

use tokenflow_sim::{RequestId, SimDuration, SimTime};

use crate::api::{
    Action, PlanHorizon, PlanNote, PreemptMode, PrefillPolicy, ReqPhase, ReqView, SchedContext,
    SchedPlan, Scheduler,
};
use crate::util::{
    admission_cost, fcfs_admissions, largest_buffer_running, quiescent_across_transfers,
    token_value, AdmissionCosting,
};

/// Tunable parameters of the TokenFlow policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenFlowParams {
    /// Rescheduling interval `Δt` (paper sweeps 0.5–1.5 s, Figure 22).
    pub schedule_interval: SimDuration,
    /// Buffer conservativeness `μ ≥ 1`: a preemption victim's buffer must
    /// cover `μ ×` the estimated switch latency (Figure 23 sweeps 1–20).
    pub buffer_conservativeness: f64,
    /// Working-set shrink rate `λ` of Eq. 5.
    pub ws_adjust_rate: f64,
    /// Utility weight `γ` on the empty-buffer boost `φ`.
    pub gamma: f64,
    /// A running buffer below this many seconds triggers an off-interval
    /// scheduling pass (`T_critical`).
    pub critical_buffer_secs: f64,
    /// Decode-growth reserve per admission, tokens.
    pub headroom_tokens: u64,
    /// Memory fill target as a fraction of KV capacity.
    pub util_target: f64,
    /// Cap on preempt/resume transitions issued per pass (I/O-load
    /// awareness, §3.1).
    pub max_transitions: usize,
    /// Defer further evictions when the D2H queue ETA exceeds this fraction
    /// of the schedule interval.
    pub io_backpressure: f64,
    /// Fraction of the estimated capacity Γ that service admission may
    /// commit (§4.3). Rotation and transition overheads make the usable
    /// capacity less than the roofline; admitting right up to Γ converts
    /// the shortfall into reader stalls.
    pub capacity_safety: f64,
    /// Prefill chunk size mixed into decode iterations.
    pub prefill_chunk: u64,
    /// Cap on swap candidates examined per local-search round, `0` =
    /// unbounded (the historical behavior — existing seeded runs are
    /// byte-identical under the default).
    ///
    /// The §4.2.2 local search is the full pass's last super-linear
    /// corner: each round scans every unselected candidate against the
    /// weakest selected member, so thousands of simultaneous candidates
    /// cost O(n²) per pass. Candidates are already held in priority
    /// order (the pass's cached sort permutation), so the top-k swap
    /// candidates are a prefix — no separate heap selection needed —
    /// and a bound of `k` caps a round at O(n + k·|selected|). The cap
    /// is an *approximation*: swap acceptance also requires memory
    /// feasibility, which is not monotone in priority rank, so a
    /// feasible lower-ranked candidate beyond the prefix may be skipped
    /// even though the unbounded scan would have accepted it.
    pub swap_candidates: usize,
}

impl Default for TokenFlowParams {
    fn default() -> Self {
        TokenFlowParams {
            schedule_interval: SimDuration::from_millis(500),
            buffer_conservativeness: 2.0,
            ws_adjust_rate: 0.5,
            gamma: 1.0,
            critical_buffer_secs: 1.0,
            headroom_tokens: 64,
            util_target: 0.92,
            max_transitions: 256,
            io_backpressure: 1.0,
            capacity_safety: 0.8,
            prefill_chunk: 2_048,
            swap_candidates: 0,
        }
    }
}

/// The buffer-aware preemptive scheduler.
///
/// # Examples
///
/// ```
/// use tokenflow_sched::{Scheduler, TokenFlowScheduler};
///
/// let s = TokenFlowScheduler::new();
/// assert_eq!(s.name(), "TokenFlow");
/// ```
#[derive(Debug, Clone)]
pub struct TokenFlowScheduler {
    params: TokenFlowParams,
    last_schedule: Option<SimTime>,
    scratch: PassScratch,
}

#[derive(Debug, Clone)]
struct Candidate {
    id: RequestId,
    phase: ReqPhase,
    priority: f64,
    cost: u64,
    rate: f64,
    elastic: bool,
    arrival: SimTime,
    /// For `WaitingCpu`: whether recompute beats reloading.
    prefer_recompute: bool,
    /// Whether preempting this (running) request is safe for its reader.
    safe_to_preempt: bool,
}

/// Retained working buffers of the full scheduling pass. Everything is
/// cleared and refilled per pass, so repeated passes allocate nothing
/// once the buffers reach the candidate population's high-water mark.
#[derive(Debug, Clone, Default)]
struct PassScratch {
    /// Candidates in context (id) order.
    candidates: Vec<Candidate>,
    /// Candidates in priority order — the working list of the pass.
    sorted: Vec<Candidate>,
    /// The priority-order permutation over `candidates`.
    order: Vec<u32>,
    /// Sort keys of the current pass, in `candidates` order.
    keys: Vec<(f64, SimTime, RequestId)>,
    /// Sort keys the cached `order` was computed from: when a pass sees
    /// the identical candidate set and key inputs, the comparison sort
    /// is skipped and the cached permutation reapplied.
    last_keys: Vec<(f64, SimTime, RequestId)>,
    /// `WaitingNew` candidate indices in arrival order.
    new_by_arrival: Vec<usize>,
    /// Candidates denied service by the Σrᵢ ≤ Γ cap this pass.
    rate_blocked: Vec<bool>,
    /// Selected working-set members, in selection order.
    selected: Vec<usize>,
    /// Membership mask mirroring `selected`.
    in_selected: Vec<bool>,
    /// Swap candidates of one local-search round.
    unselected: Vec<usize>,
    /// Admission-bound selected indices, sorted by arrival.
    admits: Vec<usize>,
}

impl TokenFlowScheduler {
    /// Creates the scheduler with default parameters.
    pub fn new() -> Self {
        Self::with_params(TokenFlowParams::default())
    }

    /// Creates the scheduler with explicit parameters.
    pub fn with_params(params: TokenFlowParams) -> Self {
        TokenFlowScheduler {
            params,
            last_schedule: None,
            scratch: PassScratch::default(),
        }
    }

    /// The active parameters.
    pub fn params(&self) -> &TokenFlowParams {
        &self.params
    }

    /// Eq. 4/5: the working-set size for this pass.
    fn working_set_size(&self, ctx: &SchedContext) -> usize {
        // β: observed per-request memory footprint — the *current* context
        // length (the working set overcommits against future growth; the
        // buffer-balancing step reclaims memory as contexts grow).
        let live_n = ctx.requests.len();
        let beta = if live_n == 0 {
            1_024.0
        } else {
            let sum: f64 = ctx.requests.iter().map(|r| r.context_tokens as f64).sum();
            (sum / live_n as f64).max(64.0)
        };
        let m = ctx.gpu_total_tokens as f64 * self.params.util_target;
        let w_static = (m / beta).floor().max(1.0);
        let n_running = ctx.count_phase(ReqPhase::Running) as f64;
        let w = if n_running < w_static {
            w_static - self.params.ws_adjust_rate * (w_static - n_running)
        } else {
            w_static
        };
        (w.ceil() as usize)
            .max(
                ctx.count_phase(ReqPhase::Running)
                    .min(ctx.max_batch as usize),
            )
            .min(ctx.max_batch as usize)
            .max(1)
    }

    /// The per-candidate switch overhead `t_overhead` of the problem
    /// formulation: zero for running requests; `min(t_IO, t_recompute)` for
    /// offloaded ones; the prefill time for new ones.
    fn switch_overhead_secs(r: &ReqView, ctx: &SchedContext) -> f64 {
        match r.phase {
            ReqPhase::Running => 0.0,
            ReqPhase::WaitingCpu => r.load_secs.min(ctx.recompute_secs(r.context_tokens)),
            ReqPhase::WaitingNew => ctx.recompute_secs(r.prompt_tokens),
            ReqPhase::Transitioning => f64::INFINITY,
        }
    }

    /// The priority `U_i` (Eq. 3 with the sign reconciliation documented in
    /// the module header).
    fn utility(&self, r: &ReqView, ctx: &SchedContext) -> f64 {
        let interval = self.params.schedule_interval.as_secs_f64();
        let overhead = Self::switch_overhead_secs(r, ctx);
        // Effective generation share of the next interval.
        let t_eff = ((interval - overhead) / interval).max(0.0);
        // Predicted buffer at the point the request would actually resume
        // generating (b_pred of the formulation): the reader keeps draining
        // during the switch.
        let b_pred = (r.buffered_secs - overhead).max(0.0);
        let phi = if r.elastic && r.started {
            // §8: an agent's reference rate is a static priority signal,
            // not a starvation deadline — it scales a modest boost so
            // agents fill idle capacity and yield first under contention.
            0.2 * (r.rate / 30.0).min(1.0)
        } else if r.started {
            (-b_pred).exp()
        } else {
            // An unstarted request is in the worst state a reader can be
            // in — waiting for the first token — and the QoS TTFT penalty
            // grows linearly with every second it queues. Age its boost so
            // it cannot starve behind resume cycles.
            let waited = ctx.now.saturating_since(r.arrival).as_secs_f64();
            1.0 + 0.05 * waited
        };
        let v = if r.started { token_value(r) } else { 1.0 };
        v * t_eff + self.params.gamma * phi
    }

    /// Whether a running request's reader can absorb a
    /// preempt-resume-reschedule cycle without stalling (§4.2.1 admission
    /// guard): `b_rem ≥ μ · r · (τ_evict + τ_load + τ_sched)`. Agent
    /// clients have no reader to stall and are always safe to preempt.
    fn safe_to_preempt(&self, r: &ReqView) -> bool {
        if r.elastic {
            return true;
        }
        let tau = r.evict_secs + r.load_secs + self.params.schedule_interval.as_secs_f64();
        r.buffered_secs >= self.params.buffer_conservativeness * tau
    }

    fn full_pass(&mut self, ctx: &SchedContext) -> SchedPlan {
        // The scratch moves out for the pass so `self`'s parameter
        // methods stay borrowable; it moves back (with its capacity) at
        // the end.
        let mut sc = std::mem::take(&mut self.scratch);
        let mut notes: Vec<PlanNote> = Vec::new();
        let w_sched = self.working_set_size(ctx);
        // Discount memory already committed to transitioning requests
        // (loads in flight, prompts mid-prefill).
        let committed: u64 = ctx
            .in_phase(ReqPhase::Transitioning)
            .map(|r| r.context_tokens + r.reserved_tokens)
            .sum();
        let budget_total = ((ctx.gpu_total_tokens as f64 * self.params.util_target) as u64)
            .saturating_sub(committed);

        // Build candidates: everything schedulable this pass.
        sc.candidates.clear();
        sc.candidates.extend(
            ctx.requests
                .iter()
                .filter(|r| {
                    matches!(
                        r.phase,
                        ReqPhase::Running | ReqPhase::WaitingNew | ReqPhase::WaitingCpu
                    )
                })
                .map(|r| Candidate {
                    id: r.id,
                    phase: r.phase,
                    priority: self.utility(r, ctx),
                    cost: admission_cost(r, self.params.headroom_tokens),
                    rate: r.rate,
                    elastic: r.elastic,
                    arrival: r.arrival,
                    prefer_recompute: r.phase == ReqPhase::WaitingCpu
                        && ctx.recompute_secs(r.context_tokens) < r.load_secs,
                    safe_to_preempt: r.phase == ReqPhase::Running && self.safe_to_preempt(r),
                }),
        );
        // Priority order, via a cached permutation: when the candidate
        // set and every sort-key input match the previous pass exactly,
        // re-sorting must produce the identical permutation (the
        // comparator is a total order over the keys), so the sort is
        // skipped and the cached order reapplied.
        sc.keys.clear();
        sc.keys
            .extend(sc.candidates.iter().map(|c| (c.priority, c.arrival, c.id)));
        if sc.keys != sc.last_keys {
            if ctx.trace_notes {
                // Repricing notes: both key lists are in ascending-id
                // order (candidates follow the id-ordered context), so a
                // merge walk pairs each request's previous-pass priority
                // with its new one. Runs only on distinct passes — the
                // cached-permutation fast path implies nothing repriced.
                let (mut a, mut b) = (0usize, 0usize);
                while a < sc.last_keys.len() && b < sc.keys.len() {
                    let (before, _, prev_id) = sc.last_keys[a];
                    let (after, _, cur_id) = sc.keys[b];
                    match prev_id.cmp(&cur_id) {
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                        std::cmp::Ordering::Equal => {
                            if before != after {
                                notes.push(PlanNote::Reprice {
                                    id: cur_id,
                                    before,
                                    after,
                                });
                            }
                            a += 1;
                            b += 1;
                        }
                    }
                }
            }
            sc.order.clear();
            sc.order.extend(0..sc.candidates.len() as u32);
            let cand = &sc.candidates;
            sc.order.sort_unstable_by(|&x, &y| {
                let (a, b) = (&cand[x as usize], &cand[y as usize]);
                b.priority
                    .partial_cmp(&a.priority)
                    .expect("priorities are finite")
                    .then(a.arrival.cmp(&b.arrival))
                    .then(a.id.cmp(&b.id))
            });
            std::mem::swap(&mut sc.last_keys, &mut sc.keys);
        }
        sc.sorted.clear();
        sc.sorted
            .extend(sc.order.iter().map(|&i| sc.candidates[i as usize].clone()));
        let candidates = &sc.sorted;

        // §4.3 schedulability: the *service set* — every request being
        // actively multiplexed, resident or offloaded — may not demand more
        // aggregate streaming rate than the capacity Γ. New requests enter
        // service only while headroom remains; the excess stays queued in
        // arrival order (graceful FCFS degradation, not collapse). Requests
        // already in service (running, offloaded, transitioning) keep their
        // reservation: evicting them does not release rate, only memory.
        let gamma = ctx.decode_throughput * self.params.capacity_safety;
        let mut service_rate: f64 = ctx
            .requests
            .iter()
            .filter(|r| {
                matches!(
                    r.phase,
                    ReqPhase::Running | ReqPhase::Transitioning | ReqPhase::WaitingCpu
                )
            })
            .map(|r| if r.elastic { 0.25 * r.rate } else { r.rate })
            .sum();
        sc.new_by_arrival.clear();
        sc.new_by_arrival
            .extend((0..candidates.len()).filter(|&i| candidates[i].phase == ReqPhase::WaitingNew));
        sc.new_by_arrival
            .sort_by_key(|&i| (candidates[i].arrival, candidates[i].id));
        sc.rate_blocked.clear();
        sc.rate_blocked.resize(candidates.len(), false);
        for &i in &sc.new_by_arrival {
            // Elastic agents reserve only a sliver of their reference rate:
            // they can be throttled arbitrarily, so they never crowd out
            // interactive admission (§8).
            let reserve = if candidates[i].elastic {
                0.25 * candidates[i].rate
            } else {
                candidates[i].rate
            };
            if service_rate + reserve <= gamma {
                service_rate += reserve;
            } else {
                sc.rate_blocked[i] = true;
            }
        }

        // Pin running requests that cannot be preempted safely: they stay in
        // the working set regardless of rank (preempting them would stall
        // their reader immediately). `selected` keeps selection order (the
        // local search's weakest-member scan depends on it); `in_selected`
        // mirrors it as a mask so membership tests are O(1).
        sc.selected.clear();
        sc.in_selected.clear();
        sc.in_selected.resize(candidates.len(), false);
        let mut used = 0u64;
        let mut slots = w_sched
            .saturating_sub(ctx.count_phase(ReqPhase::Transitioning))
            .max(1);
        for (i, c) in candidates.iter().enumerate() {
            if c.phase == ReqPhase::Running && !c.safe_to_preempt && slots > 0 {
                sc.selected.push(i);
                sc.in_selected[i] = true;
                used += c.cost;
                slots -= 1;
            }
        }
        // Greedy residency fill by priority under the memory and slot
        // budgets (residents generate at full speed in spurts, so rate does
        // not constrain this step).
        for (i, c) in candidates.iter().enumerate() {
            if slots == 0 {
                break;
            }
            if sc.in_selected[i] || sc.rate_blocked[i] {
                continue;
            }
            if used + c.cost > budget_total {
                continue;
            }
            sc.selected.push(i);
            sc.in_selected[i] = true;
            used += c.cost;
            slots -= 1;
        }
        // Local search (§4.2.2): try swapping the lowest-priority selected
        // entries with higher-cost skipped neighbours when the utility gain
        // is positive and memory stays feasible.
        let mut improved = true;
        while improved {
            improved = false;
            sc.unselected.clear();
            sc.unselected.extend(
                (0..candidates.len()).filter(|&i| !sc.in_selected[i] && !sc.rate_blocked[i]),
            );
            // Optional O(n²) cap: `candidates` is in priority order, so
            // the top-k swap candidates are simply the first k unselected
            // entries — the prefix a full scan would try first. This is
            // an approximation, not an equivalence: a candidate beyond
            // the prefix can pass the memory-feasibility check below when
            // every prefix entry fails it, so the bounded round may end
            // without a swap the full scan would have made.
            if self.params.swap_candidates > 0 {
                sc.unselected.truncate(self.params.swap_candidates);
            }
            // Find the weakest swappable selected entry. The selection
            // only changes when a swap succeeds — which ends the round —
            // so the scan is loop-invariant and runs once per round, not
            // once per probe.
            let weakest = sc
                .selected
                .iter()
                .copied()
                .filter(|&i| {
                    // Pinned running requests never swap out.
                    candidates[i].phase != ReqPhase::Running || candidates[i].safe_to_preempt
                })
                .min_by(|&a, &b| {
                    candidates[a]
                        .priority
                        .partial_cmp(&candidates[b].priority)
                        .expect("priorities are finite")
                });
            let Some(i) = weakest else { break };
            for &j in &sc.unselected {
                let gain = candidates[j].priority - candidates[i].priority;
                let new_used = used - candidates[i].cost + candidates[j].cost;
                if gain > 1e-12 && new_used <= budget_total {
                    if ctx.trace_notes {
                        notes.push(PlanNote::Swap {
                            evicted: candidates[i].id,
                            admitted: candidates[j].id,
                            evicted_priority: candidates[i].priority,
                            admitted_priority: candidates[j].priority,
                        });
                    }
                    sc.selected.retain(|&k| k != i);
                    sc.in_selected[i] = false;
                    sc.selected.push(j);
                    sc.in_selected[j] = true;
                    used = new_used;
                    improved = true;
                    break;
                }
            }
        }

        // Diff against the current state, respecting the transition cap and
        // I/O backpressure.
        let interval = self.params.schedule_interval.as_secs_f64();
        let io_loaded = ctx.d2h_eta.as_secs_f64() > self.params.io_backpressure * interval;
        let mut transitions = 0usize;
        let mut actions = Vec::new();

        // Preemptions first: they free the memory admissions need.
        for (i, c) in candidates.iter().enumerate() {
            if c.phase == ReqPhase::Running && !sc.in_selected[i] {
                if !c.safe_to_preempt || io_loaded || transitions >= self.params.max_transitions {
                    continue;
                }
                actions.push(Action::Preempt {
                    id: c.id,
                    mode: PreemptMode::Offload,
                });
                transitions += 1;
            }
        }
        sc.admits.clear();
        sc.admits.extend((0..candidates.len()).filter(|&i| {
            sc.in_selected[i]
                && matches!(
                    candidates[i].phase,
                    ReqPhase::WaitingNew | ReqPhase::WaitingCpu
                )
        }));
        sc.admits
            .sort_by_key(|&i| (candidates[i].arrival, candidates[i].id));
        for &i in &sc.admits {
            if transitions >= self.params.max_transitions {
                break;
            }
            let c = &candidates[i];
            actions.push(match (c.phase, c.prefer_recompute) {
                (ReqPhase::WaitingNew, _) => Action::AdmitPrefill(c.id),
                (ReqPhase::WaitingCpu, true) => Action::AdmitPrefill(c.id),
                (ReqPhase::WaitingCpu, false) => Action::Resume(c.id),
                _ => unreachable!("filtered to waiting phases"),
            });
            transitions += 1;
        }
        self.scratch = sc;
        SchedPlan { actions, notes }
    }
}

impl Default for TokenFlowScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for TokenFlowScheduler {
    fn name(&self) -> &'static str {
        "TokenFlow"
    }

    fn plan(&mut self, ctx: &SchedContext) -> SchedPlan {
        let due = self
            .last_schedule
            .is_none_or(|t| ctx.now >= t + self.params.schedule_interval);
        let stressed = ctx.count_phase(ReqPhase::WaitingNew) > 0
            || ctx.count_phase(ReqPhase::WaitingCpu) > 0
            || ctx
                .in_phase(ReqPhase::Running)
                .any(|r| r.started && r.buffered_secs < self.params.critical_buffer_secs);

        // Time-sliced activation (§4.2.1): the full pass runs only at the
        // interval and under stress; otherwise the prefill-first fast path.
        if !(due && stressed) {
            return SchedPlan::of(fcfs_admissions(
                ctx,
                AdmissionCosting::Headroom(self.params.headroom_tokens),
                false,
            ));
        }
        self.last_schedule = Some(ctx.now);
        self.full_pass(ctx)
    }

    /// `plan` no-ops while `!(due && stressed)` *and* the FCFS sweep of
    /// the quiet branch provably admits nothing. The horizon is the
    /// later of two certified instants: `T_due` (the anchored interval
    /// end — before it, `due` is false) and `T_stress` (before it,
    /// `stressed` is false). The waiting-count clauses of `stressed`
    /// are epoch-protected; the buffer clause is bounded by drain
    /// physics — a reader consumes at most one buffered second per
    /// simulated second and deliveries only add, so a running buffer
    /// holding `b ≥ critical` seconds cannot cross the critical
    /// threshold before `now + (b − critical)`. While any transfer is
    /// in flight, `T_stress` is clamped to `now`: a load completing
    /// mid-horizon adds a running reader whose buffer the slack scan
    /// never saw (and an evict completion creates a `WaitingCpu`
    /// candidate), so the certificate may not stretch past `T_due` on
    /// buffer arithmetic alone. Conservative on purpose: a
    /// shorter-than-true horizon just means an earlier full pipeline
    /// step.
    fn plan_horizon(&self, ctx: &SchedContext) -> Option<PlanHorizon> {
        if !quiescent_across_transfers(ctx) {
            return None;
        }
        let t_due = match self.last_schedule {
            Some(t) => t + self.params.schedule_interval,
            // No full pass has anchored the interval yet: due every step.
            None => ctx.now,
        };
        let waiting = ctx.count_phase(ReqPhase::WaitingNew) + ctx.count_phase(ReqPhase::WaitingCpu);
        let t_stress = if waiting > 0 || ctx.count_phase(ReqPhase::Transitioning) > 0 {
            // Stressed right now (or one in-flight completion away from
            // it); only !due keeps the full pass away.
            ctx.now
        } else {
            let mut slack = f64::INFINITY;
            for r in ctx.in_phase(ReqPhase::Running) {
                if r.started {
                    slack = slack.min(r.buffered_secs - self.params.critical_buffer_secs);
                }
            }
            if slack <= 0.0 {
                ctx.now
            } else if slack.is_infinite() {
                SimTime::MAX
            } else {
                ctx.now + SimDuration::from_secs_f64(slack)
            }
        };
        let valid_until = t_due.max(t_stress);
        (ctx.now < valid_until).then_some(PlanHorizon {
            valid_until,
            // The pacing gate only flips with buffer levels while a
            // beneficiary exists; with none, every answer is `true`.
            gates_static: ctx.count_phase(ReqPhase::WaitingNew)
                + ctx.count_phase(ReqPhase::WaitingCpu)
                + ctx.count_phase(ReqPhase::Transitioning)
                == 0,
        })
    }

    fn prefill_policy(&self) -> PrefillPolicy {
        PrefillPolicy::Chunked(self.params.prefill_chunk)
    }

    fn decode_gate(&self, view: &ReqView, ctx: &SchedContext) -> bool {
        // Pause generation once the buffer reaches the full-value threshold
        // (10 % of the total output, §7.1.3): every token generated below it
        // carries weight 1, so pacing here is the "just-in-time" delivery of
        // §3.1 and produces the plateaus of Figure 18. Pacing only engages
        // while someone can use the freed capacity — with an empty queue,
        // finishing fast maximises turnover and loses nothing.
        if !view.started || view.elastic {
            return true;
        }
        let has_beneficiary = ctx.count_phase(ReqPhase::WaitingNew) > 0
            || ctx.count_phase(ReqPhase::WaitingCpu) > 0
            || ctx.count_phase(ReqPhase::Transitioning) > 0;
        if !has_beneficiary {
            return true;
        }
        let generated = view.context_tokens - view.prompt_tokens;
        let total_output = (generated + view.remaining_tokens).max(1);
        (view.buffered_tokens as f64) < 0.10 * total_output as f64
    }

    fn emergency_preempt_mode(&self) -> PreemptMode {
        PreemptMode::Offload
    }

    fn emergency_victim(&self, ctx: &SchedContext) -> Option<RequestId> {
        largest_buffer_running(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(id: u64, phase: ReqPhase) -> ReqView {
        ReqView {
            id: RequestId(id),
            phase,
            arrival: SimTime::from_secs(id),
            rate: 20.0,
            prompt_tokens: 100,
            context_tokens: 100,
            remaining_tokens: 900,
            buffered_tokens: 0,
            buffered_secs: 0.0,
            stalled: false,
            started: false,
            evict_secs: 0.01,
            load_secs: 0.05,
            reserved_tokens: 0,
            elastic: false,
            inbound: false,
        }
    }

    fn ctx(requests: Vec<ReqView>, free: u64, total: u64) -> SchedContext {
        crate::api::SchedContextBuilder::new(SimTime::from_secs(100))
            .requests(requests)
            .memory(free, total)
            .profile(1e-4, 2_000.0)
            .link(25e9, 131_072)
            .max_batch(64)
            .build()
    }

    fn running_with_buffer(id: u64, buffered_secs: f64) -> ReqView {
        let mut r = view(id, ReqPhase::Running);
        r.started = true;
        r.buffered_secs = buffered_secs;
        r.buffered_tokens = (buffered_secs * r.rate) as u64;
        r
    }

    fn with_context(mut r: ReqView, context: u64) -> ReqView {
        r.context_tokens = context;
        r.prompt_tokens = context.min(r.prompt_tokens);
        r
    }

    #[test]
    fn preempts_high_buffer_for_waiting_under_pressure() {
        let mut s = TokenFlowScheduler::new();
        // Tight memory: two 600-token contexts cannot both fit in a
        // 1300-token pool at 92% utilisation.
        let rich = with_context(running_with_buffer(0, 30.0), 600);
        let waiting = with_context(view(1, ReqPhase::WaitingNew), 600);
        let c = ctx(vec![rich, waiting], 0, 1_300);
        let plan = s.plan(&c);
        assert!(
            plan.actions.contains(&Action::Preempt {
                id: RequestId(0),
                mode: PreemptMode::Offload
            }),
            "rich buffer must be offloaded: {plan:?}"
        );
        assert!(plan.actions.contains(&Action::AdmitPrefill(RequestId(1))));
    }

    #[test]
    fn never_preempts_thin_buffers() {
        let mut s = TokenFlowScheduler::new();
        // Buffer below μ·(τ_evict+τ_load+τ_sched) ≈ 2·(0.06+1.0) ≈ 2.1 s.
        let thin = with_context(running_with_buffer(0, 1.0), 600);
        let waiting = with_context(view(1, ReqPhase::WaitingNew), 600);
        let c = ctx(vec![thin, waiting], 0, 1_300);
        let plan = s.plan(&c);
        assert!(
            !plan
                .actions
                .iter()
                .any(|a| matches!(a, Action::Preempt { id, .. } if *id == RequestId(0))),
            "thin buffer is pinned: {plan:?}"
        );
    }

    #[test]
    fn buffer_conservativeness_raises_preemption_bar() {
        let params = TokenFlowParams {
            buffer_conservativeness: 20.0,
            ..TokenFlowParams::default()
        };
        let mut cautious = TokenFlowScheduler::with_params(params);
        // 5 s of buffer clears μ=2 (bar ≈ 2.1 s) but not μ=20 (bar ≈ 21 s).
        let medium = with_context(running_with_buffer(0, 5.0), 600);
        let waiting = with_context(view(1, ReqPhase::WaitingNew), 600);
        let c = ctx(vec![medium, waiting], 0, 1_300);
        let plan = cautious.plan(&c);
        assert!(
            !plan
                .actions
                .iter()
                .any(|a| matches!(a, Action::Preempt { .. })),
            "μ=20 must behave conservatively: {plan:?}"
        );
        let mut aggressive = TokenFlowScheduler::new();
        let plan = aggressive.plan(&c);
        assert!(
            plan.actions
                .iter()
                .any(|a| matches!(a, Action::Preempt { .. })),
            "μ=2 should preempt: {plan:?}"
        );
    }

    #[test]
    fn working_set_demand_capped_at_gamma() {
        // §4.3: aggregate demand 30 × 100 = 3000 tok/s exceeds Γ = 2000;
        // the selected working set must not exceed capacity — the excess
        // is preempted (safe: 50 s buffers) and queued rather than served
        // beyond Γ.
        let mut s = TokenFlowScheduler::new();
        let mut requests: Vec<ReqView> = (0..100)
            .map(|i| {
                let mut r = running_with_buffer(i, 50.0);
                r.rate = 30.0;
                r
            })
            .collect();
        requests.push(view(100, ReqPhase::WaitingNew));
        let c = ctx(requests, 0, 200_000);
        let plan = s.plan(&c);
        let preempts = plan
            .actions
            .iter()
            .filter(|a| matches!(a, Action::Preempt { .. }))
            .count();
        let admits = plan
            .actions
            .iter()
            .filter(|a| matches!(a, Action::AdmitPrefill(_) | Action::Resume(_)))
            .count();
        let kept_running = 100 - preempts;
        let demand = (kept_running + admits) as f64 * 30.0;
        assert!(
            demand <= 2_000.0 + 30.0,
            "working set demand {demand} exceeds Γ: {plan:?}"
        );
    }

    #[test]
    fn fast_path_between_intervals() {
        let mut s = TokenFlowScheduler::new();
        let rich = with_context(running_with_buffer(0, 30.0), 600);
        let waiting = with_context(view(1, ReqPhase::WaitingNew), 600);
        let c = ctx(vec![rich, waiting], 0, 1_300);
        let _ = s.plan(&c); // full pass at t = 100

        // 1 ms later: not due, only plain admissions may happen.
        let mut c2 = ctx(vec![rich, waiting], 0, 1_300);
        c2.now = SimTime::from_secs(100) + SimDuration::from_millis(1);
        let plan = s.plan(&c2);
        assert!(
            plan.actions
                .iter()
                .all(|a| !matches!(a, Action::Preempt { .. })),
            "between intervals no preemption: {plan:?}"
        );
    }

    #[test]
    fn resume_prefers_cheaper_path() {
        let mut s = TokenFlowScheduler::new();
        // Loading is cheap (50 ms) vs recompute (100 tokens × 0.1 ms =
        // 10 ms): recompute wins here.
        let mut cpu = view(0, ReqPhase::WaitingCpu);
        cpu.load_secs = 0.05;
        cpu.context_tokens = 100;
        let c = ctx(vec![cpu], 10_000, 20_000);
        let plan = s.plan(&c);
        assert_eq!(plan.actions, vec![Action::AdmitPrefill(RequestId(0))]);

        // Make recompute expensive: loading wins.
        let mut s2 = TokenFlowScheduler::new();
        let mut cpu2 = view(0, ReqPhase::WaitingCpu);
        cpu2.load_secs = 0.05;
        cpu2.context_tokens = 10_000;
        let mut c2 = ctx(vec![cpu2], 20_000, 40_000);
        c2.prefill_secs_per_token = 1e-4; // recompute = 1 s > 0.05 s
        let plan = s2.plan(&c2);
        assert_eq!(plan.actions, vec![Action::Resume(RequestId(0))]);
    }

    #[test]
    fn working_set_shrinks_when_underutilised() {
        let s = TokenFlowScheduler::new();
        // One running 2000-token request, plenty of capacity: Eq. 5 pulls
        // W toward N_running.
        let c_low = ctx(
            vec![with_context(running_with_buffer(0, 1.0), 2_000)],
            90_000,
            100_000,
        );
        let w_low = s.working_set_size(&c_low);
        let many: Vec<ReqView> = (0..40)
            .map(|i| with_context(running_with_buffer(i, 1.0), 2_000))
            .collect();
        let c_high = ctx(many, 50_000, 100_000);
        let w_high = s.working_set_size(&c_high);
        assert!(w_high > w_low, "W grows with load: {w_low} vs {w_high}");
    }

    #[test]
    fn io_backpressure_defers_evictions() {
        let mut s = TokenFlowScheduler::new();
        let rich = with_context(running_with_buffer(0, 30.0), 600);
        let waiting = with_context(view(1, ReqPhase::WaitingNew), 600);
        let mut c = ctx(vec![rich, waiting], 0, 1_300);
        c.d2h_eta = SimDuration::from_secs(10); // D2H badly backed up
        let plan = s.plan(&c);
        assert!(
            plan.actions
                .iter()
                .all(|a| !matches!(a, Action::Preempt { .. })),
            "backpressure must defer evictions: {plan:?}"
        );
    }

    #[test]
    fn utility_prefers_empty_buffers() {
        let s = TokenFlowScheduler::new();
        let c = ctx(vec![], 0, 20_000);
        let empty = running_with_buffer(0, 0.0);
        let full = running_with_buffer(1, 30.0);
        assert!(s.utility(&empty, &c) > s.utility(&full, &c));
    }

    /// A stress population for the local-search bound: many preemptable
    /// running requests holding fat buffers, many waiting arrivals, and
    /// memory too tight for everyone.
    fn contended_ctx(n_running: u64, n_waiting: u64) -> SchedContext {
        let mut requests: Vec<ReqView> = (0..n_running)
            .map(|i| with_context(running_with_buffer(i, 30.0), 600))
            .collect();
        requests.extend(
            (n_running..n_running + n_waiting)
                .map(|i| with_context(view(i, ReqPhase::WaitingNew), 600)),
        );
        ctx(requests, 0, 6_000)
    }

    #[test]
    fn swap_bound_at_population_size_is_identical_to_unbounded() {
        let c = contended_ctx(8, 8);
        let mut unbounded = TokenFlowScheduler::new();
        let mut bounded = TokenFlowScheduler::with_params(TokenFlowParams {
            swap_candidates: 16, // ≥ the candidate population
            ..TokenFlowParams::default()
        });
        assert_eq!(unbounded.plan(&c), bounded.plan(&c));
    }

    #[test]
    fn tight_swap_bound_still_produces_a_working_plan() {
        let c = contended_ctx(8, 8);
        let mut tight = TokenFlowScheduler::with_params(TokenFlowParams {
            swap_candidates: 1,
            ..TokenFlowParams::default()
        });
        let plan = tight.plan(&c);
        // The pass still functions under the cap: memory pressure forces
        // preemptions and the freed space admits waiting arrivals.
        assert!(
            plan.actions
                .iter()
                .any(|a| matches!(a, Action::AdmitPrefill(_))),
            "bounded search must still admit: {plan:?}"
        );
    }

    #[test]
    fn default_swap_bound_is_unbounded() {
        assert_eq!(TokenFlowParams::default().swap_candidates, 0);
    }

    #[test]
    fn emergency_uses_offload_and_largest_buffer() {
        let s = TokenFlowScheduler::new();
        assert_eq!(s.emergency_preempt_mode(), PreemptMode::Offload);
        let a = running_with_buffer(0, 1.0);
        let b = running_with_buffer(1, 9.0);
        let c = ctx(vec![a, b], 0, 20_000);
        assert_eq!(s.emergency_victim(&c), Some(RequestId(1)));
    }

    #[test]
    fn no_horizon_while_admissions_possible() {
        let mut s = TokenFlowScheduler::new();
        s.last_schedule = Some(SimTime::from_secs(100));
        // A waiting request with free slots and memory: the FCFS sweep of
        // the quiet branch could admit it any step.
        let c = ctx(
            vec![running_with_buffer(0, 30.0), view(1, ReqPhase::WaitingNew)],
            10_000,
            20_000,
        );
        assert_eq!(s.plan_horizon(&c), None);
    }

    #[test]
    fn horizon_is_min_slack_past_due_time() {
        let mut s = TokenFlowScheduler::new();
        // Full pass long overdue: T_due = 50.5 s < now = 100 s.
        s.last_schedule = Some(SimTime::from_secs(50));
        // No waiting work; two running readers with 5 s and 3 s of buffer
        // above the 1 s critical threshold drain at most 1 s/s, so stress
        // is impossible before now + 2 s.
        let c = ctx(
            vec![running_with_buffer(0, 5.0), running_with_buffer(1, 3.0)],
            10_000,
            20_000,
        );
        let h = s.plan_horizon(&c).expect("quiescent: horizon expected");
        assert_eq!(
            h.valid_until,
            SimTime::from_secs(100) + SimDuration::from_secs_f64(2.0)
        );
        assert!(h.gates_static, "no beneficiaries: gate is constant");
    }

    #[test]
    fn horizon_uses_due_time_when_buffer_already_critical() {
        let mut s = TokenFlowScheduler::new();
        s.last_schedule = Some(SimTime::from_secs(100));
        // Buffer below critical: stressed already, so only !due protects
        // the quiet branch, until last_schedule + interval.
        let c = ctx(vec![running_with_buffer(0, 0.2)], 10_000, 20_000);
        let h = s.plan_horizon(&c).expect("not due: horizon expected");
        assert_eq!(
            h.valid_until,
            SimTime::from_secs(100) + s.params.schedule_interval
        );
    }

    #[test]
    fn horizon_expired_when_due_and_stressed() {
        let mut s = TokenFlowScheduler::new();
        // Overdue and a critical buffer: the very next plan may run a
        // full pass, so no horizon exists.
        s.last_schedule = Some(SimTime::from_secs(50));
        let c = ctx(vec![running_with_buffer(0, 0.2)], 10_000, 20_000);
        assert_eq!(s.plan_horizon(&c), None);
    }

    #[test]
    fn gates_not_static_with_waiting_beneficiary() {
        let mut s = TokenFlowScheduler::new();
        s.last_schedule = Some(SimTime::from_secs(100));
        // Batch saturated (occupied >= max_batch) keeps the sweep
        // quiescent even with a waiting request; the waiting request is a
        // pacing beneficiary, so gate answers may flip with buffer levels.
        let mut reqs: Vec<ReqView> = (0..64).map(|i| running_with_buffer(i, 30.0)).collect();
        reqs.push(view(64, ReqPhase::WaitingNew));
        let c = ctx(reqs, 10_000, 20_000);
        let h = s.plan_horizon(&c).expect("saturated batch: horizon");
        assert!(!h.gates_static);
    }

    #[test]
    fn unbounded_horizon_when_idle_of_readers() {
        let mut s = TokenFlowScheduler::new();
        s.last_schedule = Some(SimTime::from_secs(50));
        // Nothing waiting and no started reader: stress has no trigger
        // before some epoch-tracked event, so the horizon is unbounded.
        let mut r = view(0, ReqPhase::Running);
        r.started = false;
        let c = ctx(vec![r], 10_000, 20_000);
        let h = s.plan_horizon(&c).expect("horizon expected");
        assert_eq!(h.valid_until, SimTime::MAX);
    }
}
