//! The declarative spec types: every axis of the serving surface as data.
//!
//! A [`ScenarioSpec`] names a model, a hardware profile, engine knobs, a
//! scheduling policy, a workload, and a topology (single engine, fixed
//! cluster, or autoscaled fleet). Each axis is a plain enum/struct with
//! the same defaults as the hand-built constructors, so an empty object
//! `{}` on any axis means "what `::new()` would give you" and a spec-built
//! stack is byte-identical to the equivalent hand-built one (the
//! `equivalence` test suite pins that per shipped combination).
//!
//! Specs are parsed from and emitted to JSON by [`crate::codec`]; the
//! emitted form is canonical (every field explicit, fixed order), so
//! `parse(emit(spec)) == spec` and emission is a fixed point.

/// Valid `scheduler.type` names.
pub const SCHEDULER_NAMES: &[&str] = &["fcfs", "chunked", "andes", "tokenflow"];
/// Valid `router` names.
pub const ROUTER_NAMES: &[&str] = &["round-robin", "least-loaded", "backlog-aware", "rate-aware"];
/// Valid `policy.type` names.
pub const SCALE_POLICY_NAMES: &[&str] = &["reactive", "predictive-ewma", "scripted"];
/// Valid `workload.type` names.
pub const WORKLOAD_TYPE_NAMES: &[&str] = &[
    "preset",
    "diurnal-flash-crowd",
    "synthetic",
    "trace-csv",
    "inline",
];
/// Valid Table 1 preset names (`workload.name` under `"type": "preset"`).
pub const PRESET_NAMES: &[&str] = &[
    "rtx4090-a",
    "rtx4090-b",
    "rtx4090-c",
    "rtx4090-d",
    "h200-a",
    "h200-b",
    "h200-c",
    "h200-d",
];
/// Valid `topology.type` names.
pub const TOPOLOGY_NAMES: &[&str] = &["single", "cluster", "autoscaled"];
/// Valid `execution` forms.
pub const EXECUTION_NAMES: &[&str] = &["sequential", "parallel", "auto"];
/// Valid `arrivals.type` names.
pub const ARRIVAL_NAMES: &[&str] = &["burst", "poisson", "mmpp", "diurnal"];
/// Valid length-distribution `type` names.
pub const LENGTH_DIST_NAMES: &[&str] = &[
    "fixed",
    "normal",
    "lognormal",
    "uniform",
    "sharegpt-prompt",
    "sharegpt-output",
];
/// Valid rate-distribution `type` names.
pub const RATE_DIST_NAMES: &[&str] = &["fixed", "uniform", "mix"];
/// Valid hardware profile names.
pub const HARDWARE_NAMES: &[&str] = &["RTX4090", "A6000", "H200", "Ascend910B"];
/// Valid model profile names.
pub const MODEL_NAMES: &[&str] = &["Llama3-8B", "Qwen2-7B", "Qwen2.5-7B", "Qwen2.5-32B"];

/// A scheduling policy plus its knobs.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedulerSpec {
    /// SGLang's conservative FCFS baseline. `headroom: None` keeps the
    /// conservative full-output admission reserve; `Some(n)` switches to
    /// an `n`-token headroom reserve.
    Fcfs {
        /// Optional admission headroom override, tokens.
        headroom: Option<u64>,
    },
    /// SGLang with Sarathi-style chunked prefill.
    Chunked {
        /// Prompt tokens mixed into each decode iteration.
        chunk: u64,
    },
    /// The Andes-style QoE-aware preemptive baseline.
    Andes {
        /// Full re-ranking period, milliseconds.
        interval_ms: u64,
    },
    /// The paper's buffer-aware two-step scheduler.
    TokenFlow(TokenFlowSpec),
}

impl Default for SchedulerSpec {
    fn default() -> Self {
        SchedulerSpec::TokenFlow(TokenFlowSpec::default())
    }
}

impl SchedulerSpec {
    /// The spec's `type` name.
    pub fn type_name(&self) -> &'static str {
        match self {
            SchedulerSpec::Fcfs { .. } => "fcfs",
            SchedulerSpec::Chunked { .. } => "chunked",
            SchedulerSpec::Andes { .. } => "andes",
            SchedulerSpec::TokenFlow(_) => "tokenflow",
        }
    }
}

/// Knobs of [`SchedulerSpec::TokenFlow`], mirroring
/// `tokenflow_sched::TokenFlowParams` field for field (times in
/// spec-friendly units). Defaults equal `TokenFlowParams::default()`.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenFlowSpec {
    /// Rescheduling interval Δt, milliseconds.
    pub schedule_interval_ms: u64,
    /// Buffer conservativeness μ.
    pub buffer_conservativeness: f64,
    /// Working-set shrink rate λ (Eq. 5).
    pub ws_adjust_rate: f64,
    /// Utility weight γ on the empty-buffer boost.
    pub gamma: f64,
    /// Off-interval trigger threshold, seconds of buffer.
    pub critical_buffer_secs: f64,
    /// Decode-growth reserve per admission, tokens.
    pub headroom_tokens: u64,
    /// Memory fill target as a fraction of KV capacity.
    pub util_target: f64,
    /// Cap on preempt/resume transitions per pass.
    pub max_transitions: u64,
    /// D2H backpressure threshold as a fraction of the interval.
    pub io_backpressure: f64,
    /// Fraction of Γ that service admission may commit.
    pub capacity_safety: f64,
    /// Prefill chunk size mixed into decode iterations, tokens.
    pub prefill_chunk: u64,
    /// Cap on swap candidates examined per local-search round
    /// (0 = unbounded, the historical behavior).
    pub swap_candidates: u64,
}

impl Default for TokenFlowSpec {
    fn default() -> Self {
        TokenFlowSpec {
            schedule_interval_ms: 500,
            buffer_conservativeness: 2.0,
            ws_adjust_rate: 0.5,
            gamma: 1.0,
            critical_buffer_secs: 1.0,
            headroom_tokens: 64,
            util_target: 0.92,
            max_transitions: 256,
            io_backpressure: 1.0,
            capacity_safety: 0.8,
            prefill_chunk: 2_048,
            swap_candidates: 0,
        }
    }
}

/// A routing policy (knob-free; canonical JSON form is the bare string).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterSpec {
    /// Cycle through active replicas.
    RoundRobin,
    /// Fewest live requests (prefill-backlog tie-break).
    #[default]
    LeastLoaded,
    /// Join-shortest-prefill-queue.
    BacklogAware,
    /// Declared-rate vs capacity scoring.
    RateAware,
}

impl RouterSpec {
    /// The spec's canonical name.
    pub fn type_name(&self) -> &'static str {
        match self {
            RouterSpec::RoundRobin => "round-robin",
            RouterSpec::LeastLoaded => "least-loaded",
            RouterSpec::BacklogAware => "backlog-aware",
            RouterSpec::RateAware => "rate-aware",
        }
    }
}

/// A fleet-sizing policy plus its knobs.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalePolicySpec {
    /// Thresholds on admission pressure (`ReactivePolicy`).
    Reactive {
        /// Rate-headroom slack (fleet sized so `Σ rᵢ ≤ n·Γ×this`).
        target_utilization: f64,
        /// TTFT budget in queued prefill tokens per replica.
        backlog_per_replica: u64,
        /// KV fill fraction the sizing allows per replica.
        kv_watermark: f64,
    },
    /// EWMA forecast of the arrival token rate (`PredictivePolicy`).
    PredictiveEwma {
        /// EWMA time constant, seconds.
        tau_secs: f64,
        /// Rate-headroom slack.
        target_utilization: f64,
        /// TTFT budget in queued prefill tokens per replica.
        backlog_per_replica: u64,
        /// KV fill fraction the sizing allows per replica.
        kv_watermark: f64,
    },
    /// A fixed fleet-size schedule (`ScriptedPolicy`).
    Scripted {
        /// `(effective_from_secs, target_fleet_size)` steps.
        steps: Vec<(f64, u64)>,
    },
}

impl Default for ScalePolicySpec {
    fn default() -> Self {
        ScalePolicySpec::Reactive {
            target_utilization: 0.60,
            backlog_per_replica: 1_024,
            kv_watermark: 0.50,
        }
    }
}

impl ScalePolicySpec {
    /// The spec's `type` name.
    pub fn type_name(&self) -> &'static str {
        match self {
            ScalePolicySpec::Reactive { .. } => "reactive",
            ScalePolicySpec::PredictiveEwma { .. } => "predictive-ewma",
            ScalePolicySpec::Scripted { .. } => "scripted",
        }
    }

    /// The default predictive spec (τ = 30 s).
    pub fn predictive_default() -> Self {
        ScalePolicySpec::PredictiveEwma {
            tau_secs: 30.0,
            target_utilization: 0.60,
            backlog_per_replica: 1_024,
            kv_watermark: 0.50,
        }
    }
}

/// Control-plane bounds and timing. `gamma: None` derives Γ from the
/// engine's own cost model (`ControlConfig::for_engine`).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlSpec {
    /// Fleet floor (≥ 1).
    pub min_replicas: u64,
    /// Fleet ceiling.
    pub max_replicas: u64,
    /// Boot delay of a provisioned replica, seconds.
    pub boot_delay_secs: f64,
    /// Scale-down cooldown, seconds.
    pub cooldown_secs: f64,
    /// Per-replica stall-free streaming capacity Γ override, tokens/s.
    pub gamma: Option<f64>,
    /// Periodic control tick interval, seconds (`None` = arrival-driven).
    pub control_tick_secs: Option<f64>,
}

impl Default for ControlSpec {
    fn default() -> Self {
        ControlSpec {
            min_replicas: 1,
            max_replicas: 64,
            boot_delay_secs: 10.0,
            cooldown_secs: 5.0,
            gamma: None,
            control_tick_secs: None,
        }
    }
}

/// How cluster epochs execute. Behavior-invariant by the executor
/// equivalence contract — this only trades wall-clock for threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionSpec {
    /// Advance replicas on the coordinator thread.
    #[default]
    Sequential,
    /// Advance replicas on a persistent worker pool with this many
    /// lanes.
    Parallel(u64),
    /// Pool sized to the host's available parallelism
    /// ([`Execution::parallel_auto`](tokenflow_cluster::Execution::parallel_auto)).
    Auto,
}

/// An engine-facing workload description.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A Table 1 controlled setup by name (see [`PRESET_NAMES`]).
    Preset {
        /// Preset name, e.g. `"rtx4090-a"`.
        name: String,
        /// Generation seed.
        seed: u64,
    },
    /// The autoscaling stress preset: diurnal base plus a flash crowd.
    DiurnalFlashCrowd {
        /// Diurnal peak arrival rate, requests/second.
        peak_rate: f64,
        /// Trace horizon, seconds.
        duration_secs: f64,
        /// Flash-crowd size, requests.
        crowd_size: u64,
        /// Flash-crowd instant, seconds.
        crowd_at_secs: f64,
        /// Streaming-rate distribution.
        rate: RateDistSpec,
        /// Generation seed.
        seed: u64,
    },
    /// A fully synthetic workload: arrival process × length × rate dists.
    Synthetic {
        /// Arrival process.
        arrivals: ArrivalSpecSpec,
        /// Prompt-length distribution.
        prompt: LengthDistSpec,
        /// Output-length distribution.
        output: LengthDistSpec,
        /// Streaming-rate distribution.
        rate: RateDistSpec,
        /// Generation seed.
        seed: u64,
    },
    /// A CSV trace replay (`arrival_us,prompt_tokens,output_tokens,rate_tps`).
    TraceCsv {
        /// Path to the CSV file. Relative paths resolve against the
        /// process working directory unless rebased
        /// (see `ScenarioSpec::rebase_paths`).
        path: String,
    },
    /// Requests spelled out inline.
    Inline {
        /// The requests, in arrival order.
        requests: Vec<InlineRequest>,
    },
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec::DiurnalFlashCrowd {
            peak_rate: 1.5,
            duration_secs: 120.0,
            crowd_size: 30,
            crowd_at_secs: 30.0,
            rate: RateDistSpec::Uniform { lo: 8.0, hi: 24.0 },
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// The spec's `type` name.
    pub fn type_name(&self) -> &'static str {
        match self {
            WorkloadSpec::Preset { .. } => "preset",
            WorkloadSpec::DiurnalFlashCrowd { .. } => "diurnal-flash-crowd",
            WorkloadSpec::Synthetic { .. } => "synthetic",
            WorkloadSpec::TraceCsv { .. } => "trace-csv",
            WorkloadSpec::Inline { .. } => "inline",
        }
    }

    /// Resolves a relative `trace-csv` path against `base` (the single
    /// place the resolution rule lives — scenario- and sweep-level
    /// rebasing both call this).
    pub fn rebase_paths(&mut self, base: &std::path::Path) {
        if let WorkloadSpec::TraceCsv { path } = self {
            let p = std::path::Path::new(path.as_str());
            if p.is_relative() {
                *path = base.join(p).to_string_lossy().into_owned();
            }
        }
    }
}

/// One inline request.
#[derive(Debug, Clone, PartialEq)]
pub struct InlineRequest {
    /// Arrival time, seconds.
    pub arrival_secs: f64,
    /// Prompt length, tokens.
    pub prompt_tokens: u64,
    /// Output budget, tokens.
    pub output_tokens: u64,
    /// Required streaming rate, tokens/second.
    pub rate: f64,
}

/// An arrival process (times in seconds; mirrors
/// `tokenflow_workload::ArrivalSpec`).
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpecSpec {
    /// `size` simultaneous requests at `at_secs`.
    Burst {
        /// Burst size.
        size: u64,
        /// Burst instant, seconds.
        at_secs: f64,
    },
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Arrival rate λ, requests/second.
        rate: f64,
        /// Horizon, seconds.
        duration_secs: f64,
    },
    /// Markov-modulated Poisson (BurstGPT-style calm/burst phases).
    Mmpp {
        /// Calm-state rate, requests/second.
        base_rate: f64,
        /// Burst-state rate, requests/second.
        burst_rate: f64,
        /// Mean calm dwell, seconds.
        mean_calm_secs: f64,
        /// Mean burst dwell, seconds.
        mean_burst_secs: f64,
        /// Horizon, seconds.
        duration_secs: f64,
    },
    /// Diurnal non-homogeneous Poisson (raised-cosine intensity).
    Diurnal {
        /// Trough rate, requests/second.
        trough_rate: f64,
        /// Peak rate, requests/second.
        peak_rate: f64,
        /// Modulation period, seconds.
        period_secs: f64,
        /// Horizon, seconds.
        duration_secs: f64,
    },
}

impl ArrivalSpecSpec {
    /// The spec's `type` name.
    pub fn type_name(&self) -> &'static str {
        match self {
            ArrivalSpecSpec::Burst { .. } => "burst",
            ArrivalSpecSpec::Poisson { .. } => "poisson",
            ArrivalSpecSpec::Mmpp { .. } => "mmpp",
            ArrivalSpecSpec::Diurnal { .. } => "diurnal",
        }
    }
}

/// A token-length distribution (mirrors `tokenflow_workload::LengthDist`,
/// plus the two named ShareGPT presets).
#[derive(Debug, Clone, PartialEq)]
pub enum LengthDistSpec {
    /// Every request gets exactly this many tokens.
    Fixed(u64),
    /// Normal clamped to `[min, max]`.
    Normal {
        /// Mean length.
        mean: f64,
        /// Standard deviation.
        std: f64,
        /// Lower clamp.
        min: u64,
        /// Upper clamp.
        max: u64,
    },
    /// Lognormal clamped to `[min, max]`.
    LogNormal {
        /// Target mean.
        mean: f64,
        /// Target standard deviation.
        std: f64,
        /// Lower clamp.
        min: u64,
        /// Upper clamp.
        max: u64,
    },
    /// Uniform over `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
    /// ShareGPT-like prompt lengths.
    SharegptPrompt,
    /// ShareGPT-like output lengths.
    SharegptOutput,
}

impl LengthDistSpec {
    /// The spec's `type` name.
    pub fn type_name(&self) -> &'static str {
        match self {
            LengthDistSpec::Fixed(_) => "fixed",
            LengthDistSpec::Normal { .. } => "normal",
            LengthDistSpec::LogNormal { .. } => "lognormal",
            LengthDistSpec::Uniform { .. } => "uniform",
            LengthDistSpec::SharegptPrompt => "sharegpt-prompt",
            LengthDistSpec::SharegptOutput => "sharegpt-output",
        }
    }
}

/// A streaming-rate distribution (mirrors `tokenflow_workload::RateDist`).
#[derive(Debug, Clone, PartialEq)]
pub enum RateDistSpec {
    /// Every client at the same rate.
    Fixed(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// A discrete `(weight, rate)` mix.
    Mix(Vec<(f64, f64)>),
}

impl RateDistSpec {
    /// The spec's `type` name.
    pub fn type_name(&self) -> &'static str {
        match self {
            RateDistSpec::Fixed(_) => "fixed",
            RateDistSpec::Uniform { .. } => "uniform",
            RateDistSpec::Mix(_) => "mix",
        }
    }
}

/// Engine knobs (the subset of `EngineConfig` a scenario varies; defaults
/// equal `EngineConfig::new`).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    /// Hard cap on concurrently decoding requests.
    pub max_batch: u64,
    /// Fraction of device memory the engine may use.
    pub mem_frac: f64,
    /// Enable KV offload (`false` = w/o-offload ablation).
    pub offload_enabled: bool,
    /// Enable write-through background sync.
    pub write_through: bool,
    /// Enable load-evict overlap.
    pub load_evict_overlap: bool,
    /// Prompt-token budget of one dedicated prefill iteration.
    pub max_prefill_tokens: u64,
    /// Simulation safety deadline, seconds.
    pub deadline_secs: f64,
    /// Honor scheduler plan horizons (the engine's quiescent-step fast
    /// path). `false` forces the full pipeline every step; results are
    /// byte-identical either way — the knob exists for differential
    /// testing and debugging.
    pub plan_horizon: bool,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            max_batch: 256,
            mem_frac: 0.9,
            offload_enabled: true,
            write_through: true,
            load_evict_overlap: true,
            max_prefill_tokens: 8_192,
            deadline_secs: (4 * 3_600) as f64,
            plan_horizon: true,
        }
    }
}

/// How many engines serve, and how they are wired together.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TopologySpec {
    /// One engine, no router.
    #[default]
    Single,
    /// A fixed cluster of `replicas` engines behind `router`.
    Cluster {
        /// Replica count (≥ 1).
        replicas: u64,
        /// Routing policy.
        router: RouterSpec,
        /// Epoch execution strategy.
        execution: ExecutionSpec,
    },
    /// An elastic fleet: `bootstrap` replicas at time zero, resized by
    /// `policy` within `control`'s bounds.
    Autoscaled {
        /// Replicas live at time zero.
        bootstrap: u64,
        /// Routing policy.
        router: RouterSpec,
        /// Fleet-sizing policy.
        policy: ScalePolicySpec,
        /// Control-plane bounds and timing.
        control: ControlSpec,
        /// Epoch execution strategy.
        execution: ExecutionSpec,
    },
}

impl TopologySpec {
    /// The spec's `type` name.
    pub fn type_name(&self) -> &'static str {
        match self {
            TopologySpec::Single => "single",
            TopologySpec::Cluster { .. } => "cluster",
            TopologySpec::Autoscaled { .. } => "autoscaled",
        }
    }
}

/// One scheduled fail-stop replica crash.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashSpec {
    /// Replica index, 0-based in provisioning order.
    pub replica: u64,
    /// Crash instant, seconds.
    pub at_secs: f64,
}

/// One degradation window: the replica (straggler) or its KV link runs
/// at `factor` of healthy throughput over `[from_secs, until_secs)`.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowFaultSpec {
    /// Replica index, 0-based in provisioning order.
    pub replica: u64,
    /// Window start, seconds (inclusive).
    pub from_secs: f64,
    /// Window end, seconds (exclusive; must exceed `from_secs`).
    pub until_secs: f64,
    /// Throughput multiplier in `(0, 1]`.
    pub factor: f64,
}

/// Crash-recovery retry/backoff knobs, mirroring
/// `tokenflow_fault::RetryPolicy` field for field (times in
/// spec-friendly milliseconds). Defaults equal `RetryPolicy::default()`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrySpec {
    /// Re-dispatch attempts granted per request before it is abandoned.
    pub max_attempts: u64,
    /// Backoff before the first retry, milliseconds.
    pub base_backoff_ms: u64,
    /// Exponential growth factor (≥ 1) between consecutive retries.
    pub multiplier: f64,
    /// Ceiling on any single backoff, milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetrySpec {
    fn default() -> Self {
        RetrySpec {
            max_attempts: 3,
            base_backoff_ms: 500,
            multiplier: 2.0,
            max_backoff_ms: 8_000,
        }
    }
}

/// A deterministic fault schedule, mirroring
/// `tokenflow_fault::FaultPlan`. Only cluster and autoscaled topologies
/// accept one, and every replica index it names must lie inside the
/// topology (`replicas` for a fixed cluster, `control.max_replicas` for
/// an elastic fleet) — the codec and `ScenarioSpec::build` both enforce
/// this.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Fail-stop replica crashes.
    pub crashes: Vec<CrashSpec>,
    /// Compute-degradation (straggler) windows.
    pub stragglers: Vec<WindowFaultSpec>,
    /// KV-link (PCIe) degradation windows.
    pub kv_link: Vec<WindowFaultSpec>,
    /// Provisioning ordinals that fail to boot (elastic fleets).
    pub boot_failures: Vec<u64>,
    /// Crash-recovery retry/backoff policy.
    pub retry: RetrySpec,
    /// Admission-shed threshold on fleet utilization `Σ rᵢ / (n·Γ)`;
    /// `None` disables shedding.
    pub shed_utilization: Option<f64>,
}

impl FaultSpec {
    /// The largest replica index the spec references, if it names any.
    pub fn max_replica(&self) -> Option<u64> {
        self.crashes
            .iter()
            .map(|c| c.replica)
            .chain(self.stragglers.iter().map(|w| w.replica))
            .chain(self.kv_link.iter().map(|w| w.replica))
            .chain(self.boot_failures.iter().copied())
            .max()
    }
}

/// One complete scenario: the whole serving surface as data.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (free-form; lands in reports).
    pub name: String,
    /// Model profile, by name (see [`MODEL_NAMES`]).
    pub model: String,
    /// Hardware profile, by name (see [`HARDWARE_NAMES`]).
    pub hardware: String,
    /// Engine knobs.
    pub engine: EngineSpec,
    /// Scheduling policy.
    pub scheduler: SchedulerSpec,
    /// Workload.
    pub workload: WorkloadSpec,
    /// Serving topology.
    pub topology: TopologySpec,
    /// Deterministic fault schedule (`None` = fault-free).
    pub fault: Option<FaultSpec>,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "unnamed".to_string(),
            model: "Llama3-8B".to_string(),
            hardware: "RTX4090".to_string(),
            engine: EngineSpec::default(),
            scheduler: SchedulerSpec::default(),
            workload: WorkloadSpec::default(),
            topology: TopologySpec::default(),
            fault: None,
        }
    }
}

impl ScenarioSpec {
    /// Rewrites relative file paths inside the spec (currently only
    /// `workload.path` of a `trace-csv` workload) to resolve against
    /// `base` — what the CLI does with the spec file's own directory, so
    /// scenarios can name traces relative to themselves.
    pub fn rebase_paths(&mut self, base: &std::path::Path) {
        self.workload.rebase_paths(base);
    }
}
