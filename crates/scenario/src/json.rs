//! A minimal JSON value model, parser, and canonical emitter.
//!
//! The workspace's `serde` is an offline no-op stand-in (see `DESIGN.md`,
//! "Dependency policy"), so the scenario layer carries its own JSON
//! machinery: a strict recursive-descent parser with line/column errors
//! and an emitter whose output is *canonical* — object keys keep their
//! authored order, floats render in Rust's shortest-round-trip form —
//! so `parse(emit(v)) == v` and `emit(parse(s)) == s` for emitted `s`.
//! The spec round-trip property tests lean on exactly that.

use std::fmt::Write as _;

/// A JSON document.
///
/// Numbers are `f64` (JSON has one number type); object members keep
/// their authored order so emission is deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in authored member order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` on missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the canonical compact form.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders an indented human-friendly form (2-space indent) — what
    /// the committed `scenarios/` files use.
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    pad(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < members.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Canonical number rendering: integers without a trailing `.0`, other
/// values in shortest-round-trip form. `parse(emit(n))` recovers the
/// exact bits either way. JSON has no NaN/infinity and the parser never
/// produces them (overflowing literals are rejected), but a
/// programmatically constructed non-finite value must still emit *valid*
/// JSON — it becomes `null`, matching `JSON.stringify` semantics.
fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at {}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            // A literal like `1e999` parses to infinity; admitting it
            // would let a non-finite value into `Json::Num` and break
            // the emitter's validity guarantee, so reject it here.
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => Err(self.err(format!("number '{text}' overflows f64"))),
            Err(_) => Err(self.err(format!("malformed number '{text}'"))),
        }
    }

    /// Reads the four hex digits of one `\u` escape's code unit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| self.err("malformed \\u escape"))?;
        self.pos += 4;
        Ok(unit)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let code = match unit {
                                // RFC 8259: non-BMP characters arrive as a
                                // UTF-16 surrogate pair of \u escapes (what
                                // serde_json and JSON.stringify emit).
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    self.pos += 1;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00)
                                }
                                0xDC00..=0xDFFF => return Err(self.err("lone low surrogate")),
                                bmp => bmp,
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

/// Convenience constructors for canonical emission.
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A string value.
pub fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

/// A number value.
pub fn n(v: f64) -> Json {
    Json::Num(v)
}

/// An integer number value.
pub fn ni(v: u64) -> Json {
    Json::Num(v as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": null}, "x"], "c": false}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "{\"a\":1,\"a\":2}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("{\n  \"a\": tru\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("true"));
    }

    #[test]
    fn emit_parse_roundtrip() {
        let v = obj(vec![
            ("name", s("x")),
            ("rate", n(1.5)),
            ("count", ni(7)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", obj(vec![("k", s("v \"quoted\"\n"))])),
        ]);
        let compact = v.emit();
        assert_eq!(parse(&compact).unwrap(), v);
        // Emission of a parse of an emission is a fixed point.
        assert_eq!(parse(&compact).unwrap().emit(), compact);
        let pretty = v.emit_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(ni(120).emit(), "120");
        assert_eq!(n(0.5).emit(), "0.5");
        assert_eq!(n(-3.0).emit(), "-3");
    }

    #[test]
    fn overflowing_numbers_are_rejected_not_infinity() {
        for bad in ["1e999", "-1e999", "1e308000"] {
            let err = parse(bad).unwrap_err();
            assert!(err.msg.contains("overflow"), "{bad}: {err}");
        }
        // Large-but-finite still parses.
        assert_eq!(parse("1e308").unwrap(), Json::Num(1e308));
    }

    #[test]
    fn non_finite_values_emit_valid_json() {
        assert_eq!(n(f64::INFINITY).emit(), "null");
        assert_eq!(n(f64::NEG_INFINITY).emit(), "null");
        assert_eq!(n(f64::NAN).emit(), "null");
        // The emitted document stays parseable.
        assert!(parse(&Json::Arr(vec![n(f64::NAN)]).emit()).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_chars() {
        // RFC 8259 escaped emoji — what serde_json / JSON.stringify emit.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".to_string())
        );
        // And the character round-trips through the emitter raw.
        let v = Json::Str("😀".to_string());
        assert_eq!(parse(&v.emit()).unwrap(), v);
        // Lone or malformed surrogates are errors, not panics.
        for bad in [r#""\ud83d""#, r#""\ud83dx""#, r#""\ud83dA""#, r#""\ude00""#] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }
}
