//! JSON ⇄ spec conversion with typed errors.
//!
//! Parsing is lenient about *omissions* — any missing field takes its
//! default, so `{"workload": {"type": "preset", "name": "rtx4090-a"}}`
//! is a complete scenario — but strict about *mistakes*: unknown `type`
//! names produce [`SpecError::UnknownName`] listing the valid names,
//! unknown fields produce [`SpecError::UnknownField`], and type
//! mismatches produce [`SpecError::Invalid`]. Nothing panics on
//! malformed input.
//!
//! Emission is canonical: every field explicit, in declaration order,
//! knob-free enums as bare strings. `parse(emit(spec)) == spec` for any
//! spec, and emission is a fixed point over parse — the round-trip
//! property suite pins both.

use crate::json::{self, n, ni, obj, s, Json, JsonError};
use crate::spec::*;

/// A spec-level failure: where in the document, and what went wrong.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document was not JSON at all.
    Json(JsonError),
    /// A name (policy, preset, profile, …) did not match any shipped one.
    UnknownName {
        /// Dotted path of the offending field, e.g. `"scheduler.type"`.
        field: String,
        /// What the document said.
        got: String,
        /// Every valid name for this field.
        valid: Vec<String>,
    },
    /// An object carried a field the spec does not define (typo guard).
    UnknownField {
        /// Dotted path of the unknown field.
        field: String,
        /// Fields the object does define.
        valid: Vec<String>,
    },
    /// A field was present but malformed (wrong type, bad value).
    Invalid {
        /// Dotted path of the offending field.
        field: String,
        /// What was wrong.
        msg: String,
    },
    /// The spec was well-formed but unbuildable (e.g. unreadable trace).
    Build {
        /// What failed.
        msg: String,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::UnknownName { field, got, valid } => write!(
                f,
                "unknown {field} \"{got}\"; valid names: {}",
                valid.join(", ")
            ),
            SpecError::UnknownField { field, valid } => write!(
                f,
                "unknown field {field}; this object accepts: {}",
                valid.join(", ")
            ),
            SpecError::Invalid { field, msg } => write!(f, "invalid {field}: {msg}"),
            SpecError::Build { msg } => write!(f, "cannot build scenario: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

fn unknown_name(field: &str, got: &str, valid: &[&str]) -> SpecError {
    SpecError::UnknownName {
        field: field.to_string(),
        got: got.to_string(),
        valid: valid.iter().map(|v| v.to_string()).collect(),
    }
}

fn invalid(field: &str, msg: impl Into<String>) -> SpecError {
    SpecError::Invalid {
        field: field.to_string(),
        msg: msg.into(),
    }
}

/// Checks an object's keys against the accepted set (typo guard).
fn check_fields(v: &Json, path: &str, accepted: &[&str]) -> Result<(), SpecError> {
    let Some(members) = v.as_obj() else {
        return Err(invalid(path, "expected an object"));
    };
    for (k, _) in members {
        if !accepted.contains(&k.as_str()) {
            return Err(SpecError::UnknownField {
                field: format!("{path}.{k}"),
                valid: accepted.iter().map(|a| a.to_string()).collect(),
            });
        }
    }
    Ok(())
}

fn get_f64(v: &Json, path: &str, key: &str, default: f64) -> Result<f64, SpecError> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => match j.as_f64() {
            Some(x) if x.is_finite() => Ok(x),
            _ => Err(invalid(
                &format!("{path}.{key}"),
                "expected a finite number",
            )),
        },
    }
}

/// Strictly positive finite number — rates and intervals the engine
/// asserts on at run time fail here with a typed error instead.
fn get_pos_f64(v: &Json, path: &str, key: &str, default: f64) -> Result<f64, SpecError> {
    let x = get_f64(v, path, key, default)?;
    if x > 0.0 {
        Ok(x)
    } else {
        Err(invalid(&format!("{path}.{key}"), "must be positive"))
    }
}

/// Non-negative finite number — times and delays (`SimTime::from_secs_f64`
/// rejects negatives) fail here with a typed error instead.
fn get_nonneg_f64(v: &Json, path: &str, key: &str, default: f64) -> Result<f64, SpecError> {
    let x = get_f64(v, path, key, default)?;
    if x >= 0.0 {
        Ok(x)
    } else {
        Err(invalid(&format!("{path}.{key}"), "must be non-negative"))
    }
}

/// Integer that must also fit the engine's `u32` fields (batch caps,
/// burst sizes) — out-of-range values error instead of silently wrapping
/// at build time.
fn get_u32_sized(v: &Json, path: &str, key: &str, default: u64) -> Result<u64, SpecError> {
    let x = get_u64(v, path, key, default)?;
    if x <= u64::from(u32::MAX) {
        Ok(x)
    } else {
        Err(invalid(
            &format!("{path}.{key}"),
            format!("must fit in 32 bits (≤ {})", u32::MAX),
        ))
    }
}

/// Millisecond interval that must survive `SimDuration::from_millis`'s
/// `×1000` conversion — bounded to `u32` range (~49 days), far beyond any
/// meaningful scheduling interval, so oversized values error at parse
/// time instead of overflowing at build time.
fn get_millis(v: &Json, path: &str, key: &str, default: u64) -> Result<u64, SpecError> {
    let x = get_u64(v, path, key, default)?;
    if x <= u64::from(u32::MAX) {
        Ok(x)
    } else {
        Err(invalid(
            &format!("{path}.{key}"),
            format!("interval too large (at most {} ms)", u32::MAX),
        ))
    }
}

fn get_u64(v: &Json, path: &str, key: &str, default: u64) -> Result<u64, SpecError> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_u64()
            .ok_or_else(|| invalid(&format!("{path}.{key}"), "expected a non-negative integer")),
    }
}

fn get_bool(v: &Json, path: &str, key: &str, default: bool) -> Result<bool, SpecError> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_bool()
            .ok_or_else(|| invalid(&format!("{path}.{key}"), "expected true or false")),
    }
}

fn get_opt_f64(v: &Json, path: &str, key: &str) -> Result<Option<f64>, SpecError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => match j.as_f64() {
            Some(x) if x.is_finite() => Ok(Some(x)),
            _ => Err(invalid(
                &format!("{path}.{key}"),
                "expected a finite number or null",
            )),
        },
    }
}

fn get_str<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a str, SpecError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| invalid(&format!("{path}.{key}"), "expected a string"))
}

/// The `type` tag of a tagged object, or the bare string itself.
fn type_tag<'a>(v: &'a Json, path: &str, valid: &[&str]) -> Result<&'a str, SpecError> {
    let name = match v {
        Json::Str(name) => name.as_str(),
        Json::Obj(_) => get_str(v, path, "type")?,
        _ => return Err(invalid(path, "expected a string or a {\"type\": …} object")),
    };
    if valid.contains(&name) {
        Ok(name)
    } else {
        Err(unknown_name(&format!("{path}.type"), name, valid))
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parses a [`ScenarioSpec`] from JSON text.
pub fn parse_scenario(text: &str) -> Result<ScenarioSpec, SpecError> {
    scenario_from_json(&json::parse(text)?, "scenario")
}

/// Parses a [`ScenarioSpec`] from an already-parsed JSON value.
pub fn scenario_from_json(v: &Json, path: &str) -> Result<ScenarioSpec, SpecError> {
    check_fields(
        v,
        path,
        &[
            "name",
            "model",
            "hardware",
            "engine",
            "scheduler",
            "workload",
            "topology",
            "fault",
        ],
    )?;
    let d = ScenarioSpec::default();
    let model = match v.get("model") {
        None => d.model,
        Some(j) => {
            let name = j
                .as_str()
                .ok_or_else(|| invalid(&format!("{path}.model"), "expected a string"))?;
            canonical_name(name, MODEL_NAMES)
                .ok_or_else(|| unknown_name(&format!("{path}.model"), name, MODEL_NAMES))?
        }
    };
    let hardware = match v.get("hardware") {
        None => d.hardware,
        Some(j) => {
            let name = j
                .as_str()
                .ok_or_else(|| invalid(&format!("{path}.hardware"), "expected a string"))?;
            canonical_name(name, HARDWARE_NAMES)
                .ok_or_else(|| unknown_name(&format!("{path}.hardware"), name, HARDWARE_NAMES))?
        }
    };
    let spec = ScenarioSpec {
        name: match v.get("name") {
            None => d.name,
            Some(j) => j
                .as_str()
                .ok_or_else(|| invalid(&format!("{path}.name"), "expected a string"))?
                .to_string(),
        },
        model,
        hardware,
        engine: match v.get("engine") {
            None => EngineSpec::default(),
            Some(j) => engine_from_json(j, &format!("{path}.engine"))?,
        },
        scheduler: match v.get("scheduler") {
            None => SchedulerSpec::default(),
            Some(j) => scheduler_from_json(j, &format!("{path}.scheduler"))?,
        },
        workload: match v.get("workload") {
            None => WorkloadSpec::default(),
            Some(j) => workload_from_json(j, &format!("{path}.workload"))?,
        },
        topology: match v.get("topology") {
            None => TopologySpec::default(),
            Some(j) => topology_from_json(j, &format!("{path}.topology"))?,
        },
        fault: match v.get("fault") {
            None | Some(Json::Null) => None,
            Some(j) => Some(fault_from_json(j, &format!("{path}.fault"))?),
        },
    };
    check_fault_topology(&spec, path)?;
    Ok(spec)
}

/// Cross-field check: a fault schedule needs a multi-replica topology,
/// and every replica index it names must lie inside it (`replicas` for a
/// fixed cluster, `control.max_replicas` for an elastic fleet).
/// `ScenarioSpec::build` re-runs this so programmatically constructed
/// specs hit the same typed error instead of a run-time panic.
pub fn check_fault_topology(spec: &ScenarioSpec, path: &str) -> Result<(), SpecError> {
    let Some(fault) = &spec.fault else {
        return Ok(());
    };
    let bound = match &spec.topology {
        TopologySpec::Single => {
            return Err(invalid(
                &format!("{path}.fault"),
                "fault injection needs a cluster or autoscaled topology",
            ));
        }
        TopologySpec::Cluster { replicas, .. } => *replicas,
        TopologySpec::Autoscaled { control, .. } => control.max_replicas,
    };
    let check = |field: String, replica: u64| {
        if replica >= bound {
            Err(invalid(
                &field,
                format!(
                    "replica {replica} is outside the topology (valid replica indices: 0..{bound})"
                ),
            ))
        } else {
            Ok(())
        }
    };
    for (i, c) in fault.crashes.iter().enumerate() {
        check(format!("{path}.fault.crashes[{i}].replica"), c.replica)?;
    }
    for (i, w) in fault.stragglers.iter().enumerate() {
        check(format!("{path}.fault.stragglers[{i}].replica"), w.replica)?;
    }
    for (i, w) in fault.kv_link.iter().enumerate() {
        check(format!("{path}.fault.kv_link[{i}].replica"), w.replica)?;
    }
    for (i, &b) in fault.boot_failures.iter().enumerate() {
        check(format!("{path}.fault.boot_failures[{i}]"), b)?;
    }
    Ok(())
}

/// Case-insensitive lookup returning the canonical spelling.
fn canonical_name(name: &str, valid: &[&str]) -> Option<String> {
    valid
        .iter()
        .find(|v| v.eq_ignore_ascii_case(name))
        .map(|v| v.to_string())
}

/// Parses a [`SchedulerSpec`].
pub fn scheduler_from_json(v: &Json, path: &str) -> Result<SchedulerSpec, SpecError> {
    match type_tag(v, path, SCHEDULER_NAMES)? {
        "fcfs" => {
            if v.as_obj().is_some() {
                check_fields(v, path, &["type", "headroom"])?;
            }
            let headroom = match v.get("headroom") {
                None | Some(Json::Null) => None,
                Some(j) => Some(j.as_u64().ok_or_else(|| {
                    invalid(&format!("{path}.headroom"), "expected an integer or null")
                })?),
            };
            Ok(SchedulerSpec::Fcfs { headroom })
        }
        "chunked" => {
            if v.as_obj().is_some() {
                check_fields(v, path, &["type", "chunk"])?;
            }
            let chunk = get_u64(v, path, "chunk", 512)?;
            if chunk == 0 {
                return Err(invalid(&format!("{path}.chunk"), "must be positive"));
            }
            Ok(SchedulerSpec::Chunked { chunk })
        }
        "andes" => {
            if v.as_obj().is_some() {
                check_fields(v, path, &["type", "interval_ms"])?;
            }
            Ok(SchedulerSpec::Andes {
                interval_ms: get_millis(v, path, "interval_ms", 500)?,
            })
        }
        "tokenflow" => {
            if v.as_obj().is_some() {
                check_fields(
                    v,
                    path,
                    &[
                        "type",
                        "schedule_interval_ms",
                        "buffer_conservativeness",
                        "ws_adjust_rate",
                        "gamma",
                        "critical_buffer_secs",
                        "headroom_tokens",
                        "util_target",
                        "max_transitions",
                        "io_backpressure",
                        "capacity_safety",
                        "prefill_chunk",
                        "swap_candidates",
                    ],
                )?;
            }
            let d = TokenFlowSpec::default();
            Ok(SchedulerSpec::TokenFlow(TokenFlowSpec {
                schedule_interval_ms: get_millis(
                    v,
                    path,
                    "schedule_interval_ms",
                    d.schedule_interval_ms,
                )?,
                buffer_conservativeness: get_nonneg_f64(
                    v,
                    path,
                    "buffer_conservativeness",
                    d.buffer_conservativeness,
                )?,
                ws_adjust_rate: get_f64(v, path, "ws_adjust_rate", d.ws_adjust_rate)?,
                gamma: get_f64(v, path, "gamma", d.gamma)?,
                critical_buffer_secs: get_f64(
                    v,
                    path,
                    "critical_buffer_secs",
                    d.critical_buffer_secs,
                )?,
                headroom_tokens: get_u64(v, path, "headroom_tokens", d.headroom_tokens)?,
                util_target: get_f64(v, path, "util_target", d.util_target)?,
                max_transitions: get_u64(v, path, "max_transitions", d.max_transitions)?,
                io_backpressure: get_f64(v, path, "io_backpressure", d.io_backpressure)?,
                capacity_safety: get_f64(v, path, "capacity_safety", d.capacity_safety)?,
                prefill_chunk: get_u64(v, path, "prefill_chunk", d.prefill_chunk)?,
                swap_candidates: get_u64(v, path, "swap_candidates", d.swap_candidates)?,
            }))
        }
        _ => unreachable!("type_tag validated"),
    }
}

/// Parses a [`RouterSpec`] (a bare string or `{"type": …}`).
pub fn router_from_json(v: &Json, path: &str) -> Result<RouterSpec, SpecError> {
    Ok(match type_tag(v, path, ROUTER_NAMES)? {
        "round-robin" => RouterSpec::RoundRobin,
        "least-loaded" => RouterSpec::LeastLoaded,
        "backlog-aware" => RouterSpec::BacklogAware,
        "rate-aware" => RouterSpec::RateAware,
        _ => unreachable!("type_tag validated"),
    })
}

/// Parses a [`ScalePolicySpec`].
pub fn policy_from_json(v: &Json, path: &str) -> Result<ScalePolicySpec, SpecError> {
    match type_tag(v, path, SCALE_POLICY_NAMES)? {
        "reactive" => {
            if v.as_obj().is_some() {
                check_fields(
                    v,
                    path,
                    &[
                        "type",
                        "target_utilization",
                        "backlog_per_replica",
                        "kv_watermark",
                    ],
                )?;
            }
            Ok(ScalePolicySpec::Reactive {
                target_utilization: get_f64(v, path, "target_utilization", 0.60)?,
                backlog_per_replica: get_u64(v, path, "backlog_per_replica", 1_024)?,
                kv_watermark: get_f64(v, path, "kv_watermark", 0.50)?,
            })
        }
        "predictive-ewma" => {
            if v.as_obj().is_some() {
                check_fields(
                    v,
                    path,
                    &[
                        "type",
                        "tau_secs",
                        "target_utilization",
                        "backlog_per_replica",
                        "kv_watermark",
                    ],
                )?;
            }
            Ok(ScalePolicySpec::PredictiveEwma {
                tau_secs: get_f64(v, path, "tau_secs", 30.0)?,
                target_utilization: get_f64(v, path, "target_utilization", 0.60)?,
                backlog_per_replica: get_u64(v, path, "backlog_per_replica", 1_024)?,
                kv_watermark: get_f64(v, path, "kv_watermark", 0.50)?,
            })
        }
        "scripted" => {
            check_fields(v, path, &["type", "steps"])?;
            let steps_json = v
                .get("steps")
                .and_then(Json::as_arr)
                .ok_or_else(|| invalid(&format!("{path}.steps"), "expected an array"))?;
            let mut steps = Vec::with_capacity(steps_json.len());
            for (i, step) in steps_json.iter().enumerate() {
                let pair = step.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                    invalid(
                        &format!("{path}.steps[{i}]"),
                        "expected [at_secs, fleet_size]",
                    )
                })?;
                let at = match pair[0].as_f64() {
                    Some(at) if at.is_finite() && at >= 0.0 => at,
                    _ => {
                        return Err(invalid(
                            &format!("{path}.steps[{i}][0]"),
                            "expected a non-negative number",
                        ))
                    }
                };
                let fleet = pair[1].as_u64().ok_or_else(|| {
                    invalid(&format!("{path}.steps[{i}][1]"), "expected an integer")
                })?;
                steps.push((at, fleet));
            }
            Ok(ScalePolicySpec::Scripted { steps })
        }
        _ => unreachable!("type_tag validated"),
    }
}

/// Parses a [`ControlSpec`].
pub fn control_from_json(v: &Json, path: &str) -> Result<ControlSpec, SpecError> {
    check_fields(
        v,
        path,
        &[
            "min_replicas",
            "max_replicas",
            "boot_delay_secs",
            "cooldown_secs",
            "gamma",
            "control_tick_secs",
        ],
    )?;
    let d = ControlSpec::default();
    let spec = ControlSpec {
        min_replicas: get_u64(v, path, "min_replicas", d.min_replicas)?,
        max_replicas: get_u64(v, path, "max_replicas", d.max_replicas)?,
        boot_delay_secs: get_nonneg_f64(v, path, "boot_delay_secs", d.boot_delay_secs)?,
        cooldown_secs: get_nonneg_f64(v, path, "cooldown_secs", d.cooldown_secs)?,
        gamma: get_opt_f64(v, path, "gamma")?,
        control_tick_secs: get_opt_f64(v, path, "control_tick_secs")?,
    };
    if spec.min_replicas == 0 {
        return Err(invalid(&format!("{path}.min_replicas"), "must be ≥ 1"));
    }
    if spec.max_replicas < spec.min_replicas {
        return Err(invalid(
            &format!("{path}.max_replicas"),
            "must be ≥ min_replicas",
        ));
    }
    if spec.gamma.is_some_and(|g| g <= 0.0 || g.is_nan()) {
        return Err(invalid(&format!("{path}.gamma"), "must be positive"));
    }
    if spec.control_tick_secs.is_some_and(|t| t <= 0.0) {
        return Err(invalid(
            &format!("{path}.control_tick_secs"),
            "must be positive",
        ));
    }
    Ok(spec)
}

/// Parses an [`ExecutionSpec`]: a bare string (`"sequential"`,
/// `"auto"`), a `{"type": "parallel", "threads": n}` object, or the
/// nested shorthand `{"parallel": {"threads": n}}`. Unknown strategy
/// names list the valid alternatives.
pub fn execution_from_json(v: &Json, path: &str) -> Result<ExecutionSpec, SpecError> {
    // Nested shorthand: a single-key object whose key names the
    // strategy, e.g. {"parallel": {"threads": 8}}.
    if let Some(members) = v.as_obj() {
        if v.get("type").is_none() {
            let [(name, body)] = members else {
                return Err(invalid(
                    path,
                    "expected a strategy string, a {\"type\": …} object, \
                     or a single-key {\"parallel\": {…}} object",
                ));
            };
            if !EXECUTION_NAMES.contains(&name.as_str()) {
                return Err(unknown_name(path, name, EXECUTION_NAMES));
            }
            let inner = format!("{path}.{name}");
            return match name.as_str() {
                "parallel" => {
                    check_fields(body, &inner, &["threads"])?;
                    let threads = get_u64(body, &inner, "threads", 4)?;
                    if threads == 0 {
                        return Err(invalid(&format!("{inner}.threads"), "must be ≥ 1"));
                    }
                    Ok(ExecutionSpec::Parallel(threads))
                }
                "sequential" => {
                    check_fields(body, &inner, &[])?;
                    Ok(ExecutionSpec::Sequential)
                }
                _ => {
                    check_fields(body, &inner, &[])?;
                    Ok(ExecutionSpec::Auto)
                }
            };
        }
    }
    match type_tag(v, path, EXECUTION_NAMES)? {
        "sequential" => Ok(ExecutionSpec::Sequential),
        "auto" => {
            if v.as_obj().is_some() {
                check_fields(v, path, &["type"])?;
            }
            Ok(ExecutionSpec::Auto)
        }
        "parallel" => {
            if v.as_obj().is_some() {
                check_fields(v, path, &["type", "threads"])?;
            }
            let threads = get_u64(v, path, "threads", 4)?;
            if threads == 0 {
                return Err(invalid(&format!("{path}.threads"), "must be ≥ 1"));
            }
            Ok(ExecutionSpec::Parallel(threads))
        }
        _ => unreachable!("type_tag validated"),
    }
}

/// Parses a [`WorkloadSpec`].
pub fn workload_from_json(v: &Json, path: &str) -> Result<WorkloadSpec, SpecError> {
    match type_tag(v, path, WORKLOAD_TYPE_NAMES)? {
        "preset" => {
            check_fields(v, path, &["type", "name", "seed"])?;
            let name = get_str(v, path, "name")?;
            let Some(name) = canonical_name(name, PRESET_NAMES) else {
                return Err(unknown_name(&format!("{path}.name"), name, PRESET_NAMES));
            };
            Ok(WorkloadSpec::Preset {
                name,
                seed: get_u64(v, path, "seed", 42)?,
            })
        }
        "diurnal-flash-crowd" => {
            check_fields(
                v,
                path,
                &[
                    "type",
                    "peak_rate",
                    "duration_secs",
                    "crowd_size",
                    "crowd_at_secs",
                    "rate",
                    "seed",
                ],
            )?;
            let WorkloadSpec::DiurnalFlashCrowd {
                peak_rate,
                duration_secs,
                crowd_size,
                crowd_at_secs,
                rate,
                seed,
            } = WorkloadSpec::default()
            else {
                unreachable!("default is diurnal-flash-crowd");
            };
            Ok(WorkloadSpec::DiurnalFlashCrowd {
                peak_rate: get_pos_f64(v, path, "peak_rate", peak_rate)?,
                duration_secs: get_nonneg_f64(v, path, "duration_secs", duration_secs)?,
                crowd_size: get_u32_sized(v, path, "crowd_size", crowd_size)?,
                crowd_at_secs: get_nonneg_f64(v, path, "crowd_at_secs", crowd_at_secs)?,
                rate: match v.get("rate") {
                    None => rate,
                    Some(j) => rate_dist_from_json(j, &format!("{path}.rate"))?,
                },
                seed: get_u64(v, path, "seed", seed)?,
            })
        }
        "synthetic" => {
            check_fields(
                v,
                path,
                &["type", "arrivals", "prompt", "output", "rate", "seed"],
            )?;
            let arrivals = v
                .get("arrivals")
                .ok_or_else(|| invalid(&format!("{path}.arrivals"), "required for synthetic"))?;
            Ok(WorkloadSpec::Synthetic {
                arrivals: arrivals_from_json(arrivals, &format!("{path}.arrivals"))?,
                prompt: match v.get("prompt") {
                    None => LengthDistSpec::SharegptPrompt,
                    Some(j) => length_dist_from_json(j, &format!("{path}.prompt"))?,
                },
                output: match v.get("output") {
                    None => LengthDistSpec::SharegptOutput,
                    Some(j) => length_dist_from_json(j, &format!("{path}.output"))?,
                },
                rate: match v.get("rate") {
                    None => RateDistSpec::Fixed(tokenflow_workload::presets::DEFAULT_RATE),
                    Some(j) => rate_dist_from_json(j, &format!("{path}.rate"))?,
                },
                seed: get_u64(v, path, "seed", 42)?,
            })
        }
        "trace-csv" => {
            check_fields(v, path, &["type", "path"])?;
            Ok(WorkloadSpec::TraceCsv {
                path: get_str(v, path, "path")?.to_string(),
            })
        }
        "inline" => {
            check_fields(v, path, &["type", "requests"])?;
            let arr = v
                .get("requests")
                .and_then(Json::as_arr)
                .ok_or_else(|| invalid(&format!("{path}.requests"), "expected an array"))?;
            let mut requests = Vec::with_capacity(arr.len());
            for (i, r) in arr.iter().enumerate() {
                let rpath = format!("{path}.requests[{i}]");
                check_fields(
                    r,
                    &rpath,
                    &["arrival_secs", "prompt_tokens", "output_tokens", "rate"],
                )?;
                requests.push(InlineRequest {
                    arrival_secs: get_nonneg_f64(r, &rpath, "arrival_secs", 0.0)?,
                    prompt_tokens: get_u64(r, &rpath, "prompt_tokens", 256)?,
                    output_tokens: match get_u64(r, &rpath, "output_tokens", 128)? {
                        0 => {
                            return Err(invalid(
                                &format!("{rpath}.output_tokens"),
                                "must be \u{2265} 1",
                            ))
                        }
                        n => n,
                    },
                    rate: get_pos_f64(
                        r,
                        &rpath,
                        "rate",
                        tokenflow_workload::presets::DEFAULT_RATE,
                    )?,
                });
            }
            Ok(WorkloadSpec::Inline { requests })
        }
        _ => unreachable!("type_tag validated"),
    }
}

fn arrivals_from_json(v: &Json, path: &str) -> Result<ArrivalSpecSpec, SpecError> {
    match type_tag(v, path, ARRIVAL_NAMES)? {
        "burst" => {
            check_fields(v, path, &["type", "size", "at_secs"])?;
            Ok(ArrivalSpecSpec::Burst {
                size: get_u32_sized(v, path, "size", 60)?,
                at_secs: get_nonneg_f64(v, path, "at_secs", 0.0)?,
            })
        }
        "poisson" => {
            check_fields(v, path, &["type", "rate", "duration_secs"])?;
            Ok(ArrivalSpecSpec::Poisson {
                rate: get_pos_f64(v, path, "rate", 2.0)?,
                duration_secs: get_nonneg_f64(v, path, "duration_secs", 60.0)?,
            })
        }
        "mmpp" => {
            check_fields(
                v,
                path,
                &[
                    "type",
                    "base_rate",
                    "burst_rate",
                    "mean_calm_secs",
                    "mean_burst_secs",
                    "duration_secs",
                ],
            )?;
            Ok(ArrivalSpecSpec::Mmpp {
                base_rate: get_pos_f64(v, path, "base_rate", 1.0)?,
                burst_rate: get_pos_f64(v, path, "burst_rate", 20.0)?,
                mean_calm_secs: get_pos_f64(v, path, "mean_calm_secs", 25.0)?,
                mean_burst_secs: get_pos_f64(v, path, "mean_burst_secs", 6.0)?,
                duration_secs: get_nonneg_f64(v, path, "duration_secs", 300.0)?,
            })
        }
        "diurnal" => {
            check_fields(
                v,
                path,
                &[
                    "type",
                    "trough_rate",
                    "peak_rate",
                    "period_secs",
                    "duration_secs",
                ],
            )?;
            let duration = get_nonneg_f64(v, path, "duration_secs", 600.0)?;
            Ok(ArrivalSpecSpec::Diurnal {
                trough_rate: get_nonneg_f64(v, path, "trough_rate", 0.5)?,
                peak_rate: get_pos_f64(v, path, "peak_rate", 5.0)?,
                period_secs: get_pos_f64(v, path, "period_secs", duration)?,
                duration_secs: duration,
            })
        }
        _ => unreachable!("type_tag validated"),
    }
}

fn length_dist_from_json(v: &Json, path: &str) -> Result<LengthDistSpec, SpecError> {
    match type_tag(v, path, LENGTH_DIST_NAMES)? {
        "fixed" => {
            check_fields(v, path, &["type", "tokens"])?;
            Ok(LengthDistSpec::Fixed(get_u64(v, path, "tokens", 256)?))
        }
        "normal" => {
            check_fields(v, path, &["type", "mean", "std", "min", "max"])?;
            let mean = get_f64(v, path, "mean", 512.0)?;
            Ok(LengthDistSpec::Normal {
                mean,
                std: get_f64(v, path, "std", mean / 4.0)?,
                min: get_u64(v, path, "min", 16)?,
                max: get_u64(v, path, "max", (mean * 4.0) as u64)?,
            })
        }
        "lognormal" => {
            check_fields(v, path, &["type", "mean", "std", "min", "max"])?;
            let mean = get_f64(v, path, "mean", 350.0)?;
            Ok(LengthDistSpec::LogNormal {
                mean,
                std: get_f64(v, path, "std", mean)?,
                min: get_u64(v, path, "min", 8)?,
                max: get_u64(v, path, "max", 8_192)?,
            })
        }
        "uniform" => {
            check_fields(v, path, &["type", "lo", "hi"])?;
            Ok(LengthDistSpec::Uniform {
                lo: get_u64(v, path, "lo", 16)?,
                hi: get_u64(v, path, "hi", 1_024)?,
            })
        }
        "sharegpt-prompt" => Ok(LengthDistSpec::SharegptPrompt),
        "sharegpt-output" => Ok(LengthDistSpec::SharegptOutput),
        _ => unreachable!("type_tag validated"),
    }
}

fn rate_dist_from_json(v: &Json, path: &str) -> Result<RateDistSpec, SpecError> {
    match type_tag(v, path, RATE_DIST_NAMES)? {
        "fixed" => {
            check_fields(v, path, &["type", "rate"])?;
            Ok(RateDistSpec::Fixed(get_pos_f64(
                v,
                path,
                "rate",
                tokenflow_workload::presets::DEFAULT_RATE,
            )?))
        }
        "uniform" => {
            check_fields(v, path, &["type", "lo", "hi"])?;
            let lo = get_pos_f64(v, path, "lo", 8.0)?;
            let hi = get_pos_f64(v, path, "hi", 24.0)?;
            if hi < lo {
                return Err(invalid(&format!("{path}.hi"), "must be \u{2265} lo"));
            }
            Ok(RateDistSpec::Uniform { lo, hi })
        }
        "mix" => {
            check_fields(v, path, &["type", "entries"])?;
            let arr = v
                .get("entries")
                .and_then(Json::as_arr)
                .ok_or_else(|| invalid(&format!("{path}.entries"), "expected an array"))?;
            let mut entries = Vec::with_capacity(arr.len());
            for (i, e) in arr.iter().enumerate() {
                let pair = e.as_arr().filter(|a| a.len() == 2).ok_or_else(|| {
                    invalid(&format!("{path}.entries[{i}]"), "expected [weight, rate]")
                })?;
                let w = match pair[0].as_f64() {
                    Some(w) if w.is_finite() && w > 0.0 => w,
                    _ => {
                        return Err(invalid(
                            &format!("{path}.entries[{i}][0]"),
                            "weight must be a positive number",
                        ))
                    }
                };
                let r = match pair[1].as_f64() {
                    Some(r) if r.is_finite() && r > 0.0 => r,
                    _ => {
                        return Err(invalid(
                            &format!("{path}.entries[{i}][1]"),
                            "rate must be a positive number",
                        ))
                    }
                };
                entries.push((w, r));
            }
            if entries.is_empty() {
                return Err(invalid(&format!("{path}.entries"), "must be non-empty"));
            }
            Ok(RateDistSpec::Mix(entries))
        }
        _ => unreachable!("type_tag validated"),
    }
}

fn engine_from_json(v: &Json, path: &str) -> Result<EngineSpec, SpecError> {
    check_fields(
        v,
        path,
        &[
            "max_batch",
            "mem_frac",
            "offload_enabled",
            "write_through",
            "load_evict_overlap",
            "max_prefill_tokens",
            "deadline_secs",
            "plan_horizon",
        ],
    )?;
    let d = EngineSpec::default();
    let spec = EngineSpec {
        max_batch: get_u32_sized(v, path, "max_batch", d.max_batch)?,
        mem_frac: get_f64(v, path, "mem_frac", d.mem_frac)?,
        offload_enabled: get_bool(v, path, "offload_enabled", d.offload_enabled)?,
        write_through: get_bool(v, path, "write_through", d.write_through)?,
        load_evict_overlap: get_bool(v, path, "load_evict_overlap", d.load_evict_overlap)?,
        max_prefill_tokens: get_u64(v, path, "max_prefill_tokens", d.max_prefill_tokens)?,
        deadline_secs: get_nonneg_f64(v, path, "deadline_secs", d.deadline_secs)?,
        plan_horizon: get_bool(v, path, "plan_horizon", d.plan_horizon)?,
    };
    if spec.max_batch == 0 {
        return Err(invalid(&format!("{path}.max_batch"), "must be ≥ 1"));
    }
    if !(spec.mem_frac > 0.0 && spec.mem_frac <= 1.0) {
        return Err(invalid(&format!("{path}.mem_frac"), "must be in (0, 1]"));
    }
    Ok(spec)
}

/// Parses a [`TopologySpec`].
pub fn topology_from_json(v: &Json, path: &str) -> Result<TopologySpec, SpecError> {
    match type_tag(v, path, TOPOLOGY_NAMES)? {
        "single" => Ok(TopologySpec::Single),
        "cluster" => {
            check_fields(v, path, &["type", "replicas", "router", "execution"])?;
            let replicas = get_u64(v, path, "replicas", 2)?;
            if replicas == 0 {
                return Err(invalid(&format!("{path}.replicas"), "must be ≥ 1"));
            }
            Ok(TopologySpec::Cluster {
                replicas,
                router: match v.get("router") {
                    None => RouterSpec::default(),
                    Some(j) => router_from_json(j, &format!("{path}.router"))?,
                },
                execution: match v.get("execution") {
                    None => ExecutionSpec::default(),
                    Some(j) => execution_from_json(j, &format!("{path}.execution"))?,
                },
            })
        }
        "autoscaled" => {
            check_fields(
                v,
                path,
                &[
                    "type",
                    "bootstrap",
                    "router",
                    "policy",
                    "control",
                    "execution",
                ],
            )?;
            let bootstrap = get_u64(v, path, "bootstrap", 1)?;
            if bootstrap == 0 {
                return Err(invalid(&format!("{path}.bootstrap"), "must be ≥ 1"));
            }
            Ok(TopologySpec::Autoscaled {
                bootstrap,
                router: match v.get("router") {
                    None => RouterSpec::default(),
                    Some(j) => router_from_json(j, &format!("{path}.router"))?,
                },
                policy: match v.get("policy") {
                    None => ScalePolicySpec::default(),
                    Some(j) => policy_from_json(j, &format!("{path}.policy"))?,
                },
                control: match v.get("control") {
                    None => ControlSpec::default(),
                    Some(j) => control_from_json(j, &format!("{path}.control"))?,
                },
                execution: match v.get("execution") {
                    None => ExecutionSpec::default(),
                    Some(j) => execution_from_json(j, &format!("{path}.execution"))?,
                },
            })
        }
        _ => unreachable!("type_tag validated"),
    }
}

/// Integer field that must be present (fault entries have no sensible
/// default replica or instant).
fn req_u64(v: &Json, path: &str, key: &str) -> Result<u64, SpecError> {
    if v.get(key).is_none() {
        return Err(invalid(&format!("{path}.{key}"), "required"));
    }
    get_u64(v, path, key, 0)
}

/// Non-negative number field that must be present.
fn req_nonneg_f64(v: &Json, path: &str, key: &str) -> Result<f64, SpecError> {
    if v.get(key).is_none() {
        return Err(invalid(&format!("{path}.{key}"), "required"));
    }
    get_nonneg_f64(v, path, key, 0.0)
}

fn window_fault_from_json(v: &Json, path: &str) -> Result<WindowFaultSpec, SpecError> {
    check_fields(v, path, &["replica", "from_secs", "until_secs", "factor"])?;
    let spec = WindowFaultSpec {
        replica: req_u64(v, path, "replica")?,
        from_secs: req_nonneg_f64(v, path, "from_secs")?,
        until_secs: req_nonneg_f64(v, path, "until_secs")?,
        factor: {
            if v.get("factor").is_none() {
                return Err(invalid(&format!("{path}.factor"), "required"));
            }
            get_f64(v, path, "factor", 1.0)?
        },
    };
    if spec.until_secs <= spec.from_secs {
        return Err(invalid(
            &format!("{path}.until_secs"),
            "must be greater than from_secs",
        ));
    }
    if !(spec.factor > 0.0 && spec.factor <= 1.0) {
        return Err(invalid(&format!("{path}.factor"), "must be in (0, 1]"));
    }
    Ok(spec)
}

fn fault_array<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a [Json], SpecError> {
    match v.get(key) {
        None => Ok(&[]),
        Some(j) => j
            .as_arr()
            .ok_or_else(|| invalid(&format!("{path}.{key}"), "expected an array")),
    }
}

/// Parses a [`FaultSpec`]. Field-level checks live here; the cross-field
/// replica-vs-topology check is [`check_fault_topology`].
pub fn fault_from_json(v: &Json, path: &str) -> Result<FaultSpec, SpecError> {
    check_fields(
        v,
        path,
        &[
            "crashes",
            "stragglers",
            "kv_link",
            "boot_failures",
            "retry",
            "shed_utilization",
        ],
    )?;
    let mut crashes = Vec::new();
    for (i, c) in fault_array(v, path, "crashes")?.iter().enumerate() {
        let cpath = format!("{path}.crashes[{i}]");
        check_fields(c, &cpath, &["replica", "at_secs"])?;
        crashes.push(CrashSpec {
            replica: req_u64(c, &cpath, "replica")?,
            at_secs: req_nonneg_f64(c, &cpath, "at_secs")?,
        });
    }
    let mut stragglers = Vec::new();
    for (i, w) in fault_array(v, path, "stragglers")?.iter().enumerate() {
        stragglers.push(window_fault_from_json(
            w,
            &format!("{path}.stragglers[{i}]"),
        )?);
    }
    let mut kv_link = Vec::new();
    for (i, w) in fault_array(v, path, "kv_link")?.iter().enumerate() {
        kv_link.push(window_fault_from_json(w, &format!("{path}.kv_link[{i}]"))?);
    }
    let mut boot_failures = Vec::new();
    for (i, b) in fault_array(v, path, "boot_failures")?.iter().enumerate() {
        boot_failures.push(b.as_u64().ok_or_else(|| {
            invalid(
                &format!("{path}.boot_failures[{i}]"),
                "expected a non-negative integer",
            )
        })?);
    }
    let retry = match v.get("retry") {
        None => RetrySpec::default(),
        Some(j) => {
            let rpath = format!("{path}.retry");
            check_fields(
                j,
                &rpath,
                &[
                    "max_attempts",
                    "base_backoff_ms",
                    "multiplier",
                    "max_backoff_ms",
                ],
            )?;
            let d = RetrySpec::default();
            let spec = RetrySpec {
                max_attempts: get_u32_sized(j, &rpath, "max_attempts", d.max_attempts)?,
                base_backoff_ms: get_millis(j, &rpath, "base_backoff_ms", d.base_backoff_ms)?,
                multiplier: get_f64(j, &rpath, "multiplier", d.multiplier)?,
                max_backoff_ms: get_millis(j, &rpath, "max_backoff_ms", d.max_backoff_ms)?,
            };
            if spec.multiplier < 1.0 {
                return Err(invalid(&format!("{rpath}.multiplier"), "must be ≥ 1"));
            }
            spec
        }
    };
    let shed_utilization = get_opt_f64(v, path, "shed_utilization")?;
    if shed_utilization.is_some_and(|u| u <= 0.0) {
        return Err(invalid(
            &format!("{path}.shed_utilization"),
            "must be positive",
        ));
    }
    Ok(FaultSpec {
        crashes,
        stragglers,
        kv_link,
        boot_failures,
        retry,
        shed_utilization,
    })
}

// ---------------------------------------------------------------------
// Emission (canonical: every field explicit, declaration order)
// ---------------------------------------------------------------------

/// Emits the canonical JSON for a [`ScenarioSpec`].
pub fn scenario_to_json(spec: &ScenarioSpec) -> Json {
    obj(vec![
        ("name", s(&spec.name)),
        ("model", s(&spec.model)),
        ("hardware", s(&spec.hardware)),
        ("engine", engine_to_json(&spec.engine)),
        ("scheduler", scheduler_to_json(&spec.scheduler)),
        ("workload", workload_to_json(&spec.workload)),
        ("topology", topology_to_json(&spec.topology)),
        (
            "fault",
            spec.fault.as_ref().map_or(Json::Null, fault_to_json),
        ),
    ])
}

fn window_fault_to_json(w: &WindowFaultSpec) -> Json {
    obj(vec![
        ("replica", ni(w.replica)),
        ("from_secs", n(w.from_secs)),
        ("until_secs", n(w.until_secs)),
        ("factor", n(w.factor)),
    ])
}

/// Emits the canonical JSON for a [`FaultSpec`].
pub fn fault_to_json(spec: &FaultSpec) -> Json {
    obj(vec![
        (
            "crashes",
            Json::Arr(
                spec.crashes
                    .iter()
                    .map(|c| obj(vec![("replica", ni(c.replica)), ("at_secs", n(c.at_secs))]))
                    .collect(),
            ),
        ),
        (
            "stragglers",
            Json::Arr(spec.stragglers.iter().map(window_fault_to_json).collect()),
        ),
        (
            "kv_link",
            Json::Arr(spec.kv_link.iter().map(window_fault_to_json).collect()),
        ),
        (
            "boot_failures",
            Json::Arr(spec.boot_failures.iter().copied().map(ni).collect()),
        ),
        (
            "retry",
            obj(vec![
                ("max_attempts", ni(spec.retry.max_attempts)),
                ("base_backoff_ms", ni(spec.retry.base_backoff_ms)),
                ("multiplier", n(spec.retry.multiplier)),
                ("max_backoff_ms", ni(spec.retry.max_backoff_ms)),
            ]),
        ),
        (
            "shed_utilization",
            spec.shed_utilization.map_or(Json::Null, n),
        ),
    ])
}

/// Emits the canonical JSON for a [`SchedulerSpec`].
pub fn scheduler_to_json(spec: &SchedulerSpec) -> Json {
    match spec {
        SchedulerSpec::Fcfs { headroom } => obj(vec![
            ("type", s("fcfs")),
            ("headroom", headroom.map_or(Json::Null, ni)),
        ]),
        SchedulerSpec::Chunked { chunk } => {
            obj(vec![("type", s("chunked")), ("chunk", ni(*chunk))])
        }
        SchedulerSpec::Andes { interval_ms } => obj(vec![
            ("type", s("andes")),
            ("interval_ms", ni(*interval_ms)),
        ]),
        SchedulerSpec::TokenFlow(t) => obj(vec![
            ("type", s("tokenflow")),
            ("schedule_interval_ms", ni(t.schedule_interval_ms)),
            ("buffer_conservativeness", n(t.buffer_conservativeness)),
            ("ws_adjust_rate", n(t.ws_adjust_rate)),
            ("gamma", n(t.gamma)),
            ("critical_buffer_secs", n(t.critical_buffer_secs)),
            ("headroom_tokens", ni(t.headroom_tokens)),
            ("util_target", n(t.util_target)),
            ("max_transitions", ni(t.max_transitions)),
            ("io_backpressure", n(t.io_backpressure)),
            ("capacity_safety", n(t.capacity_safety)),
            ("prefill_chunk", ni(t.prefill_chunk)),
            ("swap_candidates", ni(t.swap_candidates)),
        ]),
    }
}

/// Emits the canonical JSON for a [`RouterSpec`] (a bare string).
pub fn router_to_json(spec: &RouterSpec) -> Json {
    s(spec.type_name())
}

/// Emits the canonical JSON for a [`ScalePolicySpec`].
pub fn policy_to_json(spec: &ScalePolicySpec) -> Json {
    match spec {
        ScalePolicySpec::Reactive {
            target_utilization,
            backlog_per_replica,
            kv_watermark,
        } => obj(vec![
            ("type", s("reactive")),
            ("target_utilization", n(*target_utilization)),
            ("backlog_per_replica", ni(*backlog_per_replica)),
            ("kv_watermark", n(*kv_watermark)),
        ]),
        ScalePolicySpec::PredictiveEwma {
            tau_secs,
            target_utilization,
            backlog_per_replica,
            kv_watermark,
        } => obj(vec![
            ("type", s("predictive-ewma")),
            ("tau_secs", n(*tau_secs)),
            ("target_utilization", n(*target_utilization)),
            ("backlog_per_replica", ni(*backlog_per_replica)),
            ("kv_watermark", n(*kv_watermark)),
        ]),
        ScalePolicySpec::Scripted { steps } => obj(vec![
            ("type", s("scripted")),
            (
                "steps",
                Json::Arr(
                    steps
                        .iter()
                        .map(|&(at, fleet)| Json::Arr(vec![n(at), ni(fleet)]))
                        .collect(),
                ),
            ),
        ]),
    }
}

fn control_to_json(spec: &ControlSpec) -> Json {
    obj(vec![
        ("min_replicas", ni(spec.min_replicas)),
        ("max_replicas", ni(spec.max_replicas)),
        ("boot_delay_secs", n(spec.boot_delay_secs)),
        ("cooldown_secs", n(spec.cooldown_secs)),
        ("gamma", spec.gamma.map_or(Json::Null, n)),
        (
            "control_tick_secs",
            spec.control_tick_secs.map_or(Json::Null, n),
        ),
    ])
}

fn execution_to_json(spec: &ExecutionSpec) -> Json {
    match spec {
        ExecutionSpec::Sequential => s("sequential"),
        ExecutionSpec::Auto => s("auto"),
        ExecutionSpec::Parallel(threads) => {
            obj(vec![("type", s("parallel")), ("threads", ni(*threads))])
        }
    }
}

/// Emits the canonical JSON for a [`WorkloadSpec`].
pub fn workload_to_json(spec: &WorkloadSpec) -> Json {
    match spec {
        WorkloadSpec::Preset { name, seed } => obj(vec![
            ("type", s("preset")),
            ("name", s(name)),
            ("seed", ni(*seed)),
        ]),
        WorkloadSpec::DiurnalFlashCrowd {
            peak_rate,
            duration_secs,
            crowd_size,
            crowd_at_secs,
            rate,
            seed,
        } => obj(vec![
            ("type", s("diurnal-flash-crowd")),
            ("peak_rate", n(*peak_rate)),
            ("duration_secs", n(*duration_secs)),
            ("crowd_size", ni(*crowd_size)),
            ("crowd_at_secs", n(*crowd_at_secs)),
            ("rate", rate_dist_to_json(rate)),
            ("seed", ni(*seed)),
        ]),
        WorkloadSpec::Synthetic {
            arrivals,
            prompt,
            output,
            rate,
            seed,
        } => obj(vec![
            ("type", s("synthetic")),
            ("arrivals", arrivals_to_json(arrivals)),
            ("prompt", length_dist_to_json(prompt)),
            ("output", length_dist_to_json(output)),
            ("rate", rate_dist_to_json(rate)),
            ("seed", ni(*seed)),
        ]),
        WorkloadSpec::TraceCsv { path } => obj(vec![("type", s("trace-csv")), ("path", s(path))]),
        WorkloadSpec::Inline { requests } => obj(vec![
            ("type", s("inline")),
            (
                "requests",
                Json::Arr(
                    requests
                        .iter()
                        .map(|r| {
                            obj(vec![
                                ("arrival_secs", n(r.arrival_secs)),
                                ("prompt_tokens", ni(r.prompt_tokens)),
                                ("output_tokens", ni(r.output_tokens)),
                                ("rate", n(r.rate)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

fn arrivals_to_json(spec: &ArrivalSpecSpec) -> Json {
    match spec {
        ArrivalSpecSpec::Burst { size, at_secs } => obj(vec![
            ("type", s("burst")),
            ("size", ni(*size)),
            ("at_secs", n(*at_secs)),
        ]),
        ArrivalSpecSpec::Poisson {
            rate,
            duration_secs,
        } => obj(vec![
            ("type", s("poisson")),
            ("rate", n(*rate)),
            ("duration_secs", n(*duration_secs)),
        ]),
        ArrivalSpecSpec::Mmpp {
            base_rate,
            burst_rate,
            mean_calm_secs,
            mean_burst_secs,
            duration_secs,
        } => obj(vec![
            ("type", s("mmpp")),
            ("base_rate", n(*base_rate)),
            ("burst_rate", n(*burst_rate)),
            ("mean_calm_secs", n(*mean_calm_secs)),
            ("mean_burst_secs", n(*mean_burst_secs)),
            ("duration_secs", n(*duration_secs)),
        ]),
        ArrivalSpecSpec::Diurnal {
            trough_rate,
            peak_rate,
            period_secs,
            duration_secs,
        } => obj(vec![
            ("type", s("diurnal")),
            ("trough_rate", n(*trough_rate)),
            ("peak_rate", n(*peak_rate)),
            ("period_secs", n(*period_secs)),
            ("duration_secs", n(*duration_secs)),
        ]),
    }
}

fn length_dist_to_json(spec: &LengthDistSpec) -> Json {
    match spec {
        LengthDistSpec::Fixed(tokens) => obj(vec![("type", s("fixed")), ("tokens", ni(*tokens))]),
        LengthDistSpec::Normal {
            mean,
            std,
            min,
            max,
        } => obj(vec![
            ("type", s("normal")),
            ("mean", n(*mean)),
            ("std", n(*std)),
            ("min", ni(*min)),
            ("max", ni(*max)),
        ]),
        LengthDistSpec::LogNormal {
            mean,
            std,
            min,
            max,
        } => obj(vec![
            ("type", s("lognormal")),
            ("mean", n(*mean)),
            ("std", n(*std)),
            ("min", ni(*min)),
            ("max", ni(*max)),
        ]),
        LengthDistSpec::Uniform { lo, hi } => obj(vec![
            ("type", s("uniform")),
            ("lo", ni(*lo)),
            ("hi", ni(*hi)),
        ]),
        LengthDistSpec::SharegptPrompt => s("sharegpt-prompt"),
        LengthDistSpec::SharegptOutput => s("sharegpt-output"),
    }
}

fn rate_dist_to_json(spec: &RateDistSpec) -> Json {
    match spec {
        RateDistSpec::Fixed(rate) => obj(vec![("type", s("fixed")), ("rate", n(*rate))]),
        RateDistSpec::Uniform { lo, hi } => {
            obj(vec![("type", s("uniform")), ("lo", n(*lo)), ("hi", n(*hi))])
        }
        RateDistSpec::Mix(entries) => obj(vec![
            ("type", s("mix")),
            (
                "entries",
                Json::Arr(
                    entries
                        .iter()
                        .map(|&(w, r)| Json::Arr(vec![n(w), n(r)]))
                        .collect(),
                ),
            ),
        ]),
    }
}

fn engine_to_json(spec: &EngineSpec) -> Json {
    obj(vec![
        ("max_batch", ni(spec.max_batch)),
        ("mem_frac", n(spec.mem_frac)),
        ("offload_enabled", Json::Bool(spec.offload_enabled)),
        ("write_through", Json::Bool(spec.write_through)),
        ("load_evict_overlap", Json::Bool(spec.load_evict_overlap)),
        ("max_prefill_tokens", ni(spec.max_prefill_tokens)),
        ("deadline_secs", n(spec.deadline_secs)),
        ("plan_horizon", Json::Bool(spec.plan_horizon)),
    ])
}

/// Emits the canonical JSON for a [`TopologySpec`].
pub fn topology_to_json(spec: &TopologySpec) -> Json {
    match spec {
        TopologySpec::Single => s("single"),
        TopologySpec::Cluster {
            replicas,
            router,
            execution,
        } => obj(vec![
            ("type", s("cluster")),
            ("replicas", ni(*replicas)),
            ("router", router_to_json(router)),
            ("execution", execution_to_json(execution)),
        ]),
        TopologySpec::Autoscaled {
            bootstrap,
            router,
            policy,
            control,
            execution,
        } => obj(vec![
            ("type", s("autoscaled")),
            ("bootstrap", ni(*bootstrap)),
            ("router", router_to_json(router)),
            ("policy", policy_to_json(policy)),
            ("control", control_to_json(control)),
            ("execution", execution_to_json(execution)),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_document_takes_defaults() {
        let spec = parse_scenario("{}").unwrap();
        assert_eq!(spec, ScenarioSpec::default());
    }

    #[test]
    fn unknown_scheduler_lists_valid_names() {
        let err = parse_scenario(r#"{"scheduler": {"type": "lottery"}}"#).unwrap_err();
        match err {
            SpecError::UnknownName { field, got, valid } => {
                assert_eq!(field, "scenario.scheduler.type");
                assert_eq!(got, "lottery");
                assert_eq!(valid, SCHEDULER_NAMES.to_vec());
            }
            other => panic!("expected UnknownName, got {other:?}"),
        }
    }

    #[test]
    fn unknown_field_is_a_typo_guard() {
        let err = parse_scenario(r#"{"scheduler": {"type": "fcfs", "headrom": 5}}"#).unwrap_err();
        assert!(matches!(err, SpecError::UnknownField { ref field, .. }
            if field == "scenario.scheduler.headrom"));
    }

    #[test]
    fn default_roundtrips_canonically() {
        let spec = ScenarioSpec::default();
        let text = scenario_to_json(&spec).emit();
        let parsed = parse_scenario(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(scenario_to_json(&parsed).emit(), text);
    }

    #[test]
    fn fault_replica_outside_cluster_names_the_valid_range() {
        let err = parse_scenario(
            r#"{"topology": {"type": "cluster", "replicas": 2},
                "fault": {"crashes": [{"replica": 5, "at_secs": 10}]}}"#,
        )
        .unwrap_err();
        match err {
            SpecError::Invalid { field, msg } => {
                assert_eq!(field, "scenario.fault.crashes[0].replica");
                assert!(msg.contains("replica 5"), "{msg}");
                assert!(msg.contains("0..2"), "{msg}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn fault_replica_bound_is_max_replicas_for_elastic_fleets() {
        // Inside the ceiling but above the bootstrap size: valid — the
        // fleet can grow to meet it.
        let ok = parse_scenario(
            r#"{"topology": {"type": "autoscaled", "bootstrap": 1,
                            "control": {"max_replicas": 8}},
                "fault": {"stragglers": [{"replica": 6, "from_secs": 1,
                                          "until_secs": 2, "factor": 0.5}]}}"#,
        );
        assert!(ok.is_ok(), "{ok:?}");
        let err = parse_scenario(
            r#"{"topology": {"type": "autoscaled", "bootstrap": 1,
                            "control": {"max_replicas": 8}},
                "fault": {"boot_failures": [8]}}"#,
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::Invalid { ref field, ref msg }
            if field == "scenario.fault.boot_failures[0]" && msg.contains("0..8")));
    }

    #[test]
    fn fault_on_single_topology_is_rejected() {
        let err = parse_scenario(r#"{"fault": {}}"#).unwrap_err();
        assert!(matches!(err, SpecError::Invalid { ref field, ref msg }
            if field == "scenario.fault"
            && msg.contains("cluster or autoscaled")));
    }

    #[test]
    fn null_fault_means_fault_free() {
        let spec = parse_scenario(r#"{"fault": null}"#).unwrap();
        assert_eq!(spec.fault, None);
        assert_eq!(spec, ScenarioSpec::default());
    }

    #[test]
    fn fault_spec_roundtrips_canonically() {
        let spec = parse_scenario(
            r#"{"topology": {"type": "cluster", "replicas": 3},
                "fault": {"crashes": [{"replica": 2, "at_secs": 35}],
                          "stragglers": [{"replica": 1, "from_secs": 30,
                                          "until_secs": 45, "factor": 0.5}],
                          "shed_utilization": 4.0}}"#,
        )
        .unwrap();
        let fault = spec.fault.as_ref().unwrap();
        assert_eq!(fault.retry, RetrySpec::default());
        assert_eq!(fault.max_replica(), Some(2));
        let text = scenario_to_json(&spec).emit();
        let parsed = parse_scenario(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(scenario_to_json(&parsed).emit(), text);
    }

    #[test]
    fn window_fault_field_checks() {
        let base = |body: &str| {
            format!(
                r#"{{"topology": {{"type": "cluster", "replicas": 4}},
                    "fault": {{"kv_link": [{body}]}}}}"#
            )
        };
        let err = parse_scenario(&base(
            r#"{"replica": 0, "from_secs": 5, "until_secs": 5, "factor": 0.5}"#,
        ))
        .unwrap_err();
        assert!(matches!(err, SpecError::Invalid { ref msg, .. }
            if msg.contains("greater than from_secs")));
        let err = parse_scenario(&base(
            r#"{"replica": 0, "from_secs": 1, "until_secs": 2, "factor": 1.5}"#,
        ))
        .unwrap_err();
        assert!(matches!(err, SpecError::Invalid { ref msg, .. }
            if msg.contains("(0, 1]")));
        let err = parse_scenario(&base(r#"{"replica": 0, "from_secs": 1, "until_secs": 2}"#))
            .unwrap_err();
        assert!(matches!(err, SpecError::Invalid { ref field, .. }
            if field.ends_with(".factor")));
    }

    #[test]
    fn model_and_hardware_names_are_case_insensitive() {
        let spec = parse_scenario(r#"{"model": "llama3-8b", "hardware": "h200"}"#).unwrap();
        assert_eq!(spec.model, "Llama3-8B");
        assert_eq!(spec.hardware, "H200");
        let err = parse_scenario(r#"{"hardware": "tpu-v9"}"#).unwrap_err();
        assert!(matches!(err, SpecError::UnknownName { .. }), "{err:?}");
    }
}
