//! Building and running a spec: the canonical construction path.
//!
//! [`ScenarioSpec::build`] assembles the exact stack a hand-written
//! `main` would: the same constructors, the same defaults, in the same
//! order — so a spec-built run's `RunReport` digest is byte-identical to
//! the hand-built equivalent (pinned per shipped scheduler × router ×
//! scale-policy combination by the `equivalence` test suite). The
//! [`Harness`] owns everything needed to run; [`Harness::run`] drives it
//! to a [`RunOutcome`] with the report, its digest, and run metadata.

use tokenflow_cluster::{
    run_autoscaled, run_autoscaled_faulty, run_cluster_faulty, run_cluster_with,
    BacklogAwareRouter, Execution, LeastLoadedRouter, RateAwareRouter, RoundRobinRouter, Router,
};
use tokenflow_control::{
    ControlConfig, PredictivePolicy, ReactivePolicy, ScalePolicy, ScriptedPolicy,
};
use tokenflow_core::{run_simulation_boxed, Completion, EngineConfig};
use tokenflow_fault::{CrashFault, FaultPlan, RetryPolicy, WindowFault};
use tokenflow_metrics::RunReport;
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::{
    AndesScheduler, ChunkedPrefillScheduler, FcfsScheduler, Scheduler, TokenFlowParams,
    TokenFlowScheduler,
};
use tokenflow_sim::{RequestId, SimDuration, SimTime};
use tokenflow_trace::TraceJournal;
use tokenflow_workload::{
    diurnal_flash_crowd, trace, ArrivalSpec, ControlledSetup, LengthDist, RateDist, RequestSpec,
    Workload, WorkloadGen,
};

use crate::codec::SpecError;
use crate::json::{self, ni, obj, s, Json};
use crate::spec::*;

fn build_err(msg: impl Into<String>) -> SpecError {
    SpecError::Build { msg: msg.into() }
}

impl SchedulerSpec {
    /// Constructs the scheduler this spec describes. Callable repeatedly —
    /// cluster topologies need one instance per replica.
    pub fn build_scheduler(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerSpec::Fcfs { headroom: None } => Box::new(FcfsScheduler::new()),
            SchedulerSpec::Fcfs {
                headroom: Some(tokens),
            } => Box::new(FcfsScheduler::with_headroom(*tokens)),
            SchedulerSpec::Chunked { chunk } => {
                Box::new(ChunkedPrefillScheduler::with_chunk(*chunk))
            }
            SchedulerSpec::Andes { interval_ms } => Box::new(
                AndesScheduler::new().with_interval(SimDuration::from_millis(*interval_ms)),
            ),
            SchedulerSpec::TokenFlow(t) => {
                Box::new(TokenFlowScheduler::with_params(TokenFlowParams {
                    schedule_interval: SimDuration::from_millis(t.schedule_interval_ms),
                    buffer_conservativeness: t.buffer_conservativeness,
                    ws_adjust_rate: t.ws_adjust_rate,
                    gamma: t.gamma,
                    critical_buffer_secs: t.critical_buffer_secs,
                    headroom_tokens: t.headroom_tokens,
                    util_target: t.util_target,
                    max_transitions: t.max_transitions as usize,
                    io_backpressure: t.io_backpressure,
                    capacity_safety: t.capacity_safety,
                    prefill_chunk: t.prefill_chunk,
                    swap_candidates: t.swap_candidates as usize,
                }))
            }
        }
    }
}

impl RouterSpec {
    /// Constructs the router this spec describes.
    pub fn build_router(&self) -> Box<dyn Router> {
        match self {
            RouterSpec::RoundRobin => Box::new(RoundRobinRouter::new()),
            RouterSpec::LeastLoaded => Box::new(LeastLoadedRouter::new()),
            RouterSpec::BacklogAware => Box::new(BacklogAwareRouter::new()),
            RouterSpec::RateAware => Box::new(RateAwareRouter::new()),
        }
    }
}

impl ScalePolicySpec {
    /// Constructs the scale policy this spec describes.
    pub fn build_policy(&self) -> Box<dyn ScalePolicy> {
        match self {
            ScalePolicySpec::Reactive {
                target_utilization,
                backlog_per_replica,
                kv_watermark,
            } => Box::new(ReactivePolicy {
                target_utilization: *target_utilization,
                backlog_per_replica: *backlog_per_replica,
                kv_watermark: *kv_watermark,
            }),
            ScalePolicySpec::PredictiveEwma {
                tau_secs,
                target_utilization,
                backlog_per_replica,
                kv_watermark,
            } => {
                let mut p = PredictivePolicy::with_tau(*tau_secs);
                p.target_utilization = *target_utilization;
                p.backlog_per_replica = *backlog_per_replica;
                p.kv_watermark = *kv_watermark;
                Box::new(p)
            }
            ScalePolicySpec::Scripted { steps } => Box::new(ScriptedPolicy::new(
                steps
                    .iter()
                    .map(|&(at, fleet)| (SimTime::from_secs_f64(at), fleet as usize))
                    .collect(),
            )),
        }
    }
}

impl ControlSpec {
    /// Constructs the control configuration: Γ derived from the engine
    /// unless overridden, every other knob applied on top.
    pub fn build_control(&self, engine: &EngineConfig) -> ControlConfig {
        let mut control = ControlConfig::for_engine(engine)
            .with_min_replicas(self.min_replicas as usize)
            .with_max_replicas(self.max_replicas as usize)
            .with_boot_delay(SimDuration::from_secs_f64(self.boot_delay_secs))
            .with_cooldown(SimDuration::from_secs_f64(self.cooldown_secs));
        if let Some(gamma) = self.gamma {
            control = control.with_gamma(gamma);
        }
        if let Some(tick) = self.control_tick_secs {
            control = control.with_control_tick(SimDuration::from_secs_f64(tick));
        }
        control
    }
}

impl ExecutionSpec {
    /// The cluster execution strategy this spec describes.
    pub fn build_execution(&self) -> Execution {
        match self {
            ExecutionSpec::Sequential => Execution::Sequential,
            ExecutionSpec::Parallel(threads) => Execution::parallel(*threads as usize),
            ExecutionSpec::Auto => Execution::parallel_auto(),
        }
    }
}

impl ArrivalSpecSpec {
    fn build_arrivals(&self) -> ArrivalSpec {
        match *self {
            ArrivalSpecSpec::Burst { size, at_secs } => ArrivalSpec::Burst {
                // The codec rejects >u32 sizes; saturate rather than wrap
                // for specs constructed programmatically.
                size: u32::try_from(size).unwrap_or(u32::MAX),
                at: SimTime::from_secs_f64(at_secs),
            },
            ArrivalSpecSpec::Poisson {
                rate,
                duration_secs,
            } => ArrivalSpec::Poisson {
                rate,
                duration: SimDuration::from_secs_f64(duration_secs),
            },
            ArrivalSpecSpec::Mmpp {
                base_rate,
                burst_rate,
                mean_calm_secs,
                mean_burst_secs,
                duration_secs,
            } => ArrivalSpec::Mmpp {
                base_rate,
                burst_rate,
                mean_calm: SimDuration::from_secs_f64(mean_calm_secs),
                mean_burst: SimDuration::from_secs_f64(mean_burst_secs),
                duration: SimDuration::from_secs_f64(duration_secs),
            },
            ArrivalSpecSpec::Diurnal {
                trough_rate,
                peak_rate,
                period_secs,
                duration_secs,
            } => ArrivalSpec::Diurnal {
                trough_rate,
                peak_rate,
                period: SimDuration::from_secs_f64(period_secs),
                duration: SimDuration::from_secs_f64(duration_secs),
            },
        }
    }
}

impl LengthDistSpec {
    fn build_dist(&self) -> LengthDist {
        match *self {
            LengthDistSpec::Fixed(tokens) => LengthDist::Fixed(tokens),
            LengthDistSpec::Normal {
                mean,
                std,
                min,
                max,
            } => LengthDist::Normal {
                mean,
                std,
                min,
                max,
            },
            LengthDistSpec::LogNormal {
                mean,
                std,
                min,
                max,
            } => LengthDist::LogNormal {
                mean,
                std,
                min,
                max,
            },
            LengthDistSpec::Uniform { lo, hi } => LengthDist::Uniform { lo, hi },
            LengthDistSpec::SharegptPrompt => LengthDist::sharegpt_prompt(),
            LengthDistSpec::SharegptOutput => LengthDist::sharegpt_output(),
        }
    }
}

impl RateDistSpec {
    fn build_dist(&self) -> RateDist {
        match self {
            RateDistSpec::Fixed(rate) => RateDist::Fixed(*rate),
            RateDistSpec::Uniform { lo, hi } => RateDist::Uniform { lo: *lo, hi: *hi },
            RateDistSpec::Mix(entries) => RateDist::Mix(entries.clone()),
        }
    }
}

impl WorkloadSpec {
    /// Generates (or loads) the workload this spec describes.
    pub fn build_workload(&self) -> Result<Workload, SpecError> {
        match self {
            WorkloadSpec::Preset { name, seed } => ControlledSetup::by_name(name)
                .map(|setup| setup.workload(*seed))
                .ok_or_else(|| build_err(format!("unknown preset {name}"))),
            WorkloadSpec::DiurnalFlashCrowd {
                peak_rate,
                duration_secs,
                crowd_size,
                crowd_at_secs,
                rate,
                seed,
            } => Ok(diurnal_flash_crowd(
                *peak_rate,
                SimDuration::from_secs_f64(*duration_secs),
                u32::try_from(*crowd_size).unwrap_or(u32::MAX),
                SimTime::from_secs_f64(*crowd_at_secs),
                rate.build_dist(),
                *seed,
            )),
            WorkloadSpec::Synthetic {
                arrivals,
                prompt,
                output,
                rate,
                seed,
            } => Ok(WorkloadGen {
                arrivals: arrivals.build_arrivals(),
                prompt: prompt.build_dist(),
                output: output.build_dist(),
                rate: rate.build_dist(),
            }
            .generate(*seed)),
            WorkloadSpec::TraceCsv { path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| build_err(format!("cannot read trace {path}: {e}")))?;
                trace::from_csv(&text)
                    .map_err(|e| build_err(format!("cannot parse trace {path}: {e}")))
            }
            WorkloadSpec::Inline { requests } => Ok(Workload::new(
                requests
                    .iter()
                    .map(|r| RequestSpec {
                        id: RequestId(0), // renumbered by Workload::new
                        arrival: SimTime::from_secs_f64(r.arrival_secs),
                        prompt_tokens: r.prompt_tokens,
                        output_tokens: r.output_tokens,
                        rate: r.rate,
                    })
                    .collect(),
            )),
        }
    }
}

impl EngineSpec {
    /// Constructs the engine configuration for the named profiles.
    pub fn build_config(&self, model: ModelProfile, hardware: HardwareProfile) -> EngineConfig {
        let mut config = EngineConfig::new(model, hardware)
            .with_mem_frac(self.mem_frac)
            .with_max_batch(u32::try_from(self.max_batch).unwrap_or(u32::MAX))
            .with_kv_features(
                self.offload_enabled,
                self.write_through,
                self.load_evict_overlap,
            );
        config.max_prefill_tokens = self.max_prefill_tokens;
        config.deadline = SimDuration::from_secs_f64(self.deadline_secs);
        config.plan_horizon = self.plan_horizon;
        config
    }
}

impl RetrySpec {
    /// Constructs the retry policy this spec describes. `max_attempts`
    /// saturates at `u32::MAX` (the codec rejects larger values; this
    /// covers programmatic construction).
    pub fn build_policy(&self) -> RetryPolicy {
        RetryPolicy {
            max_attempts: u32::try_from(self.max_attempts).unwrap_or(u32::MAX),
            base_backoff: SimDuration::from_millis(self.base_backoff_ms),
            multiplier: self.multiplier,
            max_backoff: SimDuration::from_millis(self.max_backoff_ms),
        }
    }
}

impl FaultSpec {
    /// Constructs the fault plan this spec describes.
    pub fn build_plan(&self) -> FaultPlan {
        FaultPlan {
            crashes: self
                .crashes
                .iter()
                .map(|c| CrashFault {
                    replica: c.replica as usize,
                    at: SimTime::from_secs_f64(c.at_secs),
                })
                .collect(),
            stragglers: self.stragglers.iter().map(build_window).collect(),
            kv_link: self.kv_link.iter().map(build_window).collect(),
            boot_failures: self.boot_failures.iter().map(|&b| b as usize).collect(),
            retry: self.retry.build_policy(),
            shed_utilization: self.shed_utilization,
        }
    }
}

fn build_window(w: &WindowFaultSpec) -> WindowFault {
    WindowFault {
        replica: w.replica as usize,
        from: SimTime::from_secs_f64(w.from_secs),
        until: SimTime::from_secs_f64(w.until_secs),
        factor: w.factor,
    }
}

impl ScenarioSpec {
    /// Assembles the runnable stack this spec describes.
    ///
    /// Resolves profiles, generates the workload, and wires the topology
    /// — the same construction path the hand-written examples used to
    /// spell out.
    pub fn build(&self) -> Result<Harness, SpecError> {
        crate::codec::check_fault_topology(self, "scenario")?;
        let model = ModelProfile::by_name(&self.model)
            .ok_or_else(|| build_err(format!("unknown model {}", self.model)))?;
        let hardware = HardwareProfile::by_name(&self.hardware)
            .ok_or_else(|| build_err(format!("unknown hardware {}", self.hardware)))?;
        let config = self.engine.build_config(model, hardware);
        let workload = self.workload.build_workload()?;
        Ok(Harness {
            name: self.name.clone(),
            scheduler: self.scheduler.clone(),
            topology: self.topology.clone(),
            config,
            workload,
            fault: self.fault.as_ref().map(FaultSpec::build_plan),
        })
    }
}

/// A fully assembled, ready-to-run serving stack.
#[derive(Debug, Clone)]
pub struct Harness {
    /// Scenario name (lands in the report).
    pub name: String,
    /// The scheduler spec (one instance is built per replica).
    pub scheduler: SchedulerSpec,
    /// The topology to drive.
    pub topology: TopologySpec,
    /// The engine configuration every replica shares.
    pub config: EngineConfig,
    /// The workload to serve.
    pub workload: Workload,
    /// Deterministic fault plan (`None` = fault-free). Only meaningful
    /// for cluster/autoscaled topologies — `ScenarioSpec::build` rejects
    /// a faulted single topology before a `Harness` exists.
    pub fault: Option<FaultPlan>,
}

impl Harness {
    /// Runs the scenario to completion and reports.
    pub fn run(self) -> RunOutcome {
        self.run_with_execution(None)
    }

    /// Runs with the topology's execution strategy overridden — the
    /// trace determinism suite uses this to drive the legacy
    /// scoped-per-epoch executor, which deliberately has no spec name.
    /// `None` runs the spec's own strategy; the single topology has no
    /// executor axis and ignores the override.
    pub fn run_with_execution(self, execution_override: Option<Execution>) -> RunOutcome {
        let scheduler_spec = self.scheduler;
        let scheduler_name = scheduler_spec.build_scheduler().name().to_string();
        // Empty plans take the fault-free entry points, which are
        // byte-identical anyway — this just keeps the common path common.
        let fault = self.fault.filter(|p| !p.is_empty());
        match self.topology {
            TopologySpec::Single => {
                let out = run_simulation_boxed(
                    self.config,
                    scheduler_spec.build_scheduler(),
                    &self.workload,
                );
                RunOutcome {
                    scenario: self.name,
                    topology: "single".to_string(),
                    scheduler: scheduler_name,
                    router: None,
                    scale_policy: None,
                    replicas: 1,
                    scale_events: 0,
                    complete: out.complete,
                    completion: out.completion,
                    report: out.report,
                    trace: out.trace,
                }
            }
            TopologySpec::Cluster {
                replicas,
                router,
                execution,
            } => {
                let execution = execution_override.unwrap_or_else(|| execution.build_execution());
                let out = match fault {
                    Some(plan) => run_cluster_faulty(
                        self.config,
                        replicas as usize,
                        router.build_router(),
                        move || scheduler_spec.build_scheduler(),
                        plan,
                        &self.workload,
                        execution,
                    ),
                    None => run_cluster_with(
                        self.config,
                        replicas as usize,
                        router.build_router(),
                        move || scheduler_spec.build_scheduler(),
                        &self.workload,
                        execution,
                    ),
                };
                RunOutcome {
                    scenario: self.name,
                    topology: format!("cluster({replicas})"),
                    scheduler: scheduler_name,
                    router: Some(out.router.clone()),
                    scale_policy: None,
                    replicas: out.replicas.len(),
                    scale_events: 0,
                    complete: out.complete,
                    completion: completion_of(out.complete),
                    report: out.merged,
                    trace: out.trace,
                }
            }
            TopologySpec::Autoscaled {
                bootstrap,
                router,
                policy,
                control,
                execution,
            } => {
                let control_config = control.build_control(&self.config);
                let execution = execution_override.unwrap_or_else(|| execution.build_execution());
                let out = match fault {
                    Some(plan) => run_autoscaled_faulty(
                        self.config,
                        bootstrap as usize,
                        router.build_router(),
                        move || scheduler_spec.build_scheduler(),
                        policy.build_policy(),
                        control_config,
                        plan,
                        &self.workload,
                        execution,
                    ),
                    None => run_autoscaled(
                        self.config,
                        bootstrap as usize,
                        router.build_router(),
                        move || scheduler_spec.build_scheduler(),
                        policy.build_policy(),
                        control_config,
                        &self.workload,
                        execution,
                    ),
                };
                RunOutcome {
                    scenario: self.name,
                    topology: format!("autoscaled({bootstrap})"),
                    scheduler: scheduler_name,
                    router: Some(out.router.clone()),
                    scale_policy: out.policy.clone(),
                    replicas: out.replicas.len(),
                    scale_events: out.scale_events.len(),
                    complete: out.complete,
                    completion: completion_of(out.complete),
                    report: out.merged,
                    trace: out.trace,
                }
            }
        }
    }
}

/// The typed completion for a cluster/autoscaled run: those drivers
/// advance replicas with `step_until` against the shared deadline, so
/// an incomplete run means the deadline cut it off (only the single
/// engine's `run_to_completion` has an iteration cap).
fn completion_of(complete: bool) -> Completion {
    if complete {
        Completion::Finished
    } else {
        Completion::Deadline
    }
}

/// What one scenario run produced: the merged report plus metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Scenario name from the spec.
    pub scenario: String,
    /// Topology description, e.g. `"cluster(3)"`.
    pub topology: String,
    /// Scheduler report name, e.g. `"TokenFlow"`.
    pub scheduler: String,
    /// Router name, for cluster/autoscaled runs.
    pub router: Option<String>,
    /// Scale-policy name, for autoscaled runs.
    pub scale_policy: Option<String>,
    /// Replicas managed over the run (provisioned ones included).
    pub replicas: usize,
    /// Scale events logged (0 for static topologies).
    pub scale_events: usize,
    /// Whether every request ran to completion.
    pub complete: bool,
    /// Why the run stopped: finished, deadline, or iteration cap.
    pub completion: Completion,
    /// The (merged) run report.
    pub report: RunReport,
    /// The decision journal, when the run was traced
    /// ([`EngineConfig::trace`]); `None` on untraced runs. Cluster
    /// journals are merged with request ids in cluster submission order.
    pub trace: Option<TraceJournal>,
}

impl RunOutcome {
    /// The report's FNV-1a digest — the same digest the golden suite pins,
    /// so spec-built and hand-built stacks are comparable byte-for-byte.
    pub fn digest(&self) -> u64 {
        self.report.digest()
    }

    /// Renders the outcome as a JSON report (the `tokenflow` CLI's output
    /// format; schema-validated in CI).
    pub fn to_json(&self) -> Json {
        obj(vec![
            ("scenario", s(&self.scenario)),
            ("topology", s(&self.topology)),
            ("scheduler", s(&self.scheduler)),
            ("router", self.router.as_deref().map_or(Json::Null, s)),
            (
                "scale_policy",
                self.scale_policy.as_deref().map_or(Json::Null, s),
            ),
            ("replicas", ni(self.replicas as u64)),
            ("scale_events", ni(self.scale_events as u64)),
            ("complete", Json::Bool(self.complete)),
            (
                "completion",
                s(match self.completion {
                    Completion::Finished => "finished",
                    Completion::Deadline => "deadline",
                    Completion::IterationCap => "iteration-cap",
                }),
            ),
            ("digest", s(&format!("{:016x}", self.digest()))),
            (
                "report",
                json::parse(&self.report.canonical_json()).expect("canonical_json is valid JSON"),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::parse_scenario;

    #[test]
    fn default_spec_builds_and_runs() {
        let outcome = ScenarioSpec::default().build().unwrap().run();
        assert!(outcome.complete);
        assert_eq!(outcome.topology, "single");
        assert_eq!(outcome.scheduler, "TokenFlow");
        assert!(outcome.report.completed > 0);
        assert!(outcome.router.is_none());
    }

    #[test]
    fn inline_workload_round_trips_through_build() {
        let spec = ScenarioSpec {
            workload: WorkloadSpec::Inline {
                requests: vec![
                    InlineRequest {
                        arrival_secs: 0.0,
                        prompt_tokens: 128,
                        output_tokens: 64,
                        rate: 20.0,
                    },
                    InlineRequest {
                        arrival_secs: 0.5,
                        prompt_tokens: 256,
                        output_tokens: 32,
                        rate: 10.0,
                    },
                ],
            },
            ..ScenarioSpec::default()
        };
        let harness = spec.build().unwrap();
        assert_eq!(harness.workload.len(), 2);
        let outcome = harness.run();
        assert!(outcome.complete);
        assert_eq!(outcome.report.submitted, 2);
        assert_eq!(outcome.report.completed, 2);
    }

    #[test]
    fn cluster_topology_runs_with_every_router() {
        for router in [
            RouterSpec::RoundRobin,
            RouterSpec::LeastLoaded,
            RouterSpec::BacklogAware,
            RouterSpec::RateAware,
        ] {
            let spec = ScenarioSpec {
                workload: WorkloadSpec::Synthetic {
                    arrivals: ArrivalSpecSpec::Burst {
                        size: 8,
                        at_secs: 0.0,
                    },
                    prompt: LengthDistSpec::Fixed(128),
                    output: LengthDistSpec::Fixed(64),
                    rate: RateDistSpec::Fixed(15.0),
                    seed: 7,
                },
                topology: TopologySpec::Cluster {
                    replicas: 2,
                    router,
                    execution: ExecutionSpec::Sequential,
                },
                ..ScenarioSpec::default()
            };
            let outcome = spec.build().unwrap().run();
            assert!(outcome.complete, "{router:?}");
            assert_eq!(outcome.report.completed, 8, "{router:?}");
            assert_eq!(outcome.replicas, 2);
        }
    }

    #[test]
    fn faulty_cluster_recovers_and_reports_fault_stats() {
        let spec = ScenarioSpec {
            workload: WorkloadSpec::Synthetic {
                arrivals: ArrivalSpecSpec::Burst {
                    size: 12,
                    at_secs: 0.0,
                },
                prompt: LengthDistSpec::Fixed(128),
                output: LengthDistSpec::Fixed(200),
                rate: RateDistSpec::Fixed(10.0),
                seed: 7,
            },
            topology: TopologySpec::Cluster {
                replicas: 3,
                router: RouterSpec::LeastLoaded,
                execution: ExecutionSpec::Sequential,
            },
            fault: Some(FaultSpec {
                crashes: vec![CrashSpec {
                    replica: 0,
                    at_secs: 2.0,
                }],
                ..FaultSpec::default()
            }),
            ..ScenarioSpec::default()
        };
        let outcome = spec.build().unwrap().run();
        assert!(outcome.complete);
        let faults = outcome.report.faults.as_ref().expect("fault stats");
        assert_eq!(faults.crashes, 1);
        assert_eq!(faults.abandoned, 0);
        assert_eq!(faults.recovered, faults.lost_events);
        assert_eq!(outcome.report.completed, outcome.report.submitted);
    }

    #[test]
    fn out_of_range_fault_is_a_build_error() {
        let spec = ScenarioSpec {
            topology: TopologySpec::Cluster {
                replicas: 2,
                router: RouterSpec::default(),
                execution: ExecutionSpec::Sequential,
            },
            fault: Some(FaultSpec {
                crashes: vec![CrashSpec {
                    replica: 7,
                    at_secs: 1.0,
                }],
                ..FaultSpec::default()
            }),
            ..ScenarioSpec::default()
        };
        let err = spec.build().unwrap_err();
        assert!(
            matches!(err, SpecError::Invalid { ref msg, .. }
            if msg.contains("0..2")),
            "{err:?}"
        );
    }

    #[test]
    fn empty_fault_plan_reproduces_the_fault_free_run() {
        let topology = TopologySpec::Cluster {
            replicas: 2,
            router: RouterSpec::LeastLoaded,
            execution: ExecutionSpec::Sequential,
        };
        let clean = ScenarioSpec {
            topology: topology.clone(),
            ..ScenarioSpec::default()
        };
        let empty = ScenarioSpec {
            topology,
            fault: Some(FaultSpec::default()),
            ..ScenarioSpec::default()
        };
        let a = clean.build().unwrap().run();
        let b = empty.build().unwrap().run();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn missing_trace_is_a_build_error_not_a_panic() {
        let spec = ScenarioSpec {
            workload: WorkloadSpec::TraceCsv {
                path: "/nonexistent/trace.csv".to_string(),
            },
            ..ScenarioSpec::default()
        };
        assert!(matches!(spec.build(), Err(SpecError::Build { .. })));
    }

    #[test]
    fn outcome_json_has_report_and_digest() {
        let outcome = parse_scenario(r#"{"name": "t"}"#)
            .unwrap()
            .build()
            .unwrap()
            .run();
        let j = outcome.to_json();
        assert_eq!(j.get("scenario").unwrap().as_str(), Some("t"));
        assert_eq!(
            j.get("digest").unwrap().as_str().unwrap(),
            format!("{:016x}", outcome.digest())
        );
        assert!(j.get("report").unwrap().get("completed").is_some());
    }
}
