//! Declarative scenarios: the whole serving surface as one JSON spec.
//!
//! Every axis the workspace exposes — scheduler, router, scale policy,
//! execution strategy, workload, model, hardware, engine knobs, topology
//! — has a serde-style spec type here, composed into one
//! [`ScenarioSpec`] with a single entry point:
//!
//! ```
//! use tokenflow_scenario::parse_scenario;
//!
//! let spec = parse_scenario(r#"{
//!     "name": "demo",
//!     "scheduler": {"type": "tokenflow"},
//!     "workload": {"type": "synthetic",
//!                  "arrivals": {"type": "burst", "size": 4, "at_secs": 0},
//!                  "prompt": {"type": "fixed", "tokens": 64},
//!                  "output": {"type": "fixed", "tokens": 32},
//!                  "rate": {"type": "fixed", "rate": 15.0},
//!                  "seed": 7}
//! }"#).unwrap();
//! let outcome = spec.build().unwrap().run();
//! assert!(outcome.complete);
//! assert_eq!(outcome.report.completed, 4);
//! ```
//!
//! This is the **canonical construction path**: [`ScenarioSpec::build`]
//! assembles exactly the stack a hand-written `main` would (same
//! constructors, same defaults, same order), so a spec-built run's
//! report digest is byte-identical to the hand-built equivalent — the
//! `equivalence` test suite pins that for every shipped scheduler ×
//! router × scale-policy combination, and the committed `scenarios/`
//! files are each covered by CI. The `tokenflow` CLI (`tokenflow run`,
//! `tokenflow sweep`, `tokenflow list-policies`) makes the whole system
//! drivable from a JSON file without writing Rust.
//!
//! * [`spec`] — the spec types and their defaults.
//! * [`codec`] — JSON ⇄ spec with typed errors ([`SpecError`]): unknown
//!   names list the valid ones, unknown fields are typo-guarded, nothing
//!   panics on malformed input.
//! * [`build`] — spec → [`Harness`] → [`RunOutcome`] (report + digest).
//! * [`sweep`] — cartesian grids over spec fields ([`SweepSpec`]):
//!   `{scheduler: [...], workload: [...]}` is the paper's evaluation
//!   grid as data.
//! * [`json`] — the self-contained JSON model (the vendored `serde` is a
//!   no-op stand-in, so the scenario layer carries its own parser and
//!   canonical emitter).

// audit: tier(deterministic)
#![forbid(unsafe_code)]

pub mod build;
pub mod codec;
pub mod json;
pub mod spec;
pub mod sweep;
pub mod tracefmt;

pub use build::{Harness, RunOutcome};
pub use codec::{
    check_fault_topology, fault_from_json, fault_to_json, parse_scenario, policy_from_json,
    policy_to_json, router_from_json, router_to_json, scenario_from_json, scenario_to_json,
    scheduler_from_json, scheduler_to_json, SpecError,
};
pub use json::Json;
pub use spec::{
    ArrivalSpecSpec, ControlSpec, CrashSpec, EngineSpec, ExecutionSpec, FaultSpec, InlineRequest,
    LengthDistSpec, RateDistSpec, RetrySpec, RouterSpec, ScalePolicySpec, ScenarioSpec,
    SchedulerSpec, TokenFlowSpec, TopologySpec, WindowFaultSpec, WorkloadSpec, ARRIVAL_NAMES,
    HARDWARE_NAMES, LENGTH_DIST_NAMES, MODEL_NAMES, PRESET_NAMES, RATE_DIST_NAMES, ROUTER_NAMES,
    SCALE_POLICY_NAMES, SCHEDULER_NAMES, TOPOLOGY_NAMES, WORKLOAD_TYPE_NAMES,
};
pub use tracefmt::{
    canonical_trace_jsonl, event_json, explain, perfetto_json, request_timeline, trace_digest,
    trace_jsonl, validate_trace_jsonl, Phase, RequestTimeline,
};

pub use sweep::{
    is_sweep, parse_sweep, run_sweep, run_sweep_jobs, sweep_from_json, sweep_table, sweep_to_json,
    Axis, SweepCell, SweepSpec,
};
