//! Cartesian sweeps: one spec file, a grid of scenarios.
//!
//! A sweep document is a base [`ScenarioSpec`] plus `axes` — lists of
//! alternatives for any subset of {model, hardware, scheduler, workload,
//! router, policy}. Expansion takes the cartesian product in that fixed
//! axis order, overriding the base one axis at a time, so a
//! `{scheduler: [4], workload: [2]}` document is the paper's 4-system ×
//! 2-trace comparison grid as data:
//!
//! ```json
//! {
//!   "name": "policy-x-workload",
//!   "base": { "engine": {"max_batch": 16} },
//!   "axes": {
//!     "scheduler": ["fcfs", "tokenflow"],
//!     "workload": [{"type": "preset", "name": "rtx4090-a"}]
//!   }
//! }
//! ```
//!
//! Router and policy axes require a topology that has the corresponding
//! slot (cluster/autoscaled); expansion reports a typed error otherwise
//! instead of silently ignoring the axis.

use crate::build::RunOutcome;
use crate::codec::{
    policy_from_json, router_from_json, scenario_from_json, scheduler_from_json,
    workload_from_json, SpecError,
};
use crate::json::{self, obj, s, Json};
use crate::spec::{
    RouterSpec, ScalePolicySpec, ScenarioSpec, SchedulerSpec, TopologySpec, WorkloadSpec,
    HARDWARE_NAMES, MODEL_NAMES,
};

/// Valid axis names, in expansion order.
pub const AXIS_NAMES: &[&str] = &[
    "model",
    "hardware",
    "scheduler",
    "workload",
    "router",
    "policy",
];

/// One swept axis: which field varies and over what values.
#[derive(Debug, Clone, PartialEq)]
pub enum Axis {
    /// Model profile names.
    Model(Vec<String>),
    /// Hardware profile names.
    Hardware(Vec<String>),
    /// Scheduler specs.
    Scheduler(Vec<SchedulerSpec>),
    /// Workload specs.
    Workload(Vec<WorkloadSpec>),
    /// Router specs (cluster/autoscaled topologies only).
    Router(Vec<RouterSpec>),
    /// Scale-policy specs (autoscaled topologies only).
    Policy(Vec<ScalePolicySpec>),
}

impl Axis {
    fn len(&self) -> usize {
        match self {
            Axis::Model(v) => v.len(),
            Axis::Hardware(v) => v.len(),
            Axis::Scheduler(v) => v.len(),
            Axis::Workload(v) => v.len(),
            Axis::Router(v) => v.len(),
            Axis::Policy(v) => v.len(),
        }
    }

    /// Human label of one value on this axis.
    fn label(&self, i: usize) -> String {
        match self {
            Axis::Model(v) => v[i].clone(),
            Axis::Hardware(v) => v[i].clone(),
            Axis::Scheduler(v) => v[i].type_name().to_string(),
            Axis::Workload(v) => match &v[i] {
                WorkloadSpec::Preset { name, .. } => name.clone(),
                other => other.type_name().to_string(),
            },
            Axis::Router(v) => v[i].type_name().to_string(),
            Axis::Policy(v) => v[i].type_name().to_string(),
        }
    }

    /// Applies value `i` of this axis onto `spec`.
    fn apply(&self, i: usize, spec: &mut ScenarioSpec) -> Result<(), SpecError> {
        match self {
            Axis::Model(v) => spec.model = v[i].clone(),
            Axis::Hardware(v) => spec.hardware = v[i].clone(),
            Axis::Scheduler(v) => spec.scheduler = v[i].clone(),
            Axis::Workload(v) => spec.workload = v[i].clone(),
            Axis::Router(v) => match &mut spec.topology {
                TopologySpec::Cluster { router, .. } | TopologySpec::Autoscaled { router, .. } => {
                    *router = v[i]
                }
                TopologySpec::Single => {
                    return Err(SpecError::Invalid {
                        field: "axes.router".to_string(),
                        msg: "a router axis needs a cluster or autoscaled base topology"
                            .to_string(),
                    })
                }
            },
            Axis::Policy(v) => match &mut spec.topology {
                TopologySpec::Autoscaled { policy, .. } => *policy = v[i].clone(),
                _ => {
                    return Err(SpecError::Invalid {
                        field: "axes.policy".to_string(),
                        msg: "a policy axis needs an autoscaled base topology".to_string(),
                    })
                }
            },
        }
        Ok(())
    }
}

/// A sweep document: a base scenario plus the axes to vary.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Sweep name (lands in the emitted grid report).
    pub name: String,
    /// The scenario every cell starts from.
    pub base: ScenarioSpec,
    /// Swept axes, in expansion order.
    pub axes: Vec<Axis>,
}

impl SweepSpec {
    /// Total cell count of the grid: the product of the axis lengths —
    /// 1 with no axes (the base itself), 0 when any axis is empty
    /// (matching what [`SweepSpec::expand`] returns).
    pub fn cells(&self) -> usize {
        self.axes.iter().map(Axis::len).product()
    }

    /// Expands the cartesian product into `(label, scenario)` cells.
    pub fn expand(&self) -> Result<Vec<(String, ScenarioSpec)>, SpecError> {
        let mut cells = vec![(Vec::<String>::new(), self.base.clone())];
        for axis in &self.axes {
            let mut next = Vec::with_capacity(cells.len() * axis.len());
            for (labels, spec) in &cells {
                for i in 0..axis.len() {
                    let mut spec = spec.clone();
                    axis.apply(i, &mut spec)?;
                    let mut labels = labels.clone();
                    labels.push(axis.label(i));
                    next.push((labels, spec));
                }
            }
            cells = next;
        }
        Ok(cells
            .into_iter()
            .map(|(labels, mut spec)| {
                let label = if labels.is_empty() {
                    spec.name.clone()
                } else {
                    labels.join(" × ")
                };
                spec.name = format!("{}/{label}", self.name);
                (label, spec)
            })
            .collect())
    }

    /// Rebases relative file paths in the base scenario (see
    /// `ScenarioSpec::rebase_paths`) and in every workload-axis value.
    pub fn rebase_paths(&mut self, base_dir: &std::path::Path) {
        self.base.rebase_paths(base_dir);
        for axis in &mut self.axes {
            if let Axis::Workload(values) = axis {
                for w in values {
                    w.rebase_paths(base_dir);
                }
            }
        }
    }
}

/// Whether a parsed JSON document is a sweep (has `axes`) rather than a
/// single scenario.
pub fn is_sweep(doc: &Json) -> bool {
    doc.get("axes").is_some()
}

/// Parses a [`SweepSpec`] from JSON text.
pub fn parse_sweep(text: &str) -> Result<SweepSpec, SpecError> {
    let doc = json::parse(text)?;
    sweep_from_json(&doc)
}

/// Parses a [`SweepSpec`] from an already-parsed document.
pub fn sweep_from_json(doc: &Json) -> Result<SweepSpec, SpecError> {
    let members = doc.as_obj().ok_or_else(|| SpecError::Invalid {
        field: "sweep".to_string(),
        msg: "expected an object".to_string(),
    })?;
    for (k, _) in members {
        if !["name", "base", "axes"].contains(&k.as_str()) {
            return Err(SpecError::UnknownField {
                field: format!("sweep.{k}"),
                valid: vec!["name".to_string(), "base".to_string(), "axes".to_string()],
            });
        }
    }
    let name = match doc.get("name") {
        None => "sweep".to_string(),
        Some(j) => j
            .as_str()
            .ok_or_else(|| SpecError::Invalid {
                field: "sweep.name".to_string(),
                msg: "expected a string".to_string(),
            })?
            .to_string(),
    };
    let base = match doc.get("base") {
        None => ScenarioSpec::default(),
        Some(j) => scenario_from_json(j, "sweep.base")?,
    };
    let axes_json = doc.get("axes").ok_or_else(|| SpecError::Invalid {
        field: "sweep.axes".to_string(),
        msg: "a sweep needs an axes object".to_string(),
    })?;
    let axis_members = axes_json.as_obj().ok_or_else(|| SpecError::Invalid {
        field: "sweep.axes".to_string(),
        msg: "expected an object".to_string(),
    })?;
    // Fixed expansion order regardless of authored order, so a sweep's
    // cell order is deterministic and documented.
    let mut axes = Vec::new();
    for &axis_name in AXIS_NAMES {
        let Some(values_json) = axes_json.get(axis_name) else {
            continue;
        };
        let path = format!("sweep.axes.{axis_name}");
        let values = values_json.as_arr().ok_or_else(|| SpecError::Invalid {
            field: path.clone(),
            msg: "expected an array".to_string(),
        })?;
        if values.is_empty() {
            return Err(SpecError::Invalid {
                field: path,
                msg: "axis must be non-empty".to_string(),
            });
        }
        let axis = match axis_name {
            "model" => Axis::Model(name_axis(values, &path, MODEL_NAMES)?),
            "hardware" => Axis::Hardware(name_axis(values, &path, HARDWARE_NAMES)?),
            "scheduler" => Axis::Scheduler(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| scheduler_from_json(v, &format!("{path}[{i}]")))
                    .collect::<Result<_, _>>()?,
            ),
            "workload" => Axis::Workload(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| workload_from_json(v, &format!("{path}[{i}]")))
                    .collect::<Result<_, _>>()?,
            ),
            "router" => Axis::Router(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| router_from_json(v, &format!("{path}[{i}]")))
                    .collect::<Result<_, _>>()?,
            ),
            "policy" => Axis::Policy(
                values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| policy_from_json(v, &format!("{path}[{i}]")))
                    .collect::<Result<_, _>>()?,
            ),
            _ => unreachable!("AXIS_NAMES is exhaustive"),
        };
        axes.push(axis);
    }
    for (k, _) in axis_members {
        if !AXIS_NAMES.contains(&k.as_str()) {
            return Err(SpecError::UnknownName {
                field: "sweep.axes".to_string(),
                got: k.clone(),
                valid: AXIS_NAMES.iter().map(|a| a.to_string()).collect(),
            });
        }
    }
    Ok(SweepSpec { name, base, axes })
}

fn name_axis(values: &[Json], path: &str, valid: &[&str]) -> Result<Vec<String>, SpecError> {
    values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let name = v.as_str().ok_or_else(|| SpecError::Invalid {
                field: format!("{path}[{i}]"),
                msg: "expected a string".to_string(),
            })?;
            valid
                .iter()
                .find(|c| c.eq_ignore_ascii_case(name))
                .map(|c| c.to_string())
                .ok_or_else(|| SpecError::UnknownName {
                    field: format!("{path}[{i}]"),
                    got: name.to_string(),
                    valid: valid.iter().map(|c| c.to_string()).collect(),
                })
        })
        .collect()
}

/// One executed sweep cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Cell label, e.g. `"tokenflow × rtx4090-a"`.
    pub label: String,
    /// The cell's outcome.
    pub outcome: RunOutcome,
}

/// Expands and runs a whole sweep on the calling thread, in cell order.
/// Equivalent to [`run_sweep_jobs`] with one job.
pub fn run_sweep(sweep: &SweepSpec) -> Result<Vec<SweepCell>, SpecError> {
    run_sweep_jobs(sweep, std::num::NonZeroUsize::MIN)
}

/// Expands and runs a whole sweep with up to `jobs` cells in flight at
/// once. Cells are independent deterministic simulations, so the result
/// — content *and* order — is byte-identical to the serial runner: each
/// worker claims the next unstarted cell from a shared cursor and writes
/// its outcome into that cell's own slot, so completion order never
/// leaks into the output. The calling thread participates as one of the
/// jobs.
///
/// When any cell fails to build, the error reported is the first in
/// **cell order** (the serial runner stops at that cell; the parallel
/// runner may also have run later cells, whose results are discarded).
pub fn run_sweep_jobs(
    sweep: &SweepSpec,
    jobs: std::num::NonZeroUsize,
) -> Result<Vec<SweepCell>, SpecError> {
    let cells = sweep.expand()?;
    if jobs.get() == 1 || cells.len() <= 1 {
        return cells
            .into_iter()
            .map(|(label, spec)| {
                Ok(SweepCell {
                    label,
                    outcome: spec.build()?.run(),
                })
            })
            .collect();
    }
    let slots: Vec<std::sync::Mutex<Option<Result<RunOutcome, SpecError>>>> = (0..cells.len())
        .map(|_| std::sync::Mutex::new(None))
        .collect();
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let worker = || loop {
        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let Some((_, spec)) = cells.get(i) else {
            return;
        };
        let result = spec.build().map(|harness| harness.run());
        *slots[i].lock().expect("sweep slot poisoned") = Some(result);
    };
    std::thread::scope(|scope| {
        for _ in 0..jobs.get().min(cells.len()) - 1 {
            scope.spawn(worker);
        }
        worker();
    });
    cells
        .into_iter()
        .zip(slots)
        .map(|((label, _), slot)| {
            let outcome = slot
                .into_inner()
                .expect("sweep slot poisoned")
                .expect("every claimed cell writes its slot")?;
            Ok(SweepCell { label, outcome })
        })
        .collect()
}

/// Renders sweep results as a JSON grid report.
pub fn sweep_to_json(sweep: &SweepSpec, cells: &[SweepCell]) -> Json {
    obj(vec![
        ("sweep", s(&sweep.name)),
        ("cells", {
            Json::Arr(
                cells
                    .iter()
                    .map(|c| {
                        let mut members = vec![("label".to_string(), s(&c.label))];
                        if let Json::Obj(outcome) = c.outcome.to_json() {
                            members.extend(outcome);
                        }
                        Json::Obj(members)
                    })
                    .collect(),
            )
        }),
    ])
}

/// Renders sweep results as an aligned text table.
pub fn sweep_table(cells: &[SweepCell]) -> String {
    let headers = [
        "cell",
        "topology",
        "completed",
        "eff thpt",
        "mean TTFT",
        "p99 TTFT",
        "rebuffer",
        "replica-s",
        "complete",
    ];
    let mut rows: Vec<Vec<String>> = vec![headers.iter().map(|h| h.to_string()).collect()];
    for c in cells {
        let r = &c.outcome.report;
        rows.push(vec![
            c.label.clone(),
            c.outcome.topology.clone(),
            format!("{}/{}", r.completed, r.submitted),
            format!("{:.1}", r.effective_throughput),
            format!("{:.2}", r.ttft.mean),
            format!("{:.2}", r.ttft.p99),
            format!("{:.1}", r.total_rebuffer_secs),
            format!("{:.0}", r.replica_seconds),
            c.outcome.complete.to_string(),
        ]);
    }
    let widths: Vec<usize> = (0..headers.len())
        .map(|i| rows.iter().map(|r| r[i].len()).max().unwrap_or(0))
        .collect();
    rows.iter()
        .map(|r| {
            r.iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
        "name": "grid",
        "base": {
            "engine": {"max_batch": 8},
            "workload": {"type": "synthetic",
                         "arrivals": {"type": "burst", "size": 6, "at_secs": 0},
                         "prompt": {"type": "fixed", "tokens": 64},
                         "output": {"type": "fixed", "tokens": 32},
                         "rate": {"type": "fixed", "rate": 15.0},
                         "seed": 1}
        },
        "axes": {
            "scheduler": ["fcfs", "tokenflow", "andes"],
            "workload": [
                {"type": "synthetic",
                 "arrivals": {"type": "burst", "size": 4, "at_secs": 0},
                 "prompt": {"type": "fixed", "tokens": 64},
                 "output": {"type": "fixed", "tokens": 16},
                 "rate": {"type": "fixed", "rate": 15.0}, "seed": 2},
                {"type": "synthetic",
                 "arrivals": {"type": "burst", "size": 2, "at_secs": 0},
                 "prompt": {"type": "fixed", "tokens": 32},
                 "output": {"type": "fixed", "tokens": 16},
                 "rate": {"type": "fixed", "rate": 15.0}, "seed": 3}
            ]
        }
    }"#;

    #[test]
    fn expands_the_cartesian_product_in_axis_order() {
        let sweep = parse_sweep(DOC).unwrap();
        assert_eq!(sweep.cells(), 6);
        let cells = sweep.expand().unwrap();
        assert_eq!(cells.len(), 6);
        // Scheduler is the outer axis, workload the inner.
        assert_eq!(cells[0].0, "fcfs × synthetic");
        assert_eq!(cells[1].0, "fcfs × synthetic");
        assert_eq!(cells[2].0, "tokenflow × synthetic");
        assert!(cells.iter().all(|(_, s)| s.name.starts_with("grid/")));
    }

    #[test]
    fn runs_every_cell() {
        let sweep = parse_sweep(DOC).unwrap();
        let cells = run_sweep(&sweep).unwrap();
        assert_eq!(cells.len(), 6);
        assert!(cells.iter().all(|c| c.outcome.complete));
        let table = sweep_table(&cells);
        assert_eq!(table.lines().count(), 7, "{table}");
        let grid = sweep_to_json(&sweep, &cells);
        assert_eq!(grid.get("cells").unwrap().as_arr().unwrap().len(), 6);
    }

    #[test]
    fn parallel_jobs_pin_output_to_spec_order() {
        let sweep = parse_sweep(DOC).unwrap();
        let serial = run_sweep(&sweep).unwrap();
        let jobs = std::num::NonZeroUsize::new(4).expect("non-zero");
        let parallel = run_sweep_jobs(&sweep, jobs).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label, "cell order must follow spec order");
            assert_eq!(a.outcome.digest(), b.outcome.digest(), "cell {}", a.label);
        }
        // The rendered artifacts are pinned too, byte for byte.
        assert_eq!(sweep_table(&serial), sweep_table(&parallel));
        assert_eq!(
            sweep_to_json(&sweep, &serial).emit_pretty(),
            sweep_to_json(&sweep, &parallel).emit_pretty()
        );
    }

    #[test]
    fn router_axis_requires_cluster_topology() {
        let doc = r#"{"axes": {"router": ["round-robin", "rate-aware"]}}"#;
        let err = parse_sweep(doc).unwrap().expand().unwrap_err();
        assert!(matches!(err, SpecError::Invalid { ref field, .. }
            if field == "axes.router"));
    }

    #[test]
    fn unknown_axis_lists_valid_ones() {
        let err = parse_sweep(r#"{"axes": {"flux": [1]}}"#).unwrap_err();
        match err {
            SpecError::UnknownName { got, valid, .. } => {
                assert_eq!(got, "flux");
                assert_eq!(valid, AXIS_NAMES.to_vec());
            }
            other => panic!("expected UnknownName, got {other:?}"),
        }
    }

    #[test]
    fn is_sweep_distinguishes_documents() {
        assert!(is_sweep(&json::parse(DOC).unwrap()));
        assert!(!is_sweep(&json::parse(r#"{"name": "x"}"#).unwrap()));
    }
}
