//! Rendering decision journals: canonical JSONL, Perfetto (Chrome
//! trace-event) JSON, and causal per-request explanations.
//!
//! The JSONL form is the journal's canonical serialization: one compact
//! JSON object per event, in merge order, emitted through the same
//! canonical [`json`] emitter the report uses — so two runs produce
//! byte-identical files exactly when their journals are equal, and the
//! trace digest (FNV-1a over the canonical, meta-filtered lines) is
//! golden-pinnable the same way report digests are.
//!
//! The Perfetto form renders the same journal for `chrome://tracing` /
//! [ui.perfetto.dev](https://ui.perfetto.dev): one process track per
//! replica (plus control-plane and coordinator tracks), one thread lane
//! per request carrying its phase slices, and flow arrows stitching
//! dispatch → arrival and preemption → resumption across lanes.
//!
//! [`explain`] reconstructs one request's causal timeline and attributes
//! every microsecond between arrival and first token (and through to
//! completion) to a wait phase — the sums reproduce TTFT and latency
//! *exactly* because phases are contiguous integer-microsecond segments
//! cut at the journal's own event boundaries.

use tokenflow_metrics::fnv1a64;
use tokenflow_sim::{RequestId, SimTime};
use tokenflow_trace::{TraceEvent, TraceEventKind, TraceJournal, TraceSource};

use crate::json::{n, ni, obj, s, Json};

/// Renders one event as its canonical JSON object: the `(t_us, src,
/// seq, kind)` envelope followed by the kind's payload fields.
pub fn event_json(e: &TraceEvent) -> Json {
    event_json_inner(e, true)
}

fn event_json_inner(e: &TraceEvent, with_seq: bool) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("t_us".to_string(), ni(e.time.as_micros())),
        ("src".to_string(), Json::Str(e.source.label())),
        ("seq".to_string(), ni(e.seq)),
        ("kind".to_string(), s(e.kind.name())),
    ];
    if !with_seq {
        // Meta events (horizon arm/end) consume sequence numbers from
        // the same per-source counter as decisions, so canonical seq
        // *values* shift with the fast path even though the canonical
        // *order* does not. The digestable rendering drops them.
        members.remove(2);
    }
    let id = |v: RequestId| ni(v.0);
    match &e.kind {
        TraceEventKind::Arrived { id: r, arrival } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("arrival_us".to_string(), ni(arrival.as_micros())));
        }
        TraceEventKind::Dispatch {
            id: r,
            replica,
            scores,
        } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("replica".to_string(), ni(u64::from(*replica))));
            members.push((
                "scores".to_string(),
                Json::Arr(scores.iter().map(|&v| n(v)).collect()),
            ));
        }
        TraceEventKind::Admitted {
            id: r,
            recompute,
            queued_behind_tokens,
        } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("recompute".to_string(), Json::Bool(*recompute)));
            members.push((
                "queued_behind_tokens".to_string(),
                ni(*queued_behind_tokens),
            ));
        }
        TraceEventKind::PrefillChunk {
            id: r,
            tokens,
            completes,
        } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("tokens".to_string(), ni(*tokens)));
            members.push(("completes".to_string(), Json::Bool(*completes)));
        }
        TraceEventKind::FirstToken { id: r }
        | TraceEventKind::Finished { id: r }
        | TraceEventKind::Shed { id: r }
        | TraceEventKind::Resumed { id: r }
        | TraceEventKind::EvictDone { id: r }
        | TraceEventKind::LoadDone { id: r } => {
            members.push(("id".to_string(), id(*r)));
        }
        TraceEventKind::Preempted {
            id: r,
            discard,
            cause,
        } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("discard".to_string(), Json::Bool(*discard)));
            members.push(("cause".to_string(), s(cause.label())));
        }
        TraceEventKind::DecodeGate { id: r, paused } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("paused".to_string(), Json::Bool(*paused)));
        }
        TraceEventKind::EvictStart { id: r, tokens }
        | TraceEventKind::LoadStart { id: r, tokens } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("tokens".to_string(), ni(*tokens)));
        }
        TraceEventKind::Reprice {
            id: r,
            before,
            after,
        } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("before".to_string(), n(*before)));
            members.push(("after".to_string(), n(*after)));
        }
        TraceEventKind::Swap {
            evicted,
            admitted,
            evicted_priority,
            admitted_priority,
        } => {
            members.push(("evicted".to_string(), id(*evicted)));
            members.push(("admitted".to_string(), id(*admitted)));
            members.push(("evicted_priority".to_string(), n(*evicted_priority)));
            members.push(("admitted_priority".to_string(), n(*admitted_priority)));
        }
        TraceEventKind::Scale {
            delta,
            applied,
            active,
            terms,
        } => {
            members.push(("delta".to_string(), n(*delta as f64)));
            members.push(("applied".to_string(), Json::Bool(*applied)));
            members.push(("active".to_string(), ni(*active)));
            members.push((
                "terms".to_string(),
                Json::Obj(
                    terms
                        .iter()
                        .map(|&(name, v)| (name.to_string(), n(v)))
                        .collect(),
                ),
            ));
        }
        TraceEventKind::HorizonArmed {
            valid_until,
            gates_static,
        } => {
            // `SimTime::MAX` encodes an unbounded certificate.
            let until = if *valid_until == SimTime::MAX {
                Json::Null
            } else {
                ni(valid_until.as_micros())
            };
            members.push(("valid_until_us".to_string(), until));
            members.push(("gates_static".to_string(), Json::Bool(*gates_static)));
        }
        TraceEventKind::HorizonEnded { reason } => {
            members.push(("reason".to_string(), s(reason.label())));
        }
        TraceEventKind::ReplicaCrashed { replica, lost } => {
            members.push(("replica".to_string(), ni(u64::from(*replica))));
            members.push(("lost".to_string(), ni(*lost)));
        }
        TraceEventKind::ReplicaDegraded { replica, factor }
        | TraceEventKind::LinkDegraded { replica, factor } => {
            members.push(("replica".to_string(), ni(u64::from(*replica))));
            members.push(("factor".to_string(), n(*factor)));
        }
        TraceEventKind::BootFailed { replica } => {
            members.push(("replica".to_string(), ni(u64::from(*replica))));
        }
        TraceEventKind::RequestLost { id: r, replica } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("replica".to_string(), ni(u64::from(*replica))));
        }
        TraceEventKind::RetryScheduled { id: r, attempt } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("attempt".to_string(), ni(u64::from(*attempt))));
        }
        TraceEventKind::RequestAbandoned { id: r, attempts } => {
            members.push(("id".to_string(), id(*r)));
            members.push(("attempts".to_string(), ni(u64::from(*attempts))));
        }
        TraceEventKind::AdmissionShed { id: r } => {
            members.push(("id".to_string(), id(*r)));
        }
    }
    Json::Obj(members)
}

/// The full journal as JSONL: one canonical JSON object per line (meta
/// events included), trailing newline.
pub fn trace_jsonl(journal: &TraceJournal) -> String {
    let mut out = String::new();
    for e in &journal.events {
        out.push_str(&event_json(e).emit());
        out.push('\n');
    }
    out
}

/// The canonical (meta-filtered, seq-stripped) journal as JSONL — the
/// view that is invariant under executor choice *and* the plan-horizon
/// fast path, and the bytes [`trace_digest`] is taken over. Sequence
/// numbers are dropped because meta events share the per-source
/// counter; the line *order* still carries the total `(time, source,
/// seq)` merge order.
pub fn canonical_trace_jsonl(journal: &TraceJournal) -> String {
    let mut out = String::new();
    for e in journal.canonical() {
        out.push_str(&event_json_inner(e, false).emit());
        out.push('\n');
    }
    out
}

/// FNV-1a digest of the canonical JSONL bytes — the golden-pinnable
/// fingerprint of a run's decision record.
pub fn trace_digest(journal: &TraceJournal) -> u64 {
    fnv1a64(canonical_trace_jsonl(journal).as_bytes())
}

/// Payload fields the validator requires per kind name; `None` for an
/// unknown kind.
fn required_keys(kind: &str) -> Option<&'static [&'static str]> {
    Some(match kind {
        "arrived" => &["id", "arrival_us"],
        "dispatch" => &["id", "replica", "scores"],
        "admitted" => &["id", "recompute", "queued_behind_tokens"],
        "prefill_chunk" => &["id", "tokens", "completes"],
        "first_token" | "finished" | "shed" | "resumed" | "evict_done" | "load_done" => &["id"],
        "preempted" => &["id", "discard", "cause"],
        "decode_gate" => &["id", "paused"],
        "evict_start" | "load_start" => &["id", "tokens"],
        "reprice" => &["id", "before", "after"],
        "swap" => &[
            "evicted",
            "admitted",
            "evicted_priority",
            "admitted_priority",
        ],
        "scale" => &["delta", "applied", "active", "terms"],
        "horizon_armed" => &["valid_until_us", "gates_static"],
        "horizon_ended" => &["reason"],
        "replica_crashed" => &["replica", "lost"],
        "replica_degraded" | "link_degraded" => &["replica", "factor"],
        "boot_failed" => &["replica"],
        "request_lost" => &["id", "replica"],
        "retry_scheduled" => &["id", "attempt"],
        "request_abandoned" => &["id", "attempts"],
        "admission_shed" => &["id"],
        _ => return None,
    })
}

/// Validates a JSONL trace file: every non-empty line must parse as a
/// JSON object carrying the `(t_us, src, seq, kind)` envelope, a known
/// kind name, that kind's payload fields, and non-decreasing `t_us`.
/// Returns the event count.
pub fn validate_trace_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    let mut last_t = 0u64;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let v = crate::json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
        for key in ["t_us", "src", "seq", "kind"] {
            if v.get(key).is_none() {
                return Err(format!("line {lineno}: missing \"{key}\""));
            }
        }
        let t = v
            .get("t_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("line {lineno}: \"t_us\" is not an integer"))?;
        if t < last_t {
            return Err(format!(
                "line {lineno}: time goes backwards ({t} < {last_t})"
            ));
        }
        last_t = t;
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {lineno}: \"kind\" is not a string"))?;
        let required =
            required_keys(kind).ok_or_else(|| format!("line {lineno}: unknown kind \"{kind}\""))?;
        for key in required {
            if v.get(key).is_none() {
                return Err(format!("line {lineno}: kind \"{kind}\" missing \"{key}\""));
            }
        }
        count += 1;
    }
    Ok(count)
}

/// One contiguous wait/progress segment of a request's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// What the request was doing (or waiting on): `queued`, `prefill`,
    /// `decode`, `gated`, `preempted`, or `reloading`.
    pub label: &'static str,
    /// Segment start (inclusive).
    pub from: SimTime,
    /// Segment end (exclusive).
    pub to: SimTime,
}

impl Phase {
    /// Segment length in integer microseconds.
    pub fn micros(&self) -> u64 {
        self.to.as_micros() - self.from.as_micros()
    }
}

/// One request's causal story, reconstructed from the journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTimeline {
    /// The request (journal id space: submission order).
    pub id: RequestId,
    /// The replica that served it, when the journal records one.
    pub replica: Option<u32>,
    /// Workload arrival instant (from the `arrived` payload).
    pub arrival: SimTime,
    /// First-token instant, if reached.
    pub first_token_at: Option<SimTime>,
    /// Completion instant, if reached.
    pub finished_at: Option<SimTime>,
    /// True when the request was shed.
    pub shed: bool,
    /// Every event mentioning the request, in journal order.
    pub events: Vec<TraceEvent>,
    /// Contiguous phases from arrival to the last state change. Summing
    /// the phases that end at or before `first_token_at` reproduces
    /// TTFT exactly; summing all phases reproduces latency exactly.
    pub phases: Vec<Phase>,
}

impl RequestTimeline {
    /// Per-label wait totals (micros) over phases inside `[arrival,
    /// until]`, in first-appearance order. Their sum is exactly
    /// `until - arrival`.
    pub fn attribution(&self, until: SimTime) -> Vec<(&'static str, u64)> {
        let mut totals: Vec<(&'static str, u64)> = Vec::new();
        for p in &self.phases {
            if p.from >= until {
                break;
            }
            let end = p.to.min(until);
            let micros = end.as_micros() - p.from.as_micros();
            if micros == 0 {
                continue;
            }
            match totals.iter_mut().find(|(l, _)| *l == p.label) {
                Some((_, total)) => *total += micros,
                None => totals.push((p.label, micros)),
            }
        }
        totals
    }

    /// Per-label totals up to first token; `None` before first token.
    pub fn ttft_attribution(&self) -> Option<Vec<(&'static str, u64)>> {
        self.first_token_at.map(|t| self.attribution(t))
    }
}

/// Reconstructs `id`'s timeline from the journal, or `None` when the
/// journal never mentions it.
pub fn request_timeline(journal: &TraceJournal, id: RequestId) -> Option<RequestTimeline> {
    let events: Vec<TraceEvent> = journal.for_request(id).cloned().collect();
    let arrival = events.iter().find_map(|e| match e.kind {
        TraceEventKind::Arrived { arrival, .. } => Some(arrival),
        TraceEventKind::Dispatch { .. } => Some(e.time),
        _ => None,
    })?;
    let replica = events.iter().find_map(|e| match (e.source, &e.kind) {
        (_, TraceEventKind::Dispatch { replica, .. }) => Some(*replica),
        (TraceSource::Replica(i), _) => Some(i),
        _ => None,
    });
    let mut timeline = RequestTimeline {
        id,
        replica,
        arrival,
        first_token_at: None,
        finished_at: None,
        shed: false,
        events,
        phases: Vec::new(),
    };
    // Walk the event sequence as a state machine, cutting a phase at
    // every state change. Events are already in time order.
    let mut label = "queued";
    let mut start = arrival;
    let change = |phases: &mut Vec<Phase>,
                  label: &mut &'static str,
                  start: &mut SimTime,
                  next: &'static str,
                  at: SimTime| {
        if at > *start {
            phases.push(Phase {
                label,
                from: *start,
                to: at,
            });
            *start = at;
        }
        *label = next;
    };
    let events = std::mem::take(&mut timeline.events);
    for e in &events {
        let at = e.time;
        match &e.kind {
            TraceEventKind::Admitted { .. } => {
                change(&mut timeline.phases, &mut label, &mut start, "prefill", at);
            }
            TraceEventKind::FirstToken { .. } => {
                change(&mut timeline.phases, &mut label, &mut start, "decode", at);
                timeline.first_token_at = Some(at);
            }
            TraceEventKind::Preempted { .. } => {
                change(
                    &mut timeline.phases,
                    &mut label,
                    &mut start,
                    "preempted",
                    at,
                );
            }
            TraceEventKind::Resumed { .. } => {
                change(
                    &mut timeline.phases,
                    &mut label,
                    &mut start,
                    "reloading",
                    at,
                );
            }
            TraceEventKind::LoadDone { .. } => {
                let next = if timeline.first_token_at.is_some() {
                    "decode"
                } else {
                    "prefill"
                };
                change(&mut timeline.phases, &mut label, &mut start, next, at);
            }
            TraceEventKind::DecodeGate { paused, .. } => {
                let next = if *paused { "gated" } else { "decode" };
                change(&mut timeline.phases, &mut label, &mut start, next, at);
            }
            TraceEventKind::Finished { .. } => {
                change(&mut timeline.phases, &mut label, &mut start, "done", at);
                timeline.finished_at = Some(at);
            }
            TraceEventKind::Shed { .. } => {
                change(&mut timeline.phases, &mut label, &mut start, "shed", at);
                timeline.shed = true;
            }
            // Transfer progress and scheduler pricing don't change what
            // the request is waiting on; swaps are covered by the
            // preempt/admit events they cause.
            _ => {}
        }
    }
    timeline.events = events;
    Some(timeline)
}

fn secs(t: SimTime) -> String {
    format!("{:.6}s", t.as_micros() as f64 / 1e6)
}

fn dur_secs(micros: u64) -> String {
    format!("{:.6}s", micros as f64 / 1e6)
}

/// One human-readable line per journal event.
fn describe(e: &TraceEvent) -> String {
    let what = match &e.kind {
        TraceEventKind::Arrived { arrival, .. } => {
            format!("arrived (spec arrival {})", secs(*arrival))
        }
        TraceEventKind::Dispatch {
            replica, scores, ..
        } => {
            if scores.is_empty() {
                format!("dispatched to replica {replica}")
            } else {
                let scores: Vec<String> = scores.iter().map(|v| format!("{v:.3}")).collect();
                format!(
                    "dispatched to replica {replica} (scores [{}])",
                    scores.join(", ")
                )
            }
        }
        TraceEventKind::Admitted {
            recompute,
            queued_behind_tokens,
            ..
        } => format!(
            "admitted{} behind {queued_behind_tokens} queued prefill tokens",
            if *recompute { " (recompute)" } else { "" }
        ),
        TraceEventKind::PrefillChunk {
            tokens, completes, ..
        } => format!(
            "prefilled {tokens} tokens{}",
            if *completes {
                " (prefill complete)"
            } else {
                ""
            }
        ),
        TraceEventKind::FirstToken { .. } => "first token".to_string(),
        TraceEventKind::Finished { .. } => "finished".to_string(),
        TraceEventKind::Preempted { discard, cause, .. } => format!(
            "preempted ({}, {})",
            if *discard { "discarded" } else { "offloaded" },
            cause.label()
        ),
        TraceEventKind::Shed { .. } => "shed (admission gave up under memory pressure)".to_string(),
        TraceEventKind::Resumed { .. } => "resumed".to_string(),
        TraceEventKind::DecodeGate { paused, .. } => {
            if *paused {
                "decode gated (scheduler paused streaming)".to_string()
            } else {
                "decode gate released".to_string()
            }
        }
        TraceEventKind::EvictStart { tokens, .. } => {
            format!("evicting {tokens} KV tokens to host")
        }
        TraceEventKind::EvictDone { .. } => "eviction complete".to_string(),
        TraceEventKind::LoadStart { tokens, .. } => {
            format!("loading {tokens} KV tokens back to GPU")
        }
        TraceEventKind::LoadDone { .. } => "load complete".to_string(),
        TraceEventKind::Reprice { before, after, .. } => {
            format!("repriced {before:.4} -> {after:.4}")
        }
        TraceEventKind::Swap {
            evicted, admitted, ..
        } => format!("swap: {evicted} out, {admitted} in"),
        TraceEventKind::ReplicaCrashed { replica, lost } => {
            format!("replica {replica} crashed ({lost} in-flight requests lost)")
        }
        TraceEventKind::ReplicaDegraded { replica, factor } => {
            if (*factor - 1.0).abs() < f64::EPSILON {
                format!("replica {replica} recovered full compute throughput")
            } else {
                format!("replica {replica} degraded to {factor:.2}x compute throughput")
            }
        }
        TraceEventKind::BootFailed { replica } => {
            format!("replica {replica} failed to boot")
        }
        TraceEventKind::LinkDegraded { replica, factor } => {
            if (*factor - 1.0).abs() < f64::EPSILON {
                format!("replica {replica} KV link restored")
            } else {
                format!("replica {replica} KV link degraded to {factor:.2}x bandwidth")
            }
        }
        TraceEventKind::RequestLost { replica, .. } => {
            format!("lost to replica {replica} crash")
        }
        TraceEventKind::RetryScheduled { attempt, .. } => {
            format!("retry scheduled (attempt {attempt})")
        }
        TraceEventKind::RequestAbandoned { attempts, .. } => {
            format!("abandoned after {attempts} lost attempts")
        }
        TraceEventKind::AdmissionShed { .. } => {
            "shed at the dispatch barrier (cluster overload)".to_string()
        }
        TraceEventKind::Scale { .. }
        | TraceEventKind::HorizonArmed { .. }
        | TraceEventKind::HorizonEnded { .. } => e.kind.name().to_string(),
    };
    format!("  {:>12}  [{}] {}", secs(e.time), e.source.label(), what)
}

/// Renders `id`'s causal timeline and wait attribution, or `None` when
/// the journal never mentions it.
pub fn explain(journal: &TraceJournal, id: RequestId) -> Option<String> {
    let timeline = request_timeline(journal, id)?;
    let mut out = String::new();
    out.push_str(&format!("{id} — decision timeline\n"));
    for e in &timeline.events {
        out.push_str(&describe(e));
        out.push('\n');
    }
    if let (Some(first), Some(attribution)) = (timeline.first_token_at, timeline.ttft_attribution())
    {
        let ttft = first.as_micros() - timeline.arrival.as_micros();
        out.push_str(&format!("time to first token {}:\n", dur_secs(ttft)));
        for (label, micros) in &attribution {
            out.push_str(&format!("  {label:<10} {}\n", dur_secs(*micros)));
        }
        debug_assert_eq!(attribution.iter().map(|(_, us)| us).sum::<u64>(), ttft);
    }
    if let Some(finished) = timeline.finished_at {
        let latency = finished.as_micros() - timeline.arrival.as_micros();
        out.push_str(&format!("total latency {}:\n", dur_secs(latency)));
        for (label, micros) in timeline.attribution(finished) {
            out.push_str(&format!("  {label:<10} {}\n", dur_secs(micros)));
        }
    } else if timeline.shed {
        out.push_str("request was shed and never completed\n");
    } else {
        out.push_str("request did not complete within the run\n");
    }
    Some(out)
}

/// Perfetto track identity for a source: control and coordinator get
/// their own processes, each replica gets one process track.
fn pid_of(source: TraceSource) -> u64 {
    match source {
        TraceSource::Control => 1,
        TraceSource::Coordinator => 2,
        TraceSource::Replica(i) => 10 + u64::from(i),
    }
}

/// Renders the journal as Chrome trace-event JSON (Perfetto-loadable):
/// one process per replica (plus control/coordinator tracks), one
/// thread lane per request carrying its phase slices and markers, and
/// flow arrows stitching dispatch → arrival and preempt → resume.
pub fn perfetto_json(journal: &TraceJournal) -> String {
    let mut events: Vec<Json> = Vec::new();
    let meta = |name: &str, pid: u64, tid: Option<u64>, label: &str| {
        let mut members = vec![("name", s(name)), ("ph", s("M")), ("pid", ni(pid))];
        if let Some(tid) = tid {
            members.push(("tid", ni(tid)));
        }
        members.push(("args", obj(vec![("name", s(label))])));
        obj(members)
    };
    // Track naming: processes for every source seen, lanes per request.
    let mut sources: Vec<TraceSource> = journal.events.iter().map(|e| e.source).collect();
    sources.sort_unstable();
    sources.dedup();
    for source in &sources {
        events.push(meta("process_name", pid_of(*source), None, &source.label()));
    }
    // Requests, in id order, with the replica lane they ran on.
    let mut ids: Vec<RequestId> = journal
        .events
        .iter()
        .filter_map(|e| e.kind.request())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    let mut flow = 0u64;
    for id in ids {
        let Some(timeline) = request_timeline(journal, id) else {
            continue;
        };
        let pid = pid_of(TraceSource::Replica(timeline.replica.unwrap_or(0)));
        let tid = id.0 + 1;
        events.push(meta("thread_name", pid, Some(tid), &format!("{id}")));
        for p in &timeline.phases {
            events.push(obj(vec![
                ("name", s(p.label)),
                ("cat", s("request")),
                ("ph", s("X")),
                ("pid", ni(pid)),
                ("tid", ni(tid)),
                ("ts", ni(p.from.as_micros())),
                ("dur", ni(p.micros())),
            ]));
        }
        for e in &timeline.events {
            match &e.kind {
                TraceEventKind::FirstToken { .. } | TraceEventKind::Finished { .. } => {
                    events.push(obj(vec![
                        ("name", s(e.kind.name())),
                        ("cat", s("request")),
                        ("ph", s("i")),
                        ("s", s("t")),
                        ("pid", ni(pid)),
                        ("tid", ni(tid)),
                        ("ts", ni(e.time.as_micros())),
                    ]));
                }
                // Flow arrow: the coordinator's dispatch decision flows
                // into the replica-side arrival it caused.
                TraceEventKind::Dispatch { .. } => {
                    flow += 1;
                    events.push(obj(vec![
                        ("name", s("dispatch")),
                        ("cat", s("flow")),
                        ("ph", s("s")),
                        ("id", ni(flow)),
                        ("pid", ni(pid_of(TraceSource::Coordinator))),
                        ("tid", ni(tid)),
                        ("ts", ni(e.time.as_micros())),
                    ]));
                    let arrived = timeline
                        .events
                        .iter()
                        .find(|a| matches!(a.kind, TraceEventKind::Arrived { .. }));
                    if let Some(a) = arrived {
                        events.push(obj(vec![
                            ("name", s("dispatch")),
                            ("cat", s("flow")),
                            ("ph", s("f")),
                            ("bp", s("e")),
                            ("id", ni(flow)),
                            ("pid", ni(pid)),
                            ("tid", ni(tid)),
                            ("ts", ni(a.time.as_micros())),
                        ]));
                    }
                }
                // Flow arrow: a preemption flows into the resumption (or
                // recompute re-admission) that undoes it.
                TraceEventKind::Preempted { .. } => {
                    let revival = timeline.events.iter().find(|r| {
                        r.time >= e.time
                            && matches!(
                                r.kind,
                                TraceEventKind::Resumed { .. }
                                    | TraceEventKind::Admitted {
                                        recompute: true,
                                        ..
                                    }
                            )
                    });
                    if let Some(r) = revival {
                        flow += 1;
                        events.push(obj(vec![
                            ("name", s("preempt")),
                            ("cat", s("flow")),
                            ("ph", s("s")),
                            ("id", ni(flow)),
                            ("pid", ni(pid)),
                            ("tid", ni(tid)),
                            ("ts", ni(e.time.as_micros())),
                        ]));
                        events.push(obj(vec![
                            ("name", s("preempt")),
                            ("cat", s("flow")),
                            ("ph", s("f")),
                            ("bp", s("e")),
                            ("id", ni(flow)),
                            ("pid", ni(pid)),
                            ("tid", ni(tid)),
                            ("ts", ni(r.time.as_micros())),
                        ]));
                    }
                }
                _ => {}
            }
        }
    }
    // Source-level events (scale decisions, horizon arms) as instants on
    // their own track's lane 0.
    for e in &journal.events {
        if e.kind.request().is_some() {
            continue;
        }
        events.push(obj(vec![
            ("name", s(e.kind.name())),
            ("cat", s(if e.kind.is_meta() { "meta" } else { "control" })),
            ("ph", s("i")),
            ("s", s("p")),
            ("pid", ni(pid_of(e.source))),
            ("tid", ni(0)),
            ("ts", ni(e.time.as_micros())),
        ]));
    }
    obj(vec![
        ("displayTimeUnit", s("ms")),
        ("traceEvents", Json::Arr(events)),
    ])
    .emit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokenflow_trace::{TraceSink, TraceSource};

    fn sample_journal() -> TraceJournal {
        let mut sink = TraceSink::enabled(TraceSource::Replica(0));
        let t = SimTime::from_micros;
        let id = RequestId(0);
        sink.emit(t(0), TraceEventKind::Arrived { id, arrival: t(0) });
        sink.emit(
            t(100),
            TraceEventKind::Admitted {
                id,
                recompute: false,
                queued_behind_tokens: 64,
            },
        );
        sink.emit(
            t(300),
            TraceEventKind::PrefillChunk {
                id,
                tokens: 128,
                completes: true,
            },
        );
        sink.emit(t(300), TraceEventKind::FirstToken { id });
        sink.emit(t(900), TraceEventKind::Finished { id });
        sink.into_journal().expect("enabled sink yields a journal")
    }

    #[test]
    fn jsonl_lines_validate_and_digest_is_stable() {
        let journal = sample_journal();
        let text = trace_jsonl(&journal);
        assert_eq!(validate_trace_jsonl(&text).unwrap(), 5);
        assert_eq!(trace_digest(&journal), trace_digest(&journal.clone()));
        // Canonical covers the same events here (no meta emitted), but
        // drops the fast-path-variant seq field.
        let canonical = canonical_trace_jsonl(&journal);
        assert_eq!(canonical.lines().count(), 5);
        assert!(!canonical.contains("\"seq\""));
    }

    #[test]
    fn validator_rejects_missing_payload_fields() {
        let bad = r#"{"t_us":0,"src":"replica-0","seq":0,"kind":"admitted","id":0}"#;
        let err = validate_trace_jsonl(bad).unwrap_err();
        assert!(err.contains("recompute"), "{err}");
        let unknown = r#"{"t_us":0,"src":"replica-0","seq":0,"kind":"nope"}"#;
        assert!(validate_trace_jsonl(unknown).is_err());
    }

    #[test]
    fn timeline_attribution_sums_to_ttft_and_latency() {
        let journal = sample_journal();
        let timeline = request_timeline(&journal, RequestId(0)).unwrap();
        assert_eq!(timeline.first_token_at, Some(SimTime::from_micros(300)));
        let attribution = timeline.ttft_attribution().unwrap();
        assert_eq!(attribution, vec![("queued", 100), ("prefill", 200)]);
        let total: u64 = timeline
            .attribution(timeline.finished_at.unwrap())
            .iter()
            .map(|(_, us)| us)
            .sum();
        assert_eq!(total, 900);
    }

    #[test]
    fn explain_renders_every_event_and_the_attribution() {
        let journal = sample_journal();
        let text = explain(&journal, RequestId(0)).unwrap();
        assert!(text.contains("decision timeline"));
        assert!(text.contains("first token"));
        assert!(text.contains("time to first token 0.000300s"));
        assert!(text.contains("total latency 0.000900s"));
        assert!(explain(&journal, RequestId(99)).is_none());
    }

    #[test]
    fn perfetto_output_is_valid_json_with_tracks() {
        let journal = sample_journal();
        let doc = crate::json::parse(&perfetto_json(&journal)).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        // Phase slices carry durations; metadata names the tracks.
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("X")));
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("M")));
    }
}
