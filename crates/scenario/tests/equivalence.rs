//! Spec/hand-built equivalence: the scenario layer is a *construction
//! path*, not a reimplementation.
//!
//! For every shipped scheduler × router × scale-policy combination, the
//! spec-built stack's `RunReport` digest must be byte-identical to the
//! hand-built one assembled exactly as `tests/golden.rs` (and every
//! pre-spec example) does it: same constructors, same defaults, same
//! seeded trace. A digest mismatch means `ScenarioSpec::build` drifted
//! from the hand-written construction path — the one bug class a
//! declarative layer must never have.

use tokenflow_cluster::{
    run_autoscaled, run_cluster_with, BacklogAwareRouter, Execution, LeastLoadedRouter,
    RateAwareRouter, RoundRobinRouter, Router,
};
use tokenflow_control::{
    ControlConfig, PredictivePolicy, ReactivePolicy, ScalePolicy, ScriptedPolicy,
};
use tokenflow_core::{run_simulation_boxed, EngineConfig};
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_scenario::{
    ControlSpec, ExecutionSpec, RateDistSpec, RouterSpec, ScalePolicySpec, ScenarioSpec,
    SchedulerSpec, TokenFlowSpec, TopologySpec, WorkloadSpec,
};
use tokenflow_sched::{
    AndesScheduler, ChunkedPrefillScheduler, FcfsScheduler, Scheduler, TokenFlowScheduler,
};
use tokenflow_sim::{SimDuration, SimTime};
use tokenflow_workload::{diurnal_flash_crowd, RateDist, Workload};

/// The shared small seeded trace: bursty enough to exercise preemption
/// and scaling, small enough that the 48-combination grid stays cheap.
fn trace() -> Workload {
    diurnal_flash_crowd(
        1.0,
        SimDuration::from_secs(40),
        10,
        SimTime::from_secs(10),
        RateDist::Uniform { lo: 8.0, hi: 24.0 },
        7,
    )
}

/// The equivalent workload spec.
fn workload_spec() -> WorkloadSpec {
    WorkloadSpec::DiurnalFlashCrowd {
        peak_rate: 1.0,
        duration_secs: 40.0,
        crowd_size: 10,
        crowd_at_secs: 10.0,
        rate: RateDistSpec::Uniform { lo: 8.0, hi: 24.0 },
        seed: 7,
    }
}

fn config() -> EngineConfig {
    EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090()).with_max_batch(8)
}

fn base_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::default();
    spec.engine.max_batch = 8;
    spec.workload = workload_spec();
    spec
}

const SCHEDULERS: [&str; 4] = ["fcfs", "chunked", "andes", "tokenflow"];
const ROUTERS: [&str; 4] = ["round-robin", "least-loaded", "backlog-aware", "rate-aware"];
const POLICIES: [&str; 3] = ["reactive", "predictive-ewma", "scripted"];

fn hand_scheduler(which: &str) -> Box<dyn Scheduler> {
    match which {
        "fcfs" => Box::new(FcfsScheduler::new()),
        "chunked" => Box::new(ChunkedPrefillScheduler::new()),
        "andes" => Box::new(AndesScheduler::new()),
        "tokenflow" => Box::new(TokenFlowScheduler::new()),
        other => panic!("unknown scheduler {other}"),
    }
}

fn spec_scheduler(which: &str) -> SchedulerSpec {
    match which {
        "fcfs" => SchedulerSpec::Fcfs { headroom: None },
        "chunked" => SchedulerSpec::Chunked { chunk: 512 },
        "andes" => SchedulerSpec::Andes { interval_ms: 500 },
        "tokenflow" => SchedulerSpec::TokenFlow(TokenFlowSpec::default()),
        other => panic!("unknown scheduler {other}"),
    }
}

fn hand_router(which: &str) -> Box<dyn Router> {
    match which {
        "round-robin" => Box::new(RoundRobinRouter::new()),
        "least-loaded" => Box::new(LeastLoadedRouter::new()),
        "backlog-aware" => Box::new(BacklogAwareRouter::new()),
        "rate-aware" => Box::new(RateAwareRouter::new()),
        other => panic!("unknown router {other}"),
    }
}

fn spec_router(which: &str) -> RouterSpec {
    match which {
        "round-robin" => RouterSpec::RoundRobin,
        "least-loaded" => RouterSpec::LeastLoaded,
        "backlog-aware" => RouterSpec::BacklogAware,
        "rate-aware" => RouterSpec::RateAware,
        other => panic!("unknown router {other}"),
    }
}

fn hand_policy(which: &str) -> Box<dyn ScalePolicy> {
    match which {
        "reactive" => Box::new(ReactivePolicy::new()),
        "predictive-ewma" => Box::new(PredictivePolicy::with_tau(20.0)),
        "scripted" => Box::new(ScriptedPolicy::new(vec![
            (SimTime::ZERO, 1),
            (SimTime::from_secs(10), 3),
            (SimTime::from_secs(30), 1),
        ])),
        other => panic!("unknown policy {other}"),
    }
}

fn spec_policy(which: &str) -> ScalePolicySpec {
    match which {
        "reactive" => ScalePolicySpec::default(),
        "predictive-ewma" => ScalePolicySpec::PredictiveEwma {
            tau_secs: 20.0,
            target_utilization: 0.60,
            backlog_per_replica: 1_024,
            kv_watermark: 0.50,
        },
        "scripted" => ScalePolicySpec::Scripted {
            steps: vec![(0.0, 1), (10.0, 3), (30.0, 1)],
        },
        other => panic!("unknown policy {other}"),
    }
}

fn hand_control() -> ControlConfig {
    ControlConfig::for_engine(&config())
        .with_gamma(300.0)
        .with_min_replicas(1)
        .with_max_replicas(4)
        .with_boot_delay(SimDuration::from_secs(2))
        .with_cooldown(SimDuration::ZERO)
}

fn spec_control() -> ControlSpec {
    ControlSpec {
        min_replicas: 1,
        max_replicas: 4,
        boot_delay_secs: 2.0,
        cooldown_secs: 0.0,
        gamma: Some(300.0),
        control_tick_secs: None,
    }
}

#[test]
fn single_engine_spec_equals_hand_built_per_scheduler() {
    let w = trace();
    for which in SCHEDULERS {
        let hand = run_simulation_boxed(config(), hand_scheduler(which), &w);
        let spec = ScenarioSpec {
            scheduler: spec_scheduler(which),
            ..base_spec()
        };
        let built = spec.build().expect("buildable").run();
        assert_eq!(
            built.digest(),
            hand.report.digest(),
            "{which}: spec-built single engine diverged from hand-built\n\
             spec: {}\nhand: {}",
            built.report.canonical_json(),
            hand.report.canonical_json()
        );
        assert!(built.complete && hand.complete, "{which}: incomplete");
    }
}

#[test]
fn cluster_spec_equals_hand_built_per_scheduler_and_router() {
    let w = trace();
    for sched in SCHEDULERS {
        for router in ROUTERS {
            let hand = run_cluster_with(
                config(),
                3,
                hand_router(router),
                move || hand_scheduler(sched),
                &w,
                Execution::Sequential,
            );
            let spec = ScenarioSpec {
                scheduler: spec_scheduler(sched),
                topology: TopologySpec::Cluster {
                    replicas: 3,
                    router: spec_router(router),
                    execution: ExecutionSpec::Sequential,
                },
                ..base_spec()
            };
            let built = spec.build().expect("buildable").run();
            assert_eq!(
                built.digest(),
                hand.merged.digest(),
                "{sched} × {router}: spec-built cluster diverged from hand-built"
            );
        }
    }
}

/// The full grid: every shipped scheduler × router × scale-policy
/// combination, spec-built vs hand-built, digest-identical.
#[test]
fn autoscaled_spec_equals_hand_built_per_scheduler_router_policy() {
    let w = trace();
    for sched in SCHEDULERS {
        for router in ROUTERS {
            for policy in POLICIES {
                let hand = run_autoscaled(
                    config(),
                    2,
                    hand_router(router),
                    move || hand_scheduler(sched),
                    hand_policy(policy),
                    hand_control(),
                    &w,
                    Execution::Sequential,
                );
                let spec = ScenarioSpec {
                    scheduler: spec_scheduler(sched),
                    topology: TopologySpec::Autoscaled {
                        bootstrap: 2,
                        router: spec_router(router),
                        policy: spec_policy(policy),
                        control: spec_control(),
                        execution: ExecutionSpec::Sequential,
                    },
                    ..base_spec()
                };
                let built = spec.build().expect("buildable").run();
                assert_eq!(
                    built.digest(),
                    hand.merged.digest(),
                    "{sched} × {router} × {policy}: spec-built fleet diverged from hand-built"
                );
            }
        }
    }
}

/// Execution strategy is spec-exposed but behavior-invariant: the
/// parallel spec must match the sequential hand-built stack too.
#[test]
fn parallel_execution_spec_matches_sequential_hand_built() {
    let w = trace();
    let hand = run_cluster_with(
        config(),
        3,
        hand_router("least-loaded"),
        || hand_scheduler("tokenflow"),
        &w,
        Execution::Sequential,
    );
    let spec = ScenarioSpec {
        topology: TopologySpec::Cluster {
            replicas: 3,
            router: RouterSpec::LeastLoaded,
            execution: ExecutionSpec::Parallel(4),
        },
        ..base_spec()
    };
    let built = spec.build().expect("buildable").run();
    // Executor-mechanics runtime counters (pool stats, barrier batching)
    // are the one intentionally executor-visible report surface; the
    // digests must match once those are normalized away.
    let mut built_report = built.report.clone();
    built_report.runtime = built_report.runtime.invariant();
    let mut hand_report = hand.merged.clone();
    hand_report.runtime = hand_report.runtime.invariant();
    assert_eq!(built_report.digest(), hand_report.digest());
}
