//! Serde round-trip properties for every spec variant.
//!
//! The canonical contract: for any spec value, `parse(emit(spec)) ==
//! spec`, and emission is a fixed point (`emit(parse(text)) == text` for
//! emitted `text`) — so specs survive arbitrarily many JSON hops without
//! drift. Unknown names must come back as typed errors listing the valid
//! alternatives, never as panics.

use proptest::prelude::*;
use tokenflow_scenario::{
    codec, json, ArrivalSpecSpec, ControlSpec, CrashSpec, EngineSpec, ExecutionSpec, FaultSpec,
    InlineRequest, LengthDistSpec, RateDistSpec, RetrySpec, RouterSpec, ScalePolicySpec,
    ScenarioSpec, SchedulerSpec, SpecError, TokenFlowSpec, TopologySpec, WindowFaultSpec,
    WorkloadSpec, PRESET_NAMES, ROUTER_NAMES, SCALE_POLICY_NAMES, SCHEDULER_NAMES,
};

/// Strings exercising the emitter's escaping: spaces, quotes, newlines,
/// non-ASCII, path separators.
fn arb_name() -> impl Strategy<Value = String> {
    const CANDIDATES: [&str; 8] = [
        "plain",
        "with space",
        "quo\"ted",
        "back\\slash",
        "line\nbreak",
        "tabbed\there",
        "ünïcode-π",
        "rel/path_01.csv",
    ];
    (0usize..CANDIDATES.len()).prop_map(|i| CANDIDATES[i].to_string())
}

fn arb_scheduler() -> impl Strategy<Value = SchedulerSpec> {
    prop_oneof![
        (0u64..2, 1u64..4096).prop_map(|(tag, h)| SchedulerSpec::Fcfs {
            headroom: (tag == 1).then_some(h),
        }),
        (1u64..4096).prop_map(|chunk| SchedulerSpec::Chunked { chunk }),
        (1u64..5_000).prop_map(|interval_ms| SchedulerSpec::Andes { interval_ms }),
        (
            (1u64..5_000, 1.0f64..20.0, 0.0f64..1.0, 0.0f64..4.0),
            (0.0f64..10.0, 0u64..512, 0.5f64..1.0),
            (0u64..1024, 0.0f64..4.0, 0.1f64..1.0, 1u64..8192, 0u64..64),
        )
            .prop_map(
                |(
                    (schedule_interval_ms, buffer_conservativeness, ws_adjust_rate, gamma),
                    (critical_buffer_secs, headroom_tokens, util_target),
                    (
                        max_transitions,
                        io_backpressure,
                        capacity_safety,
                        prefill_chunk,
                        swap_candidates,
                    ),
                )| SchedulerSpec::TokenFlow(TokenFlowSpec {
                    schedule_interval_ms,
                    buffer_conservativeness,
                    ws_adjust_rate,
                    gamma,
                    critical_buffer_secs,
                    headroom_tokens,
                    util_target,
                    max_transitions,
                    io_backpressure,
                    capacity_safety,
                    prefill_chunk,
                    swap_candidates,
                })
            ),
    ]
}

fn arb_router() -> impl Strategy<Value = RouterSpec> {
    prop_oneof![
        Just(RouterSpec::RoundRobin),
        Just(RouterSpec::LeastLoaded),
        Just(RouterSpec::BacklogAware),
        Just(RouterSpec::RateAware),
    ]
}

fn arb_policy() -> impl Strategy<Value = ScalePolicySpec> {
    prop_oneof![
        (0.1f64..1.0, 1u64..65_536, 0.1f64..1.0).prop_map(
            |(target_utilization, backlog_per_replica, kv_watermark)| {
                ScalePolicySpec::Reactive {
                    target_utilization,
                    backlog_per_replica,
                    kv_watermark,
                }
            }
        ),
        (1.0f64..300.0, 0.1f64..1.0, 1u64..65_536, 0.1f64..1.0).prop_map(
            |(tau_secs, target_utilization, backlog_per_replica, kv_watermark)| {
                ScalePolicySpec::PredictiveEwma {
                    tau_secs,
                    target_utilization,
                    backlog_per_replica,
                    kv_watermark,
                }
            }
        ),
        collection::vec((0.0f64..600.0, 1u64..16), 0usize..6)
            .prop_map(|steps| ScalePolicySpec::Scripted { steps }),
    ]
}

fn arb_control() -> impl Strategy<Value = ControlSpec> {
    (
        (1u64..4, 4u64..64, 0.0f64..30.0, 0.0f64..30.0),
        (0u64..2, 1.0f64..2_000.0),
        (0u64..2, 0.001f64..60.0),
    )
        .prop_map(
            |((min, max, boot, cooldown), (has_gamma, gamma), (has_tick, tick))| ControlSpec {
                min_replicas: min,
                max_replicas: max,
                boot_delay_secs: boot,
                cooldown_secs: cooldown,
                gamma: (has_gamma == 1).then_some(gamma),
                control_tick_secs: (has_tick == 1).then_some(tick),
            },
        )
}

fn arb_execution() -> impl Strategy<Value = ExecutionSpec> {
    prop_oneof![
        Just(ExecutionSpec::Sequential),
        Just(ExecutionSpec::Auto),
        (1u64..64).prop_map(ExecutionSpec::Parallel),
    ]
}

fn arb_arrivals() -> impl Strategy<Value = ArrivalSpecSpec> {
    prop_oneof![
        (1u64..500, 0.0f64..600.0)
            .prop_map(|(size, at_secs)| ArrivalSpecSpec::Burst { size, at_secs }),
        (0.1f64..50.0, 1.0f64..600.0).prop_map(|(rate, duration_secs)| {
            ArrivalSpecSpec::Poisson {
                rate,
                duration_secs,
            }
        }),
        (
            0.1f64..10.0,
            1.0f64..100.0,
            1.0f64..60.0,
            1.0f64..30.0,
            1.0f64..600.0
        )
            .prop_map(
                |(base_rate, burst_rate, mean_calm_secs, mean_burst_secs, duration_secs)| {
                    ArrivalSpecSpec::Mmpp {
                        base_rate,
                        burst_rate,
                        mean_calm_secs,
                        mean_burst_secs,
                        duration_secs,
                    }
                }
            ),
        (0.01f64..5.0, 1.0f64..50.0, 10.0f64..600.0, 10.0f64..600.0).prop_map(
            |(trough_rate, peak_rate, period_secs, duration_secs)| ArrivalSpecSpec::Diurnal {
                trough_rate,
                peak_rate,
                period_secs,
                duration_secs,
            }
        ),
    ]
}

fn arb_length_dist() -> impl Strategy<Value = LengthDistSpec> {
    prop_oneof![
        (1u64..8192).prop_map(LengthDistSpec::Fixed),
        (16.0f64..4096.0, 1.0f64..1024.0, 1u64..64, 4096u64..16_384).prop_map(
            |(mean, std, min, max)| LengthDistSpec::Normal {
                mean,
                std,
                min,
                max
            }
        ),
        (16.0f64..4096.0, 1.0f64..1024.0, 1u64..64, 4096u64..16_384).prop_map(
            |(mean, std, min, max)| LengthDistSpec::LogNormal {
                mean,
                std,
                min,
                max
            }
        ),
        (1u64..512, 512u64..4096).prop_map(|(lo, hi)| LengthDistSpec::Uniform { lo, hi }),
        Just(LengthDistSpec::SharegptPrompt),
        Just(LengthDistSpec::SharegptOutput),
    ]
}

fn arb_rate_dist() -> impl Strategy<Value = RateDistSpec> {
    prop_oneof![
        (1.0f64..50.0).prop_map(RateDistSpec::Fixed),
        (1.0f64..10.0, 10.0f64..50.0).prop_map(|(lo, hi)| RateDistSpec::Uniform { lo, hi }),
        collection::vec((0.01f64..1.0, 1.0f64..50.0), 1usize..5).prop_map(RateDistSpec::Mix),
    ]
}

fn arb_workload() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        (0usize..PRESET_NAMES.len(), 0u64..1_000).prop_map(|(i, seed)| WorkloadSpec::Preset {
            name: PRESET_NAMES[i].to_string(),
            seed,
        }),
        (
            (0.1f64..10.0, 10.0f64..600.0, 1u64..200, 0.0f64..300.0),
            arb_rate_dist(),
            0u64..1_000
        )
            .prop_map(
                |((peak_rate, duration_secs, crowd_size, crowd_at_secs), rate, seed)| {
                    WorkloadSpec::DiurnalFlashCrowd {
                        peak_rate,
                        duration_secs,
                        crowd_size,
                        crowd_at_secs,
                        rate,
                        seed,
                    }
                }
            ),
        (
            arb_arrivals(),
            arb_length_dist(),
            arb_length_dist(),
            arb_rate_dist(),
            0u64..1_000
        )
            .prop_map(
                |(arrivals, prompt, output, rate, seed)| WorkloadSpec::Synthetic {
                    arrivals,
                    prompt,
                    output,
                    rate,
                    seed,
                }
            ),
        arb_name().prop_map(|path| WorkloadSpec::TraceCsv { path }),
        collection::vec(
            (0.0f64..100.0, 1u64..4096, 1u64..4096, 1.0f64..50.0).prop_map(
                |(arrival_secs, prompt_tokens, output_tokens, rate)| InlineRequest {
                    arrival_secs,
                    prompt_tokens,
                    output_tokens,
                    rate,
                }
            ),
            0usize..5
        )
        .prop_map(|requests| WorkloadSpec::Inline { requests }),
    ]
}

fn arb_engine() -> impl Strategy<Value = EngineSpec> {
    (
        1u64..512,
        (0u64..2, 0u64..2, 0u64..2),
        1_024u64..16_384,
        60.0f64..20_000.0,
    )
        .prop_map(
            |(max_batch, (offload, wt, overlap), max_prefill_tokens, deadline_secs)| EngineSpec {
                max_batch,
                mem_frac: 0.3 + (max_batch % 7) as f64 * 0.1,
                offload_enabled: offload == 1,
                write_through: wt == 1,
                load_evict_overlap: overlap == 1,
                max_prefill_tokens,
                deadline_secs,
                plan_horizon: (max_batch + offload) % 2 == 0,
            },
        )
}

fn arb_topology() -> impl Strategy<Value = TopologySpec> {
    prop_oneof![
        Just(TopologySpec::Single),
        (1u64..16, arb_router(), arb_execution()).prop_map(|(replicas, router, execution)| {
            TopologySpec::Cluster {
                replicas,
                router,
                execution,
            }
        }),
        (
            1u64..8,
            arb_router(),
            arb_policy(),
            arb_control(),
            arb_execution()
        )
            .prop_map(|(bootstrap, router, policy, control, execution)| {
                TopologySpec::Autoscaled {
                    bootstrap,
                    router,
                    policy,
                    control,
                    execution,
                }
            }),
    ]
}

fn arb_window_fault(bound: u64) -> impl Strategy<Value = WindowFaultSpec> {
    (0..bound, 0.0f64..300.0, 0.1f64..200.0, 0.05f64..1.0).prop_map(
        |(replica, from_secs, width, factor)| WindowFaultSpec {
            replica,
            from_secs,
            until_secs: from_secs + width,
            factor,
        },
    )
}

/// A fault schedule whose replica indices all lie inside `bound` — the
/// cross-field topology check would reject anything larger, so the
/// round-trip property generates only specs that parse back.
fn arb_fault(bound: u64) -> impl Strategy<Value = Option<FaultSpec>> {
    let full = (
        collection::vec(
            (0..bound, 0.0f64..600.0).prop_map(|(replica, at_secs)| CrashSpec { replica, at_secs }),
            0usize..3,
        ),
        collection::vec(arb_window_fault(bound), 0usize..3),
        collection::vec(arb_window_fault(bound), 0usize..3),
        collection::vec(0..bound, 0usize..3),
        (1u64..8, 1u64..5_000, 1.0f64..4.0, 1u64..60_000),
        (0u64..2, 0.5f64..8.0),
    )
        .prop_map(
            |(crashes, stragglers, kv_link, boot_failures, retry, (has_shed, shed))| {
                Some(FaultSpec {
                    crashes,
                    stragglers,
                    kv_link,
                    boot_failures,
                    retry: RetrySpec {
                        max_attempts: retry.0,
                        base_backoff_ms: retry.1,
                        multiplier: retry.2,
                        max_backoff_ms: retry.3,
                    },
                    shed_utilization: (has_shed == 1).then_some(shed),
                })
            },
        );
    prop_oneof![Just(None), full]
}

fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (
        (arb_name(), 0usize..4, 0usize..4),
        arb_engine(),
        arb_scheduler(),
        arb_workload(),
        arb_topology(),
    )
        .prop_flat_map(|(names, engine, scheduler, workload, topology)| {
            // Fault replica indices must respect the topology's bound —
            // single topologies take no fault at all.
            let fault = match &topology {
                TopologySpec::Single => Just(None).boxed(),
                TopologySpec::Cluster { replicas, .. } => arb_fault(*replicas).boxed(),
                TopologySpec::Autoscaled { control, .. } => arb_fault(control.max_replicas).boxed(),
            };
            (
                Just(names),
                Just(engine),
                Just(scheduler),
                Just(workload),
                Just(topology),
                fault,
            )
        })
        .prop_map(
            |((name, model_i, hw_i), engine, scheduler, workload, topology, fault)| ScenarioSpec {
                name,
                model: tokenflow_scenario::MODEL_NAMES[model_i].to_string(),
                hardware: tokenflow_scenario::HARDWARE_NAMES[hw_i].to_string(),
                engine,
                scheduler,
                workload,
                topology,
                fault,
            },
        )
}

proptest! {
    #[test]
    fn scenario_json_roundtrip_is_identity(spec in arb_scenario()) {
        let text = codec::scenario_to_json(&spec).emit();
        let parsed = codec::parse_scenario(&text)
            .map_err(|e| format!("emitted spec failed to parse: {e}\n{text}"))?;
        prop_assert_eq!(&parsed, &spec);
        // Emission is a fixed point: JSON → spec → JSON is identity on
        // canonical documents.
        prop_assert_eq!(codec::scenario_to_json(&parsed).emit(), text);
        // The pretty form parses back to the same spec too.
        let pretty = codec::scenario_to_json(&spec).emit_pretty();
        let reparsed = codec::parse_scenario(&pretty)
            .map_err(|e| format!("pretty form failed to parse: {e}"))?;
        prop_assert_eq!(reparsed, spec);
    }

    #[test]
    fn scheduler_json_roundtrip_is_identity(spec in arb_scheduler()) {
        let j = codec::scheduler_to_json(&spec);
        let parsed = codec::scheduler_from_json(&j, "s")
            .map_err(|e| format!("{e}"))?;
        prop_assert_eq!(parsed, spec);
    }

    #[test]
    fn router_json_roundtrip_is_identity(spec in arb_router()) {
        let j = codec::router_to_json(&spec);
        let parsed = codec::router_from_json(&j, "r").map_err(|e| format!("{e}"))?;
        prop_assert_eq!(parsed, spec);
    }

    #[test]
    fn policy_json_roundtrip_is_identity(spec in arb_policy()) {
        let j = codec::policy_to_json(&spec);
        let parsed = codec::policy_from_json(&j, "p").map_err(|e| format!("{e}"))?;
        prop_assert_eq!(parsed, spec);
    }

    #[test]
    fn parsing_never_panics_on_mutated_documents(spec in arb_scenario(), cut in 0usize..400) {
        // Truncating an emitted document at any byte boundary must yield
        // a typed error (or still parse, for trailing-whitespace cuts) —
        // never a panic.
        let text = codec::scenario_to_json(&spec).emit();
        let cut = cut.min(text.len());
        let truncated: String = text.chars().take(cut).collect();
        let _ = codec::parse_scenario(&truncated);
    }
}

#[test]
fn unknown_names_are_typed_errors_listing_valid_ones() {
    let cases: [(&str, &[&str]); 4] = [
        (r#"{"scheduler": "mlfq"}"#, SCHEDULER_NAMES),
        (
            r#"{"topology": {"type": "cluster", "router": "random"}}"#,
            ROUTER_NAMES,
        ),
        (
            r#"{"topology": {"type": "autoscaled", "policy": "oracle"}}"#,
            SCALE_POLICY_NAMES,
        ),
        (
            r#"{"workload": {"type": "preset", "name": "tpu-pod"}}"#,
            PRESET_NAMES,
        ),
    ];
    for (doc, expected_valid) in cases {
        match codec::parse_scenario(doc) {
            Err(SpecError::UnknownName { valid, .. }) => {
                assert_eq!(valid, expected_valid.to_vec(), "for {doc}");
            }
            other => panic!("{doc}: expected UnknownName, got {other:?}"),
        }
    }
}

#[test]
fn execution_grammar_accepts_every_documented_form() {
    let parse = |doc: &str| {
        codec::execution_from_json(&json::parse(doc).unwrap(), "topology.execution").unwrap()
    };
    // Bare strings.
    assert_eq!(parse(r#""sequential""#), ExecutionSpec::Sequential);
    assert_eq!(parse(r#""auto""#), ExecutionSpec::Auto);
    // The canonical tagged object.
    assert_eq!(
        parse(r#"{"type": "parallel", "threads": 8}"#),
        ExecutionSpec::Parallel(8)
    );
    // The nested single-key shorthand, with and without threads.
    assert_eq!(
        parse(r#"{"parallel": {"threads": 8}}"#),
        ExecutionSpec::Parallel(8)
    );
    assert_eq!(parse(r#"{"parallel": {}}"#), ExecutionSpec::Parallel(4));
    // Every accepted form survives the canonical round trip.
    for spec in [
        ExecutionSpec::Sequential,
        ExecutionSpec::Auto,
        ExecutionSpec::Parallel(8),
    ] {
        let emitted = codec::scenario_to_json(&ScenarioSpec {
            topology: TopologySpec::Cluster {
                replicas: 2,
                router: RouterSpec::RoundRobin,
                execution: spec,
            },
            ..ScenarioSpec::default()
        })
        .emit();
        let reparsed = codec::parse_scenario(&emitted).unwrap();
        match reparsed.topology {
            TopologySpec::Cluster { execution, .. } => assert_eq!(execution, spec),
            other => panic!("expected cluster topology, got {other:?}"),
        }
    }
}

#[test]
fn execution_grammar_rejects_bad_forms_with_typed_errors() {
    let parse = |doc: &str| codec::execution_from_json(&json::parse(doc).unwrap(), "e");
    // Unknown strategy names list the valid alternatives, in both the
    // tagged and the nested form.
    for doc in [r#""threaded""#, r#"{"threaded": {"threads": 2}}"#] {
        match parse(doc) {
            Err(SpecError::UnknownName { got, valid, .. }) => {
                assert_eq!(got, "threaded", "for {doc}");
                assert_eq!(valid, vec!["sequential", "parallel", "auto"], "for {doc}");
            }
            other => panic!("{doc}: expected UnknownName, got {other:?}"),
        }
    }
    // Zero threads is a parse-time error in both object forms.
    for doc in [
        r#"{"type": "parallel", "threads": 0}"#,
        r#"{"parallel": {"threads": 0}}"#,
    ] {
        assert!(
            matches!(parse(doc), Err(SpecError::Invalid { .. })),
            "{doc} must be rejected"
        );
    }
    // Stray fields inside the nested body are typo-checked.
    assert!(matches!(
        parse(r#"{"parallel": {"treads": 2}}"#),
        Err(SpecError::UnknownField { .. })
    ));
    // A multi-key untagged object is not a strategy.
    assert!(matches!(
        parse(r#"{"parallel": {}, "sequential": {}}"#),
        Err(SpecError::Invalid { .. })
    ));
}

#[test]
fn json_error_reports_position_not_panic() {
    let err = codec::parse_scenario("{\"name\": \"x\",\n  broken\n}").unwrap_err();
    match err {
        SpecError::Json(e) => assert_eq!(e.line, 2, "{e}"),
        other => panic!("expected Json error, got {other:?}"),
    }
}

#[test]
fn committed_grammar_examples_parse() {
    // The exact shorthand forms the docs promise: bare-string scheduler,
    // router, execution, topology, and length-dist names.
    let spec = codec::parse_scenario(
        r#"{
            "scheduler": "fcfs",
            "workload": {"type": "synthetic",
                         "arrivals": {"type": "poisson", "rate": 1.0, "duration_secs": 10},
                         "prompt": "sharegpt-prompt",
                         "output": "sharegpt-output"},
            "topology": {"type": "cluster", "replicas": 2, "router": "rate-aware",
                          "execution": "sequential"}
        }"#,
    )
    .unwrap();
    assert_eq!(spec.scheduler, SchedulerSpec::Fcfs { headroom: None });
    assert!(matches!(
        spec.topology,
        TopologySpec::Cluster { replicas: 2, .. }
    ));
    // Shorthand and canonical forms parse to the same spec.
    let canonical = codec::scenario_to_json(&spec).emit();
    assert_eq!(codec::parse_scenario(&canonical).unwrap(), spec);
}

#[test]
fn emitted_pretty_files_are_stable_fixed_points() {
    // What `scenarios/` files rely on: pretty emission parses back and
    // re-emits identically.
    let spec = ScenarioSpec::default();
    let pretty = codec::scenario_to_json(&spec).emit_pretty();
    let reparsed = codec::parse_scenario(&pretty).unwrap();
    assert_eq!(codec::scenario_to_json(&reparsed).emit_pretty(), pretty);
}

// Silence an unused-import lint when the json helpers aren't referenced
// directly: the module is exercised through codec.
#[allow(unused_imports)]
use json as _json;
