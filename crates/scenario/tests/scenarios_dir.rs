//! The committed `scenarios/` directory is part of the tested surface:
//! every file must parse, build, and (for the flagship
//! `flash_crowd_autoscale.json`) reproduce the hand-built stack
//! byte-for-byte.

use std::path::{Path, PathBuf};

use tokenflow_cluster::{run_autoscaled, Execution, LeastLoadedRouter};
use tokenflow_control::{ControlConfig, ReactivePolicy};
use tokenflow_core::EngineConfig;
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_scenario::{is_sweep, json, scenario_from_json, sweep_from_json};
use tokenflow_sched::TokenFlowScheduler;
use tokenflow_sim::{SimDuration, SimTime};
use tokenflow_workload::{diurnal_flash_crowd, RateDist};

fn scenarios_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn committed_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios/ directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_committed_scenario_parses_and_builds() {
    let files = committed_files();
    assert!(
        files.len() >= 6,
        "scenarios/ should stay a diverse gallery, found {}",
        files.len()
    );
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable");
        let doc = json::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if is_sweep(&doc) {
            let sweep = sweep_from_json(&doc).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let cells = sweep
                .expand()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            assert!(!cells.is_empty(), "{}: empty sweep", path.display());
            for (label, mut spec) in cells {
                spec.rebase_paths(&scenarios_dir());
                spec.build()
                    .unwrap_or_else(|e| panic!("{}[{label}]: {e}", path.display()));
            }
        } else {
            let mut spec = scenario_from_json(&doc, "scenario")
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            spec.rebase_paths(&scenarios_dir());
            spec.build()
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        }
    }
}

/// The committed sweep file must stay a ≥ 6-cell policy × workload grid
/// (the acceptance bar for `tokenflow sweep`).
#[test]
fn committed_sweep_is_a_policy_by_workload_grid() {
    let text = std::fs::read_to_string(scenarios_dir().join("sweep_policy_workload.json"))
        .expect("sweep file committed");
    let sweep = sweep_from_json(&json::parse(&text).unwrap()).unwrap();
    assert!(
        sweep.cells() >= 6,
        "sweep must stay a ≥6-cell grid, found {}",
        sweep.cells()
    );
    assert_eq!(sweep.axes.len(), 2, "scheduler × workload axes");
}

/// Acceptance: the committed fault-injection scenario — a crash plus a
/// straggler window in the middle of the flash crowd — recovers every
/// lost request (no abandons, no sheds) and reproduces its pinned report
/// digest byte-for-byte. A drift here means fault injection, recovery,
/// or the scenario codec changed observable behavior.
#[test]
fn faulty_flash_crowd_recovers_fully_and_digest_is_pinned() {
    let text = std::fs::read_to_string(scenarios_dir().join("faulty_flash_crowd.json"))
        .expect("fault scenario committed");
    let spec = scenario_from_json(&json::parse(&text).unwrap(), "scenario").unwrap();
    let out = spec.build().expect("buildable").run();
    assert!(out.complete);
    let faults = out
        .report
        .faults
        .as_ref()
        .expect("faulted run reports stats");
    assert_eq!(faults.crashes, 1);
    assert!(faults.lost_events > 0, "the crash must strand live work");
    assert_eq!(faults.recovered, faults.lost_events, "full recovery");
    assert_eq!(faults.abandoned, 0);
    assert_eq!(faults.shed, 0);
    assert_eq!(out.report.completed, out.report.submitted);
    const PINNED: u64 = 0x29b8_47a6_773a_9837;
    assert_eq!(
        out.digest(),
        PINNED,
        "fault scenario digest drifted: {:016x}\n{}",
        out.digest(),
        out.report.canonical_json()
    );
}

/// Acceptance: `tokenflow run scenarios/flash_crowd_autoscale.json`
/// produces a `RunReport` whose digest matches the equivalent hand-built
/// stack — the exact construction `tests/golden.rs` pins.
#[test]
fn flash_crowd_autoscale_file_matches_hand_built_stack() {
    let text = std::fs::read_to_string(scenarios_dir().join("flash_crowd_autoscale.json"))
        .expect("flagship scenario committed");
    let spec = scenario_from_json(&json::parse(&text).unwrap(), "scenario").unwrap();
    let from_file = spec.build().expect("buildable").run();

    // The hand-built equivalent, spelled out the pre-spec way.
    let config =
        EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090()).with_max_batch(16);
    let workload = diurnal_flash_crowd(
        1.5,
        SimDuration::from_secs(120),
        30,
        SimTime::from_secs(30),
        RateDist::Uniform { lo: 8.0, hi: 24.0 },
        42,
    );
    let control = ControlConfig::for_engine(&config)
        .with_gamma(300.0)
        .with_min_replicas(1)
        .with_max_replicas(6)
        .with_boot_delay(SimDuration::from_secs(2))
        .with_cooldown(SimDuration::ZERO);
    let hand = run_autoscaled(
        config,
        2,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        ReactivePolicy::new(),
        control,
        &workload,
        Execution::Sequential,
    );

    assert!(from_file.complete && hand.complete);
    assert_eq!(
        from_file.digest(),
        hand.merged.digest(),
        "spec file diverged from the hand-built stack\nfile: {}\nhand: {}",
        from_file.report.canonical_json(),
        hand.merged.canonical_json()
    );
}
