//! Property tests: the KV manager's block accounting survives arbitrary
//! operation sequences without leaking or double-freeing.

use proptest::prelude::*;
use tokenflow_kv::{KvConfig, KvManager, Residency};
use tokenflow_sim::{RequestId, SimDuration, SimTime};

#[derive(Debug, Clone)]
enum Op {
    Prefill { req: u8, tokens: u16 },
    Append { req: u8 },
    Evict { req: u8 },
    Load { req: u8 },
    Drop { req: u8 },
    Pump,
    Advance { ms: u16 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..6, 1u16..512).prop_map(|(req, tokens)| Op::Prefill { req, tokens }),
        (0u8..6).prop_map(|req| Op::Append { req }),
        (0u8..6).prop_map(|req| Op::Evict { req }),
        (0u8..6).prop_map(|req| Op::Load { req }),
        (0u8..6).prop_map(|req| Op::Drop { req }),
        Just(Op::Pump),
        (1u16..100).prop_map(|ms| Op::Advance { ms }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn block_accounting_is_conserved(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut cfg = KvConfig::test_config();
        cfg.gpu_blocks = 256; // 4096 tokens
        cfg.cpu_blocks = 2_048;
        let mut kv = KvManager::new(cfg);
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Prefill { req, tokens } => {
                    let _ = kv.on_prefill(RequestId(req as u64), tokens as u64, now);
                }
                Op::Append { req } => {
                    let _ = kv.append_token(RequestId(req as u64), 1.0);
                }
                Op::Evict { req } => {
                    let _ = kv.begin_evict(RequestId(req as u64), now);
                }
                Op::Load { req } => {
                    let _ = kv.begin_load(RequestId(req as u64), now);
                }
                Op::Drop { req } => {
                    kv.drop_kv(RequestId(req as u64));
                }
                Op::Pump => {
                    kv.pump_writes(now, SimDuration::from_millis(5));
                }
                Op::Advance { ms } => {
                    now += SimDuration::from_millis(ms as u64);
                    kv.advance_to(now);
                }
            }
            prop_assert!(kv.check_conservation(), "pool usage must equal per-request holds");
        }
        // Draining all transfers and dropping everything frees both pools.
        now += SimDuration::from_secs(100);
        kv.advance_to(now);
        for req in 0..6u64 {
            kv.drop_kv(RequestId(req));
        }
        now += SimDuration::from_secs(100);
        kv.advance_to(now);
        prop_assert_eq!(kv.gpu_pool().used_blocks(), 0);
        prop_assert_eq!(kv.cpu_pool().used_blocks(), 0);
    }

    #[test]
    fn evict_load_roundtrip_preserves_context(tokens in 1u64..2_000) {
        let mut cfg = KvConfig::test_config();
        cfg.gpu_blocks = 256;
        cfg.cpu_blocks = 4_096;
        let mut kv = KvManager::new(cfg);
        let r = RequestId(0);
        kv.on_prefill(r, tokens, SimTime::ZERO).unwrap();
        kv.begin_evict(r, SimTime::ZERO).unwrap();
        let mut now = SimTime::ZERO;
        while kv.residency(r) != Residency::Cpu {
            now += SimDuration::from_millis(1);
            kv.advance_to(now);
            prop_assert!(now < SimTime::from_secs(60), "eviction must finish");
        }
        kv.begin_load(r, now).unwrap();
        while kv.residency(r) != Residency::Gpu {
            now += SimDuration::from_millis(1);
            kv.advance_to(now);
            prop_assert!(now < SimTime::from_secs(120), "load must finish");
        }
        prop_assert_eq!(kv.context_tokens(r), tokens);
        prop_assert_eq!(kv.dirty_tokens(r), 0, "roundtrip leaves everything synced");
    }
}
