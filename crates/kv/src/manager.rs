//! The hierarchical KV-cache manager (paper §5).
//!
//! GPU memory is treated as a high-speed cache over larger CPU memory. The
//! manager implements the paper's proactive design:
//!
//! * **Write-through** (§5.1): newly generated KV entries are queued for
//!   background D2H sync immediately, so eviction usually finds most of a
//!   request's cache already host-resident and completes near-instantly.
//!   Host copies are retained after resume, so only *incrementally* new
//!   tokens ever need flushing again.
//! * **Synchronous chunked writing** (§5.2): each engine iteration the
//!   manager pulls a byte budget matching the iteration's estimated compute
//!   time from the write queue, so sync I/O completes inside compute
//!   windows and never stalls the scheduler.
//! * **Load-evict overlap** (§5.3): resume loads (H2D) run concurrently
//!   with eviction flushes (D2H) on the independent duplex streams, and
//!   chunk-granular block recycling lets a load begin before its victim has
//!   fully drained. Disabling the flag serialises loads behind evictions
//!   (the ablation baseline).
//!
//! All block accounting is token-precise with eager over-free detection;
//! property tests assert global conservation across random operation
//! sequences.

use std::collections::VecDeque;

use tokenflow_sim::{RequestId, SimDuration, SimTime};

use crate::pcie::{Direction, PcieEngine, TransferCompletion, TransferTag};
use crate::pool::{tokens_to_blocks, BlockPool};
use crate::write_queue::{WriteChunk, WriteQueue};

/// Where a request's KV cache currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Residency {
    /// No KV exists (never prefilled, or discarded for recompute).
    None,
    /// Fully resident on the GPU (a host copy may also exist).
    Gpu,
    /// Preemption in progress: dirty tokens flushing to host.
    Evicting,
    /// Fully offloaded to host memory.
    Cpu,
    /// Resume in progress: tokens loading back to the GPU.
    Loading,
}

/// Completion events surfaced by [`KvManager::advance_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvEvent {
    /// A preemption finished: the request is now fully host-resident.
    EvictDone {
        /// The request whose eviction completed.
        req: RequestId,
        /// Completion time.
        at: SimTime,
    },
    /// A resume finished: the request is fully GPU-resident again.
    LoadDone {
        /// The request whose load completed.
        req: RequestId,
        /// Completion time.
        at: SimTime,
    },
}

/// Errors from KV operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// The GPU pool cannot hold the requested tokens.
    OutOfGpuMemory,
    /// The CPU pool cannot hold the requested tokens.
    OutOfCpuMemory,
    /// The operation is invalid in the request's current residency state.
    BadState(&'static str),
    /// Offloading is disabled (the w/o-offload ablation); callers must fall
    /// back to discard + recompute.
    OffloadDisabled,
}

/// How an eviction started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictStart {
    /// Everything was already synced: the request is host-resident now.
    Instant,
    /// Dirty tokens are flushing; an [`KvEvent::EvictDone`] will follow.
    InFlight,
}

/// Configuration of the KV hierarchy.
#[derive(Debug, Clone)]
pub struct KvConfig {
    /// Tokens per block (paged-attention page size).
    pub block_tokens: u32,
    /// GPU pool capacity in blocks.
    pub gpu_blocks: u64,
    /// CPU (host) pool capacity in blocks.
    pub cpu_blocks: u64,
    /// KV bytes per token (model-dependent).
    pub kv_bytes_per_token: u64,
    /// Transfer chunk granularity in tokens.
    pub chunk_tokens: u64,
    /// Enable write-through background sync (§5.1).
    pub write_through: bool,
    /// Order write-through flushes by buffer priority rather than FIFO
    /// (§5.2 "rearranged" strategy).
    pub priority_writes: bool,
    /// Allow offload at all; `false` reproduces the w/o-offload ablation
    /// (preemption must discard and recompute).
    pub offload_enabled: bool,
    /// Allow resume loads to overlap in-flight evictions (§5.3).
    pub load_evict_overlap: bool,
    /// Host link bandwidth per direction, bytes/second.
    pub pcie_bandwidth: f64,
    /// Host link per-transfer setup latency, microseconds.
    pub pcie_latency_us: u64,
}

impl KvConfig {
    /// A small configuration convenient for unit tests.
    pub fn test_config() -> Self {
        KvConfig {
            block_tokens: 16,
            gpu_blocks: 64,
            cpu_blocks: 1024,
            kv_bytes_per_token: 1 << 17,
            chunk_tokens: 64,
            write_through: true,
            priority_writes: true,
            offload_enabled: true,
            load_evict_overlap: true,
            pcie_bandwidth: 25.0e9,
            pcie_latency_us: 15,
        }
    }
}

#[derive(Debug, Default, Clone)]
struct ReqState {
    /// Context length: tokens whose KV logically exists.
    total: u64,
    /// Tokens whose GPU copy is held (resident or awaiting flush).
    gpu_hold: u64,
    /// Tokens with a host copy.
    synced: u64,
    /// Tokens reserved in the CPU pool (synced + in-flight D2H).
    cpu_hold: u64,
    gpu_blocks: u64,
    cpu_blocks: u64,
    residency_tag: u8,
    /// Write-through tokens in flight on the D2H stream.
    wt_inflight: u64,
    /// Tokens still to complete before an eviction finishes.
    evict_pending: u64,
    /// Explicit evict chunks in flight (excludes `wt_inflight`).
    evict_inflight: u64,
    /// Tokens enqueued on the H2D stream for the current load.
    load_enqueued: u64,
    /// Tokens that completed loading.
    load_done: u64,
}

impl ReqState {
    fn residency(&self) -> Residency {
        match self.residency_tag {
            0 => Residency::None,
            1 => Residency::Gpu,
            2 => Residency::Evicting,
            3 => Residency::Cpu,
            4 => Residency::Loading,
            _ => unreachable!("corrupt residency tag"),
        }
    }

    fn set_residency(&mut self, r: Residency) {
        self.residency_tag = match r {
            Residency::None => 0,
            Residency::Gpu => 1,
            Residency::Evicting => 2,
            Residency::Cpu => 3,
            Residency::Loading => 4,
        };
    }
}

/// Stale in-flight transfer tokens awaiting silent absorption after a
/// discard/release. FIFO stream order guarantees stale chunks arrive before
/// any chunk of a reused request id.
#[derive(Debug, Default, Clone)]
struct Stale {
    wt: u64,
    evict: u64,
    load: u64,
}

/// The hierarchical KV-cache manager.
///
/// # Examples
///
/// ```
/// use tokenflow_kv::{KvConfig, KvManager, Residency};
/// use tokenflow_sim::{RequestId, SimTime};
///
/// let mut kv = KvManager::new(KvConfig::test_config());
/// let r = RequestId(0);
/// kv.on_prefill(r, 128, SimTime::ZERO).unwrap();
/// assert_eq!(kv.residency(r), Residency::Gpu);
/// ```
#[derive(Debug, Clone)]
pub struct KvManager {
    config: KvConfig,
    gpu: BlockPool,
    cpu: BlockPool,
    pcie: PcieEngine,
    write_queue: WriteQueue,
    /// Per-request KV state, slab-indexed by the engine's dense
    /// `RequestId` (`None` = no KV anywhere). A dense vector instead of a
    /// hash map: the hot path touches several entries per live request
    /// per step, and ids are already dense, so indexing is O(1) with no
    /// hashing and no iteration over requests that ever existed.
    states: Vec<Option<ReqState>>,
    /// Stale in-flight token counters, slab-indexed like `states`
    /// (all-zero = nothing stale for that id).
    stale: Vec<Stale>,
    loading_order: VecDeque<RequestId>,
    /// Count of requests currently in `Evicting` (for overlap gating).
    evicting_count: usize,
    /// Retained completion buffer for [`KvManager::advance_to`] — the
    /// engine calls it at least twice per step, so the steady state
    /// reuses one allocation instead of paying two per call.
    completion_scratch: Vec<TransferCompletion>,
    /// Retained chunk buffer for [`KvManager::pump_writes`], same idea.
    chunk_scratch: Vec<WriteChunk>,
    /// Number of requests in `Loading` residency. Maintained separately
    /// from `loading_order` because the queue holds only loads with
    /// chunks still to enqueue, while this counts every in-flight load
    /// (the router-facing [`KvManager::loading_requests`] figure).
    loading_count: usize,
}

impl KvManager {
    /// Creates a manager from a configuration.
    pub fn new(config: KvConfig) -> Self {
        // Without load-evict overlap the host link degrades to one shared
        // serialized channel (§5.3 baseline).
        let pcie = if config.load_evict_overlap {
            PcieEngine::new(config.pcie_bandwidth, config.pcie_latency_us)
        } else {
            PcieEngine::new_half_duplex(config.pcie_bandwidth, config.pcie_latency_us)
        };
        let write_queue = WriteQueue::new(config.priority_writes);
        KvManager {
            gpu: BlockPool::new(config.gpu_blocks),
            cpu: BlockPool::new(config.cpu_blocks),
            pcie,
            write_queue,
            states: Vec::new(),
            stale: Vec::new(),
            loading_order: VecDeque::new(),
            evicting_count: 0,
            completion_scratch: Vec::new(),
            chunk_scratch: Vec::new(),
            loading_count: 0,
            config,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &KvConfig {
        &self.config
    }

    fn req_state(&self, req: RequestId) -> Option<&ReqState> {
        self.states.get(req.0 as usize).and_then(Option::as_ref)
    }

    fn req_state_mut(&mut self, req: RequestId) -> Option<&mut ReqState> {
        self.states.get_mut(req.0 as usize).and_then(Option::as_mut)
    }

    /// The slab slot for `req`, growing the table on first touch.
    fn slot_mut(&mut self, req: RequestId) -> &mut Option<ReqState> {
        let idx = req.0 as usize;
        if self.states.len() <= idx {
            self.states.resize_with(idx + 1, || None);
        }
        &mut self.states[idx]
    }

    /// The GPU block pool (read-only).
    pub fn gpu_pool(&self) -> &BlockPool {
        &self.gpu
    }

    /// The CPU block pool (read-only).
    pub fn cpu_pool(&self) -> &BlockPool {
        &self.cpu
    }

    /// The transfer engine (read-only).
    pub fn pcie(&self) -> &PcieEngine {
        &self.pcie
    }

    /// Sets the host-link slowdown multiplier (`1.0` restores nominal
    /// speed); see [`PcieEngine::set_slowdown`] for semantics.
    pub fn set_link_slowdown(&mut self, slowdown: f64) {
        self.pcie.set_slowdown(slowdown);
    }

    /// Where `req`'s KV currently lives.
    pub fn residency(&self, req: RequestId) -> Residency {
        self.req_state(req)
            .map_or(Residency::None, |s| s.residency())
    }

    /// Context length tracked for `req`.
    pub fn context_tokens(&self, req: RequestId) -> u64 {
        self.req_state(req).map_or(0, |s| s.total)
    }

    /// Free GPU capacity in tokens.
    pub fn gpu_free_tokens(&self) -> u64 {
        self.gpu.free_blocks() * self.config.block_tokens as u64
    }

    /// Total GPU capacity in tokens.
    pub fn gpu_total_tokens(&self) -> u64 {
        self.gpu.total_blocks() * self.config.block_tokens as u64
    }

    /// Whether a prefill of `tokens` could allocate right now.
    pub fn can_fit(&self, tokens: u64) -> bool {
        self.gpu
            .can_alloc(tokens_to_blocks(tokens, self.config.block_tokens))
    }

    /// Tokens awaiting background write-through sync.
    pub fn write_backlog_tokens(&self) -> u64 {
        self.write_queue.pending_tokens()
    }

    /// Dirty (host-unsynced) tokens of a request, counting in-flight sync
    /// as clean-to-be.
    pub fn dirty_tokens(&self, req: RequestId) -> u64 {
        self.req_state(req)
            .map_or(0, |s| s.total - s.synced - s.wt_inflight - s.evict_inflight)
    }

    /// Estimated time to evict `req` now: D2H queue drain plus the dirty
    /// flush itself (the `t_evict_queueing + t_evict` terms of §4.2.3).
    pub fn estimated_evict_time(&self, req: RequestId, now: SimTime) -> SimDuration {
        let dirty = self.dirty_tokens(req);
        let bytes = dirty * self.config.kv_bytes_per_token;
        let transfer = if dirty == 0 {
            SimDuration::ZERO
        } else {
            self.pcie.transfer_time(bytes)
        };
        self.pcie.eta(Direction::D2H, now) + transfer
    }

    /// Estimated time to load `req` back: H2D queue drain plus the full
    /// context transfer (the `t_load_queueing + t_load` terms of §4.2.3).
    pub fn estimated_load_time(&self, req: RequestId, now: SimTime) -> SimDuration {
        let tokens = self.context_tokens(req);
        let bytes = tokens * self.config.kv_bytes_per_token;
        self.pcie.eta(Direction::H2D, now) + self.pcie.transfer_time(bytes)
    }

    /// Host-link queue depth in a direction (transfers).
    pub fn io_queue_len(&self, dir: Direction) -> usize {
        self.pcie.queue_len(dir)
    }

    /// Host-link drain ETA in a direction.
    pub fn io_eta(&self, dir: Direction, now: SimTime) -> SimDuration {
        self.pcie.eta(dir, now)
    }

    /// Earliest pending transfer completion, if any.
    pub fn next_io_completion(&self) -> Option<SimTime> {
        self.pcie.next_completion()
    }

    /// Requests currently mid-eviction (KV flushing to host).
    pub fn evicting_requests(&self) -> usize {
        self.evicting_count
    }

    /// Requests currently mid-load (KV returning to the GPU), including
    /// loads waiting for GPU space to enqueue their first chunk.
    pub fn loading_requests(&self) -> usize {
        self.loading_count
    }

    /// Updates the background-flush priority for `req` (call with the
    /// request's current buffer occupancy; larger buffers flush first).
    pub fn set_write_priority(&mut self, req: RequestId, priority: f64) {
        self.write_queue.set_priority(req, priority);
    }

    /// Bulk write-priority update: one pass over the pending write queue,
    /// asking `f` for each queued request's new priority (`None` = keep).
    /// Equivalent to calling [`KvManager::set_write_priority`] for every
    /// request `f` prices, without the per-request queue scan.
    pub fn retune_write_priorities<F: FnMut(RequestId) -> Option<f64>>(&mut self, f: F) {
        self.write_queue.retune(f);
    }

    fn set_gpu_hold(&mut self, req: RequestId, new_tokens: u64) -> Result<(), KvError> {
        let s = self.states[req.0 as usize].as_mut().expect("request state");
        let new_blocks = tokens_to_blocks(new_tokens, self.config.block_tokens);
        if new_blocks > s.gpu_blocks {
            if !self.gpu.try_alloc(new_blocks - s.gpu_blocks) {
                return Err(KvError::OutOfGpuMemory);
            }
        } else {
            self.gpu.free(s.gpu_blocks - new_blocks);
        }
        s.gpu_blocks = new_blocks;
        s.gpu_hold = new_tokens;
        Ok(())
    }

    fn set_cpu_hold(&mut self, req: RequestId, new_tokens: u64) -> Result<(), KvError> {
        let s = self.states[req.0 as usize].as_mut().expect("request state");
        let new_blocks = tokens_to_blocks(new_tokens, self.config.block_tokens);
        if new_blocks > s.cpu_blocks {
            if !self.cpu.try_alloc(new_blocks - s.cpu_blocks) {
                return Err(KvError::OutOfCpuMemory);
            }
        } else {
            self.cpu.free(s.cpu_blocks - new_blocks);
        }
        s.cpu_blocks = new_blocks;
        s.cpu_hold = new_tokens;
        Ok(())
    }

    /// Registers freshly prefilled KV for `req` (`tokens` context tokens all
    /// GPU-resident). Also the recompute path after a discard.
    pub fn on_prefill(
        &mut self,
        req: RequestId,
        tokens: u64,
        _now: SimTime,
    ) -> Result<(), KvError> {
        let state = self.slot_mut(req).get_or_insert_with(ReqState::default);
        if state.residency() != Residency::None {
            return Err(KvError::BadState("prefill requires no existing KV"));
        }
        self.set_gpu_hold(req, tokens)?;
        let s = self.req_state_mut(req).expect("request state");
        s.total = tokens;
        s.synced = 0;
        s.set_residency(Residency::Gpu);
        if self.config.write_through {
            self.write_queue.push(req, tokens, 0.0);
        }
        Ok(())
    }

    /// Appends one decoded token's KV for a GPU-resident request.
    pub fn append_token(&mut self, req: RequestId, priority: f64) -> Result<(), KvError> {
        let s = self
            .req_state_mut(req)
            .ok_or(KvError::BadState("unknown request"))?;
        if s.residency() != Residency::Gpu {
            return Err(KvError::BadState("append requires GPU residency"));
        }
        let new_total = s.total + 1;
        self.set_gpu_hold(req, new_total)?;
        let s = self.req_state_mut(req).expect("request state");
        s.total = new_total;
        if self.config.write_through {
            self.write_queue.push(req, 1, priority);
        }
        Ok(())
    }

    /// Begins preempting `req`: host-synced tokens free their GPU blocks
    /// immediately; the dirty remainder flushes in chunks.
    pub fn begin_evict(&mut self, req: RequestId, now: SimTime) -> Result<EvictStart, KvError> {
        if !self.config.offload_enabled {
            return Err(KvError::OffloadDisabled);
        }
        let s = self
            .req_state(req)
            .ok_or(KvError::BadState("unknown request"))?;
        if s.residency() != Residency::Gpu {
            return Err(KvError::BadState("evict requires GPU residency"));
        }
        let (total, synced, wt_inflight, cpu_hold) = (s.total, s.synced, s.wt_inflight, s.cpu_hold);
        let dirty = total - synced - wt_inflight;

        // Reserve host space for the dirty flush up front; fail cleanly if
        // the host pool cannot take it.
        let target_cpu = total;
        let extra_blocks = tokens_to_blocks(target_cpu, self.config.block_tokens)
            .saturating_sub(tokens_to_blocks(cpu_hold, self.config.block_tokens));
        if !self.cpu.can_alloc(extra_blocks) {
            return Err(KvError::OutOfCpuMemory);
        }
        self.set_cpu_hold(req, target_cpu)?;

        // Anything pending in the background write queue now flushes via the
        // eviction path instead.
        self.write_queue.cancel(req);

        // GPU blocks for already-synced tokens are reclaimable right now.
        let keep = total - synced;
        self.set_gpu_hold(req, keep)?;

        let pending = dirty + wt_inflight;
        if pending == 0 {
            self.set_gpu_hold(req, 0)?;
            let s = self.req_state_mut(req).expect("request state");
            s.set_residency(Residency::Cpu);
            return Ok(EvictStart::Instant);
        }

        // Flush the dirty remainder in chunks.
        let mut remaining = dirty;
        while remaining > 0 {
            let chunk = remaining.min(self.config.chunk_tokens);
            remaining -= chunk;
            self.pcie.enqueue(
                Direction::D2H,
                chunk * self.config.kv_bytes_per_token,
                TransferTag::Evict {
                    req,
                    tokens: chunk,
                    last: remaining == 0,
                },
                now,
            );
        }
        let s = self.req_state_mut(req).expect("request state");
        s.evict_pending = pending;
        s.evict_inflight = dirty;
        s.set_residency(Residency::Evicting);
        self.evicting_count += 1;
        Ok(EvictStart::InFlight)
    }

    /// Begins loading a host-resident request back to the GPU. Chunks are
    /// enqueued as GPU blocks become available (see
    /// [`KvManager::advance_to`]).
    pub fn begin_load(&mut self, req: RequestId, now: SimTime) -> Result<(), KvError> {
        let s = self
            .req_state_mut(req)
            .ok_or(KvError::BadState("unknown request"))?;
        if s.residency() != Residency::Cpu {
            return Err(KvError::BadState("load requires CPU residency"));
        }
        s.set_residency(Residency::Loading);
        s.load_enqueued = 0;
        s.load_done = 0;
        self.loading_order.push_back(req);
        self.loading_count += 1;
        self.pump_loads(now);
        Ok(())
    }

    /// Drops all KV for `req` (recompute path or request completion).
    ///
    /// In-flight transfers complete in the background and are silently
    /// absorbed; their bandwidth was already spent, which is exactly the
    /// waste reactive eviction incurs.
    pub fn drop_kv(&mut self, req: RequestId) {
        self.write_queue.cancel(req);
        let Some(s) = self.states.get_mut(req.0 as usize).and_then(Option::take) else {
            return;
        };
        if s.residency() == Residency::Evicting {
            self.evicting_count -= 1;
        }
        if s.residency() == Residency::Loading {
            self.loading_count -= 1;
        }
        let idx = req.0 as usize;
        if self.stale.len() <= idx {
            self.stale.resize_with(idx + 1, Stale::default);
        }
        let stale = &mut self.stale[idx];
        stale.wt += s.wt_inflight;
        stale.evict += s.evict_inflight;
        stale.load += s.load_enqueued - s.load_done;
        self.gpu.free(s.gpu_blocks);
        self.cpu.free(s.cpu_blocks);
        self.loading_order.retain(|&r| r != req);
    }

    /// Pumps the background write-through sync with a byte budget matching
    /// the next compute window (synchronous chunked writing, §5.2).
    pub fn pump_writes(&mut self, now: SimTime, window: SimDuration) {
        if !self.config.write_through {
            return;
        }
        let budget_bytes = window.as_secs_f64() * self.pcie.bandwidth();
        let budget_tokens = (budget_bytes / self.config.kv_bytes_per_token as f64) as u64;
        if budget_tokens == 0 {
            return;
        }
        let mut chunks = std::mem::take(&mut self.chunk_scratch);
        chunks.clear();
        self.write_queue
            .pull_into(budget_tokens, self.config.chunk_tokens, &mut chunks);
        for chunk in chunks.drain(..) {
            let Some(s) = self.req_state(chunk.req) else {
                continue;
            };
            let new_cpu_hold = s.cpu_hold + chunk.tokens;
            if self.set_cpu_hold(chunk.req, new_cpu_hold).is_err() {
                // Host pool full: leave the tokens dirty for later.
                self.write_queue.push(chunk.req, chunk.tokens, 0.0);
                break;
            }
            self.pcie.enqueue(
                Direction::D2H,
                chunk.tokens * self.config.kv_bytes_per_token,
                TransferTag::WriteThrough {
                    req: chunk.req,
                    tokens: chunk.tokens,
                },
                now,
            );
            let s = self.req_state_mut(chunk.req).expect("request state");
            s.wt_inflight += chunk.tokens;
        }
        self.chunk_scratch = chunks;
    }

    fn pump_loads(&mut self, now: SimTime) {
        // Without load-evict overlap, loads serialise behind all device-to-
        // host activity — in-flight evictions and queued write-back traffic
        // alike (the §5.3 baseline trades memory buffering for operation
        // serialisation).
        if !self.config.load_evict_overlap
            && (self.evicting_count > 0 || self.pcie.queue_len(Direction::D2H) > 0)
        {
            return;
        }
        // The queue holds only loads with chunks still to enqueue, so the
        // walk is O(work done): a fully-wired load pops immediately (its
        // completion needs no further pumping), a stale entry (dropped
        // mid-load) pops on sight, and a blocked head parks the queue
        // until GPU space frees. In the steady state — every pending load
        // on the wire, waiting for completions — this is an O(1) empty
        // check, which matters because the engine pumps at least twice
        // per step.
        while let Some(&req) = self.loading_order.front() {
            let Some(s) = self.req_state(req) else {
                self.loading_order.pop_front();
                continue;
            };
            if s.residency() != Residency::Loading {
                self.loading_order.pop_front();
                continue;
            }
            let mut enqueued = s.load_enqueued;
            let total = s.total;
            let mut blocked = false;
            while enqueued < total {
                let chunk = (total - enqueued).min(self.config.chunk_tokens);
                let new_hold = enqueued + chunk;
                if self.set_gpu_hold(req, new_hold).is_err() {
                    blocked = true;
                    break;
                }
                self.pcie.enqueue(
                    Direction::H2D,
                    chunk * self.config.kv_bytes_per_token,
                    TransferTag::Load {
                        req,
                        tokens: chunk,
                        last: new_hold == total,
                    },
                    now,
                );
                enqueued = new_hold;
            }
            let s = self.req_state_mut(req).expect("request state");
            s.load_enqueued = enqueued;
            if blocked {
                // FIFO head-of-line: later loads wait behind this one.
                break;
            }
            self.loading_order.pop_front();
        }
    }

    /// Advances the transfer engine to `now`, applying completions and
    /// pumping pending loads into freed space. Returns lifecycle events in
    /// completion order.
    pub fn advance_to(&mut self, now: SimTime) -> Vec<KvEvent> {
        let mut events = Vec::new();
        self.advance_into(now, &mut events);
        events
    }

    /// [`KvManager::advance_to`] into a caller-retained event buffer
    /// (cleared first): the per-step path calls this at least twice per
    /// iteration and stays allocation-free in the steady state.
    pub fn advance_into(&mut self, now: SimTime, events: &mut Vec<KvEvent>) {
        events.clear();
        let mut completions = std::mem::take(&mut self.completion_scratch);
        self.pcie.advance_into(now, &mut completions);
        for c in completions.drain(..) {
            match c.tag {
                TransferTag::WriteThrough { req, tokens } => {
                    if self.absorb_stale(req, tokens, StaleKind::Wt) {
                        continue;
                    }
                    self.on_sync_complete(req, tokens, false, c.completed_at, events);
                }
                TransferTag::Evict { req, tokens, .. } => {
                    if self.absorb_stale(req, tokens, StaleKind::Evict) {
                        continue;
                    }
                    self.on_sync_complete(req, tokens, true, c.completed_at, events);
                }
                TransferTag::Load { req, tokens, .. } => {
                    if self.absorb_stale(req, tokens, StaleKind::Load) {
                        continue;
                    }
                    self.on_load_complete(req, tokens, c.completed_at, events);
                }
            }
        }
        self.completion_scratch = completions;
        self.pump_loads(now);
    }

    fn absorb_stale(&mut self, req: RequestId, tokens: u64, kind: StaleKind) -> bool {
        let Some(stale) = self.stale.get_mut(req.0 as usize) else {
            return false;
        };
        let counter = match kind {
            StaleKind::Wt => &mut stale.wt,
            StaleKind::Evict => &mut stale.evict,
            StaleKind::Load => &mut stale.load,
        };
        if *counter >= tokens {
            *counter -= tokens;
            true
        } else {
            false
        }
    }

    fn on_sync_complete(
        &mut self,
        req: RequestId,
        tokens: u64,
        explicit_evict: bool,
        at: SimTime,
        events: &mut Vec<KvEvent>,
    ) {
        let Some(s) = self.req_state_mut(req) else {
            return;
        };
        s.synced += tokens;
        if explicit_evict {
            s.evict_inflight -= tokens;
        } else {
            s.wt_inflight -= tokens;
        }
        if s.residency() == Residency::Evicting {
            s.evict_pending -= tokens;
            let done = s.evict_pending == 0;
            let new_hold = s.gpu_hold - tokens.min(s.gpu_hold);
            self.set_gpu_hold(req, new_hold)
                .expect("shrinking GPU hold cannot fail");
            if done {
                let s = self.req_state_mut(req).expect("request state");
                debug_assert_eq!(s.synced, s.total, "eviction must sync everything");
                s.set_residency(Residency::Cpu);
                self.evicting_count -= 1;
                events.push(KvEvent::EvictDone { req, at });
            }
        }
    }

    fn on_load_complete(
        &mut self,
        req: RequestId,
        tokens: u64,
        at: SimTime,
        events: &mut Vec<KvEvent>,
    ) {
        let Some(s) = self.req_state_mut(req) else {
            return;
        };
        s.load_done += tokens;
        if s.load_done == s.total {
            s.set_residency(Residency::Gpu);
            self.loading_count -= 1;
            events.push(KvEvent::LoadDone { req, at });
        }
    }

    /// Internal consistency check: pool usage equals the sum of per-request
    /// holds. Used by tests.
    pub fn check_conservation(&self) -> bool {
        let gpu: u64 = self.states.iter().flatten().map(|s| s.gpu_blocks).sum();
        let cpu: u64 = self.states.iter().flatten().map(|s| s.cpu_blocks).sum();
        gpu == self.gpu.used_blocks() && cpu == self.cpu.used_blocks()
    }
}

#[derive(Clone, Copy)]
enum StaleKind {
    Wt,
    Evict,
    Load,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> KvManager {
        KvManager::new(KvConfig::test_config())
    }

    fn r(i: u64) -> RequestId {
        RequestId(i)
    }

    const FAR: SimTime = SimTime::from_secs(1_000);

    #[test]
    fn prefill_allocates_gpu_blocks() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 100, SimTime::ZERO).unwrap();
        assert_eq!(kv.residency(r(0)), Residency::Gpu);
        // 100 tokens at 16/block = 7 blocks.
        assert_eq!(kv.gpu_pool().used_blocks(), 7);
        assert!(kv.check_conservation());
    }

    #[test]
    fn prefill_fails_when_pool_full() {
        let mut kv = mgr();
        let cap = kv.gpu_total_tokens();
        kv.on_prefill(r(0), cap, SimTime::ZERO).unwrap();
        assert_eq!(
            kv.on_prefill(r(1), 16, SimTime::ZERO),
            Err(KvError::OutOfGpuMemory)
        );
        assert!(kv.check_conservation());
    }

    #[test]
    fn append_grows_context_and_blocks() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 16, SimTime::ZERO).unwrap();
        assert_eq!(kv.gpu_pool().used_blocks(), 1);
        kv.append_token(r(0), 0.0).unwrap();
        assert_eq!(kv.context_tokens(r(0)), 17);
        assert_eq!(kv.gpu_pool().used_blocks(), 2);
    }

    #[test]
    fn write_through_syncs_in_background() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 128, SimTime::ZERO).unwrap();
        assert_eq!(kv.write_backlog_tokens(), 128);
        assert_eq!(kv.dirty_tokens(r(0)), 128);
        // Pump with a generous window: everything enqueues.
        kv.pump_writes(SimTime::ZERO, SimDuration::from_secs(1));
        assert_eq!(kv.write_backlog_tokens(), 0);
        let events = kv.advance_to(FAR);
        assert!(events.is_empty(), "background sync emits no events");
        assert_eq!(kv.dirty_tokens(r(0)), 0);
        // GPU copy is retained under write-through.
        assert_eq!(kv.residency(r(0)), Residency::Gpu);
        assert!(kv.gpu_pool().used_blocks() > 0);
        assert!(kv.check_conservation());
    }

    #[test]
    fn evict_after_full_sync_is_instant() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 128, SimTime::ZERO).unwrap();
        kv.pump_writes(SimTime::ZERO, SimDuration::from_secs(1));
        kv.advance_to(FAR);
        let start = kv.begin_evict(r(0), FAR).unwrap();
        assert_eq!(start, EvictStart::Instant);
        assert_eq!(kv.residency(r(0)), Residency::Cpu);
        assert_eq!(kv.gpu_pool().used_blocks(), 0);
        assert!(kv.check_conservation());
    }

    #[test]
    fn evict_without_sync_flushes_dirty() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 128, SimTime::ZERO).unwrap();
        let start = kv.begin_evict(r(0), SimTime::ZERO).unwrap();
        assert_eq!(start, EvictStart::InFlight);
        assert_eq!(kv.residency(r(0)), Residency::Evicting);
        let events = kv.advance_to(FAR);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], KvEvent::EvictDone { req, .. } if req == r(0)));
        assert_eq!(kv.residency(r(0)), Residency::Cpu);
        assert_eq!(kv.gpu_pool().used_blocks(), 0);
        assert!(kv.check_conservation());
    }

    #[test]
    fn write_through_makes_eviction_cheaper() {
        // The §5.1 claim: with write-through the flush at preemption time is
        // strictly smaller.
        let mut with_wt = mgr();
        with_wt.on_prefill(r(0), 512, SimTime::ZERO).unwrap();
        with_wt.pump_writes(SimTime::ZERO, SimDuration::from_millis(2));
        with_wt.advance_to(SimTime::from_millis(10));
        let t_wt = with_wt.estimated_evict_time(r(0), SimTime::from_millis(10));

        let mut cfg = KvConfig::test_config();
        cfg.write_through = false;
        let mut without = KvManager::new(cfg);
        without.on_prefill(r(0), 512, SimTime::ZERO).unwrap();
        without.advance_to(SimTime::from_millis(10));
        let t_wb = without.estimated_evict_time(r(0), SimTime::from_millis(10));
        assert!(t_wt < t_wb, "write-through {t_wt} vs write-back {t_wb}");
    }

    #[test]
    fn load_roundtrip_restores_gpu_residency() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 200, SimTime::ZERO).unwrap();
        kv.begin_evict(r(0), SimTime::ZERO).unwrap();
        kv.advance_to(FAR);
        assert_eq!(kv.residency(r(0)), Residency::Cpu);
        kv.begin_load(r(0), FAR).unwrap();
        assert_eq!(kv.residency(r(0)), Residency::Loading);
        let events = kv.advance_to(SimTime::from_secs(2_000));
        assert!(matches!(events[0], KvEvent::LoadDone { req, .. } if req == r(0)));
        assert_eq!(kv.residency(r(0)), Residency::Gpu);
        // Host copy is retained: a second eviction is instant.
        let start = kv.begin_evict(r(0), SimTime::from_secs(2_000)).unwrap();
        assert_eq!(start, EvictStart::Instant);
    }

    #[test]
    fn incremental_sync_after_resume() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 64, SimTime::ZERO).unwrap();
        kv.begin_evict(r(0), SimTime::ZERO).unwrap();
        kv.advance_to(FAR);
        kv.begin_load(r(0), FAR).unwrap();
        kv.advance_to(SimTime::from_secs(2_000));
        // New decode tokens are dirty; old ones stay synced.
        for _ in 0..10 {
            kv.append_token(r(0), 1.0).unwrap();
        }
        assert_eq!(kv.dirty_tokens(r(0)), 10);
        assert_eq!(kv.write_backlog_tokens(), 10);
    }

    #[test]
    fn offload_disabled_fails_evict() {
        let mut cfg = KvConfig::test_config();
        cfg.offload_enabled = false;
        cfg.write_through = false;
        let mut kv = KvManager::new(cfg);
        kv.on_prefill(r(0), 64, SimTime::ZERO).unwrap();
        assert_eq!(
            kv.begin_evict(r(0), SimTime::ZERO),
            Err(KvError::OffloadDisabled)
        );
    }

    #[test]
    fn drop_kv_releases_everything() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 100, SimTime::ZERO).unwrap();
        kv.pump_writes(SimTime::ZERO, SimDuration::from_secs(1));
        kv.drop_kv(r(0));
        assert_eq!(kv.residency(r(0)), Residency::None);
        assert_eq!(kv.gpu_pool().used_blocks(), 0);
        assert_eq!(kv.cpu_pool().used_blocks(), 0);
        // Stale write-through completions are silently absorbed.
        let events = kv.advance_to(FAR);
        assert!(events.is_empty());
        assert!(kv.check_conservation());
    }

    #[test]
    fn discard_then_recompute_same_id_is_safe() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 100, SimTime::ZERO).unwrap();
        kv.pump_writes(SimTime::ZERO, SimDuration::from_secs(1));
        kv.drop_kv(r(0));
        // Recompute path: prefill again under the same id while the old
        // sync transfers are still in flight.
        kv.on_prefill(r(0), 100, SimTime::from_micros(1)).unwrap();
        kv.pump_writes(SimTime::from_micros(1), SimDuration::from_secs(1));
        kv.advance_to(FAR);
        // Stale chunks absorbed; fresh sync counted exactly once.
        assert_eq!(kv.dirty_tokens(r(0)), 0);
        assert_eq!(kv.residency(r(0)), Residency::Gpu);
        assert!(kv.check_conservation());
    }

    #[test]
    fn load_waits_for_space_then_proceeds() {
        let mut cfg = KvConfig::test_config();
        cfg.gpu_blocks = 8; // 128 tokens
        let mut kv = KvManager::new(cfg);
        kv.on_prefill(r(0), 128, SimTime::ZERO).unwrap();
        kv.begin_evict(r(0), SimTime::ZERO).unwrap();
        kv.advance_to(FAR);
        // GPU now hosts request 1.
        kv.on_prefill(r(1), 128, FAR).unwrap();
        kv.begin_load(r(0), FAR).unwrap();
        // No space yet: nothing enqueued.
        assert_eq!(kv.residency(r(0)), Residency::Loading);
        let events = kv.advance_to(SimTime::from_secs(1_100));
        assert!(events.is_empty());
        // Victim leaves; load resumes automatically on advance.
        kv.begin_evict(r(1), SimTime::from_secs(1_100)).unwrap();
        let mut all = Vec::new();
        let mut t = SimTime::from_secs(1_100);
        for _ in 0..200 {
            t += SimDuration::from_millis(1);
            all.extend(kv.advance_to(t));
        }
        assert!(all
            .iter()
            .any(|e| matches!(e, KvEvent::LoadDone { req, .. } if *req == r(0))));
        assert!(kv.check_conservation());
    }

    #[test]
    fn overlap_allows_load_during_evict() {
        let mut cfg = KvConfig::test_config();
        cfg.gpu_blocks = 12; // 192 tokens: room for a chunk while evicting
        let mut kv = KvManager::new(cfg);
        kv.on_prefill(r(0), 128, SimTime::ZERO).unwrap();
        kv.begin_evict(r(0), SimTime::ZERO).unwrap();
        kv.advance_to(FAR);
        kv.begin_load(r(0), FAR).unwrap();
        kv.advance_to(SimTime::from_secs(1_100));
        assert_eq!(kv.residency(r(0)), Residency::Gpu);

        // Now preempt r0 (dirty this time) while loading r1 concurrently.
        let t0 = SimTime::from_secs(1_200);
        for _ in 0..32 {
            kv.append_token(r(0), 0.0).unwrap();
        }
        kv.on_prefill(r(1), 16, t0).unwrap();
        kv.begin_evict(r(1), t0).unwrap();
        kv.advance_to(SimTime::from_secs(1_300));
        kv.begin_evict(r(0), SimTime::from_secs(1_300)).unwrap();
        kv.begin_load(r(1), SimTime::from_secs(1_300)).unwrap();
        // With overlap the load proceeds despite the in-flight eviction.
        let events = kv.advance_to(SimTime::from_secs(1_400));
        assert!(events
            .iter()
            .any(|e| matches!(e, KvEvent::LoadDone { req, .. } if *req == r(1))));
    }

    #[test]
    fn no_overlap_serialises_load_behind_evict() {
        let mut cfg = KvConfig::test_config();
        cfg.load_evict_overlap = false;
        cfg.write_through = false;
        let mut kv = KvManager::new(cfg);
        let t0 = SimTime::ZERO;
        kv.on_prefill(r(0), 128, t0).unwrap();
        kv.begin_evict(r(0), t0).unwrap();
        kv.advance_to(FAR);
        kv.on_prefill(r(1), 128, FAR).unwrap();
        kv.begin_evict(r(1), FAR).unwrap();
        // r1 eviction in flight; r0 load must wait even though space exists.
        kv.begin_load(r(0), FAR).unwrap();
        assert_eq!(kv.pcie().queue_len(Direction::H2D), 0);
        let events = kv.advance_to(SimTime::from_secs(2_000));
        // After the eviction drains, the load proceeds (chunks enqueue at
        // the advance instant and complete shortly after).
        assert!(events
            .iter()
            .any(|e| matches!(e, KvEvent::EvictDone { req, .. } if *req == r(1))));
        let events = kv.advance_to(SimTime::from_secs(2_100));
        assert!(events
            .iter()
            .any(|e| matches!(e, KvEvent::LoadDone { req, .. } if *req == r(0))));
    }

    #[test]
    fn estimated_times_reflect_queue_state() {
        let mut kv = mgr();
        kv.on_prefill(r(0), 512, SimTime::ZERO).unwrap();
        let t_clean = kv.estimated_evict_time(r(0), SimTime::ZERO);
        assert!(t_clean > SimDuration::ZERO);
        // Syncing everything makes the estimate (near) zero.
        kv.pump_writes(SimTime::ZERO, SimDuration::from_secs(1));
        kv.advance_to(FAR);
        assert_eq!(kv.estimated_evict_time(r(0), FAR), SimDuration::ZERO);
        assert!(kv.estimated_load_time(r(0), FAR) > SimDuration::ZERO);
    }

    #[test]
    fn bad_state_transitions_rejected() {
        let mut kv = mgr();
        assert!(matches!(
            kv.append_token(r(9), 0.0),
            Err(KvError::BadState(_))
        ));
        kv.on_prefill(r(0), 32, SimTime::ZERO).unwrap();
        assert!(matches!(
            kv.on_prefill(r(0), 32, SimTime::ZERO),
            Err(KvError::BadState(_))
        ));
        assert!(matches!(
            kv.begin_load(r(0), SimTime::ZERO),
            Err(KvError::BadState(_))
        ));
        kv.begin_evict(r(0), SimTime::ZERO).unwrap();
        assert!(matches!(
            kv.append_token(r(0), 0.0),
            Err(KvError::BadState(_))
        ));
    }
}
