//! The write-through buffer (paper §5.1–5.2).
//!
//! Newly generated KV entries are *dirty*: they exist only in GPU memory.
//! Under the write-through policy every dirty token range is queued here and
//! synced to host memory in the background, so that when the scheduler later
//! preempts the request most of its cache has already been written back.
//!
//! The queue supports the paper's *priority-based write ordering*: requests
//! with larger output buffers are more likely to be preempted soon, so their
//! dirty tokens are flushed first (§5.2). A FIFO mode is kept for the
//! Figure 8 comparison.

use std::collections::VecDeque;

use tokenflow_sim::RequestId;

/// One pending dirty range.
#[derive(Debug, Clone, Copy, PartialEq)]
struct WriteItem {
    req: RequestId,
    tokens: u64,
    /// Larger = flushed earlier in priority mode (the owner's buffer size).
    priority: f64,
    /// Arrival order for FIFO mode and stable tie-breaking.
    seq: u64,
}

/// A chunk pulled from the queue, ready to enqueue on the D2H stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteChunk {
    /// Owning request.
    pub req: RequestId,
    /// Tokens in the chunk.
    pub tokens: u64,
}

/// The pending write-through buffer.
///
/// # Examples
///
/// ```
/// use tokenflow_kv::WriteQueue;
/// use tokenflow_sim::RequestId;
///
/// let mut q = WriteQueue::new(true);
/// q.push(RequestId(0), 100, 5.0);
/// q.push(RequestId(1), 100, 50.0); // bigger buffer: flushed first
/// let chunks = q.pull(64, 64);
/// assert_eq!(chunks[0].req, RequestId(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct WriteQueue {
    items: VecDeque<WriteItem>,
    priority_mode: bool,
    next_seq: u64,
}

impl WriteQueue {
    /// Creates a queue; `priority_mode` selects buffer-priority ordering
    /// (the paper's default) over FIFO.
    pub fn new(priority_mode: bool) -> Self {
        WriteQueue {
            items: VecDeque::new(),
            priority_mode,
            next_seq: 0,
        }
    }

    /// Adds `tokens` dirty tokens for `req` at the given priority, merging
    /// with an existing entry for the same request if present.
    pub fn push(&mut self, req: RequestId, tokens: u64, priority: f64) {
        if tokens == 0 {
            return;
        }
        if let Some(item) = self.items.iter_mut().find(|i| i.req == req) {
            item.tokens += tokens;
            item.priority = priority;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.items.push_back(WriteItem {
            req,
            tokens,
            priority,
            seq,
        });
    }

    /// Updates the flush priority of a request's pending tokens.
    pub fn set_priority(&mut self, req: RequestId, priority: f64) {
        if let Some(item) = self.items.iter_mut().find(|i| i.req == req) {
            item.priority = priority;
        }
    }

    /// Re-prices every queued entry in one pass: `f` returns the new
    /// priority for a request, or `None` to leave it unchanged.
    ///
    /// This is the bulk form of [`WriteQueue::set_priority`] for callers
    /// updating many requests per step — one walk of the queue instead of
    /// a linear scan per request.
    pub fn retune<F: FnMut(RequestId) -> Option<f64>>(&mut self, mut f: F) {
        for item in &mut self.items {
            if let Some(p) = f(item.req) {
                item.priority = p;
            }
        }
    }

    /// Removes and returns all pending tokens for `req` (used when the
    /// request is preempted — the remainder flushes via the eviction path —
    /// or released).
    pub fn cancel(&mut self, req: RequestId) -> u64 {
        let mut removed = 0;
        self.items.retain(|i| {
            if i.req == req {
                removed += i.tokens;
                false
            } else {
                true
            }
        });
        removed
    }

    /// Pulls up to `budget` tokens of chunks, each at most `max_chunk`
    /// tokens, in flush order.
    ///
    /// In priority mode the highest-priority request flushes first; ties
    /// break FIFO. Partial pulls leave the remainder queued.
    pub fn pull(&mut self, budget: u64, max_chunk: u64) -> Vec<WriteChunk> {
        let mut out = Vec::new();
        self.pull_into(budget, max_chunk, &mut out);
        out
    }

    /// [`WriteQueue::pull`] into a caller-retained buffer (cleared first),
    /// for per-step callers that must not allocate in the steady state.
    pub fn pull_into(&mut self, budget: u64, max_chunk: u64, out: &mut Vec<WriteChunk>) {
        assert!(max_chunk > 0, "max_chunk must be positive");
        out.clear();
        let mut remaining = budget;
        while remaining > 0 {
            let idx = match self.next_index() {
                Some(i) => i,
                None => break,
            };
            let take = self.items[idx].tokens.min(max_chunk).min(remaining);
            self.items[idx].tokens -= take;
            let req = self.items[idx].req;
            if self.items[idx].tokens == 0 {
                self.items.remove(idx);
            }
            out.push(WriteChunk { req, tokens: take });
            remaining -= take;
        }
    }

    fn next_index(&self) -> Option<usize> {
        if self.items.is_empty() {
            return None;
        }
        if !self.priority_mode {
            return Some(0);
        }
        let mut best = 0;
        for i in 1..self.items.len() {
            let (a, b) = (&self.items[i], &self.items[best]);
            if a.priority > b.priority || (a.priority == b.priority && a.seq < b.seq) {
                best = i;
            }
        }
        Some(best)
    }

    /// Total pending tokens.
    pub fn pending_tokens(&self) -> u64 {
        self.items.iter().map(|i| i.tokens).sum()
    }

    /// Pending tokens for a specific request.
    pub fn pending_for(&self, req: RequestId) -> u64 {
        self.items
            .iter()
            .filter(|i| i.req == req)
            .map(|i| i.tokens)
            .sum()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u64) -> RequestId {
        RequestId(i)
    }

    #[test]
    fn push_merges_same_request() {
        let mut q = WriteQueue::new(true);
        q.push(r(0), 10, 1.0);
        q.push(r(0), 5, 2.0);
        assert_eq!(q.pending_for(r(0)), 15);
        assert_eq!(q.pending_tokens(), 15);
    }

    #[test]
    fn priority_mode_flushes_largest_buffer_first() {
        let mut q = WriteQueue::new(true);
        q.push(r(0), 100, 1.0);
        q.push(r(1), 100, 9.0);
        q.push(r(2), 100, 5.0);
        let order: Vec<u64> = q.pull(300, 100).iter().map(|c| c.req.0).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn fifo_mode_preserves_arrival_order() {
        let mut q = WriteQueue::new(false);
        q.push(r(0), 100, 1.0);
        q.push(r(1), 100, 9.0);
        let order: Vec<u64> = q.pull(200, 100).iter().map(|c| c.req.0).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn pull_respects_budget_and_chunk_size() {
        let mut q = WriteQueue::new(true);
        q.push(r(0), 1000, 1.0);
        let chunks = q.pull(300, 128);
        let total: u64 = chunks.iter().map(|c| c.tokens).sum();
        assert_eq!(total, 300);
        assert!(chunks.iter().all(|c| c.tokens <= 128));
        assert_eq!(q.pending_for(r(0)), 700);
    }

    #[test]
    fn pull_stops_when_empty() {
        let mut q = WriteQueue::new(true);
        q.push(r(0), 50, 1.0);
        let chunks = q.pull(1000, 64);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].tokens, 50);
        assert!(q.is_empty());
        assert!(q.pull(100, 64).is_empty());
    }

    #[test]
    fn cancel_removes_pending() {
        let mut q = WriteQueue::new(true);
        q.push(r(0), 40, 1.0);
        q.push(r(1), 60, 2.0);
        assert_eq!(q.cancel(r(0)), 40);
        assert_eq!(q.pending_tokens(), 60);
        assert_eq!(q.cancel(r(0)), 0);
    }

    #[test]
    fn set_priority_reorders() {
        let mut q = WriteQueue::new(true);
        q.push(r(0), 10, 1.0);
        q.push(r(1), 10, 2.0);
        q.set_priority(r(0), 10.0);
        let order: Vec<u64> = q.pull(20, 10).iter().map(|c| c.req.0).collect();
        assert_eq!(order, vec![0, 1]);
    }

    #[test]
    fn priority_ties_break_fifo() {
        let mut q = WriteQueue::new(true);
        q.push(r(5), 10, 3.0);
        q.push(r(6), 10, 3.0);
        let order: Vec<u64> = q.pull(20, 10).iter().map(|c| c.req.0).collect();
        assert_eq!(order, vec![5, 6]);
    }

    #[test]
    fn zero_push_is_noop() {
        let mut q = WriteQueue::new(true);
        q.push(r(0), 0, 1.0);
        assert!(q.is_empty());
    }
}
