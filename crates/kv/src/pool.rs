//! Paged memory block pools.
//!
//! Both the GPU and CPU tiers are managed as pools of fixed-size blocks
//! (16 tokens per block by default, like paged attention). The pool tracks
//! allocation counts only — requests record how many blocks they hold, and
//! the manager asserts global conservation — but it detects over-free and
//! over-allocate bugs eagerly.

/// A fixed-capacity block pool.
///
/// # Examples
///
/// ```
/// use tokenflow_kv::BlockPool;
///
/// let mut pool = BlockPool::new(100);
/// assert!(pool.try_alloc(60));
/// assert_eq!(pool.free_blocks(), 40);
/// pool.free(25);
/// assert_eq!(pool.used_blocks(), 35);
/// ```
#[derive(Debug, Clone)]
pub struct BlockPool {
    total: u64,
    used: u64,
}

impl BlockPool {
    /// Creates a pool of `total` blocks.
    pub fn new(total: u64) -> Self {
        BlockPool { total, used: 0 }
    }

    /// Total capacity in blocks.
    pub fn total_blocks(&self) -> u64 {
        self.total
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> u64 {
        self.total - self.used
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> u64 {
        self.used
    }

    /// Fraction of the pool in use, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.used as f64 / self.total as f64
    }

    /// Whether `n` blocks could be allocated right now.
    pub fn can_alloc(&self, n: u64) -> bool {
        n <= self.free_blocks()
    }

    /// Allocates `n` blocks, returning `false` (and allocating nothing) if
    /// the pool cannot satisfy the request.
    pub fn try_alloc(&mut self, n: u64) -> bool {
        if self.can_alloc(n) {
            self.used += n;
            true
        } else {
            false
        }
    }

    /// Returns `n` blocks to the pool.
    ///
    /// # Panics
    ///
    /// Panics if more blocks are freed than were allocated — that is always
    /// an accounting bug in the caller.
    pub fn free(&mut self, n: u64) {
        assert!(
            n <= self.used,
            "over-free: freeing {n} blocks with only {} allocated",
            self.used
        );
        self.used -= n;
    }
}

/// Number of tokens that fit in `blocks` blocks of `block_tokens` each.
pub fn blocks_to_tokens(blocks: u64, block_tokens: u32) -> u64 {
    blocks * block_tokens as u64
}

/// Number of blocks needed to hold `tokens` tokens (ceiling division).
pub fn tokens_to_blocks(tokens: u64, block_tokens: u32) -> u64 {
    tokens.div_ceil(block_tokens as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut p = BlockPool::new(10);
        assert!(p.try_alloc(10));
        assert_eq!(p.free_blocks(), 0);
        assert!(!p.try_alloc(1));
        p.free(10);
        assert_eq!(p.free_blocks(), 10);
    }

    #[test]
    fn failed_alloc_changes_nothing() {
        let mut p = BlockPool::new(5);
        assert!(p.try_alloc(3));
        assert!(!p.try_alloc(3));
        assert_eq!(p.used_blocks(), 3);
    }

    #[test]
    #[should_panic(expected = "over-free")]
    fn over_free_panics() {
        let mut p = BlockPool::new(5);
        p.try_alloc(2);
        p.free(3);
    }

    #[test]
    fn utilization_tracks_usage() {
        let mut p = BlockPool::new(4);
        assert_eq!(p.utilization(), 0.0);
        p.try_alloc(1);
        assert_eq!(p.utilization(), 0.25);
        p.try_alloc(3);
        assert_eq!(p.utilization(), 1.0);
    }

    #[test]
    fn empty_pool_is_always_full() {
        let p = BlockPool::new(0);
        assert_eq!(p.utilization(), 1.0);
        assert!(!p.can_alloc(1));
        assert!(p.can_alloc(0));
    }

    #[test]
    fn token_block_conversions() {
        assert_eq!(tokens_to_blocks(0, 16), 0);
        assert_eq!(tokens_to_blocks(1, 16), 1);
        assert_eq!(tokens_to_blocks(16, 16), 1);
        assert_eq!(tokens_to_blocks(17, 16), 2);
        assert_eq!(blocks_to_tokens(3, 16), 48);
    }
}
