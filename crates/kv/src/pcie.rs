//! The dual-stream host-link (PCIe) transfer engine.
//!
//! Real serving stacks drive GPU↔CPU copies through dedicated CUDA copy
//! engines — one per direction — so host-to-device loads and
//! device-to-host evictions proceed concurrently at full duplex bandwidth.
//! This module models exactly that: two independent FIFO streams, each
//! draining at the profile's bandwidth with a fixed per-transfer setup
//! latency.
//!
//! Completion times are assigned at enqueue time (the streams are strictly
//! FIFO and transfers are never cancelled; reordering happens upstream in
//! the [write queue](crate::write_queue) before chunks reach the stream),
//! which keeps the engine exact and O(1) per operation.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use tokenflow_sim::{RequestId, SimDuration, SimTime};

/// Transfer direction over the host link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Host (CPU) to device (GPU): resume loads.
    H2D,
    /// Device (GPU) to host (CPU): write-through sync and evictions.
    D2H,
}

/// What a transfer chunk is for; returned with its completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferTag {
    /// Background write-through sync of `tokens` newly generated tokens.
    WriteThrough {
        /// Owning request.
        req: RequestId,
        /// Tokens in the chunk.
        tokens: u64,
    },
    /// Eviction flush of dirty tokens during preemption.
    Evict {
        /// Owning request.
        req: RequestId,
        /// Tokens in the chunk.
        tokens: u64,
        /// Whether this is the final chunk of the eviction.
        last: bool,
    },
    /// Resume load of tokens back to the GPU.
    Load {
        /// Owning request.
        req: RequestId,
        /// Tokens in the chunk.
        tokens: u64,
        /// Whether this is the final chunk of the load.
        last: bool,
    },
}

impl TransferTag {
    /// The request the chunk belongs to.
    pub fn request(&self) -> RequestId {
        match *self {
            TransferTag::WriteThrough { req, .. }
            | TransferTag::Evict { req, .. }
            | TransferTag::Load { req, .. } => req,
        }
    }
}

/// A finished transfer, reported by [`PcieEngine::advance_to`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransferCompletion {
    /// Direction the chunk travelled.
    pub direction: Direction,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Time the chunk finished.
    pub completed_at: SimTime,
    /// What the chunk was for.
    pub tag: TransferTag,
}

#[derive(Debug, Clone)]
struct Stream {
    /// Pending transfers with precomputed completion times, FIFO.
    queue: VecDeque<(SimTime, u64, TransferTag)>,
    /// Instant the stream becomes idle given everything enqueued so far.
    free_at: SimTime,
    /// Total bytes ever enqueued (for conservation checks).
    enqueued_bytes: u64,
    /// Total bytes ever completed.
    completed_bytes: u64,
}

impl Stream {
    fn new() -> Self {
        Stream {
            queue: VecDeque::new(),
            free_at: SimTime::ZERO,
            enqueued_bytes: 0,
            completed_bytes: 0,
        }
    }

    fn pending_bytes(&self) -> u64 {
        self.enqueued_bytes - self.completed_bytes
    }
}

/// The dual-stream transfer engine.
///
/// # Examples
///
/// ```
/// use tokenflow_kv::{Direction, PcieEngine, TransferTag};
/// use tokenflow_sim::{RequestId, SimTime};
///
/// let mut pcie = PcieEngine::new(25.0e9, 15); // PCIe 4.0-ish
/// let tag = TransferTag::WriteThrough { req: RequestId(0), tokens: 256 };
/// pcie.enqueue(Direction::D2H, 1 << 20, tag, SimTime::ZERO);
/// // A 1 MiB chunk at 25 GB/s plus 15 us setup finishes within ~57 us.
/// let done = pcie.advance_to(SimTime::from_micros(100));
/// assert_eq!(done.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PcieEngine {
    /// Per-direction bandwidth in bytes/second.
    bandwidth: f64,
    /// Fixed setup latency per transfer.
    latency: SimDuration,
    /// Multiplier on transfer durations (`1.0` = nominal). Fault
    /// injection raises it over a link-fault window; completions already
    /// assigned keep their enqueue-time duration, so changing it at an
    /// arrival barrier is deterministic.
    slowdown: f64,
    h2d: Stream,
    d2h: Stream,
    /// When set, the two directions share one serialized channel — the
    /// §5.3 baseline that trades staging memory for operation
    /// serialization. Full duplex is the default.
    half_duplex: bool,
}

impl PcieEngine {
    /// Creates a full-duplex engine with the given per-direction bandwidth
    /// (bytes/s) and per-transfer setup latency (microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is not strictly positive.
    pub fn new(bandwidth: f64, latency_us: u64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        PcieEngine {
            bandwidth,
            latency: SimDuration::from_micros(latency_us),
            slowdown: 1.0,
            h2d: Stream::new(),
            d2h: Stream::new(),
            half_duplex: false,
        }
    }

    /// Creates a half-duplex engine: loads and evictions serialize on one
    /// shared channel (the no-overlap ablation baseline).
    pub fn new_half_duplex(bandwidth: f64, latency_us: u64) -> Self {
        let mut engine = Self::new(bandwidth, latency_us);
        engine.half_duplex = true;
        engine
    }

    fn stream(&self, dir: Direction) -> &Stream {
        match dir {
            Direction::H2D => &self.h2d,
            Direction::D2H => &self.d2h,
        }
    }

    fn stream_mut(&mut self, dir: Direction) -> &mut Stream {
        match dir {
            Direction::H2D => &mut self.h2d,
            Direction::D2H => &mut self.d2h,
        }
    }

    /// Pure transfer duration for `bytes` (setup latency included).
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 * self.slowdown / self.bandwidth)
    }

    /// Sets the link slowdown multiplier (`1.0` restores nominal speed).
    /// Only transfers enqueued *after* the call are affected — in-flight
    /// chunks keep the completion time assigned at enqueue.
    ///
    /// # Panics
    ///
    /// Panics unless `slowdown` is finite and at least `1.0`.
    pub fn set_slowdown(&mut self, slowdown: f64) {
        assert!(
            slowdown.is_finite() && slowdown >= 1.0,
            "link slowdown must be finite and >= 1.0"
        );
        self.slowdown = slowdown;
    }

    /// Link bandwidth in bytes/second (per direction).
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Enqueues a transfer; returns its completion time.
    pub fn enqueue(
        &mut self,
        dir: Direction,
        bytes: u64,
        tag: TransferTag,
        now: SimTime,
    ) -> SimTime {
        let t = self.transfer_time(bytes);
        let floor = if self.half_duplex {
            // One shared channel: a transfer starts only after *both*
            // directions drain.
            self.h2d.free_at.max(self.d2h.free_at)
        } else {
            self.stream(dir).free_at
        };
        let stream = self.stream_mut(dir);
        let start = floor.max(stream.free_at).max(now);
        let done = start + t;
        stream.free_at = done;
        stream.enqueued_bytes += bytes;
        stream.queue.push_back((done, bytes, tag));
        done
    }

    /// Advances both streams to `t`, returning completions in time order.
    pub fn advance_to(&mut self, t: SimTime) -> Vec<TransferCompletion> {
        let mut out = Vec::new();
        self.advance_into(t, &mut out);
        out
    }

    /// [`PcieEngine::advance_to`] into a caller-retained buffer (cleared
    /// first); the per-step path reuses one allocation across calls.
    pub fn advance_into(&mut self, t: SimTime, out: &mut Vec<TransferCompletion>) {
        out.clear();
        for dir in [Direction::H2D, Direction::D2H] {
            let stream = self.stream_mut(dir);
            while let Some(&(done, bytes, tag)) = stream.queue.front() {
                if done > t {
                    break;
                }
                stream.queue.pop_front();
                stream.completed_bytes += bytes;
                out.push(TransferCompletion {
                    direction: dir,
                    bytes,
                    completed_at: done,
                    tag,
                });
            }
        }
        out.sort_by_key(|c| c.completed_at);
    }

    /// Number of transfers queued (including in flight) in a direction.
    pub fn queue_len(&self, dir: Direction) -> usize {
        self.stream(dir).queue.len()
    }

    /// Bytes queued but not yet completed in a direction.
    pub fn queue_bytes(&self, dir: Direction) -> u64 {
        self.stream(dir).pending_bytes()
    }

    /// Time until the direction's queue fully drains, measured from `now`.
    pub fn eta(&self, dir: Direction, now: SimTime) -> SimDuration {
        self.stream(dir).free_at.saturating_since(now)
    }

    /// Earliest pending completion across both streams, if any.
    pub fn next_completion(&self) -> Option<SimTime> {
        let h = self.h2d.queue.front().map(|&(t, ..)| t);
        let d = self.d2h.queue.front().map(|&(t, ..)| t);
        match (h, d) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True when neither stream has pending work.
    pub fn is_idle(&self) -> bool {
        self.h2d.queue.is_empty() && self.d2h.queue.is_empty()
    }

    /// Total bytes completed in a direction since construction.
    pub fn completed_bytes(&self, dir: Direction) -> u64 {
        self.stream(dir).completed_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(req: u64) -> TransferTag {
        TransferTag::WriteThrough {
            req: RequestId(req),
            tokens: 1,
        }
    }

    #[test]
    fn transfer_time_is_latency_plus_bytes_over_bw() {
        // 1 GB/s with 10 us setup: 1 MB transfers in 1 ms, plus 10 us.
        let p = PcieEngine::new(1e9, 10);
        assert_eq!(p.transfer_time(1_000_000), SimDuration::from_micros(1_010));
    }

    #[test]
    fn fifo_serialization_within_stream() {
        let mut p = PcieEngine::new(1e9, 0);
        let d1 = p.enqueue(Direction::D2H, 1_000_000, tag(0), SimTime::ZERO);
        let d2 = p.enqueue(Direction::D2H, 1_000_000, tag(1), SimTime::ZERO);
        assert_eq!(d1, SimTime::from_millis(1));
        assert_eq!(d2, SimTime::from_millis(2));
    }

    #[test]
    fn directions_are_independent() {
        let mut p = PcieEngine::new(1e9, 0);
        let d = p.enqueue(Direction::D2H, 1_000_000, tag(0), SimTime::ZERO);
        let h = p.enqueue(Direction::H2D, 1_000_000, tag(1), SimTime::ZERO);
        // Full duplex: both finish at 1 ms, not serialized.
        assert_eq!(d, SimTime::from_millis(1));
        assert_eq!(h, SimTime::from_millis(1));
    }

    #[test]
    fn enqueue_after_idle_starts_at_now() {
        let mut p = PcieEngine::new(1e9, 0);
        p.enqueue(Direction::D2H, 1_000_000, tag(0), SimTime::ZERO);
        p.advance_to(SimTime::from_secs(10));
        let done = p.enqueue(Direction::D2H, 1_000_000, tag(1), SimTime::from_secs(10));
        assert_eq!(done, SimTime::from_secs(10) + SimDuration::from_millis(1));
    }

    #[test]
    fn advance_returns_only_due_completions() {
        let mut p = PcieEngine::new(1e9, 0);
        p.enqueue(Direction::D2H, 1_000_000, tag(0), SimTime::ZERO);
        p.enqueue(Direction::D2H, 3_000_000, tag(1), SimTime::ZERO);
        let done = p.advance_to(SimTime::from_millis(2));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 1_000_000);
        let done = p.advance_to(SimTime::from_millis(4));
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].bytes, 3_000_000);
        assert!(p.is_idle());
    }

    #[test]
    fn byte_conservation() {
        let mut p = PcieEngine::new(2e9, 5);
        let mut total = 0u64;
        for i in 0..50 {
            let b = 10_000 * (i + 1);
            total += b;
            p.enqueue(Direction::H2D, b, tag(i), SimTime::ZERO);
        }
        assert_eq!(p.queue_bytes(Direction::H2D), total);
        let done = p.advance_to(SimTime::from_secs(100));
        let done_bytes: u64 = done.iter().map(|c| c.bytes).sum();
        assert_eq!(done_bytes, total);
        assert_eq!(p.completed_bytes(Direction::H2D), total);
        assert_eq!(p.queue_bytes(Direction::H2D), 0);
    }

    #[test]
    fn eta_reflects_queue_depth() {
        let mut p = PcieEngine::new(1e9, 0);
        assert_eq!(p.eta(Direction::D2H, SimTime::ZERO), SimDuration::ZERO);
        p.enqueue(Direction::D2H, 5_000_000, tag(0), SimTime::ZERO);
        assert_eq!(
            p.eta(Direction::D2H, SimTime::ZERO),
            SimDuration::from_millis(5)
        );
        assert_eq!(
            p.eta(Direction::D2H, SimTime::from_millis(2)),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn next_completion_spans_both_streams() {
        let mut p = PcieEngine::new(1e9, 0);
        assert_eq!(p.next_completion(), None);
        p.enqueue(Direction::D2H, 5_000_000, tag(0), SimTime::ZERO);
        p.enqueue(Direction::H2D, 1_000_000, tag(1), SimTime::ZERO);
        assert_eq!(p.next_completion(), Some(SimTime::from_millis(1)));
    }

    #[test]
    fn half_duplex_serialises_directions() {
        let mut p = PcieEngine::new_half_duplex(1e9, 0);
        let d = p.enqueue(Direction::D2H, 1_000_000, tag(0), SimTime::ZERO);
        let h = p.enqueue(Direction::H2D, 1_000_000, tag(1), SimTime::ZERO);
        assert_eq!(d, SimTime::from_millis(1));
        assert_eq!(h, SimTime::from_millis(2), "H2D must wait for D2H");
    }

    #[test]
    fn completions_sorted_across_streams() {
        let mut p = PcieEngine::new(1e9, 0);
        p.enqueue(Direction::D2H, 2_000_000, tag(0), SimTime::ZERO);
        p.enqueue(Direction::H2D, 1_000_000, tag(1), SimTime::ZERO);
        let done = p.advance_to(SimTime::from_secs(1));
        assert_eq!(done.len(), 2);
        assert!(done[0].completed_at <= done[1].completed_at);
        assert_eq!(done[0].direction, Direction::H2D);
    }
}
