//! Hierarchical KV-cache management (paper §5).
//!
//! The crate implements the paper's proactive memory layer:
//!
//! * [`pool`] — paged block pools for GPU and CPU memory with double-free
//!   detection.
//! * [`pcie`] — a dual-stream host-link engine (independent H2D and D2H
//!   channels) with FIFO transfer queues, completion events, and
//!   queue-depth/ETA queries that feed the scheduler's `t_IO` estimate.
//! * [`write_queue`] — the write-through buffer: dirty (GPU-only) token
//!   ranges queued for background D2H sync, priority-ordered by the owner's
//!   buffer occupancy (§5.2 "priority-based write ordering").
//! * [`manager`] — the [`KvManager`](manager::KvManager) tying them
//!   together: write-through sync pumped in compute-sized chunks
//!   (synchronous chunked writing), near-instant preemption of synced
//!   requests, chunked resume loads, and load-evict overlap (§5.3).
//!
//! Every policy the paper describes is a real decision procedure here; only
//! the byte movement itself is simulated (a bandwidth/latency model instead
//! of a DMA engine), as documented in `DESIGN.md`.

// audit: tier(deterministic)
#![forbid(unsafe_code)]

pub mod manager;
pub mod pcie;
pub mod pool;
pub mod write_queue;

pub use manager::{EvictStart, KvConfig, KvError, KvEvent, KvManager, Residency};
pub use pcie::{Direction, PcieEngine, TransferCompletion, TransferTag};
pub use pool::BlockPool;
pub use write_queue::WriteQueue;
