//! Model and hardware profiles plus the analytical execution cost model.
//!
//! TokenFlow's scheduling behaviour depends only on the *relative* timing of
//! four quantities: prefill latency, decode iteration latency, PCIe transfer
//! latency, and the user's token consumption rate. This crate derives the
//! first three from first principles:
//!
//! * [`ModelProfile`] carries the published architecture numbers of the
//!   models the paper evaluates (Llama3-8B, Qwen2-7B, Qwen2.5-32B), from
//!   which KV-cache bytes/token and FLOPs/token follow directly.
//! * [`HardwareProfile`] carries the published capability numbers of the
//!   GPUs (RTX 4090, A6000, H200, Ascend 910B): memory capacity, memory
//!   bandwidth, dense FP16 throughput, and host-link (PCIe) bandwidth.
//! * [`CostModel`] combines the two into iteration latencies: prefill is
//!   FLOPs-bound, decode is memory-bandwidth-bound (weight reads + KV
//!   reads), matching the standard roofline analysis of transformer
//!   inference.
//!
//! Absolute numbers will not match the authors' testbed, but the ratios —
//! which decide who queues, who preempts, and where buffers drain — do.

// audit: tier(deterministic)
#![forbid(unsafe_code)]

pub mod cost;
pub mod hardware;
pub mod model;

pub use cost::{CostModel, CostOverheads, IterationSpec};
pub use hardware::HardwareProfile;
pub use model::{DType, ModelProfile};
