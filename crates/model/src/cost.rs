//! Analytical iteration cost model.
//!
//! The model follows the standard roofline analysis of transformer serving:
//!
//! * **Prefill** is compute-bound: time ≈ FLOPs / (peak FLOP/s × efficiency).
//! * **Decode** is memory-bandwidth-bound: every iteration streams the full
//!   weights once plus the KV cache of every sequence in the batch.
//! * A **mixed batch** (chunked prefill + decode) is one forward pass, so its
//!   time is the max of the bytes-side and FLOPs-side estimates plus fixed
//!   and per-sequence overheads.
//!
//! This reproduces the two streaming-specific tensions §3.3 of the paper
//! calls out: large batches saturate memory bandwidth (decode slows as total
//! context grows), while small batches waste compute.

use serde::{Deserialize, Serialize};
use tokenflow_sim::SimDuration;

use crate::hardware::HardwareProfile;
use crate::model::ModelProfile;

/// Empirical efficiency factors and fixed overheads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostOverheads {
    /// Fixed per-iteration overhead in microseconds (kernel launches,
    /// scheduler bookkeeping, sampler).
    pub base_iter_us: u64,
    /// Additional overhead per sequence in the batch, in microseconds
    /// (paged-attention bookkeeping, sampling, detokenisation).
    pub per_seq_us: f64,
    /// Fraction of peak FLOP/s achieved by prefill kernels.
    pub prefill_efficiency: f64,
    /// Fraction of peak memory bandwidth achieved by decode kernels.
    pub decode_bw_efficiency: f64,
    /// Bytes reserved for activations and CUDA-graph scratch, subtracted from
    /// the KV budget.
    pub activation_reserve_bytes: u64,
}

impl Default for CostOverheads {
    fn default() -> Self {
        CostOverheads {
            base_iter_us: 250,
            per_seq_us: 8.0,
            prefill_efficiency: 0.55,
            decode_bw_efficiency: 0.75,
            activation_reserve_bytes: 2 << 30,
        }
    }
}

/// The composition of one engine iteration (one forward pass).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterationSpec {
    /// New prompt tokens processed this iteration (across all prefill
    /// sequences; chunked prefill caps this).
    pub prefill_tokens: u64,
    /// Context already cached for the prefilling sequences (affects
    /// attention cost only).
    pub prefill_past_tokens: u64,
    /// Number of prefill sequences in the batch.
    pub prefill_seqs: u32,
    /// Number of decoding sequences (each generates one token).
    pub decode_batch: u32,
    /// Total context length across all decoding sequences.
    pub decode_context: u64,
}

impl IterationSpec {
    /// True when the iteration performs no work.
    pub fn is_empty(&self) -> bool {
        self.prefill_tokens == 0 && self.decode_batch == 0
    }
}

/// Combines a model and a hardware profile into iteration latencies.
///
/// # Examples
///
/// ```
/// use tokenflow_model::{CostModel, HardwareProfile, ModelProfile};
///
/// let cost = CostModel::new(ModelProfile::llama3_8b(), HardwareProfile::h200());
/// // Single-stream decode on an H200 lands in the hundreds of tokens/sec.
/// let rate = cost.peak_decode_rate();
/// assert!(rate > 100.0 && rate < 500.0, "rate {rate}");
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    model: ModelProfile,
    hardware: HardwareProfile,
    overheads: CostOverheads,
}

impl CostModel {
    /// Creates a cost model with default overheads.
    pub fn new(model: ModelProfile, hardware: HardwareProfile) -> Self {
        CostModel {
            model,
            hardware,
            overheads: CostOverheads::default(),
        }
    }

    /// Creates a cost model with explicit overheads.
    pub fn with_overheads(
        model: ModelProfile,
        hardware: HardwareProfile,
        overheads: CostOverheads,
    ) -> Self {
        CostModel {
            model,
            hardware,
            overheads,
        }
    }

    /// The model profile in use.
    pub fn model(&self) -> &ModelProfile {
        &self.model
    }

    /// The hardware profile in use.
    pub fn hardware(&self) -> &HardwareProfile {
        &self.hardware
    }

    /// The overhead parameters in use.
    pub fn overheads(&self) -> &CostOverheads {
        &self.overheads
    }

    /// Effective device memory bandwidth in bytes/second.
    fn eff_bw(&self) -> f64 {
        self.hardware.mem_bw * self.overheads.decode_bw_efficiency
    }

    /// Effective compute throughput in FLOP/s.
    fn eff_flops(&self) -> f64 {
        self.hardware.flops * self.overheads.prefill_efficiency
    }

    /// Latency of one engine iteration described by `spec`.
    pub fn iteration_time(&self, spec: &IterationSpec) -> SimDuration {
        if spec.is_empty() {
            return SimDuration::ZERO;
        }
        // Bytes side: the full weights stream once per forward pass, plus the
        // KV cache of every decoding sequence.
        let bytes = self.model.weight_bytes() as f64
            + spec.decode_context as f64 * self.model.kv_bytes_per_token() as f64;
        let bytes_time = bytes / self.eff_bw();

        // FLOPs side: linear layers for every processed token plus attention.
        let tokens = spec.prefill_tokens + spec.decode_batch as u64;
        let mut flops = tokens as f64 * self.model.flops_per_token();
        // Prefill attention: token k of the chunk attends over past + k
        // context; averaging gives past + n/2.
        if spec.prefill_tokens > 0 {
            let avg_ctx = spec.prefill_past_tokens + spec.prefill_tokens / 2;
            flops += spec.prefill_tokens as f64 * self.model.attn_flops(avg_ctx);
        }
        flops += self.model.attn_flops(spec.decode_context);
        let flops_time = flops / self.eff_flops();

        let seqs = spec.prefill_seqs as f64 + spec.decode_batch as f64;
        let overhead_us = self.overheads.base_iter_us as f64 + seqs * self.overheads.per_seq_us;

        SimDuration::from_secs_f64(bytes_time.max(flops_time) + overhead_us * 1e-6)
    }

    /// Latency of prefilling `new_tokens` with `past` tokens already cached,
    /// as a dedicated (non-mixed) iteration.
    pub fn prefill_time(&self, new_tokens: u64, past: u64) -> SimDuration {
        self.iteration_time(&IterationSpec {
            prefill_tokens: new_tokens,
            prefill_past_tokens: past,
            prefill_seqs: 1,
            decode_batch: 0,
            decode_context: 0,
        })
    }

    /// Latency of a pure decode iteration for `batch` sequences holding
    /// `context_total` cached tokens between them.
    pub fn decode_time(&self, batch: u32, context_total: u64) -> SimDuration {
        self.iteration_time(&IterationSpec {
            prefill_tokens: 0,
            prefill_past_tokens: 0,
            prefill_seqs: 0,
            decode_batch: batch,
            decode_context: context_total,
        })
    }

    /// Single-stream decode rate in tokens/second (batch of one, short
    /// context).
    pub fn peak_decode_rate(&self) -> f64 {
        1.0 / self.decode_time(1, 128).as_secs_f64()
    }

    /// Number of KV-cache tokens that fit on the device when the engine is
    /// allowed `mem_frac` of total VRAM (the SGLang `mem-frac` knob).
    ///
    /// Returns zero when the weights alone exceed the budget.
    pub fn kv_token_capacity(&self, mem_frac: f64) -> u64 {
        let usable = (self.hardware.vram_bytes as f64 * mem_frac) as u64;
        let budget = usable
            .saturating_sub(self.model.weight_bytes())
            .saturating_sub(self.overheads.activation_reserve_bytes);
        budget / self.model.kv_bytes_per_token()
    }

    /// Aggregate decode throughput (tokens/second) for a batch of `batch`
    /// sequences averaging `avg_context` cached tokens each.
    pub fn batch_throughput(&self, batch: u32, avg_context: u64) -> f64 {
        if batch == 0 {
            return 0.0;
        }
        let t = self.decode_time(batch, batch as u64 * avg_context);
        batch as f64 / t.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h200_llama() -> CostModel {
        CostModel::new(ModelProfile::llama3_8b(), HardwareProfile::h200())
    }

    fn rtx_llama() -> CostModel {
        CostModel::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090())
    }

    #[test]
    fn empty_iteration_is_free() {
        assert_eq!(
            h200_llama().iteration_time(&IterationSpec::default()),
            SimDuration::ZERO
        );
    }

    #[test]
    fn decode_slower_on_weaker_hardware() {
        let h = h200_llama().decode_time(1, 512);
        let r = rtx_llama().decode_time(1, 512);
        assert!(r > h, "4090 {r} should be slower than H200 {h}");
    }

    #[test]
    fn decode_time_grows_with_context() {
        let c = h200_llama();
        let short = c.decode_time(64, 64 * 128);
        let long = c.decode_time(64, 64 * 4096);
        assert!(long > short);
    }

    #[test]
    fn decode_time_grows_with_batch() {
        let c = h200_llama();
        assert!(c.decode_time(256, 256 * 1024) > c.decode_time(8, 8 * 1024));
    }

    #[test]
    fn batching_improves_aggregate_throughput() {
        let c = h200_llama();
        let single = c.batch_throughput(1, 1024);
        let batched = c.batch_throughput(64, 1024);
        assert!(
            batched > 10.0 * single,
            "batched {batched} vs single {single}"
        );
    }

    #[test]
    fn large_batches_hit_diminishing_returns() {
        // The marginal throughput of going 128 -> 256 must be much less than
        // 1 -> 2: memory bandwidth saturates (§3.3 batch-vs-decode-speed).
        let c = h200_llama();
        let gain_small = c.batch_throughput(2, 2048) - c.batch_throughput(1, 2048);
        let gain_large = (c.batch_throughput(256, 2048) - c.batch_throughput(128, 2048)) / 128.0;
        assert!(gain_large < gain_small * 0.6);
    }

    #[test]
    fn prefill_scales_roughly_linearly() {
        let c = rtx_llama();
        let t512 = c.prefill_time(512, 0).as_secs_f64();
        let t2048 = c.prefill_time(2048, 0).as_secs_f64();
        let ratio = t2048 / t512;
        assert!((3.0..6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn peak_decode_rates_are_plausible() {
        // Published single-stream decode rates: H200 ≈ 150–300 tok/s,
        // RTX 4090 ≈ 40–80 tok/s for an 8B model in fp16.
        let h = h200_llama().peak_decode_rate();
        let r = rtx_llama().peak_decode_rate();
        assert!((100.0..400.0).contains(&h), "H200 {h}");
        assert!((30.0..90.0).contains(&r), "4090 {r}");
    }

    #[test]
    fn per_request_rate_drops_under_heavy_batching() {
        // Figure 2 (right): under load per-request speed falls but stays
        // well above reading speed.
        let c = h200_llama();
        let t = c.decode_time(256, 256 * 2000).as_secs_f64();
        let per_request = 1.0 / t;
        assert!(per_request < c.peak_decode_rate() / 2.0);
        assert!(
            per_request > 12.0,
            "still above reading speed: {per_request}"
        );
    }

    #[test]
    fn kv_capacity_reflects_mem_frac() {
        let c = h200_llama();
        let small = c.kv_token_capacity(0.3);
        let large = c.kv_token_capacity(0.9);
        assert!(large > 2 * small);
        assert!(small > 50_000, "H200 at 0.3 still holds plenty: {small}");
    }

    #[test]
    fn kv_capacity_zero_when_weights_do_not_fit() {
        let c = CostModel::new(ModelProfile::qwen2_5_32b(), HardwareProfile::rtx4090());
        // 65 GB of weights cannot fit a 24 GB card.
        assert_eq!(c.kv_token_capacity(1.0), 0);
    }

    #[test]
    fn qwen32b_slower_than_llama8b() {
        let big = CostModel::new(ModelProfile::qwen2_5_32b(), HardwareProfile::h200());
        let small = h200_llama();
        assert!(big.peak_decode_rate() < small.peak_decode_rate() / 2.0);
    }

    #[test]
    fn mixed_batch_costs_more_than_decode_alone() {
        let c = h200_llama();
        let decode_only = c.decode_time(32, 32 * 1024);
        let mixed = c.iteration_time(&IterationSpec {
            prefill_tokens: 1024,
            prefill_past_tokens: 0,
            prefill_seqs: 1,
            decode_batch: 32,
            decode_context: 32 * 1024,
        });
        assert!(mixed > decode_only);
    }
}
