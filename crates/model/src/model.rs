//! Transformer model profiles.

use serde::{Deserialize, Serialize};

/// Numeric precision of weights and KV cache entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit IEEE float.
    Fp16,
    /// 16-bit brain float.
    Bf16,
    /// 8-bit float (weight-only quantisation).
    Fp8,
    /// 8-bit integer.
    Int8,
}

impl DType {
    /// Bytes per element.
    pub const fn bytes(self) -> u64 {
        match self {
            DType::Fp16 | DType::Bf16 => 2,
            DType::Fp8 | DType::Int8 => 1,
        }
    }
}

/// Architecture description of a decoder-only transformer.
///
/// Only the quantities that drive memory footprint and arithmetic intensity
/// are retained; everything the scheduler or KV manager needs derives from
/// these.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Human-readable name, e.g. `"Llama3-8B"`.
    pub name: String,
    /// Total parameter count.
    pub params: u64,
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden (model) dimension.
    pub hidden: u32,
    /// Number of attention (query) heads.
    pub heads: u32,
    /// Number of key/value heads (GQA); equals `heads` for MHA.
    pub kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// Weight and KV precision.
    pub dtype: DType,
}

impl ModelProfile {
    /// Meta Llama 3 8B (32 layers, GQA 8 KV heads).
    pub fn llama3_8b() -> Self {
        ModelProfile {
            name: "Llama3-8B".to_string(),
            params: 8_030_000_000,
            layers: 32,
            hidden: 4096,
            heads: 32,
            kv_heads: 8,
            head_dim: 128,
            dtype: DType::Fp16,
        }
    }

    /// Qwen2 7B (28 layers, GQA 4 KV heads).
    pub fn qwen2_7b() -> Self {
        ModelProfile {
            name: "Qwen2-7B".to_string(),
            params: 7_620_000_000,
            layers: 28,
            hidden: 3584,
            heads: 28,
            kv_heads: 4,
            head_dim: 128,
            dtype: DType::Fp16,
        }
    }

    /// Qwen2.5 7B (same skeleton as Qwen2-7B).
    pub fn qwen2_5_7b() -> Self {
        ModelProfile {
            name: "Qwen2.5-7B".to_string(),
            params: 7_610_000_000,
            layers: 28,
            hidden: 3584,
            heads: 28,
            kv_heads: 4,
            head_dim: 128,
            dtype: DType::Fp16,
        }
    }

    /// Qwen2.5 32B (64 layers, GQA 8 KV heads).
    pub fn qwen2_5_32b() -> Self {
        ModelProfile {
            name: "Qwen2.5-32B".to_string(),
            params: 32_760_000_000,
            layers: 64,
            hidden: 5120,
            heads: 40,
            kv_heads: 8,
            head_dim: 128,
            dtype: DType::Fp16,
        }
    }

    /// Bytes of KV cache stored per token across all layers.
    ///
    /// `2` covers the separate key and value tensors.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.layers as u64 * self.kv_heads as u64 * self.head_dim as u64 * self.dtype.bytes()
    }

    /// Bytes occupied by model weights.
    pub fn weight_bytes(&self) -> u64 {
        self.params * self.dtype.bytes()
    }

    /// Dense FLOPs required to process one token through the linear layers
    /// (the classic `2 × params` estimate).
    pub fn flops_per_token(&self) -> f64 {
        2.0 * self.params as f64
    }

    /// Extra attention FLOPs for one new token attending over `context`
    /// previous tokens (QKᵀ plus AV across all layers).
    pub fn attn_flops(&self, context: u64) -> f64 {
        // 2 matmuls × 2 FLOPs per MAC × (kv_heads × head_dim) per layer.
        4.0 * self.layers as f64 * context as f64 * (self.heads as f64 * self.head_dim as f64)
    }

    /// All built-in profiles, handy for sweeps (mirrors
    /// `HardwareProfile::all`).
    pub fn all() -> Vec<ModelProfile> {
        vec![
            Self::llama3_8b(),
            Self::qwen2_7b(),
            Self::qwen2_5_7b(),
            Self::qwen2_5_32b(),
        ]
    }

    /// Looks a profile up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        Self::all()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama3_kv_bytes_match_hand_calc() {
        // 2 × 32 layers × 8 kv heads × 128 dim × 2 bytes = 131072.
        assert_eq!(ModelProfile::llama3_8b().kv_bytes_per_token(), 131_072);
    }

    #[test]
    fn qwen2_7b_kv_bytes_match_hand_calc() {
        // 2 × 28 × 4 × 128 × 2 = 57344.
        assert_eq!(ModelProfile::qwen2_7b().kv_bytes_per_token(), 57_344);
    }

    #[test]
    fn qwen32b_kv_bytes_match_hand_calc() {
        // 2 × 64 × 8 × 128 × 2 = 262144.
        assert_eq!(ModelProfile::qwen2_5_32b().kv_bytes_per_token(), 262_144);
    }

    #[test]
    fn weight_bytes_scale_with_dtype() {
        let mut m = ModelProfile::llama3_8b();
        let fp16 = m.weight_bytes();
        m.dtype = DType::Fp8;
        assert_eq!(m.weight_bytes() * 2, fp16);
    }

    #[test]
    fn flops_per_token_is_2p() {
        let m = ModelProfile::llama3_8b();
        assert_eq!(m.flops_per_token(), 2.0 * 8_030_000_000.0);
    }

    #[test]
    fn attn_flops_grow_linearly_with_context() {
        let m = ModelProfile::llama3_8b();
        assert_eq!(m.attn_flops(2000), 2.0 * m.attn_flops(1000));
        assert_eq!(m.attn_flops(0), 0.0);
    }

    #[test]
    fn dtype_bytes() {
        assert_eq!(DType::Fp16.bytes(), 2);
        assert_eq!(DType::Bf16.bytes(), 2);
        assert_eq!(DType::Fp8.bytes(), 1);
        assert_eq!(DType::Int8.bytes(), 1);
    }
}
