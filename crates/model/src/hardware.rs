//! Accelerator hardware profiles.

use serde::{Deserialize, Serialize};

const GIB: u64 = 1 << 30;

/// Capability description of one accelerator.
///
/// The numbers are the published spec-sheet values; the cost model applies
/// efficiency factors on top, so these should stay at their nominal values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Human-readable name, e.g. `"H200"`.
    pub name: String,
    /// Device memory capacity in bytes.
    pub vram_bytes: u64,
    /// Device memory bandwidth in bytes/second.
    pub mem_bw: f64,
    /// Dense FP16/BF16 throughput in FLOP/s.
    pub flops: f64,
    /// Host link (PCIe or equivalent) bandwidth in bytes/second, per
    /// direction. Host-to-device and device-to-host streams are independent.
    pub pcie_bw: f64,
    /// Fixed per-transfer host-link latency in microseconds (driver +
    /// DMA setup).
    pub pcie_latency_us: u64,
}

impl HardwareProfile {
    /// NVIDIA GeForce RTX 4090: 24 GiB GDDR6X, PCIe 4.0 x16.
    pub fn rtx4090() -> Self {
        HardwareProfile {
            name: "RTX4090".to_string(),
            vram_bytes: 24 * GIB,
            mem_bw: 1.008e12,
            flops: 82.6e12,
            pcie_bw: 25.0e9,
            pcie_latency_us: 15,
        }
    }

    /// NVIDIA RTX A6000: 48 GiB GDDR6, PCIe 4.0 x16.
    pub fn a6000() -> Self {
        HardwareProfile {
            name: "A6000".to_string(),
            vram_bytes: 48 * GIB,
            mem_bw: 0.768e12,
            flops: 77.4e12,
            pcie_bw: 25.0e9,
            pcie_latency_us: 15,
        }
    }

    /// NVIDIA H200: 141 GiB HBM3e, PCIe 5.0 x16.
    pub fn h200() -> Self {
        HardwareProfile {
            name: "H200".to_string(),
            vram_bytes: 141 * GIB,
            mem_bw: 4.8e12,
            flops: 989.0e12,
            pcie_bw: 55.0e9,
            pcie_latency_us: 10,
        }
    }

    /// Huawei Ascend 910B: 64 GiB HBM2e, PCIe 4.0 x16 host link.
    pub fn ascend910b() -> Self {
        HardwareProfile {
            name: "Ascend910B".to_string(),
            vram_bytes: 64 * GIB,
            mem_bw: 1.0e12,
            flops: 320.0e12,
            pcie_bw: 25.0e9,
            pcie_latency_us: 20,
        }
    }

    /// All built-in profiles, handy for sweeps.
    pub fn all() -> Vec<HardwareProfile> {
        vec![
            Self::rtx4090(),
            Self::a6000(),
            Self::h200(),
            Self::ascend910b(),
        ]
    }

    /// Looks a profile up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<HardwareProfile> {
        Self::all()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_sane_ordering() {
        let h200 = HardwareProfile::h200();
        let r4090 = HardwareProfile::rtx4090();
        let a6000 = HardwareProfile::a6000();
        assert!(h200.vram_bytes > a6000.vram_bytes);
        assert!(a6000.vram_bytes > r4090.vram_bytes);
        assert!(h200.mem_bw > r4090.mem_bw);
        assert!(h200.flops > a6000.flops);
    }

    #[test]
    fn pcie_much_slower_than_hbm() {
        for p in HardwareProfile::all() {
            assert!(
                p.mem_bw / p.pcie_bw > 10.0,
                "{}: HBM should dwarf PCIe",
                p.name
            );
        }
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert_eq!(HardwareProfile::by_name("h200").unwrap().name, "H200");
        assert_eq!(HardwareProfile::by_name("RTX4090").unwrap().name, "RTX4090");
        assert!(HardwareProfile::by_name("tpu-v5").is_none());
    }
}
