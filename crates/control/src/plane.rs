//! The control plane: policy decisions applied to a replica lifecycle.
//!
//! A [`ControlPlane`] is the bookkeeping half of fleet elasticity. The
//! cluster calls [`ControlPlane::barrier`] on the coordinator thread at
//! every arrival barrier — the only instants at which replicas are
//! mutually observable — and the plane, in order:
//!
//! 1. **bills** the interval since the previous barrier (billable
//!    replicas × seconds into the [`FleetStats`] integral),
//! 2. **promotes** provisioning replicas whose boot delay has elapsed,
//! 3. **retires** draining replicas that have emptied,
//! 4. **consults** the [`ScalePolicy`] over the active replicas' load
//!    snapshots and the arrival group about to be dispatched, and
//! 5. **applies** the decision, clamped to `[min_replicas,
//!    max_replicas]` and gated by the cooldown: scale-ups reactivate
//!    draining replicas first (lowest index — the stable core of the
//!    fleet) and then provision new ones; scale-downs drain the active
//!    replicas with the fewest live requests (tie-break: highest index,
//!    so the bootstrap fleet retires last).
//!
//! Everything is synchronous, deterministic, and logged as
//! [`ScaleEvent`]s — the event log is part of the executor-invariance
//! contract the cluster's property tests enforce.

use tokenflow_core::{EngineConfig, EngineLoad};
use tokenflow_metrics::FleetStats;
use tokenflow_sim::{SimDuration, SimTime};
use tokenflow_trace::{TraceEvent, TraceEventKind, TraceSink, TraceSource};
use tokenflow_workload::RequestSpec;

use crate::lifecycle::{ReplicaPhase, ScaleEvent, ScaleEventKind};
use crate::policy::{FleetObservation, ScaleDecision, ScalePolicy};

/// Static configuration of a control plane.
#[derive(Debug, Clone)]
pub struct ControlConfig {
    /// The active fleet never shrinks below this (must be ≥ 1).
    pub min_replicas: usize,
    /// Billable replicas (provisioning + active + draining) never exceed
    /// this.
    pub max_replicas: usize,
    /// Boot delay of a newly provisioned replica.
    pub boot_delay: SimDuration,
    /// Minimum time after any applied scale decision before a
    /// **scale-down** is applied. Scale-ups are never gated — a burst
    /// cannot wait out a cooldown, while draining too eagerly right
    /// after scaling (in either direction) is the classic flap that
    /// guts a fleet mid-crowd. Promotion and retirement are lifecycle
    /// facts, not decisions, and ignore it entirely.
    pub cooldown: SimDuration,
    /// Per-replica sustainable decode throughput Γ, tokens/second — the
    /// capacity side of the fleet-level `Σ rᵢ ≤ n·Γ` test.
    pub gamma: f64,
    /// Periodic control tick: when set, the cluster inserts a synthetic
    /// arrival barrier at this interval whenever the next real arrival is
    /// further away (or the trace has ended). Scale decisions are
    /// otherwise only observed at arrival barriers, which leaves the
    /// plane blind through long idle drains — a replica whose residents
    /// finish mid-drain would not retire (and stop billing) until the
    /// run's terminal barrier. `None` (the default) keeps the plane
    /// arrival-driven.
    pub control_tick: Option<SimDuration>,
}

impl ControlConfig {
    /// A configuration with Γ derived from the engine's own cost model,
    /// a 10 s boot delay, and a 5 s cooldown.
    ///
    /// Γ is the **stall-free streaming capacity**, not the raw batch
    /// throughput: a decode batch of `b` streams delivers each member
    /// one token per iteration, so a member stalls as soon as the
    /// iteration takes longer than its inter-token deadline `1/r`. Γ is
    /// therefore `b* × r̄` for the largest batch `b*` whose iteration
    /// (at a chat-scale running context) still meets the reference
    /// rate r̄ — the paper's Figure 2 reference of twice adult reading
    /// speed. Raw batch throughput keeps rising long past that point,
    /// which is exactly the regime where every stream rebuffers.
    pub fn for_engine(config: &EngineConfig) -> Self {
        let cost = config.cost_model();
        let reference_rate = tokenflow_workload::presets::DEFAULT_RATE;
        let deadline = 1.0 / reference_rate;
        let mut b = 1u32;
        while b < config.max_batch
            && cost
                .decode_time(b + 1, u64::from(b + 1) * 1_024)
                .as_secs_f64()
                <= deadline
        {
            b += 1;
        }
        ControlConfig {
            min_replicas: 1,
            max_replicas: 64,
            boot_delay: SimDuration::from_secs(10),
            cooldown: SimDuration::from_secs(5),
            gamma: f64::from(b) * reference_rate,
            control_tick: None,
        }
    }

    /// Sets the fleet floor.
    pub fn with_min_replicas(mut self, n: usize) -> Self {
        self.min_replicas = n;
        self
    }

    /// Sets the fleet ceiling.
    pub fn with_max_replicas(mut self, n: usize) -> Self {
        self.max_replicas = n;
        self
    }

    /// Sets the boot delay.
    pub fn with_boot_delay(mut self, d: SimDuration) -> Self {
        self.boot_delay = d;
        self
    }

    /// Sets the decision cooldown.
    pub fn with_cooldown(mut self, d: SimDuration) -> Self {
        self.cooldown = d;
        self
    }

    /// Overrides Γ.
    pub fn with_gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Enables the periodic control tick (see
    /// [`ControlConfig::control_tick`]).
    ///
    /// # Panics
    ///
    /// Panics on a zero interval (it would stall the cluster's epoch
    /// loop on a barrier that never advances time).
    pub fn with_control_tick(mut self, interval: SimDuration) -> Self {
        assert!(
            interval > SimDuration::ZERO,
            "control tick interval must be positive"
        );
        self.control_tick = Some(interval);
        self
    }
}

/// The control plane: a [`ScalePolicy`] plus the replica lifecycle it
/// drives and the cost accounting it owns.
pub struct ControlPlane {
    policy: Box<dyn ScalePolicy>,
    config: ControlConfig,
    phases: Vec<ReplicaPhase>,
    /// Replica indices that fail to boot: when their boot delay elapses
    /// they move to [`ReplicaPhase::Failed`] instead of activating.
    /// Empty outside fault-injected runs.
    boot_failures: Vec<usize>,
    last_scale_at: Option<SimTime>,
    last_billed_at: SimTime,
    stats: FleetStats,
    events: Vec<ScaleEvent>,
    /// Decision-event journal sink (source [`TraceSource::Control`]);
    /// a no-op unless [`ControlPlane::enable_trace`] was called.
    trace: TraceSink,
    /// Retained term buffer for traced policy consultations.
    trace_terms: Vec<(&'static str, f64)>,
}

impl ControlPlane {
    /// Creates a plane managing a bootstrap fleet of `bootstrap` already-
    /// active replicas, observed from time zero.
    ///
    /// # Panics
    ///
    /// Panics on a zero `min_replicas`, a ceiling below the floor, a
    /// non-positive Γ, or a bootstrap fleet outside the configured
    /// bounds.
    pub fn new(
        policy: impl ScalePolicy + 'static,
        config: ControlConfig,
        bootstrap: usize,
    ) -> Self {
        assert!(config.min_replicas >= 1, "fleet floor must be at least 1");
        assert!(
            config.max_replicas >= config.min_replicas,
            "fleet ceiling below floor"
        );
        assert!(
            config.gamma.is_finite() && config.gamma > 0.0,
            "gamma must be positive"
        );
        assert!(
            (config.min_replicas..=config.max_replicas).contains(&bootstrap),
            "bootstrap fleet of {bootstrap} outside [{}, {}]",
            config.min_replicas,
            config.max_replicas
        );
        let mut stats = FleetStats::new("active-replicas");
        stats.provisioned = bootstrap;
        stats.sample(SimTime::ZERO, bootstrap);
        ControlPlane {
            policy: Box::new(policy),
            config,
            phases: vec![ReplicaPhase::Active; bootstrap],
            boot_failures: Vec::new(),
            last_scale_at: None,
            last_billed_at: SimTime::ZERO,
            stats,
            events: Vec::new(),
            trace: TraceSink::disabled(),
            trace_terms: Vec::new(),
        }
    }

    /// Enables decision tracing: scale decisions (with the policy's term
    /// values) are journaled under [`TraceSource::Control`].
    pub fn enable_trace(&mut self) {
        self.trace = TraceSink::enabled(TraceSource::Control);
    }

    /// Takes the trace events buffered so far, leaving the sink (and its
    /// sequence counter) running. Empty when tracing is off.
    pub fn take_trace_events(&mut self) -> Vec<TraceEvent> {
        self.trace.drain()
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The configuration.
    pub fn config(&self) -> &ControlConfig {
        &self.config
    }

    /// Lifecycle phase of every replica ever provisioned, by index.
    pub fn phases(&self) -> &[ReplicaPhase] {
        &self.phases
    }

    /// Total replicas ever provisioned (the cluster must keep one engine
    /// per entry).
    pub fn replica_count(&self) -> usize {
        self.phases.len()
    }

    /// Indices of replicas currently eligible for dispatch.
    pub fn active_indices(&self) -> Vec<usize> {
        (0..self.phases.len())
            .filter(|&i| self.phases[i].accepts_dispatch())
            .collect()
    }

    /// The decision log so far.
    pub fn events(&self) -> &[ScaleEvent] {
        &self.events
    }

    /// The cost accounting so far (finalise with
    /// [`ControlPlane::finalize`] before reading at run end).
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    fn count(&self, pred: impl Fn(ReplicaPhase) -> bool) -> usize {
        self.phases.iter().filter(|&&p| pred(p)).count()
    }

    fn bill_to(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_billed_at).as_secs_f64();
        let billable = self.count(ReplicaPhase::is_billable);
        self.stats.bill(billable, dt);
        self.last_billed_at = self.last_billed_at.max(now);
    }

    fn record(&mut self, at: SimTime, replica: usize, kind: ScaleEventKind) {
        self.events.push(ScaleEvent { at, replica, kind });
    }

    /// Runs one barrier step (see the module docs for the exact order)
    /// and returns how many events it appended to the log.
    ///
    /// `loads` must hold one snapshot per managed replica, in replica
    /// order; `arrivals` is the group about to be dispatched at `now`.
    /// Barrier times must be non-decreasing.
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not cover every managed replica.
    pub fn barrier(&mut self, now: SimTime, loads: &[EngineLoad], arrivals: &[RequestSpec]) {
        assert_eq!(
            loads.len(),
            self.phases.len(),
            "one load snapshot per managed replica"
        );
        // 1. Bill the elapsed interval under the old phase set.
        self.bill_to(now);

        // 2. Promote provisioning replicas whose boot delay elapsed —
        //    unless fault injection scripted the boot to fail, in which
        //    case the replica fail-stops instead of activating.
        for i in 0..self.phases.len() {
            if let ReplicaPhase::Provisioning { ready_at } = self.phases[i] {
                if ready_at <= now {
                    if self.boot_failures.contains(&i) {
                        self.phases[i] = ReplicaPhase::Failed;
                        self.record(now, i, ScaleEventKind::BootFailed);
                    } else {
                        self.phases[i] = ReplicaPhase::Active;
                        self.record(now, i, ScaleEventKind::Activated);
                    }
                }
            }
        }

        // 3. Retire draining replicas that have emptied.
        self.retire_empty(now, loads);

        // 4. Consult the policy — on every barrier, so stateful policies
        //    observe all traffic even when the cooldown will gate them.
        let active_indices = self.active_indices();
        let active_loads: Vec<EngineLoad> = active_indices.iter().map(|&i| loads[i]).collect();
        let obs = FleetObservation {
            now,
            active: &active_loads,
            provisioning: self.count(|p| matches!(p, ReplicaPhase::Provisioning { .. })),
            draining: self.count(|p| p == ReplicaPhase::Draining),
            arrivals,
            gamma: self.config.gamma,
        };
        let decision = if self.trace.is_enabled() {
            let mut terms = std::mem::take(&mut self.trace_terms);
            let d = self.policy.decide_traced(&obs, &mut terms);
            self.trace_terms = terms;
            d
        } else {
            self.policy.decide(&obs)
        };

        let in_cooldown = self
            .last_scale_at
            .is_some_and(|t| now.saturating_since(t) < self.config.cooldown);

        // 5. Apply, clamped; the cooldown gates only scale-downs.
        let (delta, applied) = match decision {
            ScaleDecision::Hold => (0, true),
            ScaleDecision::ScaleUp(k) => {
                self.scale_up(now, k);
                (k as i64, true)
            }
            ScaleDecision::ScaleDown(k) if !in_cooldown => {
                self.scale_down(now, k, loads);
                (-(k as i64), true)
            }
            ScaleDecision::ScaleDown(k) => (-(k as i64), false),
        };
        // Journal every non-Hold decision — including cooldown-gated
        // ones, which explain why the fleet did not shrink.
        if delta != 0 {
            self.trace.emit(
                now,
                TraceEventKind::Scale {
                    delta,
                    applied,
                    active: active_indices.len() as u64,
                    terms: self.trace_terms.clone(),
                },
            );
        }

        let active_now = self.count(ReplicaPhase::accepts_dispatch);
        self.stats.sample(now, active_now);
    }

    fn scale_up(&mut self, now: SimTime, k: usize) {
        let mut remaining = k;
        let mut changed = false;
        // Reactivate draining replicas first — already booted, already
        // warm; lowest index first keeps the fleet's stable core.
        for i in 0..self.phases.len() {
            if remaining == 0 {
                break;
            }
            if self.phases[i] == ReplicaPhase::Draining {
                self.phases[i] = ReplicaPhase::Active;
                self.record(now, i, ScaleEventKind::Reactivated);
                remaining -= 1;
                changed = true;
            }
        }
        // Then provision new ones, up to the billable ceiling.
        while remaining > 0 && self.count(ReplicaPhase::is_billable) < self.config.max_replicas {
            let ready_at = now.saturating_add(self.config.boot_delay);
            let replica = self.phases.len();
            self.phases.push(ReplicaPhase::Provisioning { ready_at });
            self.stats.provisioned += 1;
            self.record(now, replica, ScaleEventKind::Provisioned { ready_at });
            remaining -= 1;
            changed = true;
        }
        if changed {
            self.last_scale_at = Some(now);
        }
    }

    fn scale_down(&mut self, now: SimTime, k: usize, loads: &[EngineLoad]) {
        let active = self.active_indices();
        let allowed = active.len().saturating_sub(self.config.min_replicas);
        if allowed == 0 {
            return;
        }
        // Victims: fewest live requests first (cheapest to drain),
        // tie-break highest index (the bootstrap fleet retires last).
        let mut victims = active;
        victims.sort_by_key(|&i| (loads[i].live, usize::MAX - i));
        let mut changed = false;
        for &i in victims.iter().take(k.min(allowed)) {
            self.phases[i] = ReplicaPhase::Draining;
            self.record(now, i, ScaleEventKind::DrainStarted);
            changed = true;
        }
        if changed {
            self.last_scale_at = Some(now);
        }
    }

    /// Marks replica indices that will fail to boot: when their boot
    /// delay elapses they move to [`ReplicaPhase::Failed`] (with a
    /// [`ScaleEventKind::BootFailed`] event) instead of activating.
    /// Indices the fleet never grows to are simply never hit.
    pub fn set_boot_failures(&mut self, indices: impl IntoIterator<Item = usize>) {
        self.boot_failures.extend(indices);
    }

    /// Fail-stops replica `replica` at `now`: bills the elapsed interval
    /// under the old phase set first (the machine was alive — and
    /// billing — until this very instant), then moves it to
    /// [`ReplicaPhase::Failed`] and records a
    /// [`ScaleEventKind::Crashed`] event. Failed replicas stop billing,
    /// never dispatch, and never return; the cluster's recovery path
    /// owns the requests they lost. A replica already out of the fleet
    /// (retired or failed) is left untouched.
    pub fn mark_failed(&mut self, now: SimTime, replica: usize) {
        if matches!(
            self.phases[replica],
            ReplicaPhase::Retired | ReplicaPhase::Failed
        ) {
            return;
        }
        self.bill_to(now);
        self.phases[replica] = ReplicaPhase::Failed;
        self.record(now, replica, ScaleEventKind::Crashed);
    }

    /// A lifecycle-only barrier for the run's end: bills the final
    /// interval and retires draining replicas that have emptied, but
    /// consults no policy — there are no arrivals left to size for.
    /// Without this, a replica drained after the last arrival would
    /// stay `Draining` forever (retirement is observed at barriers, and
    /// barriers stop with the arrivals).
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not cover every managed replica.
    pub fn close(&mut self, now: SimTime, loads: &[EngineLoad]) {
        assert_eq!(
            loads.len(),
            self.phases.len(),
            "one load snapshot per managed replica"
        );
        self.bill_to(now);
        self.retire_empty(now, loads);
    }

    /// Retires every draining replica whose snapshot shows no live work.
    fn retire_empty(&mut self, now: SimTime, loads: &[EngineLoad]) {
        let empties: Vec<usize> = self
            .phases
            .iter()
            .zip(loads)
            .enumerate()
            .filter(|(_, (&phase, load))| phase == ReplicaPhase::Draining && load.live == 0)
            .map(|(i, _)| i)
            .collect();
        for i in empties {
            self.phases[i] = ReplicaPhase::Retired;
            self.stats.retired += 1;
            self.record(now, i, ScaleEventKind::Retired);
        }
    }

    /// Closes the cost integral and timeline at the run's end instant
    /// and returns the final accounting plus the full decision log.
    pub fn finalize(mut self, end: SimTime) -> (FleetStats, Vec<ScaleEvent>) {
        let end = end.max(self.last_billed_at);
        self.bill_to(end);
        let active_now = self.count(ReplicaPhase::accepts_dispatch);
        self.stats.sample(end, active_now);
        (self.stats, self.events)
    }
}

// Evaluated at compile time: a control plane (with its boxed policy)
// must stay movable across threads alongside its cluster.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ControlPlane>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ScriptedPolicy;
    use tokenflow_sim::RequestId;

    fn cfg(gamma: f64) -> ControlConfig {
        ControlConfig {
            min_replicas: 1,
            max_replicas: 8,
            boot_delay: SimDuration::from_secs(10),
            cooldown: SimDuration::ZERO,
            gamma,
            control_tick: None,
        }
    }

    fn load(live: usize, rate_sum: f64) -> EngineLoad {
        EngineLoad {
            now: SimTime::ZERO,
            submitted: live,
            live,
            arrived: live,
            waiting: 0,
            running: live,
            transitioning: 0,
            rate_sum,
            gpu_free_tokens: 50_000,
            gpu_total_tokens: 100_000,
            d2h_queue_len: 0,
            h2d_queue_len: 0,
            pending_prefill_tokens: 0,
        }
    }

    fn spec(rate: f64) -> RequestSpec {
        RequestSpec {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            prompt_tokens: 128,
            output_tokens: 256,
            rate,
        }
    }

    #[test]
    fn provision_boot_delay_then_activation() {
        let script = ScriptedPolicy::new(vec![(SimTime::ZERO, 3)]);
        let mut plane = ControlPlane::new(script, cfg(100.0), 1);
        plane.barrier(SimTime::ZERO, &[load(0, 0.0)], &[spec(10.0)]);
        assert_eq!(plane.replica_count(), 3);
        assert_eq!(plane.active_indices(), vec![0]);
        // Before the boot delay: still provisioning.
        plane.barrier(
            SimTime::from_secs(5),
            &[load(1, 10.0), load(0, 0.0), load(0, 0.0)],
            &[],
        );
        assert_eq!(plane.active_indices(), vec![0]);
        // After: both promoted.
        plane.barrier(
            SimTime::from_secs(10),
            &[load(1, 10.0), load(0, 0.0), load(0, 0.0)],
            &[],
        );
        assert_eq!(plane.active_indices(), vec![0, 1, 2]);
        let activated = plane
            .events()
            .iter()
            .filter(|e| e.kind == ScaleEventKind::Activated)
            .count();
        assert_eq!(activated, 2);
    }

    #[test]
    fn drain_excludes_then_retires_when_empty() {
        let script = ScriptedPolicy::new(vec![(SimTime::from_secs(1), 1)]);
        let mut plane = ControlPlane::new(script, cfg(100.0), 2);
        // Scale-down at t=1: replica 1 (fewest live, higher index) drains.
        plane.barrier(SimTime::from_secs(1), &[load(3, 30.0), load(2, 20.0)], &[]);
        assert_eq!(plane.active_indices(), vec![0]);
        assert_eq!(plane.phases()[1], ReplicaPhase::Draining);
        // Still busy at the next barrier: stays draining.
        plane.barrier(SimTime::from_secs(2), &[load(3, 30.0), load(1, 10.0)], &[]);
        assert_eq!(plane.phases()[1], ReplicaPhase::Draining);
        // Empty: retired.
        plane.barrier(SimTime::from_secs(3), &[load(3, 30.0), load(0, 0.0)], &[]);
        assert_eq!(plane.phases()[1], ReplicaPhase::Retired);
        let (stats, events) = plane.finalize(SimTime::from_secs(3));
        assert_eq!(stats.retired, 1);
        assert!(events
            .iter()
            .any(|e| e.kind == ScaleEventKind::Retired && e.replica == 1));
    }

    #[test]
    fn scale_up_reactivates_draining_before_provisioning() {
        let script =
            ScriptedPolicy::new(vec![(SimTime::from_secs(1), 1), (SimTime::from_secs(2), 2)]);
        let mut plane = ControlPlane::new(script, cfg(100.0), 2);
        plane.barrier(SimTime::from_secs(1), &[load(3, 30.0), load(2, 20.0)], &[]);
        assert_eq!(plane.phases()[1], ReplicaPhase::Draining);
        // Target back to 2: the draining replica is reactivated, no new
        // replica is provisioned.
        plane.barrier(SimTime::from_secs(2), &[load(3, 30.0), load(2, 20.0)], &[]);
        assert_eq!(plane.replica_count(), 2);
        assert_eq!(plane.active_indices(), vec![0, 1]);
        assert!(plane
            .events()
            .iter()
            .any(|e| e.kind == ScaleEventKind::Reactivated && e.replica == 1));
    }

    #[test]
    fn fleet_bounds_clamp_decisions() {
        let script = ScriptedPolicy::new(vec![(SimTime::ZERO, 100), (SimTime::from_secs(1), 0)]);
        let mut plane = ControlPlane::new(script, cfg(100.0), 2);
        plane.barrier(SimTime::ZERO, &[load(1, 10.0), load(1, 10.0)], &[]);
        // Ceiling of 8 billable replicas.
        assert_eq!(plane.replica_count(), 8);
        // Target 0 clamps at the floor of 1 active replica.
        let loads: Vec<EngineLoad> = (0..8).map(|_| load(1, 10.0)).collect();
        plane.barrier(SimTime::from_secs(1), &loads, &[]);
        assert_eq!(plane.active_indices().len(), 1);
    }

    #[test]
    fn cooldown_gates_scale_down_but_not_scale_up_or_lifecycle() {
        let script = ScriptedPolicy::new(vec![(SimTime::ZERO, 2), (SimTime::from_secs(1), 1)]);
        let mut config = cfg(100.0);
        config.cooldown = SimDuration::from_secs(30);
        config.boot_delay = SimDuration::from_secs(2);
        let mut plane = ControlPlane::new(script, config, 1);
        // t=0: the scale-up to 2 applies immediately (ups are never
        // gated) and starts the cooldown window.
        plane.barrier(SimTime::ZERO, &[load(1, 10.0)], &[]);
        assert_eq!(plane.replica_count(), 2);
        // t=3: the step down to 1 is gated by the cooldown, but the
        // pending promotion of replica 1 (ready at t=2) still happens.
        plane.barrier(SimTime::from_secs(3), &[load(1, 10.0), load(0, 0.0)], &[]);
        assert_eq!(plane.active_indices(), vec![0, 1]);
        // t=31: cooldown over, the scale-down applies.
        plane.barrier(SimTime::from_secs(31), &[load(1, 10.0), load(0, 0.0)], &[]);
        assert_eq!(plane.active_indices().len(), 1);
    }

    #[test]
    fn billing_integrates_billable_replicas_and_stops_at_retirement() {
        let script = ScriptedPolicy::new(vec![(SimTime::from_secs(10), 1)]);
        let mut plane = ControlPlane::new(script, cfg(100.0), 2);
        // [0, 10): 2 active → 20 replica-seconds.
        plane.barrier(SimTime::from_secs(10), &[load(1, 10.0), load(0, 0.0)], &[]);
        // Replica 1 drained AND retired at t=10 (it was already empty).
        assert_eq!(plane.phases()[1], ReplicaPhase::Draining);
        plane.barrier(SimTime::from_secs(10), &[load(1, 10.0), load(0, 0.0)], &[]);
        assert_eq!(plane.phases()[1], ReplicaPhase::Retired);
        // [10, 30): only replica 0 bills.
        let (stats, _) = plane.finalize(SimTime::from_secs(30));
        assert_eq!(stats.replica_seconds, 20.0 + 20.0);
        assert_eq!(stats.peak_active, 2);
        assert_eq!(stats.provisioned, 2);
    }

    #[test]
    #[should_panic(expected = "one load snapshot per managed replica")]
    fn mismatched_snapshot_count_rejected() {
        let script = ScriptedPolicy::new(vec![]);
        let mut plane = ControlPlane::new(script, cfg(100.0), 2);
        plane.barrier(SimTime::ZERO, &[load(0, 0.0)], &[]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bootstrap_outside_bounds_rejected() {
        let script = ScriptedPolicy::new(vec![]);
        let _ = ControlPlane::new(script, cfg(100.0), 9);
    }
}
