//! The deterministic replica lifecycle.
//!
//! Every replica a control plane manages is in exactly one of four
//! phases, and every transition happens on the coordinator thread at an
//! arrival barrier — never mid-epoch — which is what keeps elastic
//! clusters byte-reproducible across epoch executors:
//!
//! ```text
//!             scale-up                    ready_at ≤ barrier
//!   (new) ──▶ Provisioning ─────────────────────────▶ Active
//!                                                      │  ▲
//!                                          scale-down  │  │ scale-up
//!                                                      ▼  │ (reactivate)
//!                              live == 0   ◀── Draining ──┘
//!                    Retired ◀─────────────────┘
//! ```
//!
//! * **Provisioning** — the replica is booting (configurable delay); it
//!   bills but serves nothing and is invisible to routers.
//! * **Active** — the only phase routers dispatch to.
//! * **Draining** — no new dispatch; resident requests run to completion.
//!   A scale-up may reactivate a draining replica (cheaper than booting a
//!   new one).
//! * **Retired** — empty and permanently out of the fleet: no dispatch,
//!   no epoch stepping, no billing.

use tokenflow_sim::SimTime;

/// Lifecycle phase of one replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPhase {
    /// Booting; becomes [`ReplicaPhase::Active`] at the first arrival
    /// barrier at or after `ready_at`.
    Provisioning {
        /// Earliest barrier instant at which the replica can activate.
        ready_at: SimTime,
    },
    /// Serving and eligible for dispatch.
    Active,
    /// Excluded from dispatch; finishing resident requests.
    Draining,
    /// Empty and permanently decommissioned.
    Retired,
    /// Fail-stopped (crash or boot failure): permanently out of the
    /// fleet, like [`ReplicaPhase::Retired`], but its resident requests
    /// were *lost*, not completed — the cluster's recovery path re-queues
    /// them. Only fault-injected runs ever reach this phase.
    Failed,
}

impl ReplicaPhase {
    /// True for the only phase routers may dispatch to.
    pub fn accepts_dispatch(self) -> bool {
        self == ReplicaPhase::Active
    }

    /// True while the replica costs replica-seconds (everything but
    /// [`ReplicaPhase::Retired`] and [`ReplicaPhase::Failed`] — booting
    /// machines bill too; a crashed machine stops billing at the barrier
    /// that observes the crash).
    pub fn is_billable(self) -> bool {
        !matches!(self, ReplicaPhase::Retired | ReplicaPhase::Failed)
    }

    /// Short name for reports and event logs.
    pub fn name(self) -> &'static str {
        match self {
            ReplicaPhase::Provisioning { .. } => "provisioning",
            ReplicaPhase::Active => "active",
            ReplicaPhase::Draining => "draining",
            ReplicaPhase::Retired => "retired",
            ReplicaPhase::Failed => "failed",
        }
    }
}

/// What happened to one replica at one barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleEventKind {
    /// A new replica was created in [`ReplicaPhase::Provisioning`].
    Provisioned {
        /// When its boot delay elapses.
        ready_at: SimTime,
    },
    /// A provisioning replica finished booting and joined the active set.
    Activated,
    /// An active replica was marked draining by a scale-down.
    DrainStarted,
    /// A draining replica was pulled back into the active set by a
    /// scale-up before it emptied.
    Reactivated,
    /// A draining replica emptied and left the fleet for good.
    Retired,
    /// A replica fail-stopped mid-run; its resident requests were lost
    /// to the recovery path. Only fault-injected runs record this.
    Crashed,
    /// A provisioning replica failed to boot and went straight to
    /// [`ReplicaPhase::Failed`]. Only fault-injected runs record this.
    BootFailed,
}

/// One entry of the control plane's decision log. The log is part of the
/// executor-invariance contract: sequential and parallel epoch execution
/// must produce identical event sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Barrier instant the transition happened at.
    pub at: SimTime,
    /// Replica index (stable for the lifetime of the cluster).
    pub replica: usize,
    /// The transition.
    pub kind: ScaleEventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_active_accepts_dispatch() {
        assert!(ReplicaPhase::Active.accepts_dispatch());
        assert!(!ReplicaPhase::Draining.accepts_dispatch());
        assert!(!ReplicaPhase::Retired.accepts_dispatch());
        assert!(!ReplicaPhase::Failed.accepts_dispatch());
        assert!(!ReplicaPhase::Provisioning {
            ready_at: SimTime::ZERO
        }
        .accepts_dispatch());
    }

    #[test]
    fn retired_is_the_only_free_phase() {
        assert!(ReplicaPhase::Provisioning {
            ready_at: SimTime::ZERO
        }
        .is_billable());
        assert!(ReplicaPhase::Active.is_billable());
        assert!(ReplicaPhase::Draining.is_billable());
        assert!(!ReplicaPhase::Retired.is_billable());
        assert!(!ReplicaPhase::Failed.is_billable());
    }

    #[test]
    fn phase_names_are_stable() {
        assert_eq!(ReplicaPhase::Active.name(), "active");
        assert_eq!(ReplicaPhase::Retired.name(), "retired");
        assert_eq!(ReplicaPhase::Failed.name(), "failed");
    }
}
