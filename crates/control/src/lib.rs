//! Elastic control plane for TokenFlow clusters.
//!
//! TokenFlow absorbs request bursts *within* a fixed fleet by
//! preemptive, buffer-aware scheduling; this crate absorbs the bursts
//! that outlive what preemption can hide by resizing the fleet itself.
//! The design follows the same insight at a larger radius: TTFT under
//! burst is dominated by *admission pressure* — prompts queued ahead of
//! a request's own prefill — so the autoscaler watches the fleet's
//! pending-prefill backlog and its `Σ rᵢ / Γ` rate headroom (the demand
//! side of the paper's schedulability test) rather than resident batch
//! sizes.
//!
//! * [`policy`] — the [`ScalePolicy`] trait and the built-in spectrum:
//!   [`ReactivePolicy`] (thresholds on backlog + headroom),
//!   [`PredictivePolicy`] (EWMA forecast of the arrival token rate), and
//!   [`ScriptedPolicy`] (a fixed schedule, for tests and replays).
//! * [`lifecycle`] — the deterministic replica lifecycle: `Provisioning
//!   → Active → Draining → Retired`, with every transition logged as a
//!   [`ScaleEvent`].
//! * [`plane`] — the [`ControlPlane`] gluing the two together: billing,
//!   promotion, retirement, policy consultation, and clamped application
//!   — all at arrival barriers, all on the coordinator thread.
//!
//! **Determinism.** The control plane runs only at arrival barriers,
//! where every replica's state is already pinned byte-for-byte by the
//! cluster's epoch contract. Its inputs (load snapshots, the arrival
//! group) and its arithmetic are therefore identical under sequential
//! and parallel epoch execution, which extends the cluster's
//! executor-invariance guarantee to elastic fleets — scale decisions,
//! event logs, and fleet timelines reproduce bit-for-bit. The cluster
//! crate's property suite holds every shipped policy to exactly that.

// audit: tier(deterministic)
#![forbid(unsafe_code)]

pub mod lifecycle;
pub mod plane;
pub mod policy;

pub use lifecycle::{ReplicaPhase, ScaleEvent, ScaleEventKind};
pub use plane::{ControlConfig, ControlPlane};
pub use policy::{
    FleetObservation, PredictivePolicy, ReactivePolicy, ScaleDecision, ScalePolicy, ScriptedPolicy,
};
