//! Scale policies: how a fleet decides to grow or shrink.
//!
//! A [`ScalePolicy`] is the pluggable brain of the control plane. It is
//! consulted at **every** arrival barrier (so stateful policies can
//! track traffic), sees only a [`FleetObservation`] — load snapshots of
//! the active replicas plus the arrival group about to be dispatched —
//! and answers with a [`ScaleDecision`]. The control plane clamps the
//! decision to the configured fleet bounds and cooldown before applying
//! it, so policies stay pure sizing logic.
//!
//! The built-in spectrum:
//!
//! * [`ReactivePolicy`] — thresholds on *admission pressure*: the
//!   `Σ rᵢ / Γ` headroom test of the paper lifted to the fleet level,
//!   plus the pending-prefill backlog (work a new request must queue
//!   behind before its own prefill — the TTFT-dominating quantity).
//! * [`PredictivePolicy`] — an EWMA of the observed arrival token rate;
//!   by Little's law the steady-state streaming demand equals the
//!   arrival rate of output tokens, so the estimate pre-sizes the fleet
//!   for where traffic is heading rather than where it is.
//! * [`ScriptedPolicy`] — a fixed fleet-size schedule, for tests and
//!   what-if replays.

use tokenflow_core::EngineLoad;
use tokenflow_sim::SimTime;
use tokenflow_workload::RequestSpec;

/// Everything a policy sees at one arrival barrier.
#[derive(Debug, Clone, Copy)]
pub struct FleetObservation<'a> {
    /// The barrier instant.
    pub now: SimTime,
    /// Load snapshots of the **active** replicas only, in replica order.
    pub active: &'a [EngineLoad],
    /// Replicas currently booting (capacity already paid for).
    pub provisioning: usize,
    /// Replicas currently draining.
    pub draining: usize,
    /// The arrival group about to be dispatched at this barrier.
    pub arrivals: &'a [RequestSpec],
    /// Per-replica sustainable decode throughput Γ, tokens/second.
    pub gamma: f64,
}

impl FleetObservation<'_> {
    /// Declared streaming demand resident on active replicas, tokens/s.
    pub fn resident_demand(&self) -> f64 {
        self.active.iter().map(|l| l.rate_sum).sum()
    }

    /// Declared streaming demand of the arrival group, tokens/s.
    pub fn incoming_demand(&self) -> f64 {
        self.arrivals.iter().map(|s| s.rate).sum()
    }

    /// Total demand the fleet must absorb after this barrier.
    pub fn demand(&self) -> f64 {
        self.resident_demand() + self.incoming_demand()
    }

    /// Prefill backlog after this barrier: tokens already queued on
    /// active replicas plus the arrival group's prompts.
    pub fn backlog_tokens(&self) -> u64 {
        let resident: u64 = self.active.iter().map(|l| l.pending_prefill_tokens).sum();
        let incoming: u64 = self.arrivals.iter().map(|s| s.prompt_tokens).sum();
        resident + incoming
    }

    /// Capacity already bought: active plus booting replicas.
    pub fn capacity_units(&self) -> usize {
        self.active.len() + self.provisioning
    }

    /// `demand / (capacity_units × Γ)` — the fleet-level schedulability
    /// ratio. Infinite when no capacity exists.
    pub fn utilization(&self) -> f64 {
        let cap = self.capacity_units() as f64 * self.gamma;
        if cap <= 0.0 {
            f64::INFINITY
        } else {
            self.demand() / cap
        }
    }
}

/// A policy's answer at one barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Keep the fleet as is.
    Hold,
    /// Add this many replicas (reactivating draining ones first).
    ScaleUp(usize),
    /// Drain this many active replicas.
    ScaleDown(usize),
}

/// A fleet-sizing policy.
///
/// Implementations must be deterministic — identical observation
/// sequences must produce identical decision sequences — so elastic
/// cluster runs reproduce bit-for-bit regardless of epoch executor.
/// `Send` is a supertrait for the same reason as `Router`'s: the control
/// plane travels with its cluster across threads, but `decide` only ever
/// runs on the coordinator.
pub trait ScalePolicy: Send {
    /// Short policy name for reports (e.g. `"reactive"`).
    fn name(&self) -> &'static str;

    /// Called at every arrival barrier, even during cooldown (the plane
    /// then ignores a non-[`ScaleDecision::Hold`] answer but the policy
    /// still observes the traffic).
    fn decide(&mut self, obs: &FleetObservation<'_>) -> ScaleDecision;

    /// [`ScalePolicy::decide`], additionally naming the term values
    /// behind the decision into `terms` (cleared first) for the trace
    /// journal. Must return exactly the decision `decide` would — the
    /// default ignores `terms` and delegates.
    fn decide_traced(
        &mut self,
        obs: &FleetObservation<'_>,
        terms: &mut Vec<(&'static str, f64)>,
    ) -> ScaleDecision {
        terms.clear();
        self.decide(obs)
    }
}

/// Boxed policies are policies.
impl<P: ScalePolicy + ?Sized> ScalePolicy for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn decide(&mut self, obs: &FleetObservation<'_>) -> ScaleDecision {
        (**self).decide(obs)
    }

    fn decide_traced(
        &mut self,
        obs: &FleetObservation<'_>,
        terms: &mut Vec<(&'static str, f64)>,
    ) -> ScaleDecision {
        (**self).decide_traced(obs, terms)
    }
}

/// Threshold autoscaling on admission pressure: the fleet is sized to
/// the **maximum** of three per-replica pressure terms, and the
/// decision is simply `desired vs. current`.
///
/// 1. **Rate headroom** — `Σ rᵢ / (Γ × target_utilization)`: the
///    paper's schedulability test lifted to the fleet, with slack.
/// 2. **Prefill backlog** — queued prompt tokens (resident backlog plus
///    the arrival group) divided by `backlog_per_replica`. This is the
///    TTFT budget expressed in tokens: a replica `backlog_per_replica`
///    deep delays a new arrival's first token by roughly
///    `backlog_per_replica / prefill_rate` seconds, so the threshold is
///    the knob that trades replica-seconds for tail TTFT.
/// 3. **KV footprint** — resident KV tokens plus incoming prompts,
///    against `kv_watermark` of one replica's pool, so the fleet never
///    shrinks into preemption thrash.
///
/// Scale-up jumps to the desired size in one step (bursts punish late
/// capacity immediately); scale-down drains one replica per decision —
/// draining replicas are already out of the active set, so `desired <
/// active` is net of them and repeated drains cannot overshoot. The
/// control plane's cooldown paces the descent and damps flapping at a
/// term boundary.
#[derive(Debug, Clone)]
pub struct ReactivePolicy {
    /// Rate-headroom slack: the fleet is sized so `Σ rᵢ ≤ n·Γ×this`.
    pub target_utilization: f64,
    /// Queued prefill tokens one replica is allowed to hold — the TTFT
    /// budget in tokens.
    pub backlog_per_replica: u64,
    /// Fraction of one replica's KV pool the sizing fills to.
    pub kv_watermark: f64,
}

impl Default for ReactivePolicy {
    fn default() -> Self {
        ReactivePolicy {
            target_utilization: 0.60,
            backlog_per_replica: 1_024,
            kv_watermark: 0.50,
        }
    }
}

/// The admission-pressure floor shared by the sizing policies: the
/// larger of the prefill-backlog term (queued prompt tokens per
/// `backlog_per_replica`, the TTFT budget) and the KV-footprint term
/// (resident KV plus incoming prompts against `kv_watermark` of one
/// replica's pool). Expressed in replicas, un-ceiled.
fn pressure_floor(obs: &FleetObservation<'_>, backlog_per_replica: u64, kv_watermark: f64) -> f64 {
    let (backlog, kv) = pressure_terms(obs, backlog_per_replica, kv_watermark);
    backlog.max(kv)
}

/// The two admission-pressure terms behind [`pressure_floor`], exposed
/// separately so traced decisions can journal each term's value.
fn pressure_terms(
    obs: &FleetObservation<'_>,
    backlog_per_replica: u64,
    kv_watermark: f64,
) -> (f64, f64) {
    let backlog = obs.backlog_tokens() as f64 / backlog_per_replica as f64;
    let per_replica_kv = obs
        .active
        .iter()
        .map(|l| l.gpu_total_tokens)
        .max()
        .unwrap_or(0);
    let kv = if per_replica_kv == 0 {
        0.0
    } else {
        let resident: u64 = obs
            .active
            .iter()
            .map(|l| l.gpu_total_tokens - l.gpu_free_tokens)
            .sum();
        let incoming: u64 = obs.arrivals.iter().map(|s| s.prompt_tokens).sum();
        (resident + incoming) as f64 / (per_replica_kv as f64 * kv_watermark)
    };
    (backlog, kv)
}

impl ReactivePolicy {
    /// The default thresholds (60 % rate target, 1 024-token TTFT
    /// budget, 50 % KV watermark).
    pub fn new() -> Self {
        ReactivePolicy::default()
    }

    /// Sets the TTFT budget: queued prefill tokens one replica may hold
    /// before the sizing demands more capacity.
    pub fn with_backlog_budget(mut self, tokens: u64) -> Self {
        self.backlog_per_replica = tokens;
        self
    }

    fn desired(&self, obs: &FleetObservation<'_>) -> usize {
        let rate = obs.demand() / (obs.gamma * self.target_utilization);
        let floor = pressure_floor(obs, self.backlog_per_replica, self.kv_watermark);
        (rate.max(floor).ceil() as usize).max(1)
    }
}

impl ScalePolicy for ReactivePolicy {
    fn name(&self) -> &'static str {
        "reactive"
    }

    fn decide(&mut self, obs: &FleetObservation<'_>) -> ScaleDecision {
        let n = obs.active.len();
        if n == 0 && obs.provisioning == 0 {
            return ScaleDecision::ScaleUp(1);
        }
        let desired = self.desired(obs);
        let cap = obs.capacity_units();
        if desired > cap {
            return ScaleDecision::ScaleUp(desired - cap);
        }
        // Drain one at a time (the cooldown paces the descent). Already-
        // draining replicas are out of the active set, so `desired < n`
        // is already net of them — no overshoot from issuing another
        // drain while one empties.
        if desired < n {
            return ScaleDecision::ScaleDown(1);
        }
        ScaleDecision::Hold
    }

    fn decide_traced(
        &mut self,
        obs: &FleetObservation<'_>,
        terms: &mut Vec<(&'static str, f64)>,
    ) -> ScaleDecision {
        terms.clear();
        let (backlog, kv) = pressure_terms(obs, self.backlog_per_replica, self.kv_watermark);
        terms.push(("rate", obs.demand() / (obs.gamma * self.target_utilization)));
        terms.push(("backlog", backlog));
        terms.push(("kv", kv));
        terms.push(("desired", self.desired(obs) as f64));
        terms.push(("capacity", obs.capacity_units() as f64));
        self.decide(obs)
    }
}

/// EWMA-predictive autoscaling on the arrival token rate.
///
/// Tracks an exponentially weighted moving average of the rate at which
/// output tokens *arrive* (Σ output lengths per barrier interval). By
/// Little's law the steady-state resident demand `E[Σ rᵢ]` equals that
/// arrival token rate, so the EWMA is a direct forecast of the demand
/// the fleet must sustain — it rises as a burst ramps (pre-scaling
/// before the backlog materialises) and decays with the time constant
/// `tau_secs` once traffic ebbs (deferring scale-down past transient
/// lulls). The fleet is sized to `max(forecast, current demand)` so the
/// forecast can never starve resident streams, and the same
/// admission-pressure floor as [`ReactivePolicy`] applies — an EWMA
/// cannot foresee a step burst, so the backlog/KV terms handle what the
/// forecast misses.
#[derive(Debug, Clone)]
pub struct PredictivePolicy {
    /// EWMA time constant in seconds.
    pub tau_secs: f64,
    /// Utilization the fleet is sized toward.
    pub target_utilization: f64,
    /// TTFT budget in queued prefill tokens (see [`ReactivePolicy`]).
    pub backlog_per_replica: u64,
    /// Fraction of one replica's KV pool the sizing fills to.
    pub kv_watermark: f64,
    demand_ewma: f64,
    last_barrier: Option<SimTime>,
}

impl Default for PredictivePolicy {
    fn default() -> Self {
        PredictivePolicy {
            tau_secs: 30.0,
            target_utilization: 0.60,
            backlog_per_replica: 1_024,
            kv_watermark: 0.50,
            demand_ewma: 0.0,
            last_barrier: None,
        }
    }
}

impl PredictivePolicy {
    /// The default forecast (τ = 30 s, 60 % target utilization).
    pub fn new() -> Self {
        PredictivePolicy::default()
    }

    /// A policy with an explicit time constant.
    pub fn with_tau(tau_secs: f64) -> Self {
        PredictivePolicy {
            tau_secs,
            ..PredictivePolicy::default()
        }
    }

    /// Sets the TTFT budget: queued prefill tokens one replica may hold
    /// before the sizing demands more capacity.
    pub fn with_backlog_budget(mut self, tokens: u64) -> Self {
        self.backlog_per_replica = tokens;
        self
    }

    /// The current demand forecast, tokens/second.
    pub fn forecast(&self) -> f64 {
        self.demand_ewma
    }
}

impl ScalePolicy for PredictivePolicy {
    fn name(&self) -> &'static str {
        "predictive-ewma"
    }

    fn decide(&mut self, obs: &FleetObservation<'_>) -> ScaleDecision {
        let incoming_tokens: u64 = obs.arrivals.iter().map(|s| s.output_tokens).sum();
        match self.last_barrier {
            Some(prev) => {
                let dt = obs.now.saturating_since(prev).as_secs_f64();
                if dt > 0.0 {
                    let inst = incoming_tokens as f64 / dt;
                    let w = 1.0 - (-dt / self.tau_secs).exp();
                    self.demand_ewma = w * inst + (1.0 - w) * self.demand_ewma;
                }
            }
            // First barrier: no interval to rate over, so seed the
            // forecast with what is observably resident + incoming.
            None => self.demand_ewma = obs.demand(),
        }
        self.last_barrier = Some(obs.now);

        let est = self.demand_ewma.max(obs.demand());
        let rate = est / (obs.gamma * self.target_utilization);
        let floor = pressure_floor(obs, self.backlog_per_replica, self.kv_watermark);
        let desired = (rate.max(floor).ceil() as usize).max(1);
        let cap = obs.capacity_units();
        if desired > cap {
            ScaleDecision::ScaleUp(desired - cap)
        } else if desired < obs.active.len() {
            ScaleDecision::ScaleDown(1)
        } else {
            ScaleDecision::Hold
        }
    }

    fn decide_traced(
        &mut self,
        obs: &FleetObservation<'_>,
        terms: &mut Vec<(&'static str, f64)>,
    ) -> ScaleDecision {
        // Decide first (the EWMA update is part of the decision), then
        // journal the post-update state the decision was made from.
        let decision = self.decide(obs);
        terms.clear();
        let (backlog, kv) = pressure_terms(obs, self.backlog_per_replica, self.kv_watermark);
        terms.push(("forecast", self.demand_ewma));
        terms.push(("demand", obs.demand()));
        terms.push(("backlog", backlog));
        terms.push(("kv", kv));
        terms.push(("capacity", obs.capacity_units() as f64));
        decision
    }
}

/// A fixed fleet-size schedule: `(from, target)` steps, each holding
/// until the next. Built for tests (forcing lifecycle transitions at
/// known instants) and for replaying operator runbooks.
#[derive(Debug, Clone)]
pub struct ScriptedPolicy {
    /// `(effective_from, target_fleet_size)`, sorted by time.
    steps: Vec<(SimTime, usize)>,
}

impl ScriptedPolicy {
    /// Builds a schedule; steps are sorted by their effective time.
    pub fn new(mut steps: Vec<(SimTime, usize)>) -> Self {
        steps.sort_by_key(|&(t, _)| t);
        ScriptedPolicy { steps }
    }

    /// The target size in force at `now`, if any step has started.
    pub fn target_at(&self, now: SimTime) -> Option<usize> {
        self.steps
            .iter()
            .take_while(|&&(t, _)| t <= now)
            .last()
            .map(|&(_, n)| n)
    }
}

impl ScalePolicy for ScriptedPolicy {
    fn name(&self) -> &'static str {
        "scripted"
    }

    fn decide(&mut self, obs: &FleetObservation<'_>) -> ScaleDecision {
        let Some(target) = self.target_at(obs.now) else {
            return ScaleDecision::Hold;
        };
        let cap = obs.capacity_units();
        if target > cap {
            ScaleDecision::ScaleUp(target - cap)
        } else if target < obs.active.len() {
            ScaleDecision::ScaleDown(obs.active.len() - target)
        } else {
            ScaleDecision::Hold
        }
    }

    fn decide_traced(
        &mut self,
        obs: &FleetObservation<'_>,
        terms: &mut Vec<(&'static str, f64)>,
    ) -> ScaleDecision {
        terms.clear();
        if let Some(target) = self.target_at(obs.now) {
            terms.push(("target", target as f64));
        }
        terms.push(("capacity", obs.capacity_units() as f64));
        self.decide(obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokenflow_sim::RequestId;

    fn load_kv(rate_sum: f64, backlog: u64, gpu_free: u64) -> EngineLoad {
        EngineLoad {
            now: SimTime::ZERO,
            submitted: 4,
            live: 4,
            arrived: 4,
            waiting: 0,
            running: 4,
            transitioning: 0,
            rate_sum,
            gpu_free_tokens: gpu_free,
            gpu_total_tokens: 100_000,
            d2h_queue_len: 0,
            h2d_queue_len: 0,
            pending_prefill_tokens: backlog,
        }
    }

    /// A lightly KV-loaded replica (5 % pool usage).
    fn load(rate_sum: f64, backlog: u64) -> EngineLoad {
        load_kv(rate_sum, backlog, 95_000)
    }

    fn spec(rate: f64, prompt: u64, output: u64) -> RequestSpec {
        RequestSpec {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            prompt_tokens: prompt,
            output_tokens: output,
            rate,
        }
    }

    fn obs<'a>(
        now: SimTime,
        active: &'a [EngineLoad],
        arrivals: &'a [RequestSpec],
        gamma: f64,
    ) -> FleetObservation<'a> {
        FleetObservation {
            now,
            active,
            provisioning: 0,
            draining: 0,
            arrivals,
            gamma,
        }
    }

    #[test]
    fn observation_totals_add_resident_and_incoming() {
        let loads = [load_kv(100.0, 1_000, 50_000), load_kv(50.0, 500, 50_000)];
        let arrivals = [spec(10.0, 200, 300), spec(20.0, 100, 400)];
        let o = obs(SimTime::ZERO, &loads, &arrivals, 500.0);
        assert_eq!(o.resident_demand(), 150.0);
        assert_eq!(o.incoming_demand(), 30.0);
        assert_eq!(o.demand(), 180.0);
        assert_eq!(o.backlog_tokens(), 1_800);
        assert_eq!(o.capacity_units(), 2);
        assert!((o.utilization() - 180.0 / 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn reactive_scales_up_past_utilization_threshold() {
        let mut p = ReactivePolicy::new();
        // One replica at Γ=100 with 95 tok/s demand: 95 % utilization.
        let loads = [load(95.0, 0)];
        let d = p.decide(&obs(SimTime::ZERO, &loads, &[], 100.0));
        // Sized toward 60 %: ceil(95 / 60) = 2 replicas → grow by 1.
        assert_eq!(d, ScaleDecision::ScaleUp(1));
    }

    #[test]
    fn reactive_scales_up_on_backlog_even_with_rate_headroom() {
        let mut p = ReactivePolicy::new();
        // Demand is tiny but a burst just queued 100k prompt tokens:
        // the backlog term sizes the fleet to drain the queue within
        // the TTFT budget.
        let loads = [load(10.0, 100_000)];
        let d = p.decide(&obs(SimTime::ZERO, &loads, &[], 1_000.0));
        assert!(matches!(d, ScaleDecision::ScaleUp(k) if k >= 40), "{d:?}");
    }

    #[test]
    fn reactive_scales_up_on_kv_pressure_alone() {
        let mut p = ReactivePolicy::new();
        // Rates and backlog are low, but the replica's pool is 95 %
        // full: shrinking (or even holding) would mean preemption
        // thrash, so the KV term forces a second replica.
        let loads = [load_kv(10.0, 0, 5_000)];
        let d = p.decide(&obs(SimTime::ZERO, &loads, &[], 1_000.0));
        assert_eq!(d, ScaleDecision::ScaleUp(1));
    }

    #[test]
    fn reactive_counts_incoming_arrivals_as_pressure() {
        let mut p = ReactivePolicy::new();
        let loads = [load(10.0, 0)];
        // The arrival group alone saturates the replica.
        let arrivals: Vec<RequestSpec> = (0..20).map(|_| spec(10.0, 512, 512)).collect();
        let d = p.decide(&obs(SimTime::ZERO, &loads, &arrivals, 100.0));
        assert!(matches!(d, ScaleDecision::ScaleUp(_)), "{d:?}");
    }

    #[test]
    fn reactive_holds_in_the_comfort_band_and_drains_when_idle() {
        let mut p = ReactivePolicy::new();
        // 60 % utilization: hold.
        let loads = [load(60.0, 0)];
        assert_eq!(
            p.decide(&obs(SimTime::ZERO, &loads, &[], 100.0)),
            ScaleDecision::Hold
        );
        // Two replicas nearly idle: drain one.
        let loads = [load(5.0, 0), load(5.0, 0)];
        assert_eq!(
            p.decide(&obs(SimTime::ZERO, &loads, &[], 100.0)),
            ScaleDecision::ScaleDown(1)
        );
    }

    #[test]
    fn reactive_drains_one_at_a_time_and_never_below_one() {
        let mut p = ReactivePolicy::new();
        // Three idle replicas: one drain per decision, even while an
        // earlier drain is still emptying (draining replicas are
        // already out of the active set, so there is no overshoot).
        let loads = [load(5.0, 0), load(5.0, 0), load(5.0, 0)];
        let mut o = obs(SimTime::ZERO, &loads, &[], 100.0);
        o.draining = 1;
        assert_eq!(p.decide(&o), ScaleDecision::ScaleDown(1));
        // A lone replica is never drained.
        let loads = [load(1.0, 0)];
        assert_eq!(
            p.decide(&obs(SimTime::ZERO, &loads, &[], 100.0)),
            ScaleDecision::Hold
        );
    }

    #[test]
    fn predictive_seeds_then_tracks_arrival_rate() {
        let mut p = PredictivePolicy::with_tau(10.0);
        let loads = [load(50.0, 0)];
        // Barrier 1 seeds the forecast with resident demand.
        p.decide(&obs(SimTime::ZERO, &loads, &[], 1_000.0));
        assert_eq!(p.forecast(), 50.0);
        // A heavy barrier 10 s later pulls the forecast up hard: 50k
        // tokens over 10 s is a 5 000 tok/s arrival rate.
        let arrivals: Vec<RequestSpec> = (0..100).map(|_| spec(15.0, 256, 500)).collect();
        let d = p.decide(&obs(SimTime::from_secs(10), &loads, &arrivals, 100.0));
        assert!(p.forecast() > 1_000.0, "forecast {}", p.forecast());
        assert!(matches!(d, ScaleDecision::ScaleUp(_)), "{d:?}");
    }

    #[test]
    fn predictive_forecast_decays_during_lulls() {
        let mut p = PredictivePolicy::with_tau(5.0);
        let loads = [load(200.0, 0)];
        p.decide(&obs(SimTime::ZERO, &loads, &[], 1_000.0));
        let peak = p.forecast();
        // Three empty barriers, far apart: the forecast decays.
        for s in [20u64, 40, 60] {
            p.decide(&obs(SimTime::from_secs(s), &[load(1.0, 0)], &[], 1_000.0));
        }
        assert!(p.forecast() < peak / 10.0, "forecast {}", p.forecast());
    }

    #[test]
    fn predictive_never_sizes_below_resident_demand() {
        let mut p = PredictivePolicy::with_tau(1.0);
        // Forecast decays to ~0, but 150 tok/s is still resident on one
        // replica with Γ=100 — the policy must still grow the fleet.
        let loads = [load(150.0, 0)];
        p.decide(&obs(SimTime::ZERO, &loads, &[], 100.0));
        let d = p.decide(&obs(SimTime::from_secs(100), &loads, &[], 100.0));
        assert!(matches!(d, ScaleDecision::ScaleUp(_)), "{d:?}");
    }

    #[test]
    fn scripted_follows_the_schedule() {
        let mut p = ScriptedPolicy::new(vec![
            (SimTime::from_secs(10), 4),
            (SimTime::from_secs(20), 1),
        ]);
        let loads2 = [load(1.0, 0), load(1.0, 0)];
        // Before any step: hold.
        assert_eq!(
            p.decide(&obs(SimTime::ZERO, &loads2, &[], 100.0)),
            ScaleDecision::Hold
        );
        // Step to 4 with 2 active: grow by 2.
        assert_eq!(
            p.decide(&obs(SimTime::from_secs(10), &loads2, &[], 100.0)),
            ScaleDecision::ScaleUp(2)
        );
        // Step to 1 with 2 active: drain 1.
        assert_eq!(
            p.decide(&obs(SimTime::from_secs(25), &loads2, &[], 100.0)),
            ScaleDecision::ScaleDown(1)
        );
    }

    #[test]
    fn scripted_counts_provisioning_toward_target() {
        let mut p = ScriptedPolicy::new(vec![(SimTime::ZERO, 4)]);
        let loads = [load(1.0, 0), load(1.0, 0)];
        let mut o = obs(SimTime::from_secs(1), &loads, &[], 100.0);
        o.provisioning = 2;
        // 2 active + 2 booting already meets the target of 4.
        assert_eq!(p.decide(&o), ScaleDecision::Hold);
    }
}
