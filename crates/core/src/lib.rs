//! The TokenFlow serving engine, structured as a staged pipeline.
//!
//! [`Engine`] implements a continuous-batching iteration loop in the style
//! of SGLang's scheduler process, decomposed into four explicit,
//! separately-testable stages that [`Engine::step`] orchestrates:
//!
//! * `admission` — arrival ingest, scheduler-context construction (via
//!   [`SchedContextBuilder`](tokenflow_sched::SchedContextBuilder)), and
//!   application of the policy's plan (admissions, resumes, preemptions)
//!   through the hierarchical [`KvManager`](tokenflow_kv::KvManager);
//! * `kv_orchestrator` — translation of finished evict/load transfers
//!   into request-phase changes, plus compute-window write-through pumping;
//! * `batch` — prefill+decode batch composition under the scheduler's
//!   policy, the GPU-memory fit (emergency reclamation, shedding), and
//!   cost-model pricing via [`CostModel`](tokenflow_model::CostModel);
//! * `delivery` — token delivery into per-request client buffers,
//!   request completion, and sampled telemetry.
//!
//! Request lifecycle state shared by the stages lives in `state`; each
//! stage takes `&mut` views of it rather than owning the world. That
//! decomposition is what makes the loop reusable: the `tokenflow-cluster`
//! crate drives N replicas of this engine on one simulated timeline behind
//! a pluggable router, using [`Engine::load_snapshot`] as the routing
//! signal.
//!
//! All four evaluated systems (SGLang FCFS, SGLang chunked, Andes,
//! TokenFlow) run through this same loop; only the scheduler differs —
//! exactly the controlled comparison the paper's evaluation performs.
//!
//! Use [`run_simulation`] for one-call experiment runs, or drive an
//! [`Engine`] step by step for interactive use (see the `quickstart`
//! example).

// audit: tier(deterministic)
#![forbid(unsafe_code)]

pub(crate) mod admission;
pub(crate) mod batch;
pub mod config;
pub(crate) mod delivery;
pub mod engine;
pub(crate) mod kv_orchestrator;
pub mod outcome;
pub mod profiler;
pub mod state;

pub use config::EngineConfig;
pub use engine::{Completion, Engine, FastPathStats, StepOutcome};
pub use outcome::SimOutcome;
pub use state::EngineLoad;

use tokenflow_sched::Scheduler;
use tokenflow_workload::Workload;

/// Runs a complete workload through the engine and collects every metric.
///
/// Takes any scheduler by value — a concrete policy or an already-boxed
/// `Box<dyn Scheduler>` (boxes of schedulers are schedulers).
///
/// # Examples
///
/// ```
/// use tokenflow_core::{run_simulation, EngineConfig};
/// use tokenflow_model::{HardwareProfile, ModelProfile};
/// use tokenflow_sched::FcfsScheduler;
/// use tokenflow_sim::{RequestId, SimTime};
/// use tokenflow_workload::{RequestSpec, Workload};
///
/// let workload = Workload::new(vec![RequestSpec {
///     id: RequestId(0),
///     arrival: SimTime::ZERO,
///     prompt_tokens: 128,
///     output_tokens: 64,
///     rate: 20.0,
/// }]);
/// let config = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200());
/// let outcome = run_simulation(config, FcfsScheduler::new(), &workload);
/// assert_eq!(outcome.report.completed, 1);
/// ```
pub fn run_simulation(
    config: EngineConfig,
    scheduler: impl Scheduler + 'static,
    workload: &Workload,
) -> SimOutcome {
    run_simulation_boxed(config, Box::new(scheduler), workload)
}

/// [`run_simulation`] for callers that already hold a boxed scheduler
/// (factories, registries): skips the re-box and its extra dispatch hop.
pub fn run_simulation_boxed(
    config: EngineConfig,
    scheduler: Box<dyn Scheduler>,
    workload: &Workload,
) -> SimOutcome {
    let mut engine = Engine::from_boxed(config, scheduler);
    for spec in workload.iter() {
        engine.submit(*spec);
    }
    engine.run_to_completion();
    engine.into_outcome()
}
