//! The TokenFlow serving engine.
//!
//! [`Engine`] implements a continuous-batching iteration loop in the style
//! of SGLang's scheduler process: each iteration it ingests arrivals, asks
//! the pluggable [`Scheduler`](tokenflow_sched::Scheduler) for a plan,
//! applies admissions/preemptions through the hierarchical
//! [`KvManager`](tokenflow_kv::KvManager), composes a prefill+decode batch,
//! prices it with the analytical [`CostModel`](tokenflow_model::CostModel),
//! pumps compute-sized write-through chunks, advances the clock, and
//! delivers tokens into per-request client buffers.
//!
//! All four evaluated systems (SGLang FCFS, SGLang chunked, Andes,
//! TokenFlow) run through this same loop; only the scheduler differs —
//! exactly the controlled comparison the paper's evaluation performs.
//!
//! Use [`run_simulation`] for one-call experiment runs, or drive an
//! [`Engine`] step by step for interactive use (see the `quickstart`
//! example).

pub mod config;
pub mod engine;
pub mod outcome;
pub mod profiler;

pub use config::EngineConfig;
pub use engine::{Engine, StepOutcome};
pub use outcome::SimOutcome;

use tokenflow_sched::Scheduler;
use tokenflow_workload::Workload;

/// Runs a complete workload through the engine and collects every metric.
///
/// # Examples
///
/// ```
/// use tokenflow_core::{run_simulation, EngineConfig};
/// use tokenflow_model::{HardwareProfile, ModelProfile};
/// use tokenflow_sched::FcfsScheduler;
/// use tokenflow_sim::{RequestId, SimTime};
/// use tokenflow_workload::{RequestSpec, Workload};
///
/// let workload = Workload::new(vec![RequestSpec {
///     id: RequestId(0),
///     arrival: SimTime::ZERO,
///     prompt_tokens: 128,
///     output_tokens: 64,
///     rate: 20.0,
/// }]);
/// let config = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200());
/// let outcome = run_simulation(config, Box::new(FcfsScheduler::new()), &workload);
/// assert_eq!(outcome.report.completed, 1);
/// ```
pub fn run_simulation(
    config: EngineConfig,
    scheduler: Box<dyn Scheduler>,
    workload: &Workload,
) -> SimOutcome {
    let mut engine = Engine::new(config, scheduler);
    for spec in workload.iter() {
        engine.submit(*spec);
    }
    engine.run_to_completion();
    engine.into_outcome()
}
