//! The serving engine: an orchestrating shell over the staged pipeline.
//!
//! [`Engine::step`] runs one continuous-batching iteration by driving the
//! four pipeline stages in order:
//!
//! 1. [`admission`](crate::admission) — ingest due arrivals, build the
//!    scheduler's context, apply its plan;
//! 2. [`kv_orchestrator`](crate::kv_orchestrator) — apply finished KV
//!    transfers and pump write-through sync;
//! 3. [`batch`](crate::batch) — compose the prefill+decode batch, fit it
//!    into memory, price it with the cost model;
//! 4. [`delivery`](crate::delivery) — advance prefills, deliver decode
//!    tokens into client buffers, finish requests, sample telemetry.
//!
//! The engine itself only owns the components and the clock; all stage
//! logic lives in the stage modules, which is what lets the cluster crate
//! drive many replicas of this loop on one simulated timeline.

use tokenflow_client::TokenBuffer;
use tokenflow_kv::{Direction, KvConfig, KvManager};
use tokenflow_metrics::{RequestMetrics, RunReport, TokenTimeline};
use tokenflow_model::CostModel;
use tokenflow_sched::{PlanNote, SchedContext, SchedContextBuilder, Scheduler};
use tokenflow_sim::{Clock, EventQueue, RequestId, SimDuration, SimTime};
use tokenflow_trace::{HorizonEndReason, TraceEventKind, TraceSink, TraceSource};
use tokenflow_workload::{ClientKind, RequestSpec};

use crate::batch::IterationBatch;
use crate::config::EngineConfig;
use crate::delivery::Telemetry;
use crate::outcome::SimOutcome;
use crate::profiler::EngineProfilers;
use crate::state::{EngineLoad, EngineState, Phase, ReqState};
use crate::{admission, batch, delivery, kv_orchestrator};

// Evaluated at compile time: `Engine` must stay `Send` so the cluster's
// parallel epoch executor can advance replicas on worker threads.
const _: () = Engine::assert_send();

/// Why [`Engine::run_to_completion`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Every submitted request finished.
    Finished,
    /// The safety deadline tripped with requests still unfinished.
    Deadline,
    /// The iteration-count cap ([`EngineConfig::max_iterations`]) tripped
    /// first — the configuration was not making progress toward
    /// completion within its budget.
    IterationCap,
}

impl Completion {
    /// True only when every submitted request finished.
    pub fn is_finished(self) -> bool {
        self == Completion::Finished
    }
}

/// Counters of the plan-horizon fast path, in the style of the cluster
/// executor's stats: cheap enough to maintain always, rich enough for
/// the bench harness to report a skip rate per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastPathStats {
    /// Steps served by horizon replay or gate-refresh recompose — the
    /// full admission/plan/compose pipeline was skipped.
    pub fast_steps: u64,
    /// Horizons armed at full-step boundaries.
    pub horizons_issued: u64,
    /// Horizons cut short by a decision-epoch event before their
    /// certified expiry (arrival, finish, transfer completion, …).
    pub horizons_invalidated: u64,
    /// Horizons that ran to their certified expiry time.
    pub horizons_expired: u64,
}

/// An armed plan-horizon certificate: the scheduler's horizon plus the
/// decision-epoch snapshot it was issued under. Valid while the clock
/// stays before `valid_until` *and* the engine's decision epoch still
/// equals `epoch`.
#[derive(Debug, Clone, Copy)]
struct ArmedHorizon {
    valid_until: SimTime,
    gates_static: bool,
    epoch: u64,
}

/// What one engine step did.
#[derive(Debug, Clone, Default)]
pub struct StepOutcome {
    /// Time at the end of the step.
    pub now: SimTime,
    /// Tokens delivered this step: `(request, cumulative count)`.
    pub delivered: Vec<(RequestId, u64)>,
    /// Requests that finished this step.
    pub finished: Vec<RequestId>,
    /// True when the step found no compute work and fast-forwarded.
    pub idle: bool,
    /// True when every submitted request has finished.
    pub done: bool,
}

/// The serving engine.
///
/// See the crate docs for the iteration structure; construct with a
/// [`Scheduler`] implementation, [`Engine::submit`] requests, then either
/// [`Engine::step`] interactively or [`Engine::run_to_completion`].
pub struct Engine {
    config: EngineConfig,
    cost: CostModel,
    clock: Clock,
    scheduler: Box<dyn Scheduler>,
    kv: KvManager,
    st: EngineState,
    arrivals: EventQueue<RequestId>,
    profs: EngineProfilers,
    telemetry: Telemetry,
    iterations: u64,
    /// Minimum idle fast-forward so time-sliced schedulers get woken.
    idle_tick: SimDuration,
    /// Retained scheduler-context buffers, double-buffered: `ctx_plan`
    /// carries the pre-plan context (and is later lent to the memory-fit
    /// stage as reclaim scratch, once the plan no longer needs it);
    /// `ctx_batch` carries the post-plan context batch composition reads.
    /// Reusing them eliminates the two-to-three full `Vec<ReqView>`
    /// allocations every step used to pay.
    ctx_plan: SchedContext,
    ctx_batch: SchedContext,
    /// Retained iteration-batch buffer, cleared and refilled per step.
    iter_batch: IterationBatch,
    /// The active plan-horizon certificate, when armed: across certified
    /// steps the engine replays `iter_batch` (or re-gates it in place)
    /// instead of re-running admission, planning, and composition.
    horizon: Option<ArmedHorizon>,
    /// Per-horizon cache mapping `st.running[i]` to its index in
    /// `ctx_batch.requests` (`u32::MAX` = no view). Both lists are
    /// id-sorted and the context's membership is frozen inside a horizon
    /// (flips edit views in place, never insert or remove), so the gate
    /// refresh can use direct indexing instead of a binary search per
    /// member per step. Cleared at every full step; rebuilt by one merge
    /// pass when its length no longer matches the running set.
    running_ctx_idx: Vec<u32>,
    /// Retained completion-event buffer for transfer application — the
    /// engine applies transfers up to three times per step, so the
    /// steady state reuses one allocation.
    kv_events: Vec<tokenflow_kv::KvEvent>,
    /// Fast-path counters.
    fast_stats: FastPathStats,
    /// Compute slowdown multiplier on iteration times (`1.0` = healthy).
    /// Fault injection sets it over a straggler window; while it is not
    /// `1.0` the plan-horizon fast path stays disarmed, so degraded
    /// replicas run the full pipeline and healthy replicas keep the
    /// zero-alloc fast path untouched.
    slowdown: f64,
    /// Decision-event journal sink; a no-op unless
    /// [`EngineConfig::trace`] is set.
    trace: TraceSink,
}

impl Engine {
    /// Creates an engine from a configuration and a scheduling policy.
    /// Callers already holding a `Box<dyn Scheduler>` should prefer
    /// [`Engine::from_boxed`], which skips the re-box and its extra
    /// dispatch hop in the iteration loop.
    ///
    /// # Panics
    ///
    /// Panics if the configuration leaves no KV capacity (weights larger
    /// than the memory budget).
    pub fn new(config: EngineConfig, scheduler: impl Scheduler + 'static) -> Self {
        Self::from_boxed(config, Box::new(scheduler))
    }

    /// [`Engine::new`] for an already-boxed policy (factories and
    /// registries hand out `Box<dyn Scheduler>`); same panics.
    pub fn from_boxed(config: EngineConfig, scheduler: Box<dyn Scheduler>) -> Self {
        let cost = config.cost_model();
        let gpu_tokens = cost.kv_token_capacity(config.mem_frac);
        assert!(
            gpu_tokens >= config.block_tokens as u64,
            "configuration leaves no KV capacity: model does not fit"
        );
        let gpu_blocks = gpu_tokens / config.block_tokens as u64;
        let kv = KvManager::new(KvConfig {
            block_tokens: config.block_tokens,
            gpu_blocks,
            cpu_blocks: (gpu_blocks as f64 * config.cpu_pool_factor) as u64,
            kv_bytes_per_token: config.model.kv_bytes_per_token(),
            chunk_tokens: config.chunk_tokens,
            write_through: config.write_through,
            priority_writes: config.priority_writes,
            offload_enabled: config.offload_enabled,
            load_evict_overlap: config.load_evict_overlap,
            pcie_bandwidth: config.hardware.pcie_bw,
            pcie_latency_us: config.hardware.pcie_latency_us,
        });
        let prefill_init = cost.prefill_time(512, 0).as_secs_f64() / 512.0;
        let thpt_init = cost.batch_throughput(config.max_batch.min(64), 1_024);
        Engine {
            cost,
            clock: Clock::new(),
            scheduler,
            kv,
            st: EngineState::new(),
            arrivals: EventQueue::new(),
            profs: EngineProfilers::new(prefill_init, thpt_init),
            telemetry: Telemetry::new(config.sample_interval, config.deadline),
            iterations: 0,
            idle_tick: SimDuration::from_millis(10),
            ctx_plan: SchedContextBuilder::new(SimTime::ZERO).build(),
            ctx_batch: SchedContextBuilder::new(SimTime::ZERO).build(),
            iter_batch: IterationBatch::default(),
            horizon: None,
            running_ctx_idx: Vec::new(),
            kv_events: Vec::new(),
            fast_stats: FastPathStats::default(),
            slowdown: 1.0,
            trace: if config.trace {
                TraceSink::enabled(TraceSource::Replica(0))
            } else {
                TraceSink::disabled()
            },
            config,
        }
    }

    /// Re-labels the engine's trace stream (a no-op when tracing is
    /// off). The cluster assigns each replica its stable index through
    /// this, including to replicas provisioned mid-run.
    pub fn set_trace_source(&mut self, source: TraceSource) {
        self.trace.set_source(source);
    }

    /// Takes the trace events buffered so far, leaving the sink (and its
    /// sequence counter) running. Empty when tracing is off.
    pub fn take_trace_events(&mut self) -> Vec<tokenflow_trace::TraceEvent> {
        self.trace.drain()
    }

    /// Submits an interactive request; its id is assigned densely in
    /// submission order (the spec's own id field is ignored).
    ///
    /// # Panics
    ///
    /// Panics if the spec has a zero output length or a non-positive rate.
    pub fn submit(&mut self, spec: RequestSpec) -> RequestId {
        self.submit_as(spec, ClientKind::Interactive)
    }

    /// Submits a request on behalf of an agent client: its rate is treated
    /// as an elastic reference priority (§8) — the scheduler lets it run at
    /// full speed when capacity is idle and throttles it first under load.
    pub fn submit_agent(&mut self, spec: RequestSpec) -> RequestId {
        self.submit_as(spec, ClientKind::Agent)
    }

    /// Submits a request with an explicit client kind.
    ///
    /// # Panics
    ///
    /// Panics if the spec has a zero output length or a non-positive rate.
    pub fn submit_as(&mut self, mut spec: RequestSpec, kind: ClientKind) -> RequestId {
        assert!(spec.output_tokens > 0, "output length must be positive");
        assert!(
            spec.rate.is_finite() && spec.rate > 0.0,
            "rate must be positive"
        );
        let id = RequestId(self.st.requests.len() as u64);
        spec.id = id;
        let metrics = RequestMetrics::new(id, spec.arrival, spec.rate, spec.output_tokens);
        // One timeline point per output token: the exact final length is
        // known here, so reserve it once.
        let timeline = (id.0 < self.config.timeline_requests as u64)
            .then(|| TokenTimeline::with_capacity(id, spec.output_tokens));
        self.st.requests.push(ReqState {
            buffer: TokenBuffer::new(spec.rate),
            kind,
            metrics,
            phase: Phase::WaitingNew,
            generated: 0,
            prefill_done: 0,
            prefill_target: 0,
            timeline,
            spec,
        });
        self.st.active_rate_sum += spec.rate;
        self.st.insert_arrival_time(spec.arrival);
        self.arrivals.push(spec.arrival, id);
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The scheduling policy's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// A point-in-time load summary for routers and monitors.
    ///
    /// O(1): every field reads an incrementally-maintained counter, so
    /// cluster routers can snapshot all replicas per dispatched request
    /// without rescanning request tables.
    pub fn load_snapshot(&self) -> EngineLoad {
        EngineLoad {
            now: self.clock.now(),
            submitted: self.st.requests.len(),
            live: self.st.requests.len() - self.st.finished_count,
            arrived: self.st.live_count,
            waiting: self.st.waiting_count,
            running: self.st.running.len(),
            transitioning: self.kv.evicting_requests() + self.kv.loading_requests(),
            rate_sum: self.st.active_rate_sum,
            gpu_free_tokens: self.kv.gpu_free_tokens(),
            gpu_total_tokens: self.kv.gpu_total_tokens(),
            d2h_queue_len: self.kv.io_queue_len(Direction::D2H),
            h2d_queue_len: self.kv.io_queue_len(Direction::H2D),
            pending_prefill_tokens: self.st.prefill_backlog_tokens,
        }
    }

    /// Runs one engine iteration through the staged pipeline. Returns what
    /// happened.
    ///
    /// Allocates a fresh [`StepOutcome`] per call; hot loops that discard
    /// or copy the outcome should reuse one via [`Engine::step_into`].
    pub fn step(&mut self) -> StepOutcome {
        let mut outcome = StepOutcome::default();
        self.step_into(&mut outcome);
        outcome
    }

    /// [`Engine::step`] into a caller-retained outcome buffer: `outcome`
    /// is cleared and refilled, so a loop reusing one buffer keeps the
    /// whole steady-state step allocation-free (the engine's contexts and
    /// batch are retained too).
    pub fn step_into(&mut self, outcome: &mut StepOutcome) {
        let now = self.clock.now();
        outcome.now = now;
        outcome.delivered.clear();
        outcome.finished.clear();
        outcome.idle = false;
        outcome.done = false;

        // Stage 1+2 (pre-compute): ingest arrivals and apply finished KV
        // transfers. Both bump the decision epoch when they act, so they
        // run *before* the horizon check — an arrival or a transfer
        // completion lands in a full pipeline step.
        admission::ingest_arrivals(&mut self.arrivals, &mut self.st, now, &mut self.trace);
        let mut kv_events = std::mem::take(&mut self.kv_events);
        kv_orchestrator::apply_transfers(
            &mut self.st,
            &mut self.kv,
            now,
            &mut kv_events,
            &mut self.trace,
        );
        self.kv_events = kv_events;

        // Plan-horizon fast path: inside an armed, unexpired certificate
        // the scheduler's decisions are provably unchanged, so the step
        // replays the retained batch and pays only pricing + delivery +
        // telemetry — O(batch) instead of O(live).
        if self.fast_step_applies(now) {
            return self.fast_step(now, outcome);
        }

        self.full_step(now, outcome)
    }

    /// The full pipeline step: context build, plan, compose, fit, price,
    /// deliver — and, on a clean quiescent iteration, arming the next
    /// plan horizon.
    fn full_step(&mut self, now: SimTime, outcome: &mut StepOutcome) {
        // Any decision event between here and the end of the step
        // (admission, preemption, prefill completion, finish) moves the
        // epoch past this snapshot and vetoes arming: the retained batch
        // and context would be stale.
        let epoch_at_plan = self.st.decision_epoch;

        // The flip journal only matters to an armed horizon's retained
        // context; this step rebuilds its contexts from true phases, so
        // everything journaled up to now is already reflected. Flips
        // landing later in this step (the in-compute transfer advance)
        // stay journaled for the fast path to reconcile.
        self.st.transfer_flips.clear();

        // Let the scheduler plan against fresh state.
        admission::build_ctx_into(
            &mut self.ctx_plan,
            &mut self.st,
            &self.kv,
            &self.cost,
            &self.config,
            &self.profs,
            now,
        );
        self.ctx_plan.trace_notes = self.trace.is_enabled();
        let plan = self.scheduler.plan(&self.ctx_plan);
        for note in &plan.notes {
            match *note {
                PlanNote::Reprice { id, before, after } => {
                    self.trace
                        .emit(now, TraceEventKind::Reprice { id, before, after });
                }
                PlanNote::Swap {
                    evicted,
                    admitted,
                    evicted_priority,
                    admitted_priority,
                } => {
                    self.trace.emit(
                        now,
                        TraceEventKind::Swap {
                            evicted,
                            admitted,
                            evicted_priority,
                            admitted_priority,
                        },
                    );
                }
            }
        }
        admission::apply_plan(
            &mut self.st,
            &mut self.kv,
            plan.actions,
            now,
            &mut self.trace,
        );

        // Stage 3: compose the iteration batch against post-plan state and
        // fit it into GPU memory. When the plan did not act (the epoch
        // still matches its snapshot — stale actions are ignored without
        // bumping it), post-plan state IS pre-plan state and the context
        // just built for planning is byte-for-byte what a rebuild would
        // produce; swap it into the batch slot instead of paying the
        // O(live) walk twice.
        if self.st.decision_epoch == epoch_at_plan {
            std::mem::swap(&mut self.ctx_plan, &mut self.ctx_batch);
        } else {
            admission::build_ctx_into(
                &mut self.ctx_batch,
                &mut self.st,
                &self.kv,
                &self.cost,
                &self.config,
                &self.profs,
                now,
            );
        }
        batch::compose_into(
            &mut self.iter_batch,
            &self.st,
            self.scheduler.as_ref(),
            &self.ctx_batch,
            &self.config,
            &mut self.trace,
        );
        let fits_clean = batch::fit_memory(
            &mut self.iter_batch,
            &mut self.st,
            &mut self.kv,
            self.scheduler.as_ref(),
            &self.cost,
            &self.config,
            &self.profs,
            // The plan-phase context is dead here; lend it to the
            // emergency-reclaim loop as scratch.
            &mut self.ctx_plan,
            now,
            &mut self.trace,
        );

        // Idle fast-forward when there is no compute work.
        if self.iter_batch.is_idle() {
            return self.idle_step(outcome);
        }

        // Price the iteration; a straggler window stretches it.
        let (spec, mut iter_time) = batch::price(&self.iter_batch, &self.st, &self.cost);
        if self.slowdown != 1.0 {
            iter_time = iter_time.mul_f64(self.slowdown);
        }

        // Stage 2 (in-compute): pump a compute-window's worth of
        // write-through sync, then advance time — transfers progress
        // during compute.
        kv_orchestrator::pump_write_through(
            &mut self.st,
            &mut self.kv,
            &self.iter_batch.decode,
            now,
            iter_time,
        );
        let end = self.clock.advance(iter_time);
        let mut kv_events = std::mem::take(&mut self.kv_events);
        kv_orchestrator::apply_transfers(
            &mut self.st,
            &mut self.kv,
            end,
            &mut kv_events,
            &mut self.trace,
        );
        self.kv_events = kv_events;

        // Stage 4: deliveries and telemetry.
        let qos = self.config.qos;
        delivery::apply_prefill_progress(
            &mut self.st,
            &mut self.kv,
            &self.iter_batch,
            end,
            &qos,
            outcome,
            &mut self.trace,
        );
        let decode_delivered = delivery::deliver_decode(
            &mut self.st,
            &mut self.kv,
            &self.iter_batch,
            now,
            end,
            &qos,
            outcome,
            &mut self.trace,
        );
        if spec.prefill_tokens > 0 {
            self.profs.prefill.record(spec.prefill_tokens, iter_time);
        }
        self.profs.prefill_rate.record(end, spec.prefill_tokens);
        self.profs.decode.record(end, decode_delivered);
        self.telemetry.sample(&self.st, &self.kv, end);
        self.iterations += 1;
        outcome.now = end;
        outcome.done = self.st.all_finished() && self.arrivals.is_empty();

        // The ctx-index cache derives from this step's rebuilt context
        // and running set; any new horizon starts from a fresh merge.
        self.running_ctx_idx.clear();

        // Arm the next plan horizon over clean, decode-only iterations:
        // the batch fit as composed, nothing prefill-shaped is pending,
        // and no decision event happened during the step (the epoch
        // still matches, so `ctx_batch` and `iter_batch` describe the
        // state the next step starts from, modulo journaled transfer
        // flips the fast path reconciles on entry). The scheduler then
        // certifies how long its plan stays a no-op.
        self.horizon = None;
        if self.config.plan_horizon
            && self.slowdown == 1.0
            && fits_clean
            && self.st.decision_epoch == epoch_at_plan
            && self.st.prefill_queue.is_empty()
            && self.iter_batch.prefill.is_empty()
            && !self.iter_batch.decode.is_empty()
        {
            if let Some(h) = self.scheduler.plan_horizon(&self.ctx_batch) {
                if h.valid_until > end {
                    self.horizon = Some(ArmedHorizon {
                        valid_until: h.valid_until,
                        gates_static: h.gates_static,
                        epoch: epoch_at_plan,
                    });
                    self.fast_stats.horizons_issued += 1;
                    self.trace.emit(
                        end,
                        TraceEventKind::HorizonArmed {
                            valid_until: h.valid_until,
                            gates_static: h.gates_static,
                        },
                    );
                }
            }
        }
    }

    /// Checks whether the current step may run on the fast path, keeping
    /// the armed horizon's bookkeeping honest: a failed check disarms it
    /// (the full pipeline re-arms at its next clean quiescent step).
    fn fast_step_applies(&mut self, now: SimTime) -> bool {
        let Some(h) = self.horizon else {
            return false;
        };
        if self.st.decision_epoch != h.epoch {
            self.horizon = None;
            self.fast_stats.horizons_invalidated += 1;
            self.trace.emit(
                now,
                TraceEventKind::HorizonEnded {
                    reason: HorizonEndReason::Invalidated,
                },
            );
            return false;
        }
        if now >= h.valid_until {
            self.horizon = None;
            self.fast_stats.horizons_expired += 1;
            self.trace.emit(
                now,
                TraceEventKind::HorizonEnded {
                    reason: HorizonEndReason::Expired,
                },
            );
            return false;
        }
        // Mirror the KV transfer completions that landed since the last
        // reconcile into the retained context: an in-flight transfer
        // finishing flips one request's phase (`Evicting → OnCpu` or
        // `Loading → Running`) without any scheduler decision, and the
        // horizon's certificate is required to survive it. Phases and
        // counts first, so gates read the truth below.
        let flipped = !self.st.transfer_flips.is_empty();
        if flipped {
            for i in 0..self.st.transfer_flips.len() {
                let id = self.st.transfer_flips[i];
                // Finished requests have no scheduler phase, but a finish
                // inside the horizon bumps the epoch and never reaches
                // here — this is belt-and-braces for stale journal rows.
                if let Some(phase) = self.st.requests[id.0 as usize].phase.sched_phase() {
                    self.ctx_batch.update_phase(id, phase);
                }
            }
            self.st.transfer_flips.clear();
        }
        // Pacing gates may flip with buffer levels inside the horizon,
        // and a completed load adds a decode member a frozen replay
        // would miss: refresh the gate-read view fields and recompose
        // the decode batch in place. An empty recompose is an idle
        // iteration, which the full pipeline owns.
        if (flipped || !h.gates_static) && !self.refresh_and_regate(now) {
            self.horizon = None;
            self.fast_stats.horizons_invalidated += 1;
            self.trace.emit(
                now,
                TraceEventKind::HorizonEnded {
                    reason: HorizonEndReason::Invalidated,
                },
            );
            return false;
        }
        // Per-step memory pre-check, exactly the full path's (there is
        // no prefill inside a horizon): if this step's decode appends
        // need reclamation or shedding, the full pipeline handles them.
        let bt = self.config.block_tokens as u64;
        if batch::decode_blocks_needed(&self.kv, &self.iter_batch.decode, bt)
            > self.kv.gpu_free_tokens() / bt
        {
            self.horizon = None;
            self.fast_stats.horizons_invalidated += 1;
            self.trace.emit(
                now,
                TraceEventKind::HorizonEnded {
                    reason: HorizonEndReason::Invalidated,
                },
            );
            return false;
        }
        true
    }

    /// Refreshes the gate-read fields (buffer occupancy, context and
    /// remaining counts, started flag) of every running member's view in
    /// the retained post-plan context, then recomposes the decode batch
    /// exactly as [`batch::compose_into`] would against a fresh context.
    /// The running set is current at this point: decision events tore
    /// the horizon down via the epoch, and transfer flips were already
    /// mirrored into the context (including members a completed load
    /// just added), so only per-request progress needs refreshing.
    /// Returns `false` when the recomposed batch is empty.
    fn refresh_and_regate(&mut self, now: SimTime) -> bool {
        self.ctx_batch.set_now(now);
        if self.running_ctx_idx.len() != self.st.running.len() {
            self.rebuild_running_ctx_idx();
        }
        for i in 0..self.st.running.len() {
            let id = self.st.running[i];
            let s = &mut self.st.requests[id.0 as usize];
            debug_assert_eq!(s.phase, Phase::Running);
            let snap = s.buffer.snapshot(now);
            let started = s.generated > 0;
            let context = s.context_tokens();
            let remaining = s.remaining_tokens();
            let ci = self.running_ctx_idx[i] as usize;
            if let Some(v) = self.ctx_batch.requests.get_mut(ci) {
                debug_assert_eq!(v.id, id);
                v.buffered_tokens = snap.buffered;
                v.buffered_secs = snap.buffered_secs;
                v.stalled = snap.stalled_now;
                v.started = started;
                v.context_tokens = context;
                v.remaining_tokens = remaining;
            }
        }
        let st = &self.st;
        let ctx = &self.ctx_batch;
        let idx = &self.running_ctx_idx;
        let scheduler = self.scheduler.as_ref();
        let sink = &mut self.trace;
        self.iter_batch.decode.clear();
        self.iter_batch.prefill.clear();
        self.iter_batch.decode.extend(
            st.running
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, id)| st.state(id).phase == Phase::Running)
                .filter(|&(i, id)| {
                    let open = ctx
                        .requests
                        .get(idx[i] as usize)
                        .is_none_or(|v| scheduler.decode_gate(v, ctx));
                    sink.gate(now, id, !open);
                    open
                })
                .map(|(_, id)| id),
        );
        !self.iter_batch.decode.is_empty()
    }

    /// Rebuilds [`Engine::running_ctx_idx`] with one merge pass over the
    /// two id-sorted lists. Runs when the cache is stale — at a horizon's
    /// first re-gated step and after a transfer flip grows the running
    /// set — not per step.
    fn rebuild_running_ctx_idx(&mut self) {
        let reqs = &self.ctx_batch.requests;
        self.running_ctx_idx.clear();
        let mut j = 0usize;
        for &id in &self.st.running {
            while j < reqs.len() && reqs[j].id < id {
                j += 1;
            }
            if j < reqs.len() && reqs[j].id == id {
                self.running_ctx_idx.push(j as u32);
            } else {
                self.running_ctx_idx.push(u32::MAX);
            }
        }
    }

    /// The certified step: replay the (possibly re-gated) retained batch
    /// and run only the per-step stages — pricing, write-through pump,
    /// transfer advance, decode delivery, profiler and telemetry feeds.
    /// Byte-identical to the full pipeline under the horizon's
    /// certificate, just without re-deriving the identical decisions.
    fn fast_step(&mut self, now: SimTime, outcome: &mut StepOutcome) {
        let (spec, mut iter_time) = batch::price(&self.iter_batch, &self.st, &self.cost);
        if self.slowdown != 1.0 {
            iter_time = iter_time.mul_f64(self.slowdown);
        }
        debug_assert_eq!(spec.prefill_tokens, 0);
        kv_orchestrator::pump_write_through(
            &mut self.st,
            &mut self.kv,
            &self.iter_batch.decode,
            now,
            iter_time,
        );
        let end = self.clock.advance(iter_time);
        let mut kv_events = std::mem::take(&mut self.kv_events);
        kv_orchestrator::apply_transfers(
            &mut self.st,
            &mut self.kv,
            end,
            &mut kv_events,
            &mut self.trace,
        );
        self.kv_events = kv_events;
        let qos = self.config.qos;
        let decode_delivered = delivery::deliver_decode(
            &mut self.st,
            &mut self.kv,
            &self.iter_batch,
            now,
            end,
            &qos,
            outcome,
            &mut self.trace,
        );
        // Feed the profilers the same samples the full path would (the
        // prefill EMA skips zero-token records there too), so Γ reads
        // identically at the next full step.
        self.profs.prefill_rate.record(end, 0);
        self.profs.decode.record(end, decode_delivered);
        self.telemetry.sample(&self.st, &self.kv, end);
        self.iterations += 1;
        self.fast_stats.fast_steps += 1;
        outcome.now = end;
        outcome.done = self.st.all_finished() && self.arrivals.is_empty();
    }

    /// Fast-forwards an idle iteration to the next wake-up: an arrival, a
    /// transfer completion, or one idle tick while requests are alive.
    fn idle_step(&mut self, outcome: &mut StepOutcome) {
        let now = outcome.now;
        outcome.idle = true;
        let mut wake = SimTime::MAX;
        if let Some(t) = self.arrivals.peek_time() {
            wake = wake.min(t);
        }
        if let Some(t) = kv_orchestrator::next_transfer_completion(&self.kv) {
            wake = wake.min(t);
        }
        let any_live = self.st.live_count > self.st.finished_count;
        if any_live {
            wake = wake.min(now + self.idle_tick);
        }
        if wake == SimTime::MAX {
            outcome.done = self.st.all_finished();
            return;
        }
        let wake = wake.max(now + SimDuration::from_micros(1));
        self.clock.advance_to(wake);
        outcome.now = wake;
    }

    /// Advances the engine until its clock reaches `deadline`, every
    /// submitted request finishes, or the engine goes fully idle (nothing
    /// submitted, nothing in flight). Returns whether every submitted
    /// request has finished.
    ///
    /// This is the epoch-advance entry point the cluster executor drives:
    /// between two arrival barriers a replica is advanced to the next
    /// barrier time with exactly the same step semantics as
    /// [`Engine::step`] in a hand-written loop, so sequential and parallel
    /// cluster execution stay step-for-step identical. An engine whose
    /// clock is already at or past `deadline` is left untouched.
    pub fn step_until(&mut self, deadline: SimTime) -> bool {
        let mut out = StepOutcome::default();
        loop {
            if self.st.all_finished() && self.arrivals.is_empty() {
                return true;
            }
            if self.clock.now() >= deadline {
                return false;
            }
            // Every non-done step advances the clock (idle steps
            // fast-forward at least one tick while work remains), so the
            // loop terminates at the deadline.
            self.step_into(&mut out);
            if out.done {
                return true;
            }
        }
    }

    /// Runs until every submitted request completes, the safety deadline
    /// passes, or the iteration cap ([`EngineConfig::max_iterations`])
    /// trips — and says which.
    pub fn run_to_completion(&mut self) -> Completion {
        let deadline = SimTime::ZERO + self.config.deadline;
        let mut out = StepOutcome::default();
        loop {
            self.step_into(&mut out);
            if out.done {
                return Completion::Finished;
            }
            if out.now >= deadline {
                return Completion::Deadline;
            }
            if self.iterations >= self.config.max_iterations {
                return Completion::IterationCap;
            }
        }
    }

    /// Sets the compute slowdown multiplier (`1.0` restores full speed).
    /// Iteration times are stretched by the factor from the next step on.
    /// Any armed plan horizon is dropped and re-arming is suppressed
    /// while degraded, so straggler windows run the full pipeline and the
    /// fast path stays exclusive to healthy replicas.
    ///
    /// # Panics
    ///
    /// Panics unless `slowdown` is finite and at least `1.0`.
    pub fn set_compute_slowdown(&mut self, slowdown: f64) {
        assert!(
            slowdown.is_finite() && slowdown >= 1.0,
            "compute slowdown must be finite and >= 1.0"
        );
        if slowdown != 1.0 {
            self.horizon = None;
        }
        self.slowdown = slowdown;
    }

    /// Sets the host-link slowdown multiplier (`1.0` restores nominal
    /// bandwidth). Only KV transfers enqueued after the call are
    /// affected; in-flight chunks keep their enqueue-time completion, so
    /// applying it at an arrival barrier is deterministic.
    pub fn set_link_slowdown(&mut self, slowdown: f64) {
        self.kv.set_link_slowdown(slowdown);
    }

    /// Specs of every submitted-but-unfinished request, in id order —
    /// exactly what a fail-stop at this instant loses (resident KV and
    /// in-flight streams included). The specs carry this replica's dense
    /// local ids; callers owning an id mapping translate them back.
    pub fn unfinished_requests(&self) -> Vec<RequestSpec> {
        self.st
            .requests
            .iter()
            .filter(|s| s.phase != Phase::Finished)
            .map(|s| s.spec)
            .collect()
    }

    /// Plan-horizon fast-path counters accumulated so far.
    pub fn fast_path_stats(&self) -> FastPathStats {
        self.fast_stats
    }

    /// Iterations executed so far (fast and full steps both count).
    pub fn iterations(&self) -> u64 {
        self.iterations
    }

    /// Compile-time proof that whole replicas (engine + boxed scheduler)
    /// can move across threads: the cluster's parallel epoch executor
    /// hands `&mut Engine` to scoped workers, which requires `Engine:
    /// Send`. Breaking it (e.g. an `Rc` in a scheduler) fails this fn.
    #[doc(hidden)]
    pub const fn assert_send()
    where
        Self: Send,
    {
    }

    /// Finalises metrics and returns the outcome, consuming the engine.
    pub fn into_outcome(mut self) -> SimOutcome {
        let run_end = self.clock.now();
        // Let every reader drain its buffer so rebuffering is fully
        // accounted; unfinished requests are measured to run end.
        let complete = self.st.all_finished();
        for s in &mut self.st.requests {
            // Finished requests are measured to the instant their reader
            // consumes the last token — the stream is over, the reader does
            // not stall on tokens that will never come. Unfinished requests
            // are measured to the cutoff.
            let horizon = match (s.metrics.finished_at, s.buffer.drain_end()) {
                (Some(_), Some(drain)) => drain,
                _ => run_end,
            };
            let snap = s.buffer.snapshot(horizon);
            s.metrics.rebuffer = snap.rebuffer;
            s.metrics.stall_events = snap.stall_events;
        }
        let records: Vec<RequestMetrics> =
            self.st.requests.iter().map(|s| s.metrics.clone()).collect();
        let mut report = RunReport::from_records(
            &records,
            run_end.saturating_since(SimTime::ZERO),
            &self.config.qos,
        );
        report.runtime.fast_steps = self.fast_stats.fast_steps;
        report.runtime.horizons_issued = self.fast_stats.horizons_issued;
        report.runtime.horizons_invalidated = self.fast_stats.horizons_invalidated;
        report.runtime.horizons_expired = self.fast_stats.horizons_expired;
        let timelines = self
            .st
            .requests
            .iter_mut()
            .filter_map(|s| s.timeline.take())
            .collect();
        let completion = if complete {
            Completion::Finished
        } else if run_end >= SimTime::ZERO + self.config.deadline {
            Completion::Deadline
        } else if self.iterations >= self.config.max_iterations {
            Completion::IterationCap
        } else {
            // Cut off externally (e.g. a cluster driver's barrier
            // deadline) before any engine-side limit tripped.
            Completion::Deadline
        };
        SimOutcome {
            report,
            records,
            queued_series: self.telemetry.queued_series,
            running_series: self.telemetry.running_series,
            gpu_util_series: self.telemetry.gpu_util_series,
            timelines,
            scheduler: self.scheduler.name().to_string(),
            sim_time: run_end.saturating_since(SimTime::ZERO),
            complete,
            completion,
            iterations: self.iterations,
            trace: self.trace.into_journal(),
        }
    }
}
