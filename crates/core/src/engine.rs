//! The continuous-batching serving engine.

use std::collections::VecDeque;

use tokenflow_client::TokenBuffer;
use tokenflow_kv::{Direction, EvictStart, KvConfig, KvEvent, KvManager};
use tokenflow_metrics::{
    effective_weight, qos_token_weight, RequestMetrics, RunReport, TimeSeries, TokenTimeline,
};
use tokenflow_model::{CostModel, IterationSpec};
use tokenflow_sched::{
    Action, PreemptMode, PrefillPolicy, ReqPhase, ReqView, SchedContext, Scheduler,
};
use tokenflow_sim::{Clock, EventQueue, RequestId, SimDuration, SimTime};
use tokenflow_workload::{ClientKind, RequestSpec};

use crate::config::EngineConfig;
use crate::outcome::SimOutcome;
use crate::profiler::{PrefillProfiler, ThroughputProfiler};

/// Engine-internal request lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Arrived; no KV anywhere; awaiting admission.
    WaitingNew,
    /// Admitted; prompt (or recompute context) being prefilled.
    Prefilling,
    /// In the decode batch.
    Running,
    /// Preempted; KV flushing to host.
    Evicting,
    /// Fully offloaded to host memory.
    OnCpu,
    /// KV loading back to the GPU.
    Loading,
    /// All output tokens generated.
    Finished,
}

#[derive(Debug)]
struct ReqState {
    spec: RequestSpec,
    kind: ClientKind,
    buffer: TokenBuffer,
    metrics: RequestMetrics,
    phase: Phase,
    generated: u64,
    prefill_done: u64,
    prefill_target: u64,
    timeline: Option<TokenTimeline>,
}

impl ReqState {
    fn context_tokens(&self) -> u64 {
        self.spec.prompt_tokens + self.generated
    }

    fn remaining_tokens(&self) -> u64 {
        self.spec.output_tokens - self.generated
    }
}

/// What one engine step did.
#[derive(Debug, Clone, Default)]
pub struct StepOutcome {
    /// Time at the end of the step.
    pub now: SimTime,
    /// Tokens delivered this step: `(request, cumulative count)`.
    pub delivered: Vec<(RequestId, u64)>,
    /// Requests that finished this step.
    pub finished: Vec<RequestId>,
    /// True when the step found no compute work and fast-forwarded.
    pub idle: bool,
    /// True when every submitted request has finished.
    pub done: bool,
}

/// The serving engine.
///
/// See the crate docs for the iteration structure; construct with a
/// [`Scheduler`] implementation, [`Engine::submit`] requests, then either
/// [`Engine::step`] interactively or [`Engine::run_to_completion`].
pub struct Engine {
    config: EngineConfig,
    cost: CostModel,
    clock: Clock,
    scheduler: Box<dyn Scheduler>,
    kv: KvManager,
    requests: Vec<ReqState>,
    arrivals: EventQueue<RequestId>,
    prefill_queue: VecDeque<RequestId>,
    running: Vec<RequestId>,
    prefill_prof: PrefillProfiler,
    thpt_prof: ThroughputProfiler,
    /// Trailing prefill token rate, for the prefill share of capacity.
    prefill_rate_prof: ThroughputProfiler,
    queued_series: TimeSeries,
    running_series: TimeSeries,
    gpu_util_series: TimeSeries,
    next_sample: SimTime,
    iterations: u64,
    finished_count: usize,
    live_count: usize,
    /// Minimum idle fast-forward so time-sliced schedulers get woken.
    idle_tick: SimDuration,
}

impl Engine {
    /// Creates an engine from a configuration and a scheduling policy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration leaves no KV capacity (weights larger
    /// than the memory budget).
    pub fn new(config: EngineConfig, scheduler: Box<dyn Scheduler>) -> Self {
        let cost = config.cost_model();
        let gpu_tokens = cost.kv_token_capacity(config.mem_frac);
        assert!(
            gpu_tokens >= config.block_tokens as u64,
            "configuration leaves no KV capacity: model does not fit"
        );
        let gpu_blocks = gpu_tokens / config.block_tokens as u64;
        let kv = KvManager::new(KvConfig {
            block_tokens: config.block_tokens,
            gpu_blocks,
            cpu_blocks: (gpu_blocks as f64 * config.cpu_pool_factor) as u64,
            kv_bytes_per_token: config.model.kv_bytes_per_token(),
            chunk_tokens: config.chunk_tokens,
            write_through: config.write_through,
            priority_writes: config.priority_writes,
            offload_enabled: config.offload_enabled,
            load_evict_overlap: config.load_evict_overlap,
            pcie_bandwidth: config.hardware.pcie_bw,
            pcie_latency_us: config.hardware.pcie_latency_us,
        });
        let prefill_init = cost.prefill_time(512, 0).as_secs_f64() / 512.0;
        let thpt_init = cost.batch_throughput(config.max_batch.min(64), 1_024);
        let sample_start = SimTime::ZERO + config.sample_interval;
        Engine {
            cost,
            clock: Clock::new(),
            scheduler,
            kv,
            requests: Vec::new(),
            arrivals: EventQueue::new(),
            prefill_queue: VecDeque::new(),
            running: Vec::new(),
            prefill_prof: PrefillProfiler::new(prefill_init),
            thpt_prof: ThroughputProfiler::new(SimDuration::from_secs(5), thpt_init),
            prefill_rate_prof: ThroughputProfiler::new(SimDuration::from_secs(5), 0.0),
            queued_series: TimeSeries::new("queued"),
            running_series: TimeSeries::new("running"),
            gpu_util_series: TimeSeries::new("gpu_util"),
            next_sample: sample_start,
            iterations: 0,
            finished_count: 0,
            live_count: 0,
            idle_tick: SimDuration::from_millis(10),
            config,
        }
    }

    /// Submits an interactive request; its id is assigned densely in
    /// submission order (the spec's own id field is ignored).
    ///
    /// # Panics
    ///
    /// Panics if the spec has a zero output length or a non-positive rate.
    pub fn submit(&mut self, spec: RequestSpec) -> RequestId {
        self.submit_as(spec, ClientKind::Interactive)
    }

    /// Submits a request on behalf of an agent client: its rate is treated
    /// as an elastic reference priority (§8) — the scheduler lets it run at
    /// full speed when capacity is idle and throttles it first under load.
    pub fn submit_agent(&mut self, spec: RequestSpec) -> RequestId {
        self.submit_as(spec, ClientKind::Agent)
    }

    /// Submits a request with an explicit client kind.
    ///
    /// # Panics
    ///
    /// Panics if the spec has a zero output length or a non-positive rate.
    pub fn submit_as(&mut self, mut spec: RequestSpec, kind: ClientKind) -> RequestId {
        assert!(spec.output_tokens > 0, "output length must be positive");
        assert!(
            spec.rate.is_finite() && spec.rate > 0.0,
            "rate must be positive"
        );
        let id = RequestId(self.requests.len() as u64);
        spec.id = id;
        let metrics = RequestMetrics::new(id, spec.arrival, spec.rate, spec.output_tokens);
        let timeline = (id.0 < self.config.timeline_requests as u64)
            .then(|| TokenTimeline::new(id));
        self.requests.push(ReqState {
            buffer: TokenBuffer::new(spec.rate),
            kind,
            metrics,
            phase: Phase::WaitingNew,
            generated: 0,
            prefill_done: 0,
            prefill_target: 0,
            timeline,
            spec,
        });
        self.arrivals.push(spec.arrival, id);
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The scheduling policy's name.
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    fn state(&self, id: RequestId) -> &ReqState {
        &self.requests[id.0 as usize]
    }

    fn state_mut(&mut self, id: RequestId) -> &mut ReqState {
        &mut self.requests[id.0 as usize]
    }

    fn sched_phase(phase: Phase) -> Option<ReqPhase> {
        match phase {
            Phase::WaitingNew => Some(ReqPhase::WaitingNew),
            Phase::Prefilling | Phase::Evicting | Phase::Loading => Some(ReqPhase::Transitioning),
            Phase::Running => Some(ReqPhase::Running),
            Phase::OnCpu => Some(ReqPhase::WaitingCpu),
            Phase::Finished => None,
        }
    }

    fn build_ctx(&mut self, now: SimTime) -> SchedContext {
        let mut views = Vec::new();
        for i in 0..self.requests.len() {
            let id = RequestId(i as u64);
            let (arrived, phase) = {
                let s = &self.requests[i];
                (s.spec.arrival <= now, s.phase)
            };
            if !arrived {
                continue;
            }
            let Some(sched_phase) = Self::sched_phase(phase) else {
                continue;
            };
            let evict_secs = self.kv.estimated_evict_time(id, now).as_secs_f64();
            let load_secs = self.kv.estimated_load_time(id, now).as_secs_f64();
            let reserved = if self.requests[i].phase == Phase::Prefilling {
                self.requests[i].prefill_target
            } else {
                0
            };
            let s = &mut self.requests[i];
            let snap = s.buffer.snapshot(now);
            views.push(ReqView {
                id,
                phase: sched_phase,
                arrival: s.spec.arrival,
                rate: s.spec.rate,
                prompt_tokens: s.spec.prompt_tokens,
                context_tokens: s.context_tokens(),
                remaining_tokens: s.remaining_tokens(),
                buffered_tokens: snap.buffered,
                buffered_secs: snap.buffered_secs,
                stalled: snap.stalled_now,
                started: s.generated > 0,
                evict_secs,
                load_secs,
                reserved_tokens: reserved,
                elastic: s.kind == ClientKind::Agent,
            });
        }
        // Γ: the capacity the hardware could sustain at the live requests'
        // context sizes — the largest memory-feasible batch priced by the
        // cost model — floored against the measured trailing throughput.
        // (Using measured throughput alone would read pacing or prefill
        // phases as capacity collapses.)
        let live_n = views.len().max(1) as u64;
        let avg_ctx = (views.iter().map(|v| v.context_tokens).sum::<u64>() / live_n).max(128);
        let n_fit = (self.kv.gpu_total_tokens() / avg_ctx)
            .clamp(1, self.config.max_batch as u64) as u32;
        let theoretical = self.cost.batch_throughput(n_fit, avg_ctx);
        // Prefill work steals compute from decode: discount capacity by the
        // fraction of wall time the recent prefill stream consumes.
        let prefill_share = (self.prefill_rate_prof.throughput(now)
            * self.prefill_prof.secs_per_token())
        .min(0.8);
        let gamma = self
            .thpt_prof
            .throughput(now)
            .max(theoretical * (1.0 - prefill_share));
        SchedContext {
            now,
            requests: views,
            gpu_free_tokens: self.kv.gpu_free_tokens(),
            gpu_total_tokens: self.kv.gpu_total_tokens(),
            d2h_queue_len: self.kv.io_queue_len(Direction::D2H),
            h2d_queue_len: self.kv.io_queue_len(Direction::H2D),
            d2h_eta: self.kv.io_eta(Direction::D2H, now),
            h2d_eta: self.kv.io_eta(Direction::H2D, now),
            prefill_secs_per_token: self.prefill_prof.secs_per_token(),
            decode_throughput: gamma,
            pcie_bandwidth: self.config.hardware.pcie_bw,
            kv_bytes_per_token: self.config.model.kv_bytes_per_token(),
            max_batch: self.config.max_batch,
        }
    }

    fn apply_kv_events(&mut self, events: Vec<KvEvent>) {
        for event in events {
            match event {
                KvEvent::EvictDone { req, .. } => {
                    let s = self.state_mut(req);
                    if s.phase == Phase::Evicting {
                        s.phase = Phase::OnCpu;
                    }
                }
                KvEvent::LoadDone { req, .. } => {
                    let s = self.state_mut(req);
                    if s.phase == Phase::Loading {
                        s.phase = Phase::Running;
                        self.running.push(req);
                        self.running.sort_unstable();
                    }
                }
            }
        }
    }

    fn admit_prefill(&mut self, id: RequestId) {
        let phase = self.state(id).phase;
        match phase {
            Phase::WaitingNew => {}
            Phase::OnCpu => {
                // Recompute path: drop the host copy and re-prefill.
                self.kv.drop_kv(id);
                self.state_mut(id).metrics.recomputes += 1;
            }
            _ => return, // stale action; ignore
        }
        let s = self.state_mut(id);
        s.prefill_target = s.context_tokens();
        s.prefill_done = 0;
        s.phase = Phase::Prefilling;
        self.prefill_queue.push_back(id);
    }

    fn apply_preempt(&mut self, id: RequestId, mode: PreemptMode, now: SimTime) {
        if self.state(id).phase != Phase::Running {
            return; // stale action
        }
        self.running.retain(|&r| r != id);
        self.state_mut(id).metrics.preemptions += 1;
        let discard = |engine: &mut Engine, id: RequestId| {
            engine.kv.drop_kv(id);
            engine.state_mut(id).phase = Phase::WaitingNew;
        };
        match mode {
            PreemptMode::Discard => discard(self, id),
            PreemptMode::Offload => match self.kv.begin_evict(id, now) {
                Ok(EvictStart::Instant) => self.state_mut(id).phase = Phase::OnCpu,
                Ok(EvictStart::InFlight) => self.state_mut(id).phase = Phase::Evicting,
                Err(_) => discard(self, id),
            },
        }
    }

    fn apply_plan(&mut self, actions: Vec<Action>, now: SimTime) {
        for action in actions {
            match action {
                Action::AdmitPrefill(id) => self.admit_prefill(id),
                Action::Resume(id) => {
                    if self.state(id).phase == Phase::OnCpu
                        && self.kv.begin_load(id, now).is_ok()
                    {
                        self.state_mut(id).phase = Phase::Loading;
                    }
                }
                Action::Preempt { id, mode } => self.apply_preempt(id, mode, now),
            }
        }
    }

    /// Blocks newly required by appending one token to each decode member.
    fn decode_blocks_needed(&self, decode: &[RequestId]) -> u64 {
        let bt = self.config.block_tokens as u64;
        decode
            .iter()
            .filter(|&&id| self.kv.context_tokens(id).is_multiple_of(bt))
            .count() as u64
    }

    /// Emergency memory reclamation: ask the scheduler for victims until
    /// `needed_blocks` fit or no victims remain. Returns whether it fits.
    fn emergency_reclaim(&mut self, needed_blocks: u64, now: SimTime) -> bool {
        let bt = self.config.block_tokens as u64;
        let mode = self.scheduler.emergency_preempt_mode();
        loop {
            if self.kv.gpu_free_tokens() / bt >= needed_blocks {
                return true;
            }
            let ctx = self.build_ctx(now);
            let Some(victim) = self.scheduler.emergency_victim(&ctx) else {
                return false;
            };
            if self.state(victim).phase != Phase::Running {
                return false;
            }
            // Offload may free only partially (in-flight flush); discard
            // frees immediately. Either way the victim leaves the batch.
            self.apply_preempt(victim, mode, now);
            if mode == PreemptMode::Offload
                && self.kv.gpu_free_tokens() / bt < needed_blocks
                && self.state(victim).phase == Phase::Evicting
            {
                // The flush is in flight; memory frees over the next
                // chunks. Fall back to discarding the next victim if the
                // loop cannot make progress otherwise — handled by the next
                // iteration picking a new victim.
                continue;
            }
        }
    }

    /// Runs one engine iteration. Returns what happened.
    pub fn step(&mut self) -> StepOutcome {
        let now = self.clock.now();
        let mut outcome = StepOutcome {
            now,
            ..StepOutcome::default()
        };

        // 1. Ingest due arrivals.
        while let Some(entry) = self.arrivals.pop_due(now) {
            self.live_count += 1;
            let _ = entry;
        }

        // 2. Apply finished KV transfers.
        let events = self.kv.advance_to(now);
        self.apply_kv_events(events);

        // 3. Scheduling pass.
        let ctx = self.build_ctx(now);
        let plan = self.scheduler.plan(&ctx);
        self.apply_plan(plan.actions, now);

        // 4. Compose the iteration batch. Pacing policies may gate
        // over-buffered requests out of this round (their KV stays put).
        let policy = self.scheduler.prefill_policy();
        let ctx_after_plan = self.build_ctx(now);
        let mut decode: Vec<RequestId> = self
            .running
            .iter()
            .copied()
            .filter(|&id| self.state(id).phase == Phase::Running)
            .filter(|&id| {
                ctx_after_plan
                    .requests
                    .iter()
                    .find(|v| v.id == id)
                    .is_none_or(|v| self.scheduler.decode_gate(v, &ctx_after_plan))
            })
            .collect();
        // (prefill request, tokens this iteration, completes?)
        let mut prefill_work: Vec<(RequestId, u64, bool)> = Vec::new();
        match policy {
            PrefillPolicy::Full => {
                if !self.prefill_queue.is_empty() {
                    // Dedicated prefill iteration: prefill has priority.
                    decode.clear();
                    let mut budget = self.config.max_prefill_tokens;
                    let queue: Vec<RequestId> = self.prefill_queue.iter().copied().collect();
                    for id in queue {
                        let s = self.state(id);
                        let remaining = s.prefill_target - s.prefill_done;
                        if !prefill_work.is_empty() && remaining > budget {
                            break;
                        }
                        let take = remaining.min(budget.max(remaining.min(budget.max(1))));
                        let take = if prefill_work.is_empty() {
                            remaining.min(self.config.max_prefill_tokens.max(1)).max(1)
                        } else {
                            take
                        };
                        let completes = take == remaining;
                        prefill_work.push((id, take, completes));
                        budget = budget.saturating_sub(take);
                        if budget == 0 {
                            break;
                        }
                    }
                }
            }
            PrefillPolicy::Chunked(chunk) => {
                let mut budget = chunk;
                let queue: Vec<RequestId> = self.prefill_queue.iter().copied().collect();
                for id in queue {
                    if budget == 0 {
                        break;
                    }
                    let s = self.state(id);
                    let remaining = s.prefill_target - s.prefill_done;
                    let take = remaining.min(budget);
                    prefill_work.push((id, take, take == remaining));
                    budget -= take;
                }
            }
        }

        // 5. Memory pre-check: blocks for decode appends plus completing
        // prefills.
        let bt = self.config.block_tokens as u64;
        let completing_blocks: u64 = prefill_work
            .iter()
            .filter(|(_, _, completes)| *completes)
            .map(|(id, ..)| self.state(*id).prefill_target.div_ceil(bt))
            .sum();
        let mut needed = self.decode_blocks_needed(&decode) + completing_blocks;
        if self.kv.gpu_free_tokens() / bt < needed && !self.emergency_reclaim(needed, now) {
            // Defer completing prefills first.
            if completing_blocks > 0 {
                prefill_work.clear();
                needed = self.decode_blocks_needed(&decode);
            }
            // Then shed decode members (largest buffer first) until the
            // remainder fits.
            while self.kv.gpu_free_tokens() / bt < needed && !decode.is_empty() {
                let (pos, _) = decode
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        let ba = self.requests[a.0 as usize].buffer.clone().buffered(now);
                        let bb = self.requests[b.0 as usize].buffer.clone().buffered(now);
                        ba.cmp(&bb)
                    })
                    .expect("non-empty decode batch");
                decode.remove(pos);
                needed = self.decode_blocks_needed(&decode);
            }
        }

        // Refresh decode after possible emergency preemptions.
        decode.retain(|&id| self.state(id).phase == Phase::Running);

        // 6. Idle fast-forward when there is no compute work.
        if decode.is_empty() && prefill_work.is_empty() {
            outcome.idle = true;
            let mut wake = SimTime::MAX;
            if let Some(t) = self.arrivals.peek_time() {
                wake = wake.min(t);
            }
            if let Some(t) = self.kv.next_io_completion() {
                wake = wake.min(t);
            }
            let any_live = self.live_count > self.finished_count;
            if any_live {
                wake = wake.min(now + self.idle_tick);
            }
            if wake == SimTime::MAX {
                outcome.done = self.finished_count == self.requests.len();
                return outcome;
            }
            let wake = wake.max(now + SimDuration::from_micros(1));
            self.clock.advance_to(wake);
            outcome.now = wake;
            return outcome;
        }

        // 7. Price the iteration.
        let prefill_tokens: u64 = prefill_work.iter().map(|(_, n, _)| n).sum();
        let prefill_past: u64 = prefill_work
            .iter()
            .map(|(id, ..)| self.state(*id).prefill_done)
            .sum();
        let decode_context: u64 = decode
            .iter()
            .map(|&id| self.state(id).context_tokens())
            .sum();
        let spec = IterationSpec {
            prefill_tokens,
            prefill_past_tokens: prefill_past,
            prefill_seqs: prefill_work.len() as u32,
            decode_batch: decode.len() as u32,
            decode_context,
        };
        let iter_time = self.cost.iteration_time(&spec);

        // 8. Synchronous chunked writing: pump a compute-window's worth of
        // background sync, with flush priorities tracking buffer occupancy.
        for &id in &decode {
            let buffered = self.requests[id.0 as usize].buffer.buffered(now);
            self.kv.set_write_priority(id, buffered as f64);
        }
        self.kv.pump_writes(now, iter_time);

        // 9. Advance time; transfers progress during compute.
        let end = self.clock.advance(iter_time);
        let events = self.kv.advance_to(end);
        self.apply_kv_events(events);

        // 10. Apply prefill progress.
        for (id, tokens, completes) in &prefill_work {
            let s = self.state_mut(*id);
            s.prefill_done += tokens;
            if *completes {
                debug_assert_eq!(s.prefill_done, s.prefill_target);
                let target = s.prefill_target;
                match self.kv.on_prefill(*id, target, end) {
                    Ok(()) => {
                        self.prefill_queue.retain(|&r| r != *id);
                        self.state_mut(*id).phase = Phase::Running;
                        self.running.push(*id);
                        self.running.sort_unstable();
                        // The prefill forward pass emits the next token.
                        self.deliver_token(*id, end, &mut outcome);
                    }
                    Err(_) => {
                        // Lost the memory race: retry the final allocation
                        // next iteration (progress is kept).
                        let s = self.state_mut(*id);
                        s.prefill_done = s.prefill_target.saturating_sub(1);
                    }
                }
            }
        }

        // 11. Decode deliveries.
        let mut decode_delivered = 0u64;
        for &id in &decode {
            if self.state(id).phase != Phase::Running {
                continue; // finished via prefill edge case; defensive
            }
            let buffered = self.requests[id.0 as usize].buffer.buffered(now) as f64;
            if self.kv.append_token(id, buffered).is_err() {
                // Could not extend KV despite the pre-check (extreme
                // contention): skip this request's token this round.
                continue;
            }
            self.deliver_token(id, end, &mut outcome);
            decode_delivered += 1;
        }

        // 12. Profilers and sampling.
        if prefill_tokens > 0 {
            self.prefill_prof.record(prefill_tokens, iter_time);
        }
        self.prefill_rate_prof.record(end, prefill_tokens);
        self.thpt_prof.record(end, decode_delivered);
        self.sample(end);
        self.iterations += 1;
        outcome.now = end;
        outcome.done = self.finished_count == self.requests.len() && self.arrivals.is_empty();
        outcome
    }

    fn deliver_token(&mut self, id: RequestId, at: SimTime, outcome: &mut StepOutcome) {
        let qos = self.config.qos;
        let s = self.state_mut(id);
        debug_assert!(s.generated < s.spec.output_tokens);
        let buffered_before = s.buffer.buffered(at);
        s.generated += 1;
        s.buffer.on_token(at);
        if s.metrics.first_token_at.is_none() {
            s.metrics.first_token_at = Some(at);
        }
        s.metrics.generated = s.generated;
        s.metrics.effective_tokens += effective_weight(buffered_before, s.spec.output_tokens);
        s.metrics.qos_weight_sum +=
            qos_token_weight(buffered_before, s.spec.output_tokens, &qos);
        if let Some(tl) = s.timeline.as_mut() {
            tl.record(at, s.generated);
        }
        outcome.delivered.push((id, s.generated));
        if s.generated == s.spec.output_tokens {
            s.phase = Phase::Finished;
            s.metrics.finished_at = Some(at);
            self.finished_count += 1;
            self.running.retain(|&r| r != id);
            self.prefill_queue.retain(|&r| r != id);
            self.kv.drop_kv(id);
            outcome.finished.push(id);
        }
    }

    fn sample(&mut self, now: SimTime) {
        while self.next_sample <= now {
            let t = self.next_sample;
            // Queued = waiting with no KV anywhere (new arrivals and
            // discard-preempted requests awaiting recompute). In-service =
            // everything else alive: the running batch, transitions, and
            // rotation members whose KV is parked on the host.
            let queued = self
                .requests
                .iter()
                .filter(|s| s.spec.arrival <= t && s.phase == Phase::WaitingNew)
                .count();
            let running = self
                .requests
                .iter()
                .filter(|s| {
                    s.spec.arrival <= t
                        && s.phase != Phase::Finished
                        && s.phase != Phase::WaitingNew
                })
                .count();
            self.queued_series.push(t, queued as f64);
            self.running_series.push(t, running as f64);
            self.gpu_util_series.push(t, self.kv.gpu_pool().utilization());
            self.next_sample = t + self.config.sample_interval;
        }
    }

    /// Runs until every submitted request completes (or the safety deadline
    /// or iteration cap trips). Returns whether the run completed.
    pub fn run_to_completion(&mut self) -> bool {
        let deadline = SimTime::ZERO + self.config.deadline;
        let max_iterations = 50_000_000u64;
        loop {
            let out = self.step();
            if out.done {
                return true;
            }
            if out.now >= deadline || self.iterations >= max_iterations {
                return false;
            }
        }
    }

    /// Finalises metrics and returns the outcome, consuming the engine.
    pub fn into_outcome(mut self) -> SimOutcome {
        let run_end = self.clock.now();
        // Let every reader drain its buffer so rebuffering is fully
        // accounted; unfinished requests are measured to run end.
        let complete = self.finished_count == self.requests.len();
        for s in &mut self.requests {
            // Finished requests are measured to the instant their reader
            // consumes the last token — the stream is over, the reader does
            // not stall on tokens that will never come. Unfinished requests
            // are measured to the cutoff.
            let horizon = match (s.metrics.finished_at, s.buffer.drain_end()) {
                (Some(_), Some(drain)) => drain,
                _ => run_end,
            };
            let snap = s.buffer.snapshot(horizon);
            s.metrics.rebuffer = snap.rebuffer;
            s.metrics.stall_events = snap.stall_events;
        }
        let records: Vec<RequestMetrics> =
            self.requests.iter().map(|s| s.metrics.clone()).collect();
        let report = RunReport::from_records(
            &records,
            run_end.saturating_since(SimTime::ZERO),
            &self.config.qos,
        );
        let timelines = self
            .requests
            .iter_mut()
            .filter_map(|s| s.timeline.take())
            .collect();
        SimOutcome {
            report,
            records,
            queued_series: self.queued_series,
            running_series: self.running_series,
            gpu_util_series: self.gpu_util_series,
            timelines,
            scheduler: self.scheduler.name().to_string(),
            sim_time: run_end.saturating_since(SimTime::ZERO),
            complete,
            iterations: self.iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokenflow_model::{HardwareProfile, ModelProfile};
    use tokenflow_sched::{
        AndesScheduler, ChunkedPrefillScheduler, FcfsScheduler, TokenFlowScheduler,
    };

    fn config() -> EngineConfig {
        EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200())
    }

    fn spec(arrival_ms: u64, prompt: u64, output: u64, rate: f64) -> RequestSpec {
        RequestSpec {
            id: RequestId(0),
            arrival: SimTime::from_millis(arrival_ms),
            prompt_tokens: prompt,
            output_tokens: output,
            rate,
        }
    }

    #[test]
    fn single_request_completes() {
        let mut e = Engine::new(config(), Box::new(FcfsScheduler::new()));
        e.submit(spec(0, 128, 50, 20.0));
        assert!(e.run_to_completion());
        let out = e.into_outcome();
        assert_eq!(out.report.completed, 1);
        assert_eq!(out.records[0].generated, 50);
        assert!(out.records[0].ttft().unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn ttft_includes_queueing_and_prefill() {
        let mut e = Engine::new(config(), Box::new(FcfsScheduler::new()));
        e.submit(spec(1_000, 512, 10, 20.0));
        e.run_to_completion();
        let out = e.into_outcome();
        let first = out.records[0].first_token_at.unwrap();
        // Arrival at 1 s plus a prefill pass.
        assert!(first > SimTime::from_secs(1));
        assert!(first < SimTime::from_secs(2));
    }

    #[test]
    fn tokens_delivered_in_order_with_step_api() {
        let mut e = Engine::new(config(), Box::new(FcfsScheduler::new()));
        let id = e.submit(spec(0, 64, 20, 50.0));
        let mut seen = Vec::new();
        for _ in 0..10_000 {
            let out = e.step();
            for &(rid, n) in &out.delivered {
                assert_eq!(rid, id);
                seen.push(n);
            }
            if out.done {
                break;
            }
        }
        assert_eq!(seen, (1..=20).collect::<Vec<u64>>());
    }

    #[test]
    fn burst_creates_queueing_under_fcfs() {
        let mut cfg = config().with_mem_frac(0.3).with_max_batch(16);
        cfg.sample_interval = SimDuration::from_millis(200);
        let mut e = Engine::new(cfg, Box::new(FcfsScheduler::new()));
        for _ in 0..128 {
            e.submit(spec(0, 512, 256, 20.0));
        }
        assert!(e.run_to_completion());
        let out = e.into_outcome();
        assert_eq!(out.report.completed, 128);
        // Later requests queue: P99 TTFT spreads well past P50 and far
        // beyond the 1.3 s engagement tolerance (Figure 2's pathology).
        assert!(
            out.report.ttft.p99 > 1.8 * out.report.ttft.p50,
            "p99 {} vs p50 {}",
            out.report.ttft.p99,
            out.report.ttft.p50
        );
        assert!(out.report.ttft.p99 > 1.3, "p99 {}", out.report.ttft.p99);
        assert!(out.queued_series.max().unwrap_or(0.0) > 0.0);
    }

    #[test]
    fn all_schedulers_complete_same_workload() {
        let mk: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FcfsScheduler::new()),
            Box::new(ChunkedPrefillScheduler::new()),
            Box::new(AndesScheduler::new()),
            Box::new(TokenFlowScheduler::new()),
        ];
        for sched in mk {
            let name = sched.name();
            let mut e = Engine::new(config().with_max_batch(8), sched);
            for i in 0..12 {
                e.submit(spec(i * 50, 128, 64, 25.0));
            }
            assert!(e.run_to_completion(), "{name} did not finish");
            let out = e.into_outcome();
            assert_eq!(out.report.completed, 12, "{name} completed");
            for r in &out.records {
                assert_eq!(r.generated, 64, "{name} token count");
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = Engine::new(config().with_max_batch(8), Box::new(TokenFlowScheduler::new()));
            for i in 0..10 {
                e.submit(spec(i * 100, 256, 128, 20.0));
            }
            e.run_to_completion();
            e.into_outcome()
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report);
        assert_eq!(a.records, b.records);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn timeline_recording_works() {
        let mut e = Engine::new(config().with_timelines(2), Box::new(FcfsScheduler::new()));
        e.submit(spec(0, 64, 30, 20.0));
        e.submit(spec(0, 64, 30, 20.0));
        e.submit(spec(0, 64, 30, 20.0));
        e.run_to_completion();
        let out = e.into_outcome();
        assert_eq!(out.timelines.len(), 2);
        assert_eq!(out.timelines[0].points().len(), 30);
    }

    #[test]
    fn effective_tokens_bounded_by_generated() {
        let mut e = Engine::new(config(), Box::new(FcfsScheduler::new()));
        e.submit(spec(0, 128, 200, 10.0));
        e.run_to_completion();
        let out = e.into_outcome();
        let r = &out.records[0];
        assert!(r.effective_tokens <= r.generated as f64 + 1e-9);
        assert!(r.effective_tokens > 0.0);
    }

    #[test]
    fn fast_generation_overfills_buffer_and_loses_effectiveness() {
        // A slow reader against unpaced FCFS generation: most tokens land
        // beyond the 20% buffer cutoff and count zero.
        let mut e = Engine::new(config(), Box::new(FcfsScheduler::new()));
        e.submit(spec(0, 128, 500, 5.0));
        e.run_to_completion();
        let out = e.into_outcome();
        let r = &out.records[0];
        assert!(
            r.effective_tokens < 0.5 * r.generated as f64,
            "effective {} of {}",
            r.effective_tokens,
            r.generated
        );
    }

    #[test]
    fn memory_pressure_causes_queueing_under_fcfs() {
        // Capacity ≈6.6k tokens; 8 requests × 1024 conservative tokens do
        // not all fit: SGLang-style admission serialises the excess into a
        // second wave (visible as a TTFT spread), never preempting.
        let mut cfg = config();
        cfg.mem_frac = 0.126; // ≈ 19 GiB: 16 weights + 2 reserve + ~0.9 KV (≈6.6k tokens)
        let mut e = Engine::new(cfg, Box::new(FcfsScheduler::new()));
        for _ in 0..8 {
            e.submit(spec(0, 512, 512, 20.0));
        }
        assert!(e.run_to_completion());
        let out = e.into_outcome();
        assert_eq!(out.report.completed, 8);
        assert_eq!(out.report.preemptions, 0, "conservative FCFS never preempts");
        assert!(
            out.report.ttft.max > 5.0 * out.report.ttft.p50,
            "second admission wave must wait: {:?}",
            out.report.ttft
        );
    }

    #[test]
    fn tokenflow_survives_memory_pressure_via_offload() {
        let mut cfg = config();
        cfg.mem_frac = 0.126;
        let mut e = Engine::new(cfg, Box::new(TokenFlowScheduler::new()));
        for _ in 0..8 {
            e.submit(spec(0, 512, 512, 20.0));
        }
        assert!(e.run_to_completion());
        let out = e.into_outcome();
        assert_eq!(out.report.completed, 8);
    }

    #[test]
    #[should_panic(expected = "output length must be positive")]
    fn zero_output_rejected() {
        let mut e = Engine::new(config(), Box::new(FcfsScheduler::new()));
        e.submit(spec(0, 10, 0, 10.0));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_rejected() {
        let cfg = EngineConfig::new(ModelProfile::qwen2_5_32b(), HardwareProfile::rtx4090());
        let _ = Engine::new(cfg, Box::new(FcfsScheduler::new()));
    }

    #[test]
    fn run_report_duration_spans_run() {
        let mut e = Engine::new(config(), Box::new(FcfsScheduler::new()));
        e.submit(spec(0, 64, 100, 20.0));
        e.run_to_completion();
        let out = e.into_outcome();
        assert!(out.sim_time > SimDuration::ZERO);
        assert_eq!(out.sim_time, out.report.duration);
        assert!(out.complete);
    }
}
