//! Pipeline stage 4 — delivery: token hand-off into client buffers plus
//! per-request and time-series metrics.
//!
//! This is the only stage that touches client buffers and metric records:
//! prefill completions emit their first token here, decode members emit
//! one token each, and finished requests release their KV and leave every
//! queue.

use tokenflow_kv::KvManager;
use tokenflow_metrics::{effective_weight, qos_token_weight, QosParams, TimeSeries};
use tokenflow_sim::{RequestId, SimDuration, SimTime};
use tokenflow_trace::{TraceEventKind, TraceSink};

use crate::batch::IterationBatch;
use crate::engine::StepOutcome;
use crate::state::{EngineState, Phase};

/// Applies an iteration's prefill progress: slices advance their
/// requests, and completing slices allocate KV, join the decode batch,
/// and deliver the prefill pass's first token.
pub(crate) fn apply_prefill_progress(
    st: &mut EngineState,
    kv: &mut KvManager,
    batch: &IterationBatch,
    end: SimTime,
    qos: &QosParams,
    outcome: &mut StepOutcome,
    trace: &mut TraceSink,
) {
    for slice in &batch.prefill {
        st.prefill_backlog_tokens = st.prefill_backlog_tokens.saturating_sub(slice.tokens);
        let s = st.state_mut(slice.id);
        s.prefill_done += slice.tokens;
        if slice.completes {
            debug_assert_eq!(s.prefill_done, s.prefill_target);
            let target = s.prefill_target;
            match kv.on_prefill(slice.id, target, end) {
                Ok(()) => {
                    st.prefill_queue.retain(|&r| r != slice.id);
                    st.state_mut(slice.id).phase = Phase::Running;
                    st.decision_epoch += 1;
                    st.push_running(slice.id);
                    trace.emit(
                        end,
                        TraceEventKind::PrefillChunk {
                            id: slice.id,
                            tokens: slice.tokens,
                            completes: true,
                        },
                    );
                    // The prefill forward pass emits the next token.
                    deliver_token(st, kv, slice.id, end, qos, outcome, trace);
                }
                Err(_) => {
                    // Lost the memory race: retry the final allocation
                    // next iteration (progress is kept, so one token goes
                    // back to the prefill backlog).
                    let s = st.state_mut(slice.id);
                    s.prefill_done = s.prefill_target.saturating_sub(1);
                    st.prefill_backlog_tokens += 1;
                    trace.emit(
                        end,
                        TraceEventKind::PrefillChunk {
                            id: slice.id,
                            tokens: slice.tokens.saturating_sub(1),
                            completes: false,
                        },
                    );
                }
            }
        } else {
            trace.emit(
                end,
                TraceEventKind::PrefillChunk {
                    id: slice.id,
                    tokens: slice.tokens,
                    completes: false,
                },
            );
        }
    }
}

/// Delivers one decode token per batch member. `now` is the iteration's
/// start (flush priorities track occupancy at composition time); `end` is
/// when the tokens materialise. Returns the number delivered.
#[allow(clippy::too_many_arguments)]
pub(crate) fn deliver_decode(
    st: &mut EngineState,
    kv: &mut KvManager,
    batch: &IterationBatch,
    now: SimTime,
    end: SimTime,
    qos: &QosParams,
    outcome: &mut StepOutcome,
    trace: &mut TraceSink,
) -> u64 {
    let mut delivered = 0u64;
    for &id in &batch.decode {
        if st.state(id).phase != Phase::Running {
            continue; // finished via prefill edge case; defensive
        }
        let buffered = st.state_mut(id).buffer.buffered(now) as f64;
        if kv.append_token(id, buffered).is_err() {
            // Could not extend KV despite the pre-check (extreme
            // contention): skip this request's token this round.
            continue;
        }
        deliver_token(st, kv, id, end, qos, outcome, trace);
        delivered += 1;
    }
    delivered
}

/// Hands one token to a request's client buffer, updating metrics and —
/// on the final token — finishing the request.
pub(crate) fn deliver_token(
    st: &mut EngineState,
    kv: &mut KvManager,
    id: RequestId,
    at: SimTime,
    qos: &QosParams,
    outcome: &mut StepOutcome,
    trace: &mut TraceSink,
) {
    let s = st.state_mut(id);
    debug_assert!(s.generated < s.spec.output_tokens);
    let buffered_before = s.buffer.buffered(at);
    s.generated += 1;
    s.buffer.on_token(at);
    if s.metrics.first_token_at.is_none() {
        s.metrics.first_token_at = Some(at);
        trace.emit(at, TraceEventKind::FirstToken { id });
    }
    s.metrics.generated = s.generated;
    s.metrics.effective_tokens += effective_weight(buffered_before, s.spec.output_tokens);
    s.metrics.qos_weight_sum += qos_token_weight(buffered_before, s.spec.output_tokens, qos);
    if let Some(tl) = s.timeline.as_mut() {
        tl.record(at, s.generated);
    }
    outcome.delivered.push((id, s.generated));
    if s.generated == s.spec.output_tokens {
        s.phase = Phase::Finished;
        s.metrics.finished_at = Some(at);
        let rate = s.spec.rate;
        st.decision_epoch += 1;
        st.finished_count += 1;
        st.active_rate_sum = (st.active_rate_sum - rate).max(0.0);
        st.remove_running(id);
        st.prefill_queue.retain(|&r| r != id);
        kv.drop_kv(id);
        outcome.finished.push(id);
        trace.emit(at, TraceEventKind::Finished { id });
    }
}

/// Sampled time series (queued/running counts, GPU utilisation) plus the
/// sampling cursor — the delivery stage's run-level telemetry.
#[derive(Debug)]
pub(crate) struct Telemetry {
    pub queued_series: TimeSeries,
    pub running_series: TimeSeries,
    pub gpu_util_series: TimeSeries,
    next_sample: SimTime,
    interval: SimDuration,
}

impl Telemetry {
    /// Creates the telemetry set, sizing each series from the run-length
    /// hint (`deadline ÷ interval` samples, capped so a generous safety
    /// deadline does not pre-commit megabytes per replica).
    pub(crate) fn new(interval: SimDuration, deadline: SimDuration) -> Self {
        let hint = (deadline.as_micros() / interval.as_micros().max(1)).min(4_096) as usize;
        Telemetry {
            queued_series: TimeSeries::with_capacity("queued", hint),
            running_series: TimeSeries::with_capacity("running", hint),
            gpu_util_series: TimeSeries::with_capacity("gpu_util", hint),
            next_sample: SimTime::ZERO + interval,
            interval,
        }
    }

    /// Emits every sample due by `now`.
    ///
    /// Queued = waiting with no KV anywhere (new arrivals and
    /// discard-preempted requests awaiting recompute). In-service =
    /// everything else alive: the running batch, transitions, and rotation
    /// members whose KV is parked on the host.
    ///
    /// Counting walks only the live-id index plus an O(log n) lookup for
    /// arrivals due at `t` but not ingested yet (ingestion runs at the
    /// iteration's *start* while sample instants lie inside the
    /// iteration; such requests are untouched `WaitingNew` submissions,
    /// so they belong in the queued count exactly as the old full-table
    /// scan counted them). Everything else outside the live index is
    /// finished (excluded from both counts) or arrives after `t`.
    pub(crate) fn sample(&mut self, st: &EngineState, kv: &KvManager, now: SimTime) {
        while self.next_sample <= now {
            let t = self.next_sample;
            let mut queued = st.pending_due_arrivals(t);
            let mut running = 0usize;
            for &id in &st.live_ids {
                let s = st.state(id);
                // Arrivals between a stale sample instant and `now` are
                // live already but not visible at `t` yet.
                if s.spec.arrival > t {
                    continue;
                }
                match s.phase {
                    Phase::Finished => {}
                    Phase::WaitingNew => queued += 1,
                    _ => running += 1,
                }
            }
            self.queued_series.push(t, queued as f64);
            self.running_series.push(t, running as f64);
            self.gpu_util_series.push(t, kv.gpu_pool().utilization());
            self.next_sample = t + self.interval;
        }
    }
}
