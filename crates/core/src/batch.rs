//! Pipeline stage 3 — batch composition and cost-model pricing.
//!
//! Composes each iteration's prefill + decode batch under the scheduler's
//! [`PrefillPolicy`] and decode gating, fits it into GPU memory (shedding
//! work or triggering emergency reclamation when the pre-check fails), and
//! prices the resulting iteration with the analytical cost model.

use tokenflow_kv::KvManager;
use tokenflow_model::{CostModel, IterationSpec};
use tokenflow_sched::{PrefillPolicy, SchedContext, Scheduler};
use tokenflow_sim::{RequestId, SimDuration, SimTime};

use crate::admission;
use crate::config::EngineConfig;
use crate::profiler::EngineProfilers;
use crate::state::{EngineState, Phase};

/// One request's share of an iteration's prefill work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PrefillSlice {
    /// The prefilling request.
    pub id: RequestId,
    /// Prompt tokens processed this iteration.
    pub tokens: u64,
    /// Whether this slice finishes the request's prefill.
    pub completes: bool,
}

/// The compute batch of one engine iteration.
#[derive(Debug, Clone, Default)]
pub(crate) struct IterationBatch {
    /// Decode members generating one token each.
    pub decode: Vec<RequestId>,
    /// Prefill slices, in queue order.
    pub prefill: Vec<PrefillSlice>,
}

impl IterationBatch {
    /// True when the iteration has no compute work at all.
    pub(crate) fn is_idle(&self) -> bool {
        self.decode.is_empty() && self.prefill.is_empty()
    }

    /// Total prefill tokens this iteration.
    pub(crate) fn prefill_tokens(&self) -> u64 {
        self.prefill.iter().map(|p| p.tokens).sum()
    }
}

/// Composes the iteration batch. Pacing policies may gate over-buffered
/// requests out of this round (their KV stays put).
pub(crate) fn compose(
    st: &EngineState,
    scheduler: &dyn Scheduler,
    ctx: &SchedContext,
    config: &EngineConfig,
) -> IterationBatch {
    let mut decode: Vec<RequestId> = st
        .running
        .iter()
        .copied()
        .filter(|&id| st.state(id).phase == Phase::Running)
        .filter(|&id| {
            ctx.requests
                .iter()
                .find(|v| v.id == id)
                .is_none_or(|v| scheduler.decode_gate(v, ctx))
        })
        .collect();
    let mut prefill: Vec<PrefillSlice> = Vec::new();
    match scheduler.prefill_policy() {
        PrefillPolicy::Full => {
            if !st.prefill_queue.is_empty() {
                // Dedicated prefill iteration: prefill has priority.
                decode.clear();
                let mut budget = config.max_prefill_tokens;
                let queue: Vec<RequestId> = st.prefill_queue.iter().copied().collect();
                for id in queue {
                    let s = st.state(id);
                    let remaining = s.prefill_target - s.prefill_done;
                    if !prefill.is_empty() && remaining > budget {
                        break;
                    }
                    // The head of the queue always gets at least one token
                    // even when it alone exceeds the iteration budget (an
                    // oversized prompt must still make progress); followers
                    // fit fully or broke out above.
                    let take = if prefill.is_empty() {
                        remaining.min(config.max_prefill_tokens.max(1)).max(1)
                    } else {
                        remaining
                    };
                    prefill.push(PrefillSlice {
                        id,
                        tokens: take,
                        completes: take == remaining,
                    });
                    budget = budget.saturating_sub(take);
                    if budget == 0 {
                        break;
                    }
                }
            }
        }
        PrefillPolicy::Chunked(chunk) => {
            let mut budget = chunk;
            let queue: Vec<RequestId> = st.prefill_queue.iter().copied().collect();
            for id in queue {
                if budget == 0 {
                    break;
                }
                let s = st.state(id);
                let remaining = s.prefill_target - s.prefill_done;
                let take = remaining.min(budget);
                prefill.push(PrefillSlice {
                    id,
                    tokens: take,
                    completes: take == remaining,
                });
                budget -= take;
            }
        }
    }
    IterationBatch { decode, prefill }
}

/// Blocks newly required by appending one token to each decode member.
fn decode_blocks_needed(kv: &KvManager, decode: &[RequestId], bt: u64) -> u64 {
    decode
        .iter()
        .filter(|&&id| kv.context_tokens(id).is_multiple_of(bt))
        .count() as u64
}

/// Memory pre-check: makes room for decode appends plus completing
/// prefills, first through the scheduler's emergency-reclaim path, then by
/// deferring completing prefills, then by shedding decode members
/// (largest buffer first) until the remainder fits.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fit_memory(
    batch: &mut IterationBatch,
    st: &mut EngineState,
    kv: &mut KvManager,
    scheduler: &dyn Scheduler,
    cost: &CostModel,
    config: &EngineConfig,
    profs: &EngineProfilers,
    now: SimTime,
) {
    let bt = config.block_tokens as u64;
    let completing_blocks: u64 = batch
        .prefill
        .iter()
        .filter(|p| p.completes)
        .map(|p| st.state(p.id).prefill_target.div_ceil(bt))
        .sum();
    let mut needed = decode_blocks_needed(kv, &batch.decode, bt) + completing_blocks;
    if kv.gpu_free_tokens() / bt < needed
        && !admission::emergency_reclaim(st, kv, scheduler, cost, config, profs, needed, now)
    {
        // Defer completing prefills first.
        if completing_blocks > 0 {
            batch.prefill.clear();
            needed = decode_blocks_needed(kv, &batch.decode, bt);
        }
        // Then shed decode members (largest buffer first) until the
        // remainder fits. Occupancies are stable across shed rounds, so
        // snapshot them once. (Buffers were already advanced to `now` by
        // the admission stage's context snapshots, so this mutating read
        // changes no state.)
        let mut occupancy: Vec<u64> = batch
            .decode
            .iter()
            .map(|&id| st.state_mut(id).buffer.buffered(now))
            .collect();
        while kv.gpu_free_tokens() / bt < needed && !batch.decode.is_empty() {
            let (pos, _) = occupancy
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.cmp(b))
                .expect("non-empty decode batch");
            batch.decode.remove(pos);
            occupancy.remove(pos);
            needed = decode_blocks_needed(kv, &batch.decode, bt);
        }
    }

    // Refresh decode after possible emergency preemptions.
    batch
        .decode
        .retain(|&id| st.state(id).phase == Phase::Running);
}

/// Prices the iteration with the analytical cost model.
pub(crate) fn price(
    batch: &IterationBatch,
    st: &EngineState,
    cost: &CostModel,
) -> (IterationSpec, SimDuration) {
    let prefill_tokens = batch.prefill_tokens();
    let prefill_past: u64 = batch
        .prefill
        .iter()
        .map(|p| st.state(p.id).prefill_done)
        .sum();
    let decode_context: u64 = batch
        .decode
        .iter()
        .map(|&id| st.state(id).context_tokens())
        .sum();
    let spec = IterationSpec {
        prefill_tokens,
        prefill_past_tokens: prefill_past,
        prefill_seqs: batch.prefill.len() as u32,
        decode_batch: batch.decode.len() as u32,
        decode_context,
    };
    let time = cost.iteration_time(&spec);
    (spec, time)
}
