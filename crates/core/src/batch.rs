//! Pipeline stage 3 — batch composition and cost-model pricing.
//!
//! Composes each iteration's prefill + decode batch under the scheduler's
//! [`PrefillPolicy`] and decode gating, fits it into GPU memory (shedding
//! work or triggering emergency reclamation when the pre-check fails), and
//! prices the resulting iteration with the analytical cost model.

use tokenflow_kv::KvManager;
use tokenflow_model::{CostModel, IterationSpec};
use tokenflow_sched::{PrefillPolicy, SchedContext, Scheduler};
use tokenflow_sim::{RequestId, SimDuration, SimTime};
use tokenflow_trace::{TraceEventKind, TraceSink};

use crate::admission;
use crate::config::EngineConfig;
use crate::profiler::EngineProfilers;
use crate::state::{EngineState, Phase};

/// One request's share of an iteration's prefill work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PrefillSlice {
    /// The prefilling request.
    pub id: RequestId,
    /// Prompt tokens processed this iteration.
    pub tokens: u64,
    /// Whether this slice finishes the request's prefill.
    pub completes: bool,
}

/// The compute batch of one engine iteration.
#[derive(Debug, Clone, Default)]
pub(crate) struct IterationBatch {
    /// Decode members generating one token each.
    pub decode: Vec<RequestId>,
    /// Prefill slices, in queue order.
    pub prefill: Vec<PrefillSlice>,
}

impl IterationBatch {
    /// True when the iteration has no compute work at all.
    pub(crate) fn is_idle(&self) -> bool {
        self.decode.is_empty() && self.prefill.is_empty()
    }

    /// Total prefill tokens this iteration.
    pub(crate) fn prefill_tokens(&self) -> u64 {
        self.prefill.iter().map(|p| p.tokens).sum()
    }
}

/// Composes the iteration batch into a retained buffer (the engine
/// reuses one `IterationBatch` across steps, so the steady-state path
/// allocates nothing here). Pacing policies may gate over-buffered
/// requests out of this round (their KV stays put).
pub(crate) fn compose_into(
    batch: &mut IterationBatch,
    st: &EngineState,
    scheduler: &dyn Scheduler,
    ctx: &SchedContext,
    config: &EngineConfig,
    trace: &mut TraceSink,
) {
    batch.decode.clear();
    batch.prefill.clear();
    batch.decode.extend(
        st.running
            .iter()
            .copied()
            .filter(|&id| st.state(id).phase == Phase::Running)
            .filter(|&id| {
                let open = ctx
                    .view_of(id)
                    .is_none_or(|v| scheduler.decode_gate(v, ctx));
                trace.gate(ctx.now, id, !open);
                open
            }),
    );
    let (decode, prefill) = (&mut batch.decode, &mut batch.prefill);
    match scheduler.prefill_policy() {
        PrefillPolicy::Full => {
            if !st.prefill_queue.is_empty() {
                // Dedicated prefill iteration: prefill has priority.
                decode.clear();
                let mut budget = config.max_prefill_tokens;
                for qi in 0..st.prefill_queue.len() {
                    let id = st.prefill_queue[qi];
                    let s = st.state(id);
                    let remaining = s.prefill_target - s.prefill_done;
                    if !prefill.is_empty() && remaining > budget {
                        break;
                    }
                    // The head of the queue always gets at least one token
                    // even when it alone exceeds the iteration budget (an
                    // oversized prompt must still make progress); followers
                    // fit fully or broke out above.
                    let take = if prefill.is_empty() {
                        remaining.min(config.max_prefill_tokens.max(1)).max(1)
                    } else {
                        remaining
                    };
                    prefill.push(PrefillSlice {
                        id,
                        tokens: take,
                        completes: take == remaining,
                    });
                    budget = budget.saturating_sub(take);
                    if budget == 0 {
                        break;
                    }
                }
            }
        }
        PrefillPolicy::Chunked(chunk) => {
            let mut budget = chunk;
            for qi in 0..st.prefill_queue.len() {
                if budget == 0 {
                    break;
                }
                let id = st.prefill_queue[qi];
                let s = st.state(id);
                let remaining = s.prefill_target - s.prefill_done;
                let take = remaining.min(budget);
                prefill.push(PrefillSlice {
                    id,
                    tokens: take,
                    completes: take == remaining,
                });
                budget -= take;
            }
        }
    }
}

/// Blocks newly required by appending one token to each decode member.
pub(crate) fn decode_blocks_needed(kv: &KvManager, decode: &[RequestId], bt: u64) -> u64 {
    decode
        .iter()
        .filter(|&&id| kv.context_tokens(id).is_multiple_of(bt))
        .count() as u64
}

/// Memory pre-check: makes room for decode appends plus completing
/// prefills, first through the scheduler's emergency-reclaim path, then by
/// deferring completing prefills, then by shedding decode members until
/// the remainder fits. Returns `true` when the batch fit as composed —
/// no reclamation, deferral, or shedding was needed (the plan-horizon
/// fast path only arms over such clean iterations).
///
/// Only *block-boundary* members (context a multiple of the block size,
/// so this iteration's token needs a fresh block) are shed candidates:
/// a mid-block member's append lands in an already-allocated block, so
/// dropping it frees nothing — its tokens keep flowing. Among candidates,
/// the largest client buffer goes first (its reader is furthest from
/// stalling), ties breaking toward the latest id.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fit_memory(
    batch: &mut IterationBatch,
    st: &mut EngineState,
    kv: &mut KvManager,
    scheduler: &dyn Scheduler,
    cost: &CostModel,
    config: &EngineConfig,
    profs: &EngineProfilers,
    scratch: &mut SchedContext,
    now: SimTime,
    trace: &mut TraceSink,
) -> bool {
    let bt = config.block_tokens as u64;
    let completing_blocks: u64 = batch
        .prefill
        .iter()
        .filter(|p| p.completes)
        .map(|p| st.state(p.id).prefill_target.div_ceil(bt))
        .sum();
    let mut needed = decode_blocks_needed(kv, &batch.decode, bt) + completing_blocks;
    let fits_clean = kv.gpu_free_tokens() / bt >= needed;
    if !fits_clean
        && !admission::emergency_reclaim(
            st, kv, scheduler, cost, config, profs, scratch, needed, now, trace,
        )
    {
        // A failed reclaim may still have preempted members (phases left
        // Running, KV gone — their context reads 0, a block-size
        // multiple) and freed memory before running out of victims:
        // re-anchor the batch and the block need on the survivors so
        // preempted members cannot become phantom shed candidates.
        batch
            .decode
            .retain(|&id| st.state(id).phase == Phase::Running);
        needed = decode_blocks_needed(kv, &batch.decode, bt) + completing_blocks;
        // Defer completing prefills next (when they still do not fit).
        if completing_blocks > 0 && kv.gpu_free_tokens() / bt < needed {
            batch.prefill.clear();
            needed = decode_blocks_needed(kv, &batch.decode, bt);
        }
        // Then shed block-boundary decode members (largest buffer first)
        // until the remainder fits; mid-block members need no new memory
        // and keep decoding. Occupancies are stable across shed rounds, so
        // snapshot them once. (Buffers were already advanced to `now` by
        // the admission stage's context snapshots, so this mutating read
        // changes no state.) Every shed candidate accounts for exactly one
        // needed block, so `needed` decrements with each shed and the loop
        // ends with either a fit or zero boundary members left.
        let mut candidates: Vec<(RequestId, u64)> = batch
            .decode
            .iter()
            .filter(|&&id| kv.context_tokens(id).is_multiple_of(bt))
            .map(|&id| (id, st.state_mut(id).buffer.buffered(now)))
            .collect();
        while kv.gpu_free_tokens() / bt < needed && !candidates.is_empty() {
            let (pos, _) = candidates
                .iter()
                .enumerate()
                .max_by_key(|(_, &(id, occ))| (occ, id))
                .expect("non-empty candidate set");
            let (victim, _) = candidates.remove(pos);
            batch.decode.retain(|&id| id != victim);
            needed -= 1;
            trace.emit(now, TraceEventKind::Shed { id: victim });
        }
    }

    // Refresh decode after possible emergency preemptions.
    batch
        .decode
        .retain(|&id| st.state(id).phase == Phase::Running);
    fits_clean
}

/// Prices the iteration with the analytical cost model.
pub(crate) fn price(
    batch: &IterationBatch,
    st: &EngineState,
    cost: &CostModel,
) -> (IterationSpec, SimDuration) {
    let prefill_tokens = batch.prefill_tokens();
    let prefill_past: u64 = batch
        .prefill
        .iter()
        .map(|p| st.state(p.id).prefill_done)
        .sum();
    let decode_context: u64 = batch
        .decode
        .iter()
        .map(|&id| st.state(id).context_tokens())
        .sum();
    let spec = IterationSpec {
        prefill_tokens,
        prefill_past_tokens: prefill_past,
        prefill_seqs: batch.prefill.len() as u32,
        decode_batch: batch.decode.len() as u32,
        decode_context,
    };
    let time = cost.iteration_time(&spec);
    (spec, time)
}

#[cfg(test)]
mod tests {
    use tokenflow_client::TokenBuffer;
    use tokenflow_kv::{KvConfig, KvManager};
    use tokenflow_metrics::RequestMetrics;
    use tokenflow_model::{HardwareProfile, ModelProfile};
    use tokenflow_sched::{SchedContext, SchedContextBuilder, SchedPlan};
    use tokenflow_workload::{ClientKind, RequestSpec};

    use super::*;
    use crate::config::EngineConfig;
    use crate::state::ReqState;

    /// A scheduler whose emergency path never finds a victim, forcing
    /// `fit_memory` onto the shed path under test.
    struct NoVictim;
    impl Scheduler for NoVictim {
        fn name(&self) -> &'static str {
            "no-victim"
        }
        fn plan(&mut self, _ctx: &SchedContext) -> SchedPlan {
            SchedPlan::none()
        }
        fn emergency_victim(&self, _ctx: &SchedContext) -> Option<RequestId> {
            None
        }
    }

    /// One running request with `context` tokens of GPU-resident KV and
    /// `buffered` tokens sitting in its client buffer at t = 0.
    fn running(st: &mut EngineState, kv: &mut KvManager, context: u64, buffered: u64) -> RequestId {
        let id = RequestId(st.requests.len() as u64);
        let mut buffer = TokenBuffer::new(20.0);
        for _ in 0..buffered {
            buffer.on_token(SimTime::ZERO);
        }
        st.requests.push(ReqState {
            spec: RequestSpec {
                id,
                arrival: SimTime::ZERO,
                prompt_tokens: context,
                output_tokens: 64,
                rate: 20.0,
            },
            kind: ClientKind::Interactive,
            buffer,
            metrics: RequestMetrics::new(id, SimTime::ZERO, 20.0, 64),
            phase: Phase::Running,
            generated: 0,
            prefill_done: context,
            prefill_target: context,
            timeline: None,
        });
        st.insert_live(id);
        st.push_running(id);
        kv.on_prefill(id, context, SimTime::ZERO).expect("fits");
        id
    }

    /// A fresh scratch context for `fit_memory`'s reclaim path.
    fn scratch() -> SchedContext {
        SchedContextBuilder::new(SimTime::ZERO).build()
    }

    /// The shed path must skip mid-block members entirely: evicting them
    /// frees no memory, so even the largest-buffer member keeps decoding
    /// when its next token lands in an already-allocated block.
    #[test]
    fn shed_skips_mid_block_members() {
        let config = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200());
        let bt = config.block_tokens as u64;
        let mut kv = KvManager::new(KvConfig {
            block_tokens: config.block_tokens,
            gpu_blocks: 5,
            cpu_blocks: 0,
            kv_bytes_per_token: config.model.kv_bytes_per_token(),
            chunk_tokens: 256,
            write_through: false,
            priority_writes: false,
            offload_enabled: false,
            load_evict_overlap: false,
            pcie_bandwidth: 25e9,
            pcie_latency_us: 10,
        });
        let mut st = EngineState::new();
        // a: boundary (2 blocks), small buffer. b: mid-block (2 blocks),
        // LARGEST buffer — the old rule's first victim. c: boundary
        // (1 block), middling buffer.
        let a = running(&mut st, &mut kv, 2 * bt, 2);
        let b = running(&mut st, &mut kv, bt + 1, 9);
        let c = running(&mut st, &mut kv, bt, 4);
        assert_eq!(kv.gpu_free_tokens(), 0);

        let mut batch = IterationBatch {
            decode: vec![a, b, c],
            prefill: Vec::new(),
        };
        let cost = config.cost_model();
        let profs = EngineProfilers::new(1e-4, 1_000.0);
        fit_memory(
            &mut batch,
            &mut st,
            &mut kv,
            &NoVictim,
            &cost,
            &config,
            &profs,
            &mut scratch(),
            SimTime::ZERO,
            &mut TraceSink::disabled(),
        );
        // Both boundary members need a fresh block and none is free, so
        // both are shed — largest buffer (c) first is irrelevant here,
        // but b must survive despite holding the largest buffer of all.
        assert_eq!(batch.decode, vec![b]);
    }

    /// A scheduler that always names the same emergency victim: the first
    /// reclaim call preempts it, the second finds it no longer Running and
    /// gives up — a *partial* reclaim (some memory freed, then failure),
    /// which is the path where stale `needed`/phantom candidates lurked.
    struct StuckVictim(RequestId);
    impl Scheduler for StuckVictim {
        fn name(&self) -> &'static str {
            "stuck-victim"
        }
        fn plan(&mut self, _ctx: &SchedContext) -> SchedPlan {
            SchedPlan::none()
        }
        fn emergency_victim(&self, _ctx: &SchedContext) -> Option<RequestId> {
            Some(self.0)
        }
    }

    /// After a partially-successful emergency reclaim, preempted members
    /// (whose KV context now reads 0 — a block-size multiple) must not
    /// act as shed candidates: shedding one would decrement `needed`
    /// without freeing anything, letting a genuine boundary member
    /// through with no block to land its token in.
    #[test]
    fn shed_ignores_members_preempted_by_reclaim() {
        let config = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200());
        let bt = config.block_tokens as u64;
        let mut kv = KvManager::new(KvConfig {
            block_tokens: config.block_tokens,
            gpu_blocks: 5,
            cpu_blocks: 0,
            kv_bytes_per_token: config.model.kv_bytes_per_token(),
            chunk_tokens: 256,
            write_through: false,
            priority_writes: false,
            offload_enabled: false,
            load_evict_overlap: false,
            pcie_bandwidth: 25e9,
            pcie_latency_us: 10,
        });
        let mut st = EngineState::new();
        // a, c: boundary members (2 blocks each). b: one block, largest
        // buffer — the reclaim victim. Preempting b frees 1 block of the
        // 2 needed, then reclaim fails (its victim is gone).
        let a = running(&mut st, &mut kv, 2 * bt, 2);
        let b = running(&mut st, &mut kv, 1, 9);
        let c = running(&mut st, &mut kv, 2 * bt, 4);
        assert_eq!(kv.gpu_free_tokens(), 0);

        let mut batch = IterationBatch {
            decode: vec![a, b, c],
            prefill: Vec::new(),
        };
        let cost = config.cost_model();
        let profs = EngineProfilers::new(1e-4, 1_000.0);
        fit_memory(
            &mut batch,
            &mut st,
            &mut kv,
            &StuckVictim(b),
            &cost,
            &config,
            &profs,
            &mut scratch(),
            SimTime::ZERO,
            &mut TraceSink::disabled(),
        );
        // b is gone (preempted), and of the two boundary members the
        // larger buffer (c) was shed; a keeps the one freed block. Were b
        // treated as a candidate, its occupancy 9 would make it the first
        // "shed" and both a and c would sail through needing 2 blocks
        // with only 1 free.
        assert_eq!(batch.decode, vec![a]);
        assert_eq!(kv.gpu_free_tokens() / bt, 1);
    }

    /// When one block frees up, only the smaller-buffered boundary member
    /// keeps its slot: candidates shed largest-buffer-first.
    #[test]
    fn shed_orders_boundary_candidates_by_buffer() {
        let config = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200());
        let bt = config.block_tokens as u64;
        let mut kv = KvManager::new(KvConfig {
            block_tokens: config.block_tokens,
            gpu_blocks: 4,
            cpu_blocks: 0,
            kv_bytes_per_token: config.model.kv_bytes_per_token(),
            chunk_tokens: 256,
            write_through: false,
            priority_writes: false,
            offload_enabled: false,
            load_evict_overlap: false,
            pcie_bandwidth: 25e9,
            pcie_latency_us: 10,
        });
        let mut st = EngineState::new();
        // Three boundary members, one free block: the two largest buffers
        // are shed, the smallest keeps decoding.
        let big = running(&mut st, &mut kv, bt, 9);
        let mid = running(&mut st, &mut kv, bt, 5);
        let small = running(&mut st, &mut kv, bt, 1);
        assert_eq!(kv.gpu_free_tokens(), bt);

        let mut batch = IterationBatch {
            decode: vec![big, mid, small],
            prefill: Vec::new(),
        };
        let cost = config.cost_model();
        let profs = EngineProfilers::new(1e-4, 1_000.0);
        fit_memory(
            &mut batch,
            &mut st,
            &mut kv,
            &NoVictim,
            &cost,
            &config,
            &profs,
            &mut scratch(),
            SimTime::ZERO,
            &mut TraceSink::disabled(),
        );
        assert_eq!(batch.decode, vec![small]);
    }
}
