//! Shared request state threaded through the pipeline stages.
//!
//! Every stage of the serving pipeline ([`admission`](crate::admission),
//! [`kv_orchestrator`](crate::kv_orchestrator), [`batch`](crate::batch),
//! [`delivery`](crate::delivery)) operates on `&mut` views of the state
//! defined here rather than owning the world — that is what makes the
//! stages separately testable and reusable (the cluster crate drives many
//! engines whose stages all share this shape).

use std::collections::VecDeque;

use tokenflow_client::TokenBuffer;
use tokenflow_metrics::{RequestMetrics, TokenTimeline};
use tokenflow_sched::ReqPhase;
use tokenflow_sim::{RequestId, SimTime};
use tokenflow_workload::{ClientKind, RequestSpec};

/// Engine-internal request lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Arrived; no KV anywhere; awaiting admission.
    WaitingNew,
    /// Admitted; prompt (or recompute context) being prefilled.
    Prefilling,
    /// In the decode batch.
    Running,
    /// Preempted; KV flushing to host.
    Evicting,
    /// Fully offloaded to host memory.
    OnCpu,
    /// KV loading back to the GPU.
    Loading,
    /// All output tokens generated.
    Finished,
}

impl Phase {
    /// The scheduler-facing phase, or `None` for finished requests.
    pub(crate) fn sched_phase(self) -> Option<ReqPhase> {
        match self {
            Phase::WaitingNew => Some(ReqPhase::WaitingNew),
            Phase::Prefilling | Phase::Evicting | Phase::Loading => Some(ReqPhase::Transitioning),
            Phase::Running => Some(ReqPhase::Running),
            Phase::OnCpu => Some(ReqPhase::WaitingCpu),
            Phase::Finished => None,
        }
    }
}

/// Everything the pipeline tracks for one request.
#[derive(Debug)]
pub(crate) struct ReqState {
    pub spec: RequestSpec,
    pub kind: ClientKind,
    pub buffer: TokenBuffer,
    pub metrics: RequestMetrics,
    pub phase: Phase,
    pub generated: u64,
    pub prefill_done: u64,
    pub prefill_target: u64,
    pub timeline: Option<TokenTimeline>,
}

impl ReqState {
    /// Current context length (prompt + generated so far).
    pub(crate) fn context_tokens(&self) -> u64 {
        self.spec.prompt_tokens + self.generated
    }

    /// Output tokens still to generate.
    pub(crate) fn remaining_tokens(&self) -> u64 {
        self.spec.output_tokens - self.generated
    }
}

/// The mutable request table plus the queues the stages rotate requests
/// through.
#[derive(Debug, Default)]
pub(crate) struct EngineState {
    /// All requests, indexed by dense `RequestId`.
    pub requests: Vec<ReqState>,
    /// Arrived requests in ascending-id order — the population one engine
    /// step iterates. Ids enter at arrival ingest and leave *lazily*: a
    /// finished request stays until the next context build compacts it
    /// out in place, so maintenance is amortized O(1) per request instead
    /// of O(live) per completion. Consumers must skip
    /// [`Phase::Finished`] entries.
    pub live_ids: Vec<RequestId>,
    /// Every submitted request's arrival time, kept sorted ascending.
    /// With [`EngineState::live_count`] (arrivals ingested so far) this
    /// answers "how many due arrivals are still un-ingested at time t"
    /// in O(log n) — telemetry samples instants *inside* an iteration,
    /// after ingestion ran at the iteration's start, and those requests
    /// are queued at the sample instant even though they are not in the
    /// live index yet.
    pub arrival_times: Vec<SimTime>,
    /// Members of the decode batch, kept sorted by id.
    pub running: Vec<RequestId>,
    /// Admitted requests whose prefill is in progress, FIFO.
    pub prefill_queue: VecDeque<RequestId>,
    /// Requests that have generated all their tokens.
    pub finished_count: usize,
    /// Requests whose arrival time has passed.
    pub live_count: usize,
    /// Arrived requests currently in [`Phase::WaitingNew`], maintained
    /// incrementally by the admission and delivery stages so
    /// load snapshots stay O(1).
    pub waiting_count: usize,
    /// Sum of required streaming rates over unfinished requests
    /// (tokens/second), maintained incrementally: added at submission,
    /// removed at completion.
    pub active_rate_sum: f64,
    /// Prompt tokens queued for prefill but not yet prefilled, over
    /// arrived requests: the full recompute context of every
    /// [`Phase::WaitingNew`] request plus the unprocessed remainder of
    /// every [`Phase::Prefilling`] one. Maintained incrementally by the
    /// admission and delivery stages so load snapshots stay O(1).
    pub prefill_backlog_tokens: u64,
    /// Monotone counter of *decision* events: anything that changes a
    /// scheduler-visible request phase by an actual scheduling or
    /// delivery decision (arrival ingest, admission, preemption,
    /// resume, prefill completion, request finish) bumps it. A plan
    /// horizon certified by the scheduler is valid only while this
    /// counter matches its issue-time snapshot — the engine's fast path
    /// compares it per step and falls back to the full pipeline on any
    /// mismatch.
    ///
    /// KV transfer completions are deliberately *not* epoch events:
    /// they are the mechanical tail of a decision already counted (the
    /// preempt or resume that started the transfer), and horizon
    /// certificates are required to survive them (see
    /// `Scheduler::plan_horizon`). They are journaled in
    /// [`EngineState::transfer_flips`] instead, so the fast path can
    /// mirror the phase flips into its retained context.
    pub decision_epoch: u64,
    /// Requests whose phase was flipped by a KV transfer completion
    /// (`Evicting → OnCpu` or `Loading → Running`) since the fast path
    /// last reconciled its retained context. Drained by the fast path's
    /// entry check each step; cleared wholesale by the full pipeline,
    /// whose context rebuild starts from true phases anyway. The buffer
    /// is retained across steps, so steady-state pushes never allocate.
    pub transfer_flips: Vec<RequestId>,
}

impl EngineState {
    pub(crate) fn new() -> Self {
        EngineState::default()
    }

    pub(crate) fn state(&self, id: RequestId) -> &ReqState {
        &self.requests[id.0 as usize]
    }

    pub(crate) fn state_mut(&mut self, id: RequestId) -> &mut ReqState {
        &mut self.requests[id.0 as usize]
    }

    /// Records a submission's arrival time, preserving ascending order
    /// (submissions almost always come arrival-sorted, so the common
    /// case is a push).
    pub(crate) fn insert_arrival_time(&mut self, at: SimTime) {
        match self.arrival_times.last() {
            Some(&last) if last > at => {
                let pos = self.arrival_times.partition_point(|&x| x <= at);
                self.arrival_times.insert(pos, at);
            }
            _ => self.arrival_times.push(at),
        }
    }

    /// Due-but-uningested arrivals at `t`: submitted requests whose
    /// arrival has passed `t` but which the admission stage has not
    /// ingested yet (ingestion runs at iteration starts; `t` may lie
    /// inside an iteration). Requires `t` at or after the latest
    /// ingested arrival, which holds for telemetry's sample instants.
    pub(crate) fn pending_due_arrivals(&self, t: SimTime) -> usize {
        self.arrival_times
            .partition_point(|&a| a <= t)
            .saturating_sub(self.live_count)
    }

    /// Records an arrival in the live-id index, preserving ascending-id
    /// order (the context build iterates this index, and scheduler
    /// contexts list requests in id order). Arrivals almost always come
    /// in id order — ids are assigned in submission order and workloads
    /// are arrival-sorted — so the common case is a push.
    pub(crate) fn insert_live(&mut self, id: RequestId) {
        match self.live_ids.last() {
            Some(&last) if last >= id => {
                let pos = self.live_ids.partition_point(|&x| x < id);
                self.live_ids.insert(pos, id);
            }
            _ => self.live_ids.push(id),
        }
    }

    /// Adds a request to the decode batch, preserving the sorted order the
    /// batch-composition stage relies on for determinism.
    pub(crate) fn push_running(&mut self, id: RequestId) {
        let at = self.running.partition_point(|&r| r < id);
        self.running.insert(at, id);
    }

    /// Removes a request from the decode batch (no-op when absent).
    pub(crate) fn remove_running(&mut self, id: RequestId) {
        self.running.retain(|&r| r != id);
    }

    /// True when every submitted request has finished.
    pub(crate) fn all_finished(&self) -> bool {
        self.finished_count == self.requests.len()
    }
}

/// A point-in-time load summary of one engine, for cluster routers.
///
/// Routers see only this snapshot — never engine internals — so routing
/// policies stay decoupled from the pipeline and deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineLoad {
    /// The replica's current simulation time.
    pub now: SimTime,
    /// Requests submitted so far.
    pub submitted: usize,
    /// Requests that have not finished yet (including not-yet-arrived).
    pub live: usize,
    /// Requests whose arrival time has passed. `arrived − (submitted −
    /// live)` is the *arrived live* population — the set one engine step
    /// actually iterates, and the denominator any O(live)-per-step claim
    /// is measured against.
    pub arrived: usize,
    /// Arrived requests waiting for admission with no KV anywhere.
    pub waiting: usize,
    /// Requests in the decode batch.
    pub running: usize,
    /// Requests mid-KV-transfer (evicting to host or loading back), from
    /// the KV manager's queue-depth accessors.
    pub transitioning: usize,
    /// Sum of required streaming rates over unfinished requests,
    /// tokens/second — the demand side of the `Σ rᵢ ≤ Γ` schedulability
    /// test.
    pub rate_sum: f64,
    /// Free GPU KV capacity in tokens.
    pub gpu_free_tokens: u64,
    /// Total GPU KV capacity in tokens.
    pub gpu_total_tokens: u64,
    /// Device-to-host transfer queue depth.
    pub d2h_queue_len: usize,
    /// Host-to-device transfer queue depth.
    pub h2d_queue_len: usize,
    /// Pending prefill backlog: queued prompt tokens not yet prefilled
    /// (waiting requests' full recompute contexts plus in-flight prefills'
    /// unprocessed remainders). Routers use it to see *admission
    /// pressure* — work a new request must queue behind before its own
    /// prefill — which resident-load counters miss entirely at an arrival
    /// barrier.
    pub pending_prefill_tokens: u64,
}
