//! Pipeline stage 1 — admission: arrival ingest, scheduler context
//! construction, and plan application.
//!
//! The stage turns the outside world (arrival events) and the scheduler's
//! decisions ([`Action`]s) into request-phase transitions, routing KV
//! work through the [`KvManager`]. It owns no state: everything operates
//! on `&mut` views of [`EngineState`].

use tokenflow_kv::{Direction, EvictStart, KvManager};
use tokenflow_model::CostModel;
use tokenflow_sched::{Action, PreemptMode, ReqView, SchedContext, Scheduler};
use tokenflow_sim::{EventQueue, RequestId, SimTime};
use tokenflow_trace::{PreemptCause, TraceEventKind, TraceSink};

use crate::config::EngineConfig;
use crate::profiler::EngineProfilers;
use crate::state::{EngineState, Phase};

/// Pops every arrival due by `now`, marking the requests live.
pub(crate) fn ingest_arrivals(
    arrivals: &mut EventQueue<RequestId>,
    st: &mut EngineState,
    now: SimTime,
    trace: &mut TraceSink,
) {
    while let Some(entry) = arrivals.pop_due(now) {
        st.decision_epoch += 1;
        st.live_count += 1;
        // Requests cannot leave WaitingNew before they arrive (the
        // scheduler only ever sees arrived requests), so each arrival
        // joins the waiting pool and its whole prompt joins the prefill
        // backlog.
        debug_assert_eq!(st.state(entry.event).phase, Phase::WaitingNew);
        st.waiting_count += 1;
        st.prefill_backlog_tokens += st.state(entry.event).context_tokens();
        st.insert_live(entry.event);
        trace.emit(
            now,
            TraceEventKind::Arrived {
                id: entry.event,
                arrival: st.state(entry.event).spec.arrival,
            },
        );
    }
}

/// Rebuilds the read-only scheduling context the policy plans against
/// into a retained buffer — the engine double-buffers two contexts, so
/// the steady-state step allocates no `Vec<ReqView>` at all.
///
/// The request walk covers exactly the live-id index (arrived,
/// unfinished requests in ascending id order) and compacts lazily-dead
/// entries out of the index in passing, which keeps one step O(live)
/// instead of O(every request ever submitted).
///
/// Γ — the decode capacity estimate — is the capacity the hardware could
/// sustain at the live requests' context sizes (the largest memory-feasible
/// batch priced by the cost model), floored against the measured trailing
/// throughput. Using measured throughput alone would read pacing or
/// prefill phases as capacity collapses.
pub(crate) fn build_ctx_into(
    ctx: &mut SchedContext,
    st: &mut EngineState,
    kv: &KvManager,
    cost: &CostModel,
    config: &EngineConfig,
    profs: &EngineProfilers,
    now: SimTime,
) {
    ctx.requests.clear();
    let mut write = 0usize;
    for read in 0..st.live_ids.len() {
        let id = st.live_ids[read];
        let idx = id.0 as usize;
        let phase = st.requests[idx].phase;
        let Some(sched_phase) = phase.sched_phase() else {
            // Finished since the last build: compact the entry away.
            continue;
        };
        st.live_ids[write] = id;
        write += 1;
        debug_assert!(st.requests[idx].spec.arrival <= now, "live implies arrived");
        let evict_secs = kv.estimated_evict_time(id, now).as_secs_f64();
        let load_secs = kv.estimated_load_time(id, now).as_secs_f64();
        let reserved = if phase == Phase::Prefilling {
            st.requests[idx].prefill_target
        } else {
            0
        };
        let s = &mut st.requests[idx];
        let snap = s.buffer.snapshot(now);
        ctx.requests.push(ReqView {
            id,
            phase: sched_phase,
            arrival: s.spec.arrival,
            rate: s.spec.rate,
            prompt_tokens: s.spec.prompt_tokens,
            context_tokens: s.context_tokens(),
            remaining_tokens: s.remaining_tokens(),
            buffered_tokens: snap.buffered,
            buffered_secs: snap.buffered_secs,
            stalled: snap.stalled_now,
            started: s.generated > 0,
            evict_secs,
            load_secs,
            reserved_tokens: reserved,
            elastic: s.kind == tokenflow_workload::ClientKind::Agent,
            inbound: matches!(phase, Phase::Prefilling | Phase::Loading),
        });
    }
    st.live_ids.truncate(write);

    let live_n = ctx.requests.len().max(1) as u64;
    let avg_ctx = (ctx.requests.iter().map(|v| v.context_tokens).sum::<u64>() / live_n).max(128);
    let n_fit = (kv.gpu_total_tokens() / avg_ctx).clamp(1, config.max_batch as u64) as u32;
    let theoretical = cost.batch_throughput(n_fit, avg_ctx);
    // Prefill work steals compute from decode: discount capacity by the
    // fraction of wall time the recent prefill stream consumes.
    let prefill_share =
        (profs.prefill_rate.throughput(now) * profs.prefill.secs_per_token()).min(0.8);
    let gamma = profs
        .decode
        .throughput(now)
        .max(theoretical * (1.0 - prefill_share));
    ctx.now = now;
    ctx.gpu_free_tokens = kv.gpu_free_tokens();
    ctx.gpu_total_tokens = kv.gpu_total_tokens();
    ctx.d2h_queue_len = kv.io_queue_len(Direction::D2H);
    ctx.h2d_queue_len = kv.io_queue_len(Direction::H2D);
    ctx.d2h_eta = kv.io_eta(Direction::D2H, now);
    ctx.h2d_eta = kv.io_eta(Direction::H2D, now);
    ctx.prefill_secs_per_token = profs.prefill.secs_per_token();
    ctx.decode_throughput = gamma;
    ctx.pcie_bandwidth = config.hardware.pcie_bw;
    ctx.kv_bytes_per_token = config.model.kv_bytes_per_token();
    ctx.max_batch = config.max_batch;
    ctx.recount_phases();
    ctx.debug_assert_id_ordered();
}

/// Starts (or restarts, after a discard) a request's prefill.
fn admit_prefill(
    st: &mut EngineState,
    kv: &mut KvManager,
    id: RequestId,
    now: SimTime,
    trace: &mut TraceSink,
) {
    let phase = st.state(id).phase;
    let recompute = match phase {
        // A waiting request's context is already counted in the prefill
        // backlog; admission keeps it there (target − done is unchanged).
        Phase::WaitingNew => {
            st.waiting_count -= 1;
            false
        }
        Phase::OnCpu => {
            // Recompute path: drop the host copy and re-prefill. The
            // context re-enters the prefill backlog.
            kv.drop_kv(id);
            st.state_mut(id).metrics.recomputes += 1;
            st.prefill_backlog_tokens += st.state(id).context_tokens();
            true
        }
        _ => return, // stale action; ignore
    };
    st.decision_epoch += 1;
    let s = st.state_mut(id);
    s.prefill_target = s.context_tokens();
    s.prefill_done = 0;
    s.phase = Phase::Prefilling;
    st.prefill_queue.push_back(id);
    trace.emit(
        now,
        TraceEventKind::Admitted {
            id,
            recompute,
            queued_behind_tokens: st
                .prefill_backlog_tokens
                .saturating_sub(st.state(id).prefill_target),
        },
    );
}

/// Removes a running request from the batch, offloading or discarding its
/// KV per `mode`.
pub(crate) fn apply_preempt(
    st: &mut EngineState,
    kv: &mut KvManager,
    id: RequestId,
    mode: PreemptMode,
    now: SimTime,
    cause: PreemptCause,
    trace: &mut TraceSink,
) {
    if st.state(id).phase != Phase::Running {
        return; // stale action
    }
    st.decision_epoch += 1;
    st.remove_running(id);
    st.state_mut(id).metrics.preemptions += 1;
    let tokens = kv.context_tokens(id);
    let discard = |st: &mut EngineState, kv: &mut KvManager, id: RequestId| {
        kv.drop_kv(id);
        st.state_mut(id).phase = Phase::WaitingNew;
        // A discarded victim was running, hence arrived: it rejoins the
        // waiting pool (and the prefill backlog, with its full recompute
        // context) until the scheduler re-admits its recompute.
        st.waiting_count += 1;
        st.prefill_backlog_tokens += st.state(id).context_tokens();
    };
    let discarded = match mode {
        PreemptMode::Discard => {
            discard(st, kv, id);
            true
        }
        PreemptMode::Offload => match kv.begin_evict(id, now) {
            Ok(EvictStart::Instant) => {
                st.state_mut(id).phase = Phase::OnCpu;
                false
            }
            Ok(EvictStart::InFlight) => {
                st.state_mut(id).phase = Phase::Evicting;
                trace.emit(now, TraceEventKind::EvictStart { id, tokens });
                false
            }
            Err(_) => {
                discard(st, kv, id);
                true
            }
        },
    };
    trace.emit(
        now,
        TraceEventKind::Preempted {
            id,
            discard: discarded,
            cause,
        },
    );
}

/// Applies the scheduler's plan, action by action, in order.
pub(crate) fn apply_plan(
    st: &mut EngineState,
    kv: &mut KvManager,
    actions: Vec<Action>,
    now: SimTime,
    trace: &mut TraceSink,
) {
    for action in actions {
        match action {
            Action::AdmitPrefill(id) => admit_prefill(st, kv, id, now, trace),
            Action::Resume(id) => {
                if st.state(id).phase == Phase::OnCpu && kv.begin_load(id, now).is_ok() {
                    st.decision_epoch += 1;
                    st.state_mut(id).phase = Phase::Loading;
                    trace.emit(now, TraceEventKind::Resumed { id });
                    trace.emit(
                        now,
                        TraceEventKind::LoadStart {
                            id,
                            tokens: kv.context_tokens(id),
                        },
                    );
                }
            }
            Action::Preempt { id, mode } => {
                apply_preempt(st, kv, id, mode, now, PreemptCause::Planned, trace)
            }
        }
    }
}

/// Emergency memory reclamation: ask the scheduler for victims until
/// `needed_blocks` fit or no victims remain. Returns whether it fits.
/// `scratch` is a retained context buffer rebuilt per victim round (the
/// engine lends its plan-phase context, which is dead by this stage).
#[allow(clippy::too_many_arguments)]
pub(crate) fn emergency_reclaim(
    st: &mut EngineState,
    kv: &mut KvManager,
    scheduler: &dyn Scheduler,
    cost: &CostModel,
    config: &EngineConfig,
    profs: &EngineProfilers,
    scratch: &mut SchedContext,
    needed_blocks: u64,
    now: SimTime,
    trace: &mut TraceSink,
) -> bool {
    let bt = config.block_tokens as u64;
    let mode = scheduler.emergency_preempt_mode();
    loop {
        if kv.gpu_free_tokens() / bt >= needed_blocks {
            return true;
        }
        build_ctx_into(scratch, st, kv, cost, config, profs, now);
        let Some(victim) = scheduler.emergency_victim(scratch) else {
            return false;
        };
        if st.state(victim).phase != Phase::Running {
            return false;
        }
        // Offload may free only partially (in-flight flush); discard
        // frees immediately. Either way the victim leaves the batch.
        apply_preempt(st, kv, victim, mode, now, PreemptCause::Reclaim, trace);
        if mode == PreemptMode::Offload
            && kv.gpu_free_tokens() / bt < needed_blocks
            && st.state(victim).phase == Phase::Evicting
        {
            // The flush is in flight; memory frees over the next chunks.
            // The next iteration picks a new victim if the loop cannot
            // make progress otherwise.
            continue;
        }
    }
}
