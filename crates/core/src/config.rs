//! Engine configuration.

use tokenflow_metrics::QosParams;
use tokenflow_model::{CostModel, CostOverheads, HardwareProfile, ModelProfile};
use tokenflow_sim::SimDuration;

/// Complete configuration of a serving engine instance.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Model being served.
    pub model: ModelProfile,
    /// Accelerator profile.
    pub hardware: HardwareProfile,
    /// Cost-model efficiency factors.
    pub overheads: CostOverheads,
    /// Fraction of device memory the engine may use (SGLang `mem-frac`).
    pub mem_frac: f64,
    /// Tokens per KV block.
    pub block_tokens: u32,
    /// Host pool capacity as a multiple of the GPU pool.
    pub cpu_pool_factor: f64,
    /// Transfer chunk granularity in tokens.
    pub chunk_tokens: u64,
    /// Enable write-through background sync (§5.1).
    pub write_through: bool,
    /// Priority (vs FIFO) ordering of write-through flushes (§5.2).
    pub priority_writes: bool,
    /// Enable KV offload entirely; `false` is the w/o-offload ablation.
    pub offload_enabled: bool,
    /// Enable load-evict overlap (§5.3).
    pub load_evict_overlap: bool,
    /// Hard cap on concurrently decoding requests.
    pub max_batch: u32,
    /// Prompt-token budget of one dedicated prefill iteration.
    pub max_prefill_tokens: u64,
    /// QoS metric parameters.
    pub qos: QosParams,
    /// Time-series sampling interval.
    pub sample_interval: SimDuration,
    /// Record full token timelines for the first N requests (0 disables).
    pub timeline_requests: usize,
    /// Simulation safety deadline: runs longer than this are cut off and
    /// reported incomplete.
    pub deadline: SimDuration,
    /// Iteration-count safety cap for [`run_to_completion`]
    /// (`Engine::run_to_completion`): a backstop against non-terminating
    /// configurations (e.g. a required rate no hardware satisfies).
    pub max_iterations: u64,
    /// Honor scheduler plan horizons: replay the composed batch across
    /// certified-quiescent decode steps instead of re-running admission,
    /// planning, and composition. `false` forces the full pipeline every
    /// step (the differential-testing and debugging path); results are
    /// byte-identical either way.
    pub plan_horizon: bool,
    /// Record the decision-event trace journal. Off (the default) the
    /// trace sink is a no-op and the hot path stays allocation-free;
    /// results are byte-identical either way.
    pub trace: bool,
}

impl EngineConfig {
    /// A configuration with the paper's defaults for the given model and
    /// hardware.
    pub fn new(model: ModelProfile, hardware: HardwareProfile) -> Self {
        EngineConfig {
            model,
            hardware,
            overheads: CostOverheads::default(),
            mem_frac: 0.9,
            block_tokens: 16,
            cpu_pool_factor: 8.0,
            chunk_tokens: 256,
            write_through: true,
            priority_writes: true,
            offload_enabled: true,
            load_evict_overlap: true,
            max_batch: 256,
            max_prefill_tokens: 8_192,
            qos: QosParams::default(),
            sample_interval: SimDuration::from_millis(1_000),
            timeline_requests: 0,
            deadline: SimDuration::from_secs(4 * 3_600),
            max_iterations: 50_000_000,
            plan_horizon: true,
            trace: false,
        }
    }

    /// Enables or disables decision-event tracing.
    pub fn with_trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Overrides the iteration-count safety cap.
    pub fn with_max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    /// Enables or disables the plan-horizon fast path.
    pub fn with_plan_horizon(mut self, enabled: bool) -> Self {
        self.plan_horizon = enabled;
        self
    }

    /// Sets the memory fraction (SGLang `mem-frac`).
    pub fn with_mem_frac(mut self, f: f64) -> Self {
        self.mem_frac = f;
        self
    }

    /// Caps the running batch size.
    pub fn with_max_batch(mut self, b: u32) -> Self {
        self.max_batch = b;
        self
    }

    /// Enables token-timeline recording for the first `n` requests.
    pub fn with_timelines(mut self, n: usize) -> Self {
        self.timeline_requests = n;
        self
    }

    /// Configures the memory-hierarchy feature flags (for the Table 2
    /// ablations).
    pub fn with_kv_features(mut self, offload: bool, write_through: bool, overlap: bool) -> Self {
        self.offload_enabled = offload;
        self.write_through = write_through && offload;
        self.load_evict_overlap = overlap;
        self
    }

    /// Builds the cost model for this configuration.
    pub fn cost_model(&self) -> CostModel {
        CostModel::with_overheads(self.model.clone(), self.hardware.clone(), self.overheads)
    }

    /// GPU KV capacity in tokens under this configuration.
    pub fn gpu_kv_tokens(&self) -> u64 {
        self.cost_model().kv_token_capacity(self.mem_frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200());
        assert!(c.gpu_kv_tokens() > 100_000);
        assert!(c.write_through && c.offload_enabled && c.load_evict_overlap);
    }

    #[test]
    fn mem_frac_shrinks_capacity() {
        let full = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200());
        let third = full.clone().with_mem_frac(0.3);
        assert!(third.gpu_kv_tokens() < full.gpu_kv_tokens() / 2);
    }

    #[test]
    fn kv_feature_flags_compose() {
        let c = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090())
            .with_kv_features(false, true, true);
        // Write-through is meaningless without offload.
        assert!(!c.offload_enabled);
        assert!(!c.write_through);
    }
}
