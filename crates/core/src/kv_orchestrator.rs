//! Pipeline stage 2 — KV orchestration: applying finished transfers and
//! pumping write-through sync against the [`KvManager`].
//!
//! The memory hierarchy runs "in the background" of compute: evictions and
//! loads progress while iterations execute, and their completions flip
//! request phases at the next stage boundary. This module is the only
//! place those completions are translated into pipeline phase changes.

use tokenflow_kv::{KvEvent, KvManager};
use tokenflow_sim::{RequestId, SimDuration, SimTime};
use tokenflow_trace::{TraceEventKind, TraceSink};

use crate::state::{EngineState, Phase};

/// Advances the transfer engine to `to` and applies every completion to
/// the request table: finished evictions park requests on the CPU,
/// finished loads rejoin the decode batch. Each phase flip is journaled
/// in [`EngineState::transfer_flips`] — completions are the mechanical
/// tail of an already-counted decision, not decision-epoch events, and
/// the plan-horizon fast path mirrors the flips into its retained
/// context instead of tearing the horizon down.
/// `events` is a caller-retained scratch buffer (cleared and refilled
/// here) so the per-step path reuses one allocation across calls.
pub(crate) fn apply_transfers(
    st: &mut EngineState,
    kv: &mut KvManager,
    to: SimTime,
    events: &mut Vec<KvEvent>,
    trace: &mut TraceSink,
) {
    kv.advance_into(to, events);
    for &event in events.iter() {
        match event {
            KvEvent::EvictDone { req, at } => {
                let s = st.state_mut(req);
                if s.phase == Phase::Evicting {
                    s.phase = Phase::OnCpu;
                    st.transfer_flips.push(req);
                    trace.emit(at, TraceEventKind::EvictDone { id: req });
                }
            }
            KvEvent::LoadDone { req, at } => {
                let s = st.state_mut(req);
                if s.phase == Phase::Loading {
                    s.phase = Phase::Running;
                    st.push_running(req);
                    st.transfer_flips.push(req);
                    trace.emit(at, TraceEventKind::LoadDone { id: req });
                }
            }
        }
    }
}

/// Synchronous chunked writing (§5.2): pumps a compute-window's worth of
/// background sync, with flush priorities tracking each decode member's
/// buffer occupancy (fuller buffers flush first — their owners are the
/// likeliest preemption victims).
///
/// Priorities are re-priced with one pass over the pending write queue
/// (looking each queued request up in the id-sorted batch) rather than
/// one queue scan per batch member — same updates, O(queue·log batch)
/// instead of O(batch·queue). Skipping the buffer advance for members
/// with nothing queued is invisible: a reader's time-advance is Markov
/// in `t` (stalls anchor to the scheduled read instant, not the call
/// instant), so the next advance produces the same state either way.
pub(crate) fn pump_write_through(
    st: &mut EngineState,
    kv: &mut KvManager,
    decode: &[RequestId],
    now: SimTime,
    window: SimDuration,
) {
    debug_assert!(decode.is_sorted());
    kv.retune_write_priorities(|req| {
        decode
            .binary_search(&req)
            .ok()
            .map(|_| st.state_mut(req).buffer.buffered(now) as f64)
    });
    kv.pump_writes(now, window);
}

/// The next instant background I/O completes, if any — the KV wake-up
/// input to the engine's idle fast-forward.
pub(crate) fn next_transfer_completion(kv: &KvManager) -> Option<SimTime> {
    kv.next_io_completion()
}
