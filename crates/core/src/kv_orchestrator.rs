//! Pipeline stage 2 — KV orchestration: applying finished transfers and
//! pumping write-through sync against the [`KvManager`].
//!
//! The memory hierarchy runs "in the background" of compute: evictions and
//! loads progress while iterations execute, and their completions flip
//! request phases at the next stage boundary. This module is the only
//! place those completions are translated into pipeline phase changes.

use tokenflow_kv::{KvEvent, KvManager};
use tokenflow_sim::{RequestId, SimDuration, SimTime};

use crate::state::{EngineState, Phase};

/// Advances the transfer engine to `to` and applies every completion to
/// the request table: finished evictions park requests on the CPU,
/// finished loads rejoin the decode batch.
pub(crate) fn apply_transfers(st: &mut EngineState, kv: &mut KvManager, to: SimTime) {
    let events = kv.advance_to(to);
    for event in events {
        match event {
            KvEvent::EvictDone { req, .. } => {
                let s = st.state_mut(req);
                if s.phase == Phase::Evicting {
                    s.phase = Phase::OnCpu;
                }
            }
            KvEvent::LoadDone { req, .. } => {
                let s = st.state_mut(req);
                if s.phase == Phase::Loading {
                    s.phase = Phase::Running;
                    st.push_running(req);
                }
            }
        }
    }
}

/// Synchronous chunked writing (§5.2): pumps a compute-window's worth of
/// background sync, with flush priorities tracking each decode member's
/// buffer occupancy (fuller buffers flush first — their owners are the
/// likeliest preemption victims).
pub(crate) fn pump_write_through(
    st: &mut EngineState,
    kv: &mut KvManager,
    decode: &[RequestId],
    now: SimTime,
    window: SimDuration,
) {
    for &id in decode {
        let buffered = st.state_mut(id).buffer.buffered(now);
        kv.set_write_priority(id, buffered as f64);
    }
    kv.pump_writes(now, window);
}

/// The next instant background I/O completes, if any — the KV wake-up
/// input to the engine's idle fast-forward.
pub(crate) fn next_transfer_completion(kv: &KvManager) -> Option<SimTime> {
    kv.next_io_completion()
}
