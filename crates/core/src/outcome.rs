//! Simulation results.

use tokenflow_metrics::{RequestMetrics, RunReport, TimeSeries, TokenTimeline};
use tokenflow_sim::SimDuration;
use tokenflow_trace::TraceJournal;

use crate::engine::Completion;

/// Everything measured during one simulation run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Aggregated run-level report.
    pub report: RunReport,
    /// Per-request records, indexed by request id.
    pub records: Vec<RequestMetrics>,
    /// Queued (waiting + offloaded) request count over time (Figure 14).
    pub queued_series: TimeSeries,
    /// Running request count over time (Figure 15).
    pub running_series: TimeSeries,
    /// GPU KV pool utilisation over time.
    pub gpu_util_series: TimeSeries,
    /// Token timelines for the requests selected by
    /// [`EngineConfig::timeline_requests`](crate::EngineConfig) (Figures
    /// 18/19).
    pub timelines: Vec<TokenTimeline>,
    /// Name of the scheduling policy that produced this run.
    pub scheduler: String,
    /// Total simulated time.
    pub sim_time: SimDuration,
    /// Whether every request ran to completion (false when the safety
    /// deadline cut the run short).
    pub complete: bool,
    /// *Why* the run stopped: finished, deadline, or iteration cap.
    pub completion: Completion,
    /// Total engine iterations executed.
    pub iterations: u64,
    /// The decision-event journal, when the run was traced
    /// ([`EngineConfig::trace`](crate::EngineConfig)).
    pub trace: Option<TraceJournal>,
}
