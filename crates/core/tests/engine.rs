//! Engine behavior tests, exercised through the public API.
//!
//! These ran inside `engine.rs` when the engine was a monolith; the staged
//! pipeline refactor moved them here unchanged (modulo the now-generic
//! scheduler parameter), so they double as the refactor's behavioral
//! oracle: the staged pipeline must keep every one of them green.

use tokenflow_core::{Engine, EngineConfig};
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::{
    AndesScheduler, ChunkedPrefillScheduler, FcfsScheduler, Scheduler, TokenFlowScheduler,
};
use tokenflow_sim::{RequestId, SimDuration, SimTime};
use tokenflow_workload::RequestSpec;

fn config() -> EngineConfig {
    EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200())
}

fn spec(arrival_ms: u64, prompt: u64, output: u64, rate: f64) -> RequestSpec {
    RequestSpec {
        id: RequestId(0),
        arrival: SimTime::from_millis(arrival_ms),
        prompt_tokens: prompt,
        output_tokens: output,
        rate,
    }
}

#[test]
fn single_request_completes() {
    let mut e = Engine::new(config(), FcfsScheduler::new());
    e.submit(spec(0, 128, 50, 20.0));
    assert!(e.run_to_completion().is_finished());
    let out = e.into_outcome();
    assert_eq!(out.report.completed, 1);
    assert_eq!(out.records[0].generated, 50);
    assert!(out.records[0].ttft().unwrap() > SimDuration::ZERO);
}

#[test]
fn ttft_includes_queueing_and_prefill() {
    let mut e = Engine::new(config(), FcfsScheduler::new());
    e.submit(spec(1_000, 512, 10, 20.0));
    e.run_to_completion();
    let out = e.into_outcome();
    let first = out.records[0].first_token_at.unwrap();
    // Arrival at 1 s plus a prefill pass.
    assert!(first > SimTime::from_secs(1));
    assert!(first < SimTime::from_secs(2));
}

#[test]
fn tokens_delivered_in_order_with_step_api() {
    let mut e = Engine::new(config(), FcfsScheduler::new());
    let id = e.submit(spec(0, 64, 20, 50.0));
    let mut seen = Vec::new();
    for _ in 0..10_000 {
        let out = e.step();
        for &(rid, n) in &out.delivered {
            assert_eq!(rid, id);
            seen.push(n);
        }
        if out.done {
            break;
        }
    }
    assert_eq!(seen, (1..=20).collect::<Vec<u64>>());
}

#[test]
fn burst_creates_queueing_under_fcfs() {
    let mut cfg = config().with_mem_frac(0.3).with_max_batch(16);
    cfg.sample_interval = SimDuration::from_millis(200);
    let mut e = Engine::new(cfg, FcfsScheduler::new());
    for _ in 0..128 {
        e.submit(spec(0, 512, 256, 20.0));
    }
    assert!(e.run_to_completion().is_finished());
    let out = e.into_outcome();
    assert_eq!(out.report.completed, 128);
    // Later requests queue: P99 TTFT spreads well past P50 and far
    // beyond the 1.3 s engagement tolerance (Figure 2's pathology).
    assert!(
        out.report.ttft.p99 > 1.8 * out.report.ttft.p50,
        "p99 {} vs p50 {}",
        out.report.ttft.p99,
        out.report.ttft.p50
    );
    assert!(out.report.ttft.p99 > 1.3, "p99 {}", out.report.ttft.p99);
    assert!(out.queued_series.max().unwrap_or(0.0) > 0.0);
}

#[test]
fn all_schedulers_complete_same_workload() {
    let mk: Vec<Box<dyn Scheduler>> = vec![
        Box::new(FcfsScheduler::new()),
        Box::new(ChunkedPrefillScheduler::new()),
        Box::new(AndesScheduler::new()),
        Box::new(TokenFlowScheduler::new()),
    ];
    for sched in mk {
        let name = sched.name();
        let mut e = Engine::new(config().with_max_batch(8), sched);
        for i in 0..12 {
            e.submit(spec(i * 50, 128, 64, 25.0));
        }
        assert!(e.run_to_completion().is_finished(), "{name} did not finish");
        let out = e.into_outcome();
        assert_eq!(out.report.completed, 12, "{name} completed");
        for r in &out.records {
            assert_eq!(r.generated, 64, "{name} token count");
        }
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut e = Engine::new(config().with_max_batch(8), TokenFlowScheduler::new());
        for i in 0..10 {
            e.submit(spec(i * 100, 256, 128, 20.0));
        }
        e.run_to_completion();
        e.into_outcome()
    };
    let a = run();
    let b = run();
    assert_eq!(a.report, b.report);
    assert_eq!(a.records, b.records);
    assert_eq!(a.iterations, b.iterations);
}

#[test]
fn timeline_recording_works() {
    let mut e = Engine::new(config().with_timelines(2), FcfsScheduler::new());
    e.submit(spec(0, 64, 30, 20.0));
    e.submit(spec(0, 64, 30, 20.0));
    e.submit(spec(0, 64, 30, 20.0));
    e.run_to_completion();
    let out = e.into_outcome();
    assert_eq!(out.timelines.len(), 2);
    assert_eq!(out.timelines[0].points().len(), 30);
}

#[test]
fn effective_tokens_bounded_by_generated() {
    let mut e = Engine::new(config(), FcfsScheduler::new());
    e.submit(spec(0, 128, 200, 10.0));
    e.run_to_completion();
    let out = e.into_outcome();
    let r = &out.records[0];
    assert!(r.effective_tokens <= r.generated as f64 + 1e-9);
    assert!(r.effective_tokens > 0.0);
}

#[test]
fn fast_generation_overfills_buffer_and_loses_effectiveness() {
    // A slow reader against unpaced FCFS generation: most tokens land
    // beyond the 20% buffer cutoff and count zero.
    let mut e = Engine::new(config(), FcfsScheduler::new());
    e.submit(spec(0, 128, 500, 5.0));
    e.run_to_completion();
    let out = e.into_outcome();
    let r = &out.records[0];
    assert!(
        r.effective_tokens < 0.5 * r.generated as f64,
        "effective {} of {}",
        r.effective_tokens,
        r.generated
    );
}

#[test]
fn memory_pressure_causes_queueing_under_fcfs() {
    // Capacity ≈6.6k tokens; 8 requests × 1024 conservative tokens do
    // not all fit: SGLang-style admission serialises the excess into a
    // second wave (visible as a TTFT spread), never preempting.
    let mut cfg = config();
    cfg.mem_frac = 0.126; // ≈ 19 GiB: 16 weights + 2 reserve + ~0.9 KV (≈6.6k tokens)
    let mut e = Engine::new(cfg, FcfsScheduler::new());
    for _ in 0..8 {
        e.submit(spec(0, 512, 512, 20.0));
    }
    assert!(e.run_to_completion().is_finished());
    let out = e.into_outcome();
    assert_eq!(out.report.completed, 8);
    assert_eq!(
        out.report.preemptions, 0,
        "conservative FCFS never preempts"
    );
    assert!(
        out.report.ttft.max > 5.0 * out.report.ttft.p50,
        "second admission wave must wait: {:?}",
        out.report.ttft
    );
}

#[test]
fn tokenflow_survives_memory_pressure_via_offload() {
    let mut cfg = config();
    cfg.mem_frac = 0.126;
    let mut e = Engine::new(cfg, TokenFlowScheduler::new());
    for _ in 0..8 {
        e.submit(spec(0, 512, 512, 20.0));
    }
    assert!(e.run_to_completion().is_finished());
    let out = e.into_outcome();
    assert_eq!(out.report.completed, 8);
}

#[test]
#[should_panic(expected = "output length must be positive")]
fn zero_output_rejected() {
    let mut e = Engine::new(config(), FcfsScheduler::new());
    e.submit(spec(0, 10, 0, 10.0));
}

#[test]
#[should_panic(expected = "does not fit")]
fn oversized_model_rejected() {
    let cfg = EngineConfig::new(ModelProfile::qwen2_5_32b(), HardwareProfile::rtx4090());
    let _ = Engine::new(cfg, FcfsScheduler::new());
}

#[test]
fn run_report_duration_spans_run() {
    let mut e = Engine::new(config(), FcfsScheduler::new());
    e.submit(spec(0, 64, 100, 20.0));
    e.run_to_completion();
    let out = e.into_outcome();
    assert!(out.sim_time > SimDuration::ZERO);
    assert_eq!(out.sim_time, out.report.duration);
    assert!(out.complete);
}

#[test]
fn load_snapshot_tracks_lifecycle() {
    let mut e = Engine::new(config().with_max_batch(4), FcfsScheduler::new());
    let fresh = e.load_snapshot();
    assert_eq!((fresh.submitted, fresh.live, fresh.running), (0, 0, 0));
    for _ in 0..6 {
        e.submit(spec(0, 128, 40, 20.0));
    }
    let queued = e.load_snapshot();
    assert_eq!(queued.submitted, 6);
    assert_eq!(queued.live, 6);
    assert!(queued.rate_sum > 119.0 && queued.rate_sum < 121.0);
    assert!(e.run_to_completion().is_finished());
    let drained = e.load_snapshot();
    assert_eq!(drained.live, 0);
    assert_eq!(drained.running, 0);
    assert_eq!(drained.waiting, 0);
    assert_eq!(drained.rate_sum, 0.0);
    assert_eq!(drained.pending_prefill_tokens, 0);
}

#[test]
fn load_snapshot_tracks_prefill_backlog() {
    let mut e = Engine::new(config().with_max_batch(4), FcfsScheduler::new());
    // Submitted but not yet arrived: no admission pressure.
    for _ in 0..4 {
        e.submit(spec(500, 6_000, 20, 20.0));
    }
    assert_eq!(e.load_snapshot().pending_prefill_tokens, 0);
    // Step past the arrivals: the four 6k prompts exceed one prefill
    // iteration's budget, so the backlog is visible between steps and
    // drains only as prefill tokens are actually processed.
    let mut peak = 0;
    loop {
        let out = e.step();
        peak = peak.max(e.load_snapshot().pending_prefill_tokens);
        if out.done {
            break;
        }
    }
    assert!(peak >= 6_000, "peak backlog {peak}");
    assert!(peak <= 4 * 6_000, "peak backlog {peak}");
    assert_eq!(e.load_snapshot().pending_prefill_tokens, 0);
}

#[test]
fn step_until_advances_to_deadline_and_completion() {
    let mut e = Engine::new(config(), FcfsScheduler::new());
    e.submit(spec(0, 128, 100, 10.0));
    // A deadline mid-run leaves the request unfinished at (or just past)
    // the boundary...
    assert!(!e.step_until(SimTime::from_millis(200)));
    assert!(e.now() >= SimTime::from_millis(200));
    // ...re-entry makes no progress when already at the deadline...
    let frozen = e.now();
    assert!(!e.step_until(SimTime::from_millis(100)));
    assert_eq!(e.now(), frozen);
    // ...and a far deadline finishes the request with the clock frozen at
    // completion, not the deadline.
    assert!(e.step_until(SimTime::from_secs(3_600)));
    assert!(e.now() < SimTime::from_secs(3_600));
    let out = e.into_outcome();
    assert_eq!(out.report.completed, 1);
}

#[test]
fn step_until_equals_manual_stepping() {
    let drive = |until: Vec<u64>| {
        let mut e = Engine::new(config().with_max_batch(8), TokenFlowScheduler::new());
        for i in 0..10 {
            e.submit(spec(i * 40, 128, 64, 25.0));
        }
        for ms in until {
            e.step_until(SimTime::from_millis(ms));
        }
        e.step_until(SimTime::from_secs(3_600));
        e.into_outcome()
    };
    // Epoch slicing at arbitrary boundaries must not change a single
    // record: step_until is a pure re-chunking of the same step stream.
    let whole = drive(vec![]);
    let sliced = drive(vec![50, 120, 121, 300, 2_000]);
    assert_eq!(whole.report, sliced.report);
    assert_eq!(whole.records, sliced.records);
    assert_eq!(whole.iterations, sliced.iterations);
}

/// A request arriving *inside* an iteration is queued at every sample
/// instant between its arrival and its admission, even though arrival
/// ingestion only runs at iteration starts. (Regression: the O(live)
/// telemetry rewrite must match the old full-table scan, which counted
/// due-but-uningested submissions as queued.)
#[test]
fn queued_series_counts_mid_iteration_arrivals() {
    let mut cfg = config();
    cfg.sample_interval = SimDuration::from_micros(100);
    let mut e = Engine::new(cfg, FcfsScheduler::new());
    // A long-running resident keeps iterations going...
    e.submit(spec(0, 512, 2_000, 20.0));
    // ...and a second request lands at an odd instant, mid-iteration.
    e.submit(spec(13, 128, 10, 20.0));
    for _ in 0..200 {
        if e.step().done {
            break;
        }
    }
    let out = e.into_outcome();
    // The short request ran to completion inside the window (the long
    // one keeps iterating past it; full completion is not needed here).
    assert!(out.records[1].completed());
    let queued_max = out
        .queued_series
        .samples()
        .iter()
        .map(|&(_, v)| v)
        .fold(0.0f64, f64::max);
    assert!(
        queued_max >= 1.0,
        "the mid-iteration arrival was never counted as queued"
    );
    // And it is only counted from its arrival onward.
    assert!(out
        .queued_series
        .samples()
        .iter()
        .all(|&(t, v)| v == 0.0 || t >= SimTime::from_millis(13)));
}
