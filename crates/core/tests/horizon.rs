//! Adversarial differential tests for the plan-horizon fast path.
//!
//! The golden suite proves fastpath-on ≡ fastpath-off on end-to-end
//! digests; these tests sharpen the oracle to *per-step lockstep*: two
//! engines fed identical submissions — one with the horizon enabled,
//! one with it force-disabled — must produce identical `StepOutcome`s
//! at every single iteration, through the nastiest invalidation timings:
//!
//! * an arrival landing **exactly** at a step boundary inside an armed
//!   horizon (the epoch bump must tear it down before replay),
//! * a memory shed forced mid-horizon (the per-step fit pre-check must
//!   punt to the full pipeline's emergency reclaim),
//! * an idle fast-forward gap between two bursts (horizons must not
//!   leak across idleness into the second wave).
//!
//! Each case also asserts the fast path actually engaged — a vacuous
//! pass (zero fast steps) would prove nothing.

use tokenflow_core::{Engine, EngineConfig, StepOutcome};
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::{
    AndesScheduler, ChunkedPrefillScheduler, FcfsScheduler, Scheduler, TokenFlowScheduler,
};
use tokenflow_sim::{RequestId, SimTime};
use tokenflow_workload::RequestSpec;

fn config() -> EngineConfig {
    EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200())
}

fn spec(arrival_us: u64, prompt: u64, output: u64, rate: f64) -> RequestSpec {
    RequestSpec {
        id: RequestId(0),
        arrival: SimTime::from_micros(arrival_us),
        prompt_tokens: prompt,
        output_tokens: output,
        rate,
    }
}

const SCHEDULERS: [&str; 4] = ["fcfs", "chunked", "andes", "tokenflow"];

fn make(name: &str) -> Box<dyn Scheduler> {
    match name {
        "fcfs" => Box::new(FcfsScheduler::new()),
        "chunked" => Box::new(ChunkedPrefillScheduler::new()),
        "andes" => Box::new(AndesScheduler::new()),
        "tokenflow" => Box::new(TokenFlowScheduler::new()),
        other => panic!("unknown scheduler {other}"),
    }
}

/// Steps the fastpath-on and fastpath-off engines in lockstep until both
/// report done (or the cap trips), asserting identical outcomes at every
/// iteration. Returns the number of steps taken.
fn run_lockstep(label: &str, on: &mut Engine, off: &mut Engine, cap: u64) -> u64 {
    let mut a = StepOutcome::default();
    let mut b = StepOutcome::default();
    for step in 0..cap {
        on.step_into(&mut a);
        off.step_into(&mut b);
        assert_eq!(a.now, b.now, "{label}: sim clocks diverged at step {step}");
        assert_eq!(
            a.delivered, b.delivered,
            "{label}: deliveries diverged at step {step} (t = {:?})",
            a.now
        );
        assert_eq!(
            a.finished, b.finished,
            "{label}: finishes diverged at step {step} (t = {:?})",
            a.now
        );
        assert_eq!(a.idle, b.idle, "{label}: idleness diverged at step {step}");
        assert_eq!(a.done, b.done, "{label}: doneness diverged at step {step}");
        if a.done {
            return step + 1;
        }
    }
    panic!("{label}: {cap}-step cap hit before completion");
}

/// An arrival timed to the exact microsecond a fast step would begin,
/// deep inside an armed horizon. A probe run (determinism makes it
/// exact) finds a step-boundary instant in the quiescent stretch; the
/// differential pair then gets an extra request at precisely that time.
/// The fastpath engine must ingest it, bump the decision epoch, and run
/// the full pipeline that step — replaying the pre-arrival batch would
/// skip the admission the disabled engine performs.
#[test]
fn arrival_exactly_at_horizon_step_boundary() {
    for name in SCHEDULERS {
        let base = || {
            let mut specs = Vec::new();
            for i in 0..6 {
                specs.push(spec(i * 500, 256, 400, 25.0));
            }
            specs
        };

        // Probe: find the boundary of a step well inside the decode-only
        // stretch (and, with the horizon on, verify it is a *fast* step).
        let mut probe = Engine::from_boxed(config(), make(name));
        for s in base() {
            probe.submit(s);
        }
        let mut out = StepOutcome::default();
        for _ in 0..60 {
            probe.step_into(&mut out);
        }
        let boundary = out.now;
        assert!(
            probe.fast_path_stats().fast_steps > 0,
            "{name}: probe never took a fast step; the case is vacuous"
        );

        let mut e_on = Engine::from_boxed(config(), make(name));
        let mut e_off = Engine::from_boxed(config().with_plan_horizon(false), make(name));
        for s in base() {
            e_on.submit(s);
            e_off.submit(s);
        }
        let barrier = RequestSpec {
            arrival: boundary,
            ..spec(0, 192, 300, 25.0)
        };
        e_on.submit(barrier);
        e_off.submit(barrier);
        run_lockstep(name, &mut e_on, &mut e_off, 200_000);

        let stats = e_on.fast_path_stats();
        assert!(
            stats.fast_steps > 0,
            "{name}: fast path never engaged ({stats:?})"
        );
        assert!(
            stats.horizons_issued > 0,
            "{name}: no horizons issued ({stats:?})"
        );
    }
}

/// Memory pressure forced mid-horizon: a tiny GPU pool and long outputs
/// make the decode batch outgrow free blocks while a horizon is armed.
/// The fast step's fit pre-check must detect the pressure and fall back
/// to the full pipeline (emergency reclaim / shed), never replaying a
/// batch that no longer fits.
#[test]
fn shed_mid_horizon_under_memory_pressure() {
    for name in SCHEDULERS {
        // ~8.9k-token GPU pool. Headroom-costing schedulers admit all
        // three requests up front, after which they grow toward
        // 3 × (384 + 4000) ≈ 13.2k tokens — overflowing mid-decode,
        // long after a quiescent horizon armed. (Conservative costing
        // instead serialises them into waves that each fit.)
        let cfg = || config().with_mem_frac(0.128).with_max_batch(8);
        let mut e_on = Engine::from_boxed(cfg(), make(name));
        let mut e_off = Engine::from_boxed(cfg().with_plan_horizon(false), make(name));
        for i in 0..3 {
            let s = spec(i * 300, 384, 4_000, 30.0);
            e_on.submit(s);
            e_off.submit(s);
        }
        run_lockstep(name, &mut e_on, &mut e_off, 400_000);

        let stats = e_on.fast_path_stats();
        assert!(
            stats.fast_steps > 0,
            "{name}: fast path never engaged under pressure ({stats:?})"
        );
        // Only the headroom-costing schedulers (Andes, TokenFlow) can
        // be overflowed by decode growth: SGLang-style conservative
        // admission (FCFS, chunked) reserves each request's full
        // remaining output up front, so a batch it admits can never
        // outgrow the pool and no mid-horizon shed exists to detect.
        // For the headroom schedulers the overflow MUST be caught from
        // inside an armed horizon — that is the fit pre-check firing.
        if matches!(name, "andes" | "tokenflow") {
            assert!(
                stats.horizons_invalidated > 0,
                "{name}: no horizon was torn down by the mid-flight shed ({stats:?})"
            );
        }
    }
}

/// Two bursts separated by a dead gap the engine crosses with idle
/// fast-forward steps. A horizon armed during the first burst must not
/// survive into the second (the first burst's finishes bump the epoch,
/// and idle steps run the full pipeline), and the second burst must
/// re-arm fresh horizons.
#[test]
fn idle_fast_forward_between_horizons() {
    for name in SCHEDULERS {
        let mut e_on = Engine::from_boxed(config(), make(name));
        let mut e_off = Engine::from_boxed(config().with_plan_horizon(false), make(name));
        for i in 0..4 {
            let s = spec(i * 400, 256, 250, 25.0);
            e_on.submit(s);
            e_off.submit(s);
        }
        // Second wave, ~ a minute of dead air after the first drains.
        for i in 0..4 {
            let s = spec(90_000_000 + i * 400, 256, 250, 25.0);
            e_on.submit(s);
            e_off.submit(s);
        }
        run_lockstep(name, &mut e_on, &mut e_off, 400_000);

        let stats = e_on.fast_path_stats();
        assert!(
            stats.fast_steps > 0,
            "{name}: fast path never engaged across the bursts ({stats:?})"
        );
        // Both waves must have armed horizons: at least one certificate
        // ended by expiry or invalidation before the gap, and the total
        // issued exceeds what a single wave produces alone.
        assert!(
            stats.horizons_issued >= 2,
            "{name}: expected horizons in both bursts ({stats:?})"
        );
    }
}
