//! Scratch-reuse proof: the steady-state engine step allocates nothing.
//!
//! The hot-path contract is that one [`Engine::step_into`] on the
//! steady decode path — live requests decoding, no arrivals, no phase
//! transitions, no KV traffic — performs **zero heap allocations**: the
//! scheduler contexts, the iteration batch, the scheduler's own pass
//! scratch, and the caller's outcome buffer are all retained and
//! refilled in place. This test pins that with a counting global
//! allocator.
//!
//! Scope notes: write-through is disabled here because background sync
//! legitimately allocates (transfer completions are reported as a
//! per-advance vector) — that is KV *traffic*, not the per-step engine
//! overhead this test isolates. The file holds exactly one `#[test]` so
//! no concurrent test pollutes the counter.
//!
//! The disabled [`TraceSink`] is threaded through every stage of the
//! measured window (admission, planning, batch, KV, gates), so the
//! zero-allocation assertion is also the tracing-off zero-cost proof:
//! with `EngineConfig::trace` unset (the default used here), the
//! decision-journal plumbing adds no allocations — and, asserted below,
//! records nothing.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use tokenflow_core::{Engine, EngineConfig, StepOutcome};
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::FcfsScheduler;
use tokenflow_sim::{RequestId, SimTime};
use tokenflow_workload::RequestSpec;

/// Counts every allocation and reallocation; frees are uncounted (a
/// free cannot grow a retained buffer).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method forwards to the `System` allocator verbatim; the
// only added behavior is a relaxed counter bump, which cannot violate
// `GlobalAlloc`'s layout/aliasing contract.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: delegates to `System.alloc` with the caller's layout.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: delegates to `System.realloc` with the caller's arguments.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: delegates to `System.dealloc` with the caller's arguments.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_step_allocates_nothing() {
    // Write-through off isolates the engine loop from KV sync traffic
    // (see module docs); offload stays on, but nothing preempts here.
    let config = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::h200())
        .with_kv_features(true, false, true);
    let mut engine = Engine::new(config, FcfsScheduler::new());
    // Eight requests, all at t = 0, with outputs far longer than the
    // measured window: the steady state is a fixed decode batch with no
    // admissions, finishes, or transitions.
    for _ in 0..8 {
        engine.submit(RequestSpec {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            prompt_tokens: 256,
            output_tokens: 50_000,
            rate: 12.0,
        });
    }

    // Warm-up: admit + prefill everyone, let every retained buffer (the
    // double-buffered contexts, batch vectors, profiler windows,
    // telemetry reserve) reach its high-water mark.
    let mut out = StepOutcome::default();
    for _ in 0..2_000 {
        engine.step_into(&mut out);
        assert!(!out.done, "window must end before any request finishes");
    }

    // Measured window: five hundred steady decode steps, zero allocations.
    let before = ALLOCS.load(Ordering::Relaxed);
    let fast_before = engine.fast_path_stats().fast_steps;
    for _ in 0..500 {
        engine.step_into(&mut out);
        assert!(
            !out.idle && !out.done,
            "window must stay on the decode path"
        );
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state steps must not allocate (got {allocs} allocations over 500 steps)"
    );
    // The zero-alloc claim must cover the plan-horizon fast path, not
    // just full passes: the quiescent window ought to run almost
    // entirely on fast steps (which skip context rebuild, plan, and
    // compose outright). A window that never took one would prove the
    // wrong thing.
    let fast_steps = engine.fast_path_stats().fast_steps - fast_before;
    assert!(
        fast_steps >= 450,
        "measured window should be dominated by fast-path steps (got {fast_steps}/500)"
    );
    // The window really did deliver work (one token per member per step).
    assert_eq!(out.delivered.len(), 8);
    // Tracing-off means *off*: the sink threaded through the measured
    // window buffered nothing (the zero-alloc assertion above already
    // proves it allocated nothing).
    assert!(
        engine.take_trace_events().is_empty(),
        "untraced engine must record no events"
    );
}
