//! The per-request output token buffer.
//!
//! Semantics (paper §3.2): the user starts reading when the first token
//! arrives (TTFT), then attempts to consume one token every `1/r` seconds.
//! If the buffer is empty at a scheduled read the user *stalls*; when the
//! next token arrives it is consumed immediately, the accumulated waiting
//! time is charged as rebuffering, and the read cadence restarts from the
//! arrival instant.

use serde::{Deserialize, Serialize};
use tokenflow_sim::{SimDuration, SimTime};

/// Reader state of a [`TokenBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderState {
    /// No token has arrived yet; the reader has not started.
    NotStarted,
    /// Reading steadily; the next consumption fires at the stored instant.
    Reading { next_read: SimTime },
    /// The buffer ran empty at the stored instant; waiting for a token.
    Stalled { since: SimTime },
}

/// A point-in-time summary of a buffer, for schedulers and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferSnapshot {
    /// Tokens delivered so far.
    pub delivered: u64,
    /// Tokens the user has consumed so far.
    pub consumed: u64,
    /// Tokens sitting unread in the buffer.
    pub buffered: u64,
    /// Seconds of content in the buffer at the user's rate.
    pub buffered_secs: f64,
    /// Total rebuffering time experienced so far.
    pub rebuffer: SimDuration,
    /// Number of distinct stall episodes (excluding initial wait).
    pub stall_events: u32,
    /// Whether the reader is currently stalled.
    pub stalled_now: bool,
}

/// The client-side token buffer state machine.
///
/// All updates are O(1) amortised: [`TokenBuffer::advance_to`] performs the
/// arithmetic for every read event in the elapsed window at once.
///
/// # Examples
///
/// ```
/// use tokenflow_client::TokenBuffer;
/// use tokenflow_sim::SimTime;
///
/// // A reader consuming 10 tokens/second.
/// let mut buf = TokenBuffer::new(10.0);
/// buf.on_tokens(SimTime::from_secs(1), 5); // 5 tokens arrive at t=1s
/// let snap = buf.snapshot(SimTime::from_secs(1));
/// assert_eq!(snap.buffered, 4); // the first token is consumed at TTFT
/// // 300ms later three more reads have fired.
/// let snap = buf.snapshot(SimTime::from_millis(1_300));
/// assert_eq!(snap.consumed, 4);
/// ```
#[derive(Debug, Clone)]
pub struct TokenBuffer {
    /// Consumption rate in tokens/second.
    rate: f64,
    /// Read cadence in microseconds (`1e6 / rate`, at least 1).
    interval_us: u64,
    delivered: u64,
    consumed: u64,
    state: ReaderState,
    first_token_at: Option<SimTime>,
    rebuffer: SimDuration,
    stall_events: u32,
    /// Latest instant the state machine has been advanced to.
    horizon: SimTime,
}

impl TokenBuffer {
    /// Creates a buffer for a reader consuming `rate` tokens/second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "consumption rate must be positive, got {rate}"
        );
        let interval_us = ((1e6 / rate).round() as u64).max(1);
        TokenBuffer {
            rate,
            interval_us,
            delivered: 0,
            consumed: 0,
            state: ReaderState::NotStarted,
            first_token_at: None,
            rebuffer: SimDuration::ZERO,
            stall_events: 0,
            horizon: SimTime::ZERO,
        }
    }

    /// The reader's consumption rate in tokens/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The read cadence (`1/rate`) as a duration.
    pub fn read_interval(&self) -> SimDuration {
        SimDuration::from_micros(self.interval_us)
    }

    /// Time the first token arrived, if any.
    pub fn first_token_at(&self) -> Option<SimTime> {
        self.first_token_at
    }

    /// Tokens delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Advances the reader to `t`, firing every read event in the window.
    ///
    /// Calling this with a time earlier than a previous call is a no-op for
    /// the earlier portion (the machine never rewinds).
    pub fn advance_to(&mut self, t: SimTime) {
        if t <= self.horizon {
            return;
        }
        if let ReaderState::Reading { next_read } = self.state {
            let mut next = next_read;
            while next <= t {
                if self.consumed < self.delivered {
                    self.consumed += 1;
                    next += SimDuration::from_micros(self.interval_us);
                } else {
                    // Buffer empty at a scheduled read: stall until a token
                    // arrives (handled in `on_tokens`).
                    self.state = ReaderState::Stalled { since: next };
                    self.stall_events += 1;
                    self.horizon = t;
                    return;
                }
            }
            self.state = ReaderState::Reading { next_read: next };
        }
        self.horizon = t;
    }

    /// Delivers `n` tokens at time `t`.
    ///
    /// The first delivery ever starts the reader (TTFT): the first token is
    /// consumed immediately, matching the paper's "the user starts reading
    /// at `t_ttft`".
    pub fn on_tokens(&mut self, t: SimTime, n: u64) {
        self.advance_to(t);
        if n == 0 {
            return;
        }
        self.delivered += n;
        match self.state {
            ReaderState::NotStarted => {
                self.first_token_at = Some(t);
                self.consumed += 1;
                self.state = ReaderState::Reading {
                    next_read: t + SimDuration::from_micros(self.interval_us),
                };
            }
            ReaderState::Stalled { since } => {
                // The reader was waiting: consume immediately, charge the
                // waiting time as rebuffering, restart the cadence from now.
                self.rebuffer += t.saturating_since(since);
                self.consumed += 1;
                self.state = ReaderState::Reading {
                    next_read: t + SimDuration::from_micros(self.interval_us),
                };
            }
            ReaderState::Reading { .. } => {}
        }
        self.horizon = t;
    }

    /// Delivers a single token at time `t`.
    pub fn on_token(&mut self, t: SimTime) {
        self.on_tokens(t, 1);
    }

    /// Tokens currently buffered (delivered but unread) at time `t`.
    pub fn buffered(&mut self, t: SimTime) -> u64 {
        self.advance_to(t);
        self.delivered - self.consumed
    }

    /// Seconds of content buffered at the user's rate at time `t`.
    pub fn buffered_secs(&mut self, t: SimTime) -> f64 {
        self.buffered(t) as f64 / self.rate
    }

    /// Total rebuffering time accumulated by `t`, including a stall that is
    /// still in progress.
    pub fn rebuffer_time(&mut self, t: SimTime) -> SimDuration {
        self.advance_to(t);
        match self.state {
            ReaderState::Stalled { since } => self.rebuffer + t.saturating_since(since),
            _ => self.rebuffer,
        }
    }

    /// Whether the reader is stalled at time `t`.
    pub fn is_stalled(&mut self, t: SimTime) -> bool {
        self.advance_to(t);
        matches!(self.state, ReaderState::Stalled { .. })
    }

    /// Instant at which the buffer fully drains assuming no further
    /// deliveries, or `None` if the reader never started.
    pub fn drain_end(&self) -> Option<SimTime> {
        match self.state {
            ReaderState::NotStarted => None,
            ReaderState::Stalled { since } => Some(since),
            ReaderState::Reading { next_read } => {
                let remaining = self.delivered - self.consumed;
                if remaining == 0 {
                    Some(self.horizon)
                } else {
                    Some(next_read + SimDuration::from_micros((remaining - 1) * self.interval_us))
                }
            }
        }
    }

    /// Point-in-time summary at `t`.
    pub fn snapshot(&mut self, t: SimTime) -> BufferSnapshot {
        self.advance_to(t);
        let buffered = self.delivered - self.consumed;
        let stalled_now = matches!(self.state, ReaderState::Stalled { .. });
        BufferSnapshot {
            delivered: self.delivered,
            consumed: self.consumed,
            buffered,
            buffered_secs: buffered as f64 / self.rate,
            rebuffer: match self.state {
                ReaderState::Stalled { since } => self.rebuffer + t.saturating_since(since),
                _ => self.rebuffer,
            },
            stall_events: self.stall_events,
            stalled_now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn first_token_starts_reader_and_is_consumed() {
        let mut b = TokenBuffer::new(10.0);
        b.on_tokens(t(500), 1);
        assert_eq!(b.first_token_at(), Some(t(500)));
        let s = b.snapshot(t(500));
        assert_eq!(s.consumed, 1);
        assert_eq!(s.buffered, 0);
    }

    #[test]
    fn steady_consumption_matches_rate() {
        let mut b = TokenBuffer::new(10.0); // one read every 100 ms
        b.on_tokens(t(0), 100);
        // At t=0 one token is consumed; reads at 100,200,...,950 add 9 more.
        assert_eq!(b.snapshot(t(950)).consumed, 10);
        assert_eq!(b.snapshot(t(999)).consumed, 10);
        assert_eq!(b.snapshot(t(1000)).consumed, 11);
    }

    #[test]
    fn stall_charges_rebuffer_until_arrival() {
        let mut b = TokenBuffer::new(10.0);
        b.on_tokens(t(0), 2); // consumed at 0 and 100; empty at 200
        assert_eq!(b.snapshot(t(50)).buffered, 1);
        assert!(b.is_stalled(t(200)));
        // Token arrives 250 ms after the stalled read.
        b.on_tokens(t(450), 1);
        let s = b.snapshot(t(450));
        assert!(!s.stalled_now);
        assert_eq!(s.rebuffer, SimDuration::from_millis(250));
        assert_eq!(s.consumed, 3);
        assert_eq!(s.stall_events, 1);
    }

    #[test]
    fn cadence_restarts_after_stall() {
        let mut b = TokenBuffer::new(10.0);
        b.on_tokens(t(0), 1); // consumed immediately; stall at 100
        b.on_tokens(t(300), 2); // one consumed at 300, next read at 400
        assert_eq!(b.snapshot(t(399)).consumed, 2);
        assert_eq!(b.snapshot(t(400)).consumed, 3);
    }

    #[test]
    fn ongoing_stall_counts_partial_rebuffer() {
        let mut b = TokenBuffer::new(10.0);
        b.on_tokens(t(0), 1);
        // Stall begins at 100; by 700 the partial stall is 600 ms.
        assert_eq!(b.rebuffer_time(t(700)), SimDuration::from_millis(600));
        // No double counting once the token arrives.
        b.on_tokens(t(800), 1);
        assert_eq!(b.rebuffer_time(t(900)), SimDuration::from_millis(700));
    }

    #[test]
    fn consumed_never_exceeds_delivered() {
        let mut b = TokenBuffer::new(50.0);
        b.on_tokens(t(0), 3);
        b.advance_to(t(10_000));
        let s = b.snapshot(t(10_000));
        assert_eq!(s.consumed, 3);
        assert_eq!(s.buffered, 0);
    }

    #[test]
    fn burst_delivery_buffers_excess() {
        let mut b = TokenBuffer::new(10.0);
        b.on_tokens(t(0), 50);
        let s = b.snapshot(t(2_000));
        // 1 at t=0 plus 20 reads in (0, 2000].
        assert_eq!(s.consumed, 21);
        assert_eq!(s.buffered, 29);
        assert!((s.buffered_secs - 2.9).abs() < 1e-9);
    }

    #[test]
    fn multiple_stalls_counted_separately() {
        let mut b = TokenBuffer::new(10.0);
        b.on_tokens(t(0), 1); // stall at 100
        b.on_tokens(t(200), 1); // consumed at 200; stall at 300
        b.on_tokens(t(500), 1); // consumed at 500
        let s = b.snapshot(t(500));
        assert_eq!(s.stall_events, 2);
        assert_eq!(s.rebuffer, SimDuration::from_millis(300));
    }

    #[test]
    fn drain_end_accounts_for_remaining_tokens() {
        let mut b = TokenBuffer::new(10.0);
        b.on_tokens(t(0), 5);
        b.advance_to(t(50));
        // Consumed: 1 at t=0. Remaining 4 read at 100, 200, 300, 400.
        assert_eq!(b.drain_end(), Some(t(400)));
    }

    #[test]
    fn drain_end_none_before_start() {
        let b = TokenBuffer::new(10.0);
        assert_eq!(b.drain_end(), None);
    }

    #[test]
    fn advance_is_idempotent_and_monotonic() {
        let mut b = TokenBuffer::new(25.0);
        b.on_tokens(t(0), 100);
        b.advance_to(t(1_000));
        let s1 = b.snapshot(t(1_000));
        b.advance_to(t(400)); // going backwards must not change anything
        let s2 = b.snapshot(t(1_000));
        assert_eq!(s1, s2);
    }

    #[test]
    fn very_fast_reader_tracks_deliveries() {
        let mut b = TokenBuffer::new(1_000_000.0); // 1 token per microsecond
        b.on_tokens(t(0), 10);
        assert_eq!(b.snapshot(SimTime::from_micros(9)).consumed, 10);
    }

    #[test]
    #[should_panic(expected = "consumption rate must be positive")]
    fn zero_rate_rejected() {
        let _ = TokenBuffer::new(0.0);
    }

    #[test]
    fn zero_token_delivery_is_noop() {
        let mut b = TokenBuffer::new(10.0);
        b.on_tokens(t(100), 0);
        assert_eq!(b.first_token_at(), None);
        assert_eq!(b.snapshot(t(100)).delivered, 0);
    }
}
