//! Client-side consumption model: token buffers, reading rates, stalls.
//!
//! The paper's central analogy is between LLM text streaming and video
//! streaming: generated-but-unread tokens sit in a per-request *output
//! buffer*, the user drains it at their reading/listening rate, and an empty
//! buffer at read time is a *stall* (rebuffering). This crate implements
//! that model exactly:
//!
//! * [`TokenBuffer`] — an O(1)-per-event state machine tracking delivered,
//!   consumed, and buffered tokens, stall episodes, and accumulated
//!   rebuffer time (the `Rebuffer_i` term of the QoS metric, Eq. 2).
//! * [`rates`] — the Figure 1 consumption-rate data (reading and listening
//!   speeds by age group and language).

// audit: tier(deterministic)
#![forbid(unsafe_code)]

pub mod buffer;
pub mod rates;

pub use buffer::{BufferSnapshot, TokenBuffer};
pub use rates::{AgeGroup, ConsumptionMode, Language};
