//! Token consumption rates by age group, language, and mode (Figure 1).
//!
//! The paper derives these from NIH reading-speed measurements combined with
//! OpenAI's published tokens-per-word statistics. We encode the figure's
//! data: reading peaks around 6–7.5 tokens/s for young adults and falls off
//! for children and seniors; listening sits near natural speech rate
//! (~150 wpm) and varies much less with age. Chinese text tokenises into
//! more tokens per unit of meaning, so its token rates run higher; Japanese
//! runs slightly below English for reading.

use serde::{Deserialize, Serialize};

/// Reader/listener age brackets used in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgeGroup {
    /// Under 12.
    Under12,
    /// 12–13.
    From12To13,
    /// 14–15.
    From14To15,
    /// 16–17.
    From16To17,
    /// 18–25.
    From18To25,
    /// 26–45.
    From26To45,
    /// 46–60.
    From46To60,
    /// Over 60.
    Over60,
}

impl AgeGroup {
    /// All groups in figure order.
    pub const ALL: [AgeGroup; 8] = [
        AgeGroup::Under12,
        AgeGroup::From12To13,
        AgeGroup::From14To15,
        AgeGroup::From16To17,
        AgeGroup::From18To25,
        AgeGroup::From26To45,
        AgeGroup::From46To60,
        AgeGroup::Over60,
    ];

    /// Figure label, e.g. `"18-25"`.
    pub fn label(self) -> &'static str {
        match self {
            AgeGroup::Under12 => "12-",
            AgeGroup::From12To13 => "12-13",
            AgeGroup::From14To15 => "14-15",
            AgeGroup::From16To17 => "16-17",
            AgeGroup::From18To25 => "18-25",
            AgeGroup::From26To45 => "26-45",
            AgeGroup::From46To60 => "46-60",
            AgeGroup::Over60 => "60+",
        }
    }

    fn index(self) -> usize {
        match self {
            AgeGroup::Under12 => 0,
            AgeGroup::From12To13 => 1,
            AgeGroup::From14To15 => 2,
            AgeGroup::From16To17 => 3,
            AgeGroup::From18To25 => 4,
            AgeGroup::From26To45 => 5,
            AgeGroup::From46To60 => 6,
            AgeGroup::Over60 => 7,
        }
    }
}

/// Languages covered by Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Language {
    /// English.
    English,
    /// Chinese.
    Chinese,
    /// Japanese.
    Japanese,
}

impl Language {
    /// All languages in figure order.
    pub const ALL: [Language; 3] = [Language::English, Language::Chinese, Language::Japanese];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Language::English => "English",
            Language::Chinese => "Chinese",
            Language::Japanese => "Japanese",
        }
    }
}

/// How the user consumes tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConsumptionMode {
    /// Reading on screen.
    Reading,
    /// Listening to synthesised speech (e.g. voice assistants, captioning).
    Listening,
}

// Rows: English, Chinese, Japanese. Columns: the eight age groups.
const READING: [[f64; 8]; 3] = [
    [2.9, 3.8, 4.5, 5.2, 6.5, 6.2, 5.0, 3.9],
    [3.3, 4.4, 5.2, 6.0, 7.5, 7.1, 5.8, 4.5],
    [2.6, 3.4, 4.1, 4.7, 5.9, 5.6, 4.5, 3.5],
];

const LISTENING: [[f64; 8]; 3] = [
    [2.8, 3.0, 3.2, 3.3, 3.4, 3.3, 3.1, 2.8],
    [3.3, 3.6, 3.8, 4.0, 4.1, 4.0, 3.7, 3.4],
    [3.0, 3.3, 3.5, 3.6, 3.7, 3.6, 3.4, 3.1],
];

/// Token consumption rate in tokens/second for the given demographic.
pub fn consumption_rate(mode: ConsumptionMode, language: Language, age: AgeGroup) -> f64 {
    let table = match mode {
        ConsumptionMode::Reading => &READING,
        ConsumptionMode::Listening => &LISTENING,
    };
    let row = match language {
        Language::English => 0,
        Language::Chinese => 1,
        Language::Japanese => 2,
    };
    table[row][age.index()]
}

/// Mean adult (18–45) English reading rate; the paper's reference "average
/// reading speed".
pub fn average_reading_rate() -> f64 {
    let a = consumption_rate(
        ConsumptionMode::Reading,
        Language::English,
        AgeGroup::From18To25,
    );
    let b = consumption_rate(
        ConsumptionMode::Reading,
        Language::English,
        AgeGroup::From26To45,
    );
    (a + b) / 2.0
}

/// The empirical fluency threshold: generation below 12 tokens/s is
/// perceived as interrupted reading (§2.2).
pub const READING_FLUENCY_THRESHOLD: f64 = 12.0;

/// The empirical engagement threshold: first-token delays beyond 1.3 s hurt
/// engagement (§2.2).
pub const TTFT_TOLERANCE_SECS: f64 = 1.3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_rates_positive_and_below_fluency_threshold() {
        for mode in [ConsumptionMode::Reading, ConsumptionMode::Listening] {
            for lang in Language::ALL {
                for age in AgeGroup::ALL {
                    let r = consumption_rate(mode, lang, age);
                    assert!(r > 0.0 && r < READING_FLUENCY_THRESHOLD);
                }
            }
        }
    }

    #[test]
    fn young_adults_read_fastest() {
        for lang in Language::ALL {
            let peak = consumption_rate(ConsumptionMode::Reading, lang, AgeGroup::From18To25);
            for age in AgeGroup::ALL {
                assert!(consumption_rate(ConsumptionMode::Reading, lang, age) <= peak);
            }
        }
    }

    #[test]
    fn reading_varies_more_than_listening() {
        let spread = |mode| {
            Language::ALL
                .iter()
                .flat_map(|&l| {
                    AgeGroup::ALL
                        .iter()
                        .map(move |&a| consumption_rate(mode, l, a))
                })
                .fold((f64::MAX, f64::MIN), |(lo, hi), r| (lo.min(r), hi.max(r)))
        };
        let (rlo, rhi) = spread(ConsumptionMode::Reading);
        let (llo, lhi) = spread(ConsumptionMode::Listening);
        assert!((rhi - rlo) > (lhi - llo));
    }

    #[test]
    fn chinese_token_rates_run_higher() {
        for age in AgeGroup::ALL {
            let en = consumption_rate(ConsumptionMode::Reading, Language::English, age);
            let zh = consumption_rate(ConsumptionMode::Reading, Language::Chinese, age);
            assert!(zh > en);
        }
    }

    #[test]
    fn average_reading_rate_is_adult_mean() {
        let avg = average_reading_rate();
        assert!((6.0..7.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn labels_match_figure() {
        assert_eq!(AgeGroup::Under12.label(), "12-");
        assert_eq!(AgeGroup::Over60.label(), "60+");
        assert_eq!(Language::Chinese.label(), "Chinese");
    }
}
