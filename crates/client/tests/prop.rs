//! Property tests: the token buffer's conservation and stall accounting
//! hold for arbitrary delivery patterns.

use proptest::prelude::*;
use tokenflow_client::TokenBuffer;
use tokenflow_sim::SimTime;

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, ..ProptestConfig::default() })]

    #[test]
    fn conservation_and_monotonicity(
        rate in 0.5f64..200.0,
        deliveries in prop::collection::vec((0u64..60_000, 1u64..8), 1..60),
    ) {
        let mut buf = TokenBuffer::new(rate);
        let mut deliveries = deliveries;
        deliveries.sort_by_key(|&(t, _)| t);
        let mut delivered = 0u64;
        let mut last_consumed = 0u64;
        let mut last_rebuffer = 0.0f64;
        for (ms, n) in deliveries {
            let t = SimTime::from_millis(ms);
            buf.on_tokens(t, n);
            delivered += n;
            let snap = buf.snapshot(t);
            // Conservation: delivered = consumed + buffered.
            prop_assert_eq!(snap.delivered, delivered);
            prop_assert_eq!(snap.consumed + snap.buffered, delivered);
            // Monotone consumption and rebuffering.
            prop_assert!(snap.consumed >= last_consumed);
            prop_assert!(snap.rebuffer.as_secs_f64() + 1e-12 >= last_rebuffer);
            last_consumed = snap.consumed;
            last_rebuffer = snap.rebuffer.as_secs_f64();
        }
        // Far in the future everything has been consumed.
        let end = SimTime::from_secs(1_000_000);
        let snap = buf.snapshot(end);
        prop_assert_eq!(snap.consumed, delivered);
        prop_assert_eq!(snap.buffered, 0);
    }

    #[test]
    fn steady_supply_never_stalls(rate in 1.0f64..100.0, n in 10u64..300) {
        // Deliver faster than consumption: no stall may ever be charged.
        let mut buf = TokenBuffer::new(rate);
        let interval_us = (1e6 / rate / 2.0) as u64; // 2× the read rate
        for i in 0..n {
            buf.on_token(SimTime::from_micros(i * interval_us.max(1)));
        }
        let end = SimTime::from_micros(n * interval_us.max(1));
        prop_assert_eq!(buf.snapshot(end).stall_events, 0);
        prop_assert_eq!(buf.rebuffer_time(end), tokenflow_sim::SimDuration::ZERO);
    }

    #[test]
    fn rebuffer_matches_supply_gap(gap_ms in 100u64..60_000) {
        // One token at t=0, the next after a known gap: the stall equals
        // the gap minus one read interval.
        let rate = 10.0;
        let mut buf = TokenBuffer::new(rate);
        buf.on_token(SimTime::ZERO);
        let arrival = SimTime::from_millis(gap_ms);
        buf.on_token(arrival);
        let expected_stall_ms = gap_ms.saturating_sub(100); // read due at 100 ms
        let measured = buf.rebuffer_time(arrival).as_micros() / 1_000;
        prop_assert_eq!(measured, expected_stall_ms);
    }
}
