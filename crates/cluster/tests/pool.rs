//! The persistent pool's contract, enforced: byte-identity under extreme
//! replica skew, observable worker reuse, barrier batching invariance,
//! and panic-payload survival through both parallel strategies.

use std::panic::{self, AssertUnwindSafe};

use tokenflow_cluster::{
    run_cluster_with, ClusterEngine, ClusterOutcome, Execution, RoundRobinRouter,
};
use tokenflow_core::EngineConfig;
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::{FcfsScheduler, SchedContext, SchedPlan, Scheduler, TokenFlowScheduler};
use tokenflow_sim::{RequestId, SimTime};
use tokenflow_workload::{RequestSpec, Workload};

fn config() -> EngineConfig {
    EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090()).with_max_batch(16)
}

/// The merged report through the executor-invariance lens: the
/// executor-mechanics runtime counters (epochs, barrier batching, pool
/// stats) are the one intentionally executor-visible surface — every
/// other byte must match.
fn invariant_merged(o: &ClusterOutcome) -> tokenflow_metrics::RunReport {
    let mut merged = o.merged.clone();
    merged.runtime = merged.runtime.invariant();
    merged
}

fn assert_byte_identical(a: &ClusterOutcome, b: &ClusterOutcome, label: &str) {
    assert_eq!(a.assignments, b.assignments, "{label}: assignments differ");
    let (am, bm) = (invariant_merged(a), invariant_merged(b));
    assert_eq!(am, bm, "{label}: merged reports differ");
    assert_eq!(
        format!("{am:?}"),
        format!("{bm:?}"),
        "{label}: merged report serialization differs"
    );
    assert_eq!(a.complete, b.complete, "{label}: completion differs");
    for (i, (x, y)) in a.replicas.iter().zip(&b.replicas).enumerate() {
        assert_eq!(x.records, y.records, "{label}: replica {i} records differ");
        assert_eq!(
            format!("{:?}", x.records),
            format!("{:?}", y.records),
            "{label}: replica {i} record serialization differs"
        );
        assert_eq!(
            x.iterations, y.iterations,
            "{label}: replica {i} iteration counts differ"
        );
    }
}

/// Round-robin over `replicas` replicas with every request that lands on
/// replica 0 carrying a ~100x heavier decode than the rest: the worst
/// case for the legacy contiguous-slice split, where the slice holding
/// replica 0 serializes behind it while other workers idle.
fn skewed_workload(replicas: usize, rounds: usize) -> Workload {
    let mut specs = Vec::new();
    for i in 0..replicas * rounds {
        let heavy = i % replicas == 0;
        specs.push(RequestSpec {
            id: RequestId(i as u64),
            // Distinct arrival instants: every request is its own
            // barrier, so the run crosses many epochs.
            arrival: SimTime::from_millis(40 * i as u64),
            prompt_tokens: 64,
            output_tokens: if heavy { 300 } else { 3 },
            rate: 25.0,
        });
    }
    Workload::new(specs)
}

/// One request per second over a wide fleet: every arrival finds the
/// whole fleet drained, the regime where barrier batching engages.
fn trickle_workload(requests: usize) -> Workload {
    let specs = (0..requests)
        .map(|i| RequestSpec {
            id: RequestId(i as u64),
            arrival: SimTime::from_secs(i as u64),
            prompt_tokens: 48,
            output_tokens: 8,
            rate: 30.0,
        })
        .collect();
    Workload::new(specs)
}

#[test]
fn skewed_replicas_are_byte_identical_across_all_strategies() {
    let workload = skewed_workload(4, 20);
    let run = |execution| {
        run_cluster_with(
            config(),
            4,
            RoundRobinRouter::new(),
            || Box::new(TokenFlowScheduler::new()),
            &workload,
            execution,
        )
    };
    let sequential = run(Execution::Sequential);
    let scoped = run(Execution::scoped_per_epoch(3));
    let pooled = run(Execution::parallel(3));
    assert_byte_identical(&sequential, &scoped, "skew: sequential vs scoped");
    assert_byte_identical(&sequential, &pooled, "skew: sequential vs pooled");
    assert!(sequential.complete, "skewed run must complete");
}

#[test]
fn pool_is_reused_across_epochs_not_respawned() {
    let workload = skewed_workload(4, 20);
    let mut cluster = ClusterEngine::new(config(), 4, RoundRobinRouter::new(), || {
        Box::new(TokenFlowScheduler::new())
    })
    .with_execution(Execution::parallel(3));
    cluster.submit_workload(&workload);
    assert!(cluster.run_to_completion());
    let stats = cluster.executor_stats();
    // Parallel(3) = coordinator + 2 spawned threads, created exactly
    // once; every epoch with busy replicas fed the same pool.
    assert_eq!(stats.pool_workers, 2, "pool spawn count");
    assert!(
        stats.pool_submissions > 10,
        "many epochs should reuse the pool (got {} submissions)",
        stats.pool_submissions
    );
    assert!(
        stats.pool_submissions <= stats.epochs,
        "at most one batch per epoch"
    );
}

#[test]
fn trickle_batches_barriers_and_stays_byte_identical() {
    let workload = trickle_workload(24);
    let sequential = run_cluster_with(
        config(),
        8,
        RoundRobinRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        &workload,
        Execution::Sequential,
    );
    let mut cluster = ClusterEngine::new(config(), 8, RoundRobinRouter::new(), || {
        Box::new(TokenFlowScheduler::new())
    })
    .with_execution(Execution::parallel(2));
    cluster.submit_workload(&workload);
    assert!(cluster.run_to_completion());
    let stats = cluster.executor_stats();
    let pooled = cluster.into_outcome();
    assert_byte_identical(&sequential, &pooled, "trickle: sequential vs pooled");
    // Each arrival finds the fleet drained and rotation picks a fresh
    // quiescent replica, so almost every barrier after the first should
    // coalesce into a running epoch.
    assert!(
        stats.batched_barriers >= workload.len() as u64 / 2,
        "drained-fleet trickle should batch most barriers (got {} of {})",
        stats.batched_barriers,
        workload.len()
    );
    assert!(
        stats.epochs < workload.len() as u64,
        "batching must save whole epochs ({} epochs for {} arrivals)",
        stats.epochs,
        workload.len()
    );
}

/// A scheduler that works normally for a fixed number of planning calls,
/// then fails the way a real invariant assertion would.
struct PanicAfter {
    inner: FcfsScheduler,
    remaining: u32,
}

impl Scheduler for PanicAfter {
    fn name(&self) -> &'static str {
        "panic-after"
    }

    fn plan(&mut self, ctx: &SchedContext) -> SchedPlan {
        assert!(
            self.remaining > 0,
            "replica scheduler invariant violated: kv accounting drifted"
        );
        self.remaining -= 1;
        self.inner.plan(ctx)
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&'static str>().copied())
        .unwrap_or("<non-string payload>")
}

fn run_panicking(execution: Execution) -> String {
    let workload = skewed_workload(4, 6);
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        run_cluster_with(
            config(),
            4,
            RoundRobinRouter::new(),
            || {
                Box::new(PanicAfter {
                    inner: FcfsScheduler::new(),
                    remaining: 5,
                })
            },
            &workload,
            execution,
        )
    }));
    let payload = result.expect_err("a panicking scheduler must fail the run");
    panic_message(payload.as_ref()).to_string()
}

#[test]
fn scheduler_panic_message_survives_the_pool() {
    let message = run_panicking(Execution::parallel(3));
    assert!(
        message.contains("kv accounting drifted"),
        "pooled execution must re-raise the original payload, got: {message}"
    );
}

#[test]
fn scheduler_panic_message_survives_scoped_threads() {
    let message = run_panicking(Execution::scoped_per_epoch(3));
    assert!(
        message.contains("kv accounting drifted"),
        "scoped execution must re-raise the original payload, got: {message}"
    );
}
