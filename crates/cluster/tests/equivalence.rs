//! Executor equivalence: the arrival-barrier epoch contract, enforced.
//!
//! The cluster's determinism argument is that replicas never observe each
//! other between router dispatch points, so *where* their epoch work runs
//! (coordinator thread vs scoped workers) cannot change any result. These
//! tests hold every shipped router to the strongest version of that
//! claim: byte-identical merged reports, per-replica records, and
//! assignments between [`Execution::Sequential`] and
//! [`Execution::Parallel`] — equality under `PartialEq` *and* equality of
//! the full `Debug` serialization, so even a single differing bit in an
//! `f64` fails the suite.

use tokenflow_cluster::{
    run_cluster_with, BacklogAwareRouter, ClusterOutcome, Execution, LeastLoadedRouter,
    RateAwareRouter, RoundRobinRouter, Router,
};
use tokenflow_core::EngineConfig;
use tokenflow_metrics::RunReport;
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::{FcfsScheduler, Scheduler, TokenFlowScheduler};
use tokenflow_workload::{ControlledSetup, RateDist, Workload};

/// The merged report through the executor-invariance lens: the
/// executor-mechanics runtime counters (epochs, barrier batching, pool
/// stats) are the one intentionally executor-visible surface — every
/// other byte must match.
fn invariant_merged(o: &ClusterOutcome) -> RunReport {
    let mut merged = o.merged.clone();
    merged.runtime = merged.runtime.invariant();
    merged
}

const ROUTERS: [&str; 4] = ["round-robin", "least-loaded", "backlog-aware", "rate-aware"];

fn router(which: &str) -> Box<dyn Router> {
    match which {
        "round-robin" => Box::new(RoundRobinRouter::new()),
        "least-loaded" => Box::new(LeastLoadedRouter::new()),
        "backlog-aware" => Box::new(BacklogAwareRouter::new()),
        _ => Box::new(RateAwareRouter::new()),
    }
}

fn config() -> EngineConfig {
    EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090()).with_max_batch(16)
}

/// The paper's flash-crowd burst with heterogeneous streaming rates —
/// the workload the acceptance contract names.
fn burst_workload() -> Workload {
    ControlledSetup::rtx4090_a()
        .generator(RateDist::Uniform { lo: 6.0, hi: 30.0 })
        .generate(42)
}

/// Staggered Poisson arrivals: many distinct barrier times, so the epoch
/// slicing itself (not just the single-barrier drain) is exercised.
fn staggered_workload() -> Workload {
    ControlledSetup::rtx4090_c()
        .generator(RateDist::Uniform { lo: 8.0, hi: 25.0 })
        .generate(7)
}

fn assert_byte_identical(a: &ClusterOutcome, b: &ClusterOutcome, label: &str) {
    assert_eq!(a.assignments, b.assignments, "{label}: assignments differ");
    let (am, bm) = (invariant_merged(a), invariant_merged(b));
    assert_eq!(am, bm, "{label}: merged reports differ");
    assert_eq!(
        format!("{am:?}"),
        format!("{bm:?}"),
        "{label}: merged report serialization differs"
    );
    assert_eq!(a.complete, b.complete, "{label}: completion differs");
    assert_eq!(
        a.replicas.len(),
        b.replicas.len(),
        "{label}: replica count differs"
    );
    for (i, (x, y)) in a.replicas.iter().zip(&b.replicas).enumerate() {
        assert_eq!(x.records, y.records, "{label}: replica {i} records differ");
        assert_eq!(
            format!("{:?}", x.records),
            format!("{:?}", y.records),
            "{label}: replica {i} record serialization differs"
        );
        assert_eq!(
            x.iterations, y.iterations,
            "{label}: replica {i} iteration counts differ"
        );
        assert_eq!(x.report, y.report, "{label}: replica {i} reports differ");
    }
}

fn run(
    workload: &Workload,
    replicas: usize,
    which: &str,
    scheduler: fn() -> Box<dyn Scheduler>,
    execution: Execution,
) -> ClusterOutcome {
    run_cluster_with(
        config(),
        replicas,
        router(which),
        scheduler,
        workload,
        execution,
    )
}

#[test]
fn every_router_is_executor_invariant_on_the_burst() {
    let w = burst_workload();
    for which in ROUTERS {
        let sequential = run(&w, 4, which, || Box::new(TokenFlowScheduler::new()), {
            Execution::Sequential
        });
        assert!(sequential.complete, "{which}: sequential run incomplete");
        for threads in [2usize, 3, 8] {
            let parallel = run(
                &w,
                4,
                which,
                || Box::new(TokenFlowScheduler::new()),
                Execution::parallel(threads),
            );
            assert_byte_identical(
                &sequential,
                &parallel,
                &format!("{which} vs parallel({threads})"),
            );
        }
    }
}

#[test]
fn every_router_is_executor_invariant_on_staggered_arrivals() {
    let w = staggered_workload();
    for which in ROUTERS {
        let sequential = run(
            &w,
            3,
            which,
            || Box::new(FcfsScheduler::new()),
            Execution::Sequential,
        );
        let parallel = run(
            &w,
            3,
            which,
            || Box::new(FcfsScheduler::new()),
            Execution::parallel(3),
        );
        assert_byte_identical(&sequential, &parallel, which);
    }
}

#[test]
fn auto_parallelism_is_executor_invariant() {
    let w = burst_workload();
    let sequential = run(
        &w,
        8,
        "least-loaded",
        || Box::new(TokenFlowScheduler::new()),
        Execution::Sequential,
    );
    let parallel = run(
        &w,
        8,
        "least-loaded",
        || Box::new(TokenFlowScheduler::new()),
        Execution::parallel_auto(),
    );
    assert_byte_identical(&sequential, &parallel, "parallel_auto");
}

#[test]
fn more_workers_than_replicas_is_executor_invariant() {
    let w = burst_workload();
    let sequential = run(
        &w,
        2,
        "rate-aware",
        || Box::new(TokenFlowScheduler::new()),
        Execution::Sequential,
    );
    let parallel = run(
        &w,
        2,
        "rate-aware",
        || Box::new(TokenFlowScheduler::new()),
        Execution::parallel(16),
    );
    assert_byte_identical(&sequential, &parallel, "over-provisioned workers");
}
