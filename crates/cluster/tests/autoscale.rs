//! Elastic-cluster contracts: executor invariance of every shipped
//! scale policy, and the lifecycle rules routers must never break.
//!
//! The control plane runs only at arrival barriers, where replica state
//! is already pinned byte-for-byte by the epoch contract — so scale
//! decisions, event logs, fleet timelines, and final reports must be
//! identical under [`Execution::Sequential`] and
//! [`Execution::Parallel`]. These tests hold every shipped
//! [`ScalePolicy`] to that, and pin the two lifecycle regressions that
//! matter most: a draining replica never receives a dispatch, and a
//! provisioning replica receives nothing before its boot delay elapses.

use tokenflow_cluster::{
    run_autoscaled, run_autoscaled_faulty, ClusterOutcome, Execution, LeastLoadedRouter,
};
use tokenflow_control::{
    ControlConfig, PredictivePolicy, ReactivePolicy, ScaleEventKind, ScalePolicy, ScriptedPolicy,
};
use tokenflow_core::EngineConfig;
use tokenflow_fault::{CrashFault, FaultPlan};
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::TokenFlowScheduler;
use tokenflow_sim::{RequestId, SimDuration, SimTime};
use tokenflow_workload::{diurnal_flash_crowd, RateDist, RequestSpec, Workload};

fn config() -> EngineConfig {
    EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090()).with_max_batch(16)
}

fn control(gamma: f64) -> ControlConfig {
    ControlConfig::for_engine(&config())
        .with_gamma(gamma)
        .with_min_replicas(1)
        .with_max_replicas(6)
        .with_boot_delay(SimDuration::from_secs(2))
        .with_cooldown(SimDuration::ZERO)
}

/// A small diurnal trace with a flash crowd landing mid-run — the
/// workload the control plane exists for.
fn stress_workload() -> Workload {
    diurnal_flash_crowd(
        1.5,
        SimDuration::from_secs(120),
        30,
        SimTime::from_secs(30),
        RateDist::Uniform { lo: 8.0, hi: 24.0 },
        42,
    )
}

fn policy(which: &str) -> Box<dyn ScalePolicy> {
    match which {
        "reactive" => Box::new(ReactivePolicy::new()),
        "predictive-ewma" => Box::new(PredictivePolicy::with_tau(20.0)),
        _ => Box::new(ScriptedPolicy::new(vec![
            (SimTime::ZERO, 2),
            (SimTime::from_secs(30), 5),
            (SimTime::from_secs(80), 1),
        ])),
    }
}

const POLICIES: [&str; 3] = ["reactive", "predictive-ewma", "scripted"];

fn run(w: &Workload, which: &str, execution: Execution) -> ClusterOutcome {
    run_autoscaled(
        config(),
        2,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        policy(which),
        control(300.0),
        w,
        execution,
    )
}

/// The merged report through the executor-invariance lens: the
/// executor-mechanics runtime counters (epochs, barrier batching, pool
/// stats) are the one intentionally executor-visible surface — every
/// other byte must match.
fn invariant_merged(o: &ClusterOutcome) -> tokenflow_metrics::RunReport {
    let mut merged = o.merged.clone();
    merged.runtime = merged.runtime.invariant();
    merged
}

fn assert_byte_identical(a: &ClusterOutcome, b: &ClusterOutcome, label: &str) {
    assert_eq!(a.assignments, b.assignments, "{label}: assignments differ");
    assert_eq!(a.scale_events, b.scale_events, "{label}: scale logs differ");
    assert_eq!(a.fleet, b.fleet, "{label}: fleet stats differ");
    let (am, bm) = (invariant_merged(a), invariant_merged(b));
    assert_eq!(am, bm, "{label}: merged reports differ");
    assert_eq!(
        format!("{:?}{:?}{:?}", am, a.scale_events, a.fleet),
        format!("{:?}{:?}{:?}", bm, b.scale_events, b.fleet),
        "{label}: serialization differs"
    );
    assert_eq!(a.complete, b.complete, "{label}: completion differs");
    assert_eq!(
        a.replicas.len(),
        b.replicas.len(),
        "{label}: fleet size differs"
    );
    for (i, (x, y)) in a.replicas.iter().zip(&b.replicas).enumerate() {
        assert_eq!(x.records, y.records, "{label}: replica {i} records differ");
        assert_eq!(
            x.iterations, y.iterations,
            "{label}: replica {i} iteration counts differ"
        );
    }
}

#[test]
fn every_policy_is_executor_invariant_on_the_stress_trace() {
    let w = stress_workload();
    for which in POLICIES {
        let sequential = run(&w, which, Execution::Sequential);
        assert!(sequential.complete, "{which}: sequential run incomplete");
        assert_eq!(sequential.merged.submitted, w.len());
        for threads in [2usize, 3] {
            let parallel = run(&w, which, Execution::parallel(threads));
            assert_byte_identical(
                &sequential,
                &parallel,
                &format!("{which} vs parallel({threads})"),
            );
        }
    }
}

#[test]
fn reactive_policy_grows_the_fleet_under_the_crowd_and_shrinks_after() {
    let w = stress_workload();
    let out = run(&w, "reactive", Execution::Sequential);
    assert!(out.complete);
    assert_eq!(out.policy.as_deref(), Some("reactive"));
    let fleet = out.fleet.as_ref().expect("elastic run carries fleet stats");
    assert!(
        fleet.peak_active > 2,
        "crowd never grew the fleet: peak {}",
        fleet.peak_active
    );
    assert!(
        fleet.provisioned > 2,
        "no replica was provisioned beyond bootstrap"
    );
    assert!(
        fleet.retired > 0,
        "no replica was retired after the crowd passed"
    );
    // The bill matches the merged report and undercuts peak × duration.
    assert_eq!(out.merged.replica_seconds, fleet.replica_seconds);
    let peak_cost = fleet.peak_active as f64 * out.merged.duration.as_secs_f64();
    assert!(
        fleet.replica_seconds < peak_cost,
        "bill {} should undercut peak-sized static cost {peak_cost}",
        fleet.replica_seconds
    );
}

#[test]
fn draining_replica_never_receives_a_dispatch() {
    // Three bootstrap replicas; the script drains down to one at t=10 s
    // while arrivals keep coming afterwards.
    let mut specs: Vec<RequestSpec> = (0..9)
        .map(|i| RequestSpec {
            id: RequestId(0),
            arrival: SimTime::from_millis(i * 200),
            prompt_tokens: 128,
            output_tokens: 64,
            rate: 20.0,
        })
        .collect();
    specs.extend((0..8).map(|i| RequestSpec {
        id: RequestId(0),
        arrival: SimTime::from_secs(12 + i),
        prompt_tokens: 128,
        output_tokens: 64,
        rate: 20.0,
    }));
    let w = Workload::new(specs);
    let out = run_autoscaled(
        config(),
        3,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        ScriptedPolicy::new(vec![(SimTime::from_secs(10), 1)]),
        control(300.0).with_min_replicas(1).with_max_replicas(3),
        &w,
        Execution::Sequential,
    );
    assert!(out.complete);
    // The script never scales back up, so a drained replica stays out of
    // the active set forever: collect the drain instants per replica.
    let drains: Vec<(usize, SimTime)> = out
        .scale_events
        .iter()
        .filter(|e| e.kind == ScaleEventKind::DrainStarted)
        .map(|e| (e.replica, e.at))
        .collect();
    assert_eq!(drains.len(), 2, "script should drain two of three");
    for (spec, assignment) in w.iter().zip(&out.assignments) {
        for &(replica, at) in &drains {
            assert!(
                assignment.replica != replica || spec.arrival < at,
                "request arriving at {:?} was dispatched to replica {replica}, \
                 which started draining at {at:?}",
                spec.arrival
            );
        }
    }
    // Both drained replicas eventually retire, and their residents all
    // finished (the run is complete).
    let retired = out
        .scale_events
        .iter()
        .filter(|e| e.kind == ScaleEventKind::Retired)
        .count();
    assert_eq!(retired, 2);
    assert_eq!(out.merged.completed, w.len());
}

#[test]
fn provisioning_replica_receives_nothing_before_its_boot_delay() {
    // One bootstrap replica; the script wants three from t=0, with a 5 s
    // boot delay. Arrivals run from t=0 through t=9 s.
    let specs: Vec<RequestSpec> = (0..20)
        .map(|i| RequestSpec {
            id: RequestId(0),
            arrival: SimTime::from_millis(i * 450),
            prompt_tokens: 128,
            output_tokens: 64,
            rate: 20.0,
        })
        .collect();
    let w = Workload::new(specs);
    let boot = SimDuration::from_secs(5);
    let out = run_autoscaled(
        config(),
        1,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        ScriptedPolicy::new(vec![(SimTime::ZERO, 3)]),
        control(300.0).with_max_replicas(3).with_boot_delay(boot),
        &w,
        Execution::Sequential,
    );
    assert!(out.complete);
    let ready = SimTime::ZERO + boot;
    for (spec, assignment) in w.iter().zip(&out.assignments) {
        if assignment.replica > 0 {
            assert!(
                spec.arrival >= ready,
                "request arriving at {:?} was dispatched to replica {} before \
                 its boot completed at {ready:?}",
                spec.arrival,
                assignment.replica
            );
        }
    }
    // The late replicas did activate and serve.
    assert!(out.assignments.iter().any(|a| a.replica > 0));
    let activated = out
        .scale_events
        .iter()
        .filter(|e| e.kind == ScaleEventKind::Activated)
        .count();
    assert_eq!(activated, 2);
}

#[test]
fn post_deadline_arrivals_do_not_inflate_the_bill() {
    // A post-deadline arrival is still routed (conservation), but the
    // control plane must not bill the fleet across instants the frozen
    // engines can never reach: the bill stays bounded by the fleet
    // ceiling times the run's actual timespan.
    let mut cfg = config();
    cfg.deadline = SimDuration::from_secs(10);
    let mut specs: Vec<RequestSpec> = (0..3)
        .map(|_| RequestSpec {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            prompt_tokens: 64,
            output_tokens: 20,
            rate: 20.0,
        })
        .collect();
    specs.push(RequestSpec {
        id: RequestId(0),
        arrival: SimTime::from_secs(100),
        prompt_tokens: 64,
        output_tokens: 20,
        rate: 20.0,
    });
    let out = run_autoscaled(
        cfg,
        2,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        ReactivePolicy::new(),
        control(300.0).with_min_replicas(2).with_max_replicas(4),
        &Workload::new(specs),
        Execution::Sequential,
    );
    assert!(!out.complete);
    assert_eq!(out.assignments.len(), 4);
    let dur = out.merged.duration.as_secs_f64();
    assert!(
        out.merged.replica_seconds <= 4.0 * dur + 1e-9,
        "bill {} exceeds ceiling x duration {}",
        out.merged.replica_seconds,
        4.0 * dur
    );
}

#[test]
fn control_tick_retires_idle_drain_within_one_tick() {
    // One burst at t=0 and nothing after: the only *real* arrival
    // barrier is t=0. The script drains replica 1 there (it never
    // receives a dispatch, so it is empty immediately), and the
    // residents of replica 0 stream for ~10 s. Without the periodic
    // control tick the plane is blind for that whole drain — the empty
    // replica is only retired (and stops billing) at the run's terminal
    // barrier. With a 1 s tick it must retire within one tick of the
    // drain decision.
    let specs: Vec<RequestSpec> = (0..4)
        .map(|_| RequestSpec {
            id: RequestId(0),
            arrival: SimTime::ZERO,
            prompt_tokens: 64,
            output_tokens: 128,
            rate: 12.0,
        })
        .collect();
    let w = Workload::new(specs);
    let tick = SimDuration::from_secs(1);
    let run_with = |control: ControlConfig, execution: Execution| {
        run_autoscaled(
            config(),
            2,
            LeastLoadedRouter::new(),
            || Box::new(TokenFlowScheduler::new()),
            ScriptedPolicy::new(vec![(SimTime::ZERO, 1)]),
            control,
            &w,
            execution,
        )
    };
    let base = control(300.0).with_min_replicas(1).with_max_replicas(2);
    let ticked = run_with(base.clone().with_control_tick(tick), Execution::Sequential);
    let blind = run_with(base, Execution::Sequential);
    assert!(ticked.complete && blind.complete);

    let retired_at = |out: &ClusterOutcome| -> SimTime {
        out.scale_events
            .iter()
            .find(|e| e.kind == ScaleEventKind::Retired && e.replica == 1)
            .expect("replica 1 must retire")
            .at
    };
    // Ticked: retired within one tick of the t=0 drain decision.
    assert!(
        retired_at(&ticked) <= SimTime::ZERO + tick,
        "tick left the drain unretired until {:?}",
        retired_at(&ticked)
    );
    // Blind: the same retirement only happens at the terminal barrier —
    // the run's end instant — long after the drain actually emptied.
    let end = SimTime::ZERO + blind.merged.duration;
    assert_eq!(
        retired_at(&blind),
        end,
        "without a tick retirement should wait for run end"
    );
    assert!(
        retired_at(&ticked) < retired_at(&blind),
        "tick must retire strictly earlier than the terminal barrier"
    );
    // Stopping the bill ~10 s earlier shows up directly in the cost.
    let (f_tick, f_blind) = (ticked.fleet.clone().unwrap(), blind.fleet.clone().unwrap());
    assert!(
        f_tick.replica_seconds < f_blind.replica_seconds,
        "tick bill {} should undercut blind bill {}",
        f_tick.replica_seconds,
        f_blind.replica_seconds
    );

    // Synthetic barriers are part of the determinism contract too: the
    // ticked run must be byte-identical under the parallel executor.
    let ticked_par = run_with(
        control(300.0)
            .with_min_replicas(1)
            .with_max_replicas(2)
            .with_control_tick(tick),
        Execution::parallel(2),
    );
    assert_byte_identical(&ticked, &ticked_par, "control tick vs parallel(2)");
}

#[test]
fn crashed_draining_replica_retires_immediately_and_residents_recover() {
    // Three replicas share a burst of long streams; the script drains
    // down to one at t=2 s, so replicas 1 and 2 spend a long time in
    // Draining with residents. Replica 2 then crashes mid-drain at
    // t=5 s. The regression this pins: a crash must end the drain *now*
    // — the replica leaves the fleet (Failed, never Retired) and stops
    // billing at the crash barrier — and its residents must re-queue
    // through the recovery path instead of pinning the drain forever.
    let specs: Vec<RequestSpec> = (0..9)
        .map(|i| RequestSpec {
            id: RequestId(0),
            arrival: SimTime::from_millis(i * 100),
            prompt_tokens: 128,
            output_tokens: 400,
            rate: 10.0,
        })
        .collect();
    let w = Workload::new(specs);
    let crash_at = SimTime::from_secs(5);
    let plan = FaultPlan {
        crashes: vec![CrashFault {
            replica: 2,
            at: crash_at,
        }],
        ..FaultPlan::default()
    };
    let out = run_autoscaled_faulty(
        config(),
        3,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        ScriptedPolicy::new(vec![(SimTime::from_secs(2), 1)]),
        control(300.0)
            .with_max_replicas(3)
            .with_control_tick(SimDuration::from_secs(1)),
        plan,
        &w,
        Execution::Sequential,
    );
    assert!(out.complete, "recovery must finish the run");
    let events_for = |replica: usize| -> Vec<ScaleEventKind> {
        out.scale_events
            .iter()
            .filter(|e| e.replica == replica)
            .map(|e| e.kind)
            .collect()
    };
    // Replica 2 was draining when it crashed: DrainStarted precedes
    // Crashed, and it never reaches Retired (the drain did not linger).
    let r2 = events_for(2);
    assert!(
        r2.contains(&ScaleEventKind::DrainStarted),
        "replica 2 should have been draining: {r2:?}"
    );
    assert!(
        r2.contains(&ScaleEventKind::Crashed),
        "replica 2 should crash mid-drain: {r2:?}"
    );
    assert!(
        !r2.contains(&ScaleEventKind::Retired),
        "a crashed drain must not also retire: {r2:?}"
    );
    let crashed_at = out
        .scale_events
        .iter()
        .find(|e| e.kind == ScaleEventKind::Crashed)
        .expect("crash event logged")
        .at;
    assert_eq!(crashed_at, crash_at, "crash lands at its barrier instant");
    // The healthy drain (replica 1) still retires normally.
    assert!(
        events_for(1).contains(&ScaleEventKind::Retired),
        "healthy drain must still retire: {:?}",
        events_for(1)
    );
    // Every resident lost to the crash recovered on the survivor.
    let faults = out.merged.faults.as_ref().expect("fault stats present");
    assert_eq!(faults.crashes, 1);
    assert!(faults.lost_events > 0, "a draining replica held residents");
    assert_eq!(faults.abandoned, 0);
    assert_eq!(faults.recovered, faults.lost_events);
    assert_eq!(out.merged.completed, w.len());
    // Billing stopped at the crash: the fleet integral is strictly below
    // what three replicas over the whole run would cost.
    let fleet = out.fleet.as_ref().expect("elastic run carries fleet stats");
    assert!(
        fleet.replica_seconds < 3.0 * out.merged.duration.as_secs_f64(),
        "crashed replica must stop billing at the crash barrier"
    );
}

#[test]
fn static_cluster_outcome_reports_no_fleet_and_full_bill() {
    let w = stress_workload();
    let out = tokenflow_cluster::run_cluster(
        config(),
        3,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        &w,
    );
    assert!(out.fleet.is_none());
    assert!(out.scale_events.is_empty());
    assert_eq!(out.policy, None);
    // A static fleet bills every replica for the whole run.
    let expect = 3.0 * out.merged.duration.as_secs_f64();
    assert!((out.merged.replica_seconds - expect).abs() < 1e-9);
}
