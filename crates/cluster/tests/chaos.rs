//! Chaos properties: deterministic fault injection under every executor.
//!
//! Faults are applied only at arrival barriers, so the executor-
//! invariance contract must survive any fault plan: crashes, stragglers,
//! KV-link faults, boot failures, shed mode, and the retry/backoff
//! recovery they trigger all happen on the coordinator thread with every
//! replica clock pinned at the barrier. These tests hold randomized
//! plans (from a seeded LCG — no ambient randomness) to:
//!
//! 1. **Conservation** — every submitted request reaches exactly one
//!    terminal state: `completed + shed + abandoned == submitted` on
//!    complete runs, and the merged report carries exactly one record
//!    per request regardless of how many incarnations retries created.
//! 2. **Executor byte-invariance** — sequential, pooled-parallel, and
//!    scoped-per-epoch execution produce identical outcomes, fault
//!    accounting included.
//! 3. **Digest neutrality** — an *empty* fault plan is indistinguishable
//!    from no plan at all, byte for byte.

use tokenflow_cluster::{
    run_autoscaled, run_autoscaled_faulty, run_cluster_faulty, run_cluster_with, ClusterOutcome,
    Execution, LeastLoadedRouter, RoundRobinRouter,
};
use tokenflow_control::{ControlConfig, ReactivePolicy};
use tokenflow_core::EngineConfig;
use tokenflow_fault::{CrashFault, FaultPlan, RetryPolicy, WindowFault};
use tokenflow_metrics::RunReport;
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::TokenFlowScheduler;
use tokenflow_sim::{RequestId, SimDuration, SimTime};
use tokenflow_workload::{RequestSpec, Workload};

/// Deterministic pseudo-randomness: a bare LCG (numerical recipes
/// constants), so the "random" plans are identical on every run and
/// every platform.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() % 10_000) as f64 / 10_000.0 * (hi - lo)
    }
}

fn config() -> EngineConfig {
    EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090()).with_max_batch(16)
}

/// A staggered workload from the seed: arrivals over ~15 s so crashes
/// and degradation windows land mid-traffic.
fn workload(rng: &mut Lcg, n: u64) -> Workload {
    let mut specs: Vec<RequestSpec> = (0..n)
        .map(|_| RequestSpec {
            id: RequestId(0),
            arrival: SimTime::from_millis(rng.range(0, 15_000)),
            prompt_tokens: rng.range(64, 256),
            output_tokens: rng.range(32, 128),
            rate: rng.f64(8.0, 25.0),
        })
        .collect();
    specs.sort_by_key(|s| s.arrival);
    Workload::new(specs)
}

/// A randomized fault plan over a `replicas`-wide fleet: up to
/// `max_crashes` crashes plus straggler and KV-link windows, all inside
/// the workload's active span so recovery has room to finish.
fn plan(rng: &mut Lcg, replicas: usize, max_crashes: usize) -> FaultPlan {
    let mut plan = FaultPlan {
        retry: RetryPolicy {
            max_attempts: 3,
            base_backoff: SimDuration::from_millis(rng.range(200, 800)),
            multiplier: 2.0,
            max_backoff: SimDuration::from_secs(8),
        },
        ..FaultPlan::default()
    };
    for _ in 0..rng.range(1, max_crashes as u64 + 1) {
        plan.crashes.push(CrashFault {
            replica: rng.range(0, replicas as u64) as usize,
            at: SimTime::from_millis(rng.range(1_000, 12_000)),
        });
    }
    for _ in 0..rng.range(0, 3) {
        let from = rng.range(500, 10_000);
        plan.stragglers.push(WindowFault {
            replica: rng.range(0, replicas as u64) as usize,
            from: SimTime::from_millis(from),
            until: SimTime::from_millis(from + rng.range(1_000, 6_000)),
            factor: rng.f64(0.25, 0.9),
        });
    }
    for _ in 0..rng.range(0, 2) {
        let from = rng.range(500, 10_000);
        plan.kv_link.push(WindowFault {
            replica: rng.range(0, replicas as u64) as usize,
            from: SimTime::from_millis(from),
            until: SimTime::from_millis(from + rng.range(1_000, 5_000)),
            factor: rng.f64(0.2, 0.8),
        });
    }
    plan
}

/// The merged report through the executor-invariance lens (see the
/// equivalence suite) — fault accounting is *not* exempted.
fn invariant_merged(o: &ClusterOutcome) -> RunReport {
    let mut merged = o.merged.clone();
    merged.runtime = merged.runtime.invariant();
    merged
}

fn assert_byte_identical(a: &ClusterOutcome, b: &ClusterOutcome, label: &str) {
    assert_eq!(a.assignments, b.assignments, "{label}: assignments differ");
    assert_eq!(a.scale_events, b.scale_events, "{label}: scale logs differ");
    let (am, bm) = (invariant_merged(a), invariant_merged(b));
    assert_eq!(am, bm, "{label}: merged reports differ");
    assert_eq!(
        format!("{:?}{:?}", am, a.merged.faults),
        format!("{:?}{:?}", bm, b.merged.faults),
        "{label}: serialization differs"
    );
    assert_eq!(a.complete, b.complete, "{label}: completion differs");
    for (i, (x, y)) in a.replicas.iter().zip(&b.replicas).enumerate() {
        assert_eq!(x.records, y.records, "{label}: replica {i} records differ");
        assert_eq!(
            x.iterations, y.iterations,
            "{label}: replica {i} iteration counts differ"
        );
    }
}

/// Terminal-state conservation over one faulty outcome.
fn assert_conservation(out: &ClusterOutcome, submitted: usize, label: &str) {
    assert_eq!(out.merged.submitted, submitted, "{label}: record count");
    let faults = out.merged.faults.as_ref().expect("fault plan ran");
    let terminal = out.merged.completed as u64 + faults.shed + faults.abandoned;
    if out.complete {
        assert_eq!(
            terminal, submitted as u64,
            "{label}: complete run must resolve every request \
             (completed {} + shed {} + abandoned {})",
            out.merged.completed, faults.shed, faults.abandoned
        );
    } else {
        assert!(
            terminal <= submitted as u64,
            "{label}: terminal states exceed submissions"
        );
    }
    // The retry histogram partitions every ever-lost request by its loss
    // count, and weights back into the loss-event total.
    let hist_total: u64 = faults.retry_attempts.iter().sum();
    let hist_losses: u64 = faults
        .retry_attempts
        .iter()
        .enumerate()
        .map(|(k, &n)| (k as u64 + 1) * n)
        .sum();
    assert_eq!(hist_losses, faults.lost_events, "{label}: histogram weight");
    assert!(
        faults.recovered + faults.abandoned <= hist_total,
        "{label}: more resolutions than lost requests"
    );
    if out.complete {
        assert_eq!(
            faults.recovered + faults.abandoned,
            hist_total,
            "{label}: complete run leaves no lost request unresolved"
        );
    }
    assert_eq!(
        faults.recovered, faults.recovery_latency.count as u64,
        "{label}: every recovery contributes one latency sample"
    );
}

const EXECUTIONS: [fn() -> Execution; 3] = [
    || Execution::Sequential,
    || Execution::parallel(2),
    || Execution::scoped_per_epoch(2),
];

#[test]
fn randomized_fault_plans_conserve_and_stay_executor_invariant_static() {
    for seed in 0..4u64 {
        let mut rng = Lcg(0x5eed_0000 + seed);
        let w = workload(&mut rng, 60);
        let replicas = 3;
        // Crash at most replicas-1 so the run can usually recover.
        let p = plan(&mut rng, replicas, replicas - 1);
        let outcomes: Vec<ClusterOutcome> = EXECUTIONS
            .iter()
            .map(|exec| {
                run_cluster_faulty(
                    config(),
                    replicas,
                    LeastLoadedRouter::new(),
                    || Box::new(TokenFlowScheduler::new()),
                    p.clone(),
                    &w,
                    exec(),
                )
            })
            .collect();
        assert_conservation(&outcomes[0], w.len(), &format!("static seed {seed}"));
        assert_byte_identical(
            &outcomes[0],
            &outcomes[1],
            &format!("static seed {seed}: sequential vs parallel"),
        );
        assert_byte_identical(
            &outcomes[0],
            &outcomes[2],
            &format!("static seed {seed}: sequential vs scoped"),
        );
    }
}

#[test]
fn randomized_fault_plans_conserve_and_stay_executor_invariant_elastic() {
    for seed in 0..3u64 {
        let mut rng = Lcg(0xe1a5_0000 + seed);
        let w = workload(&mut rng, 50);
        let mut p = plan(&mut rng, 4, 2);
        // Exercise boot failure on a replica the reactive policy will
        // try to provision beyond the 2-replica bootstrap.
        if seed % 2 == 0 {
            p.boot_failures.push(2);
        }
        let control = ControlConfig::for_engine(&config())
            .with_gamma(250.0)
            .with_min_replicas(1)
            .with_max_replicas(4)
            .with_boot_delay(SimDuration::from_secs(2))
            .with_cooldown(SimDuration::ZERO);
        let outcomes: Vec<ClusterOutcome> = EXECUTIONS
            .iter()
            .map(|exec| {
                run_autoscaled_faulty(
                    config(),
                    2,
                    LeastLoadedRouter::new(),
                    || Box::new(TokenFlowScheduler::new()),
                    ReactivePolicy::new(),
                    control.clone(),
                    p.clone(),
                    &w,
                    exec(),
                )
            })
            .collect();
        assert_conservation(&outcomes[0], w.len(), &format!("elastic seed {seed}"));
        assert_byte_identical(
            &outcomes[0],
            &outcomes[1],
            &format!("elastic seed {seed}: sequential vs parallel"),
        );
        assert_byte_identical(
            &outcomes[0],
            &outcomes[2],
            &format!("elastic seed {seed}: sequential vs scoped"),
        );
    }
}

#[test]
fn crash_lost_requests_recover_elsewhere() {
    // Deterministic scenario: 2 replicas, round-robin, one crash at 2 s.
    // Every request lost to the crash must be re-dispatched, finish on
    // the survivor, and be counted recovered.
    let specs: Vec<RequestSpec> = (0..12)
        .map(|i| RequestSpec {
            id: RequestId(0),
            arrival: SimTime::from_millis(i * 100),
            prompt_tokens: 128,
            output_tokens: 96,
            rate: 12.0,
        })
        .collect();
    let w = Workload::new(specs);
    let p = FaultPlan {
        crashes: vec![CrashFault {
            replica: 0,
            at: SimTime::from_secs(2),
        }],
        ..FaultPlan::default()
    };
    let out = run_cluster_faulty(
        config(),
        2,
        RoundRobinRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        p,
        &w,
        Execution::Sequential,
    );
    assert!(out.complete, "recovery must finish the run");
    let faults = out.merged.faults.as_ref().expect("fault stats present");
    assert_eq!(faults.crashes, 1);
    assert!(faults.lost_events > 0, "the crash must lose residents");
    assert_eq!(faults.abandoned, 0);
    assert_eq!(faults.recovered, faults.lost_events);
    assert_eq!(out.merged.completed, w.len());
    assert_eq!(out.merged.submitted, w.len());
    // Recovery latency is at least the retry backoff.
    assert!(faults.recovery_latency.count as u64 == faults.recovered);
    assert!(faults.recovery_latency.max >= 0.5, "backoff floor");
    // The dead replica froze at the crash barrier (plus at most the
    // iteration that straddled it) — long before the run's end.
    assert!(out.replicas[0].sim_time < SimDuration::from_secs(3));
    assert!(out.replicas[0].sim_time < out.merged.duration);
}

#[test]
fn crashing_every_replica_abandons_residents_and_sheds_arrivals() {
    // Both replicas crash early; retries find no capacity and burn out,
    // later arrivals shed. Nothing may hang: the run terminates with
    // every request in a terminal state.
    let specs: Vec<RequestSpec> = (0..10)
        .map(|i| RequestSpec {
            id: RequestId(0),
            arrival: SimTime::from_millis(i * 400),
            prompt_tokens: 128,
            output_tokens: 200,
            rate: 12.0,
        })
        .collect();
    let w = Workload::new(specs);
    let p = FaultPlan {
        crashes: vec![
            CrashFault {
                replica: 0,
                at: SimTime::from_millis(1_500),
            },
            CrashFault {
                replica: 1,
                at: SimTime::from_millis(1_500),
            },
        ],
        retry: RetryPolicy {
            max_attempts: 2,
            base_backoff: SimDuration::from_millis(250),
            multiplier: 2.0,
            max_backoff: SimDuration::from_secs(2),
        },
        ..FaultPlan::default()
    };
    let out = run_cluster_faulty(
        config(),
        2,
        RoundRobinRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        p,
        &w,
        Execution::Sequential,
    );
    let faults = out.merged.faults.as_ref().expect("fault stats present");
    assert_eq!(faults.crashes, 2);
    assert_eq!(faults.recovered, 0, "no capacity left to recover on");
    assert!(faults.abandoned > 0, "retries must burn out, not hang");
    assert!(faults.shed > 0, "arrivals into a dead fleet must shed");
    assert_eq!(out.merged.submitted, w.len());
    assert_eq!(
        out.merged.completed as u64 + faults.shed + faults.abandoned,
        w.len() as u64,
        "every request must reach a terminal state"
    );
}

#[test]
fn stragglers_stretch_the_tail_but_change_no_accounting() {
    let mut rng = Lcg(77);
    let w = workload(&mut rng, 40);
    let healthy = run_cluster_with(
        config(),
        2,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        &w,
        Execution::Sequential,
    );
    let p = FaultPlan {
        stragglers: vec![WindowFault {
            replica: 0,
            from: SimTime::ZERO,
            until: SimTime::from_secs(60),
            factor: 0.25,
        }],
        ..FaultPlan::default()
    };
    let degraded = run_cluster_faulty(
        config(),
        2,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        p,
        &w,
        Execution::Sequential,
    );
    assert!(healthy.complete && degraded.complete);
    assert_eq!(degraded.merged.completed, w.len());
    let faults = degraded.merged.faults.as_ref().expect("fault stats");
    assert_eq!(faults.crashes, 0);
    assert_eq!(faults.lost_events, 0);
    // A quarter-speed replica must slow the run down.
    assert!(
        degraded.merged.duration > healthy.merged.duration,
        "straggler did not stretch the run: {:?} vs {:?}",
        degraded.merged.duration,
        healthy.merged.duration
    );
}

#[test]
fn empty_fault_plan_is_byte_identical_to_no_plan() {
    let mut rng = Lcg(123);
    let w = workload(&mut rng, 48);
    let plain = run_cluster_with(
        config(),
        3,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        &w,
        Execution::parallel(2),
    );
    let faulty = run_cluster_faulty(
        config(),
        3,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        FaultPlan::default(),
        &w,
        Execution::parallel(2),
    );
    assert_byte_identical(&plain, &faulty, "empty plan vs none");
    assert!(
        faulty.merged.faults.is_none(),
        "empty plan reports no faults"
    );
    assert_eq!(
        format!("{:?}", plain.merged),
        format!("{:?}", faulty.merged),
        "full merged serialization must match"
    );

    // Same neutrality on an elastic fleet.
    let control = ControlConfig::for_engine(&config())
        .with_gamma(250.0)
        .with_min_replicas(1)
        .with_max_replicas(4)
        .with_cooldown(SimDuration::ZERO);
    let plain = run_autoscaled(
        config(),
        2,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        ReactivePolicy::new(),
        control.clone(),
        &w,
        Execution::Sequential,
    );
    let faulty = run_autoscaled_faulty(
        config(),
        2,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        ReactivePolicy::new(),
        control,
        FaultPlan::default(),
        &w,
        Execution::Sequential,
    );
    assert_byte_identical(&plain, &faulty, "empty plan vs none (elastic)");
    assert_eq!(plain.fleet, faulty.fleet);
}

#[test]
fn shed_mode_rejects_pressure_and_recovers_admission() {
    // A saturating burst against a low shed threshold: some arrivals are
    // rejected with zero-progress records, and shed + completed still
    // conserves.
    let specs: Vec<RequestSpec> = (0u64..40)
        .map(|i| RequestSpec {
            id: RequestId(0),
            arrival: SimTime::from_millis(i * 50),
            prompt_tokens: 256,
            output_tokens: 128,
            rate: 20.0,
        })
        .collect();
    let w = Workload::new(specs);
    let p = FaultPlan {
        shed_utilization: Some(0.5),
        ..FaultPlan::default()
    };
    let out = run_cluster_faulty(
        config(),
        2,
        LeastLoadedRouter::new(),
        || Box::new(TokenFlowScheduler::new()),
        p,
        &w,
        Execution::Sequential,
    );
    assert!(out.complete);
    let faults = out.merged.faults.as_ref().expect("fault stats");
    assert!(faults.shed > 0, "threshold 0.5 must shed under this burst");
    assert!(
        (out.merged.completed as u64) < w.len() as u64,
        "shed arrivals must not complete"
    );
    assert_eq!(
        out.merged.completed as u64 + faults.shed,
        w.len() as u64,
        "admitted + shed must cover every arrival"
    );
}
