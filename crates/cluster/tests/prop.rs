//! Property tests: routing conservation across random workloads, replica
//! counts, routing policies, and *executors*.
//!
//! The conservation contract: every submitted request lands on exactly
//! one replica, and the merged report's counts equal the sum of the
//! per-replica counts — no request is dropped, duplicated, or
//! double-counted by the cluster layer. Every case runs under both the
//! sequential and the parallel epoch executor, and the two runs must be
//! byte-identical — the executor choice is not allowed to touch a single
//! routing decision, record, or merged statistic.

use proptest::prelude::*;

use tokenflow_cluster::{
    run_autoscaled, run_cluster_with, BacklogAwareRouter, Execution, LeastLoadedRouter,
    RateAwareRouter, RoundRobinRouter, Router,
};
use tokenflow_control::{
    ControlConfig, PredictivePolicy, ReactivePolicy, ScalePolicy, ScriptedPolicy,
};
use tokenflow_core::EngineConfig;
use tokenflow_metrics::RunReport;
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::{FcfsScheduler, Scheduler, TokenFlowScheduler};
use tokenflow_sim::{RequestId, SimTime};
use tokenflow_workload::{RequestSpec, Workload};

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop::collection::vec((0u64..2_000, 16u64..256, 8u64..160, 5.0f64..40.0), 1..24).prop_map(
        |specs| {
            Workload::new(
                specs
                    .into_iter()
                    .map(|(arrival_ms, prompt, output, rate)| RequestSpec {
                        id: RequestId(0),
                        arrival: SimTime::from_millis(arrival_ms),
                        prompt_tokens: prompt,
                        output_tokens: output,
                        rate,
                    })
                    .collect(),
            )
        },
    )
}

fn router(which: u8) -> Box<dyn Router> {
    match which % 4 {
        0 => Box::new(RoundRobinRouter::new()),
        1 => Box::new(LeastLoadedRouter::new()),
        2 => Box::new(BacklogAwareRouter::new()),
        _ => Box::new(RateAwareRouter::new()),
    }
}

fn scheduler(which: u8) -> Box<dyn Scheduler> {
    if which.is_multiple_of(2) {
        Box::new(FcfsScheduler::new())
    } else {
        Box::new(TokenFlowScheduler::new())
    }
}

fn scale_policy(which: u8) -> Box<dyn ScalePolicy> {
    match which % 3 {
        0 => Box::new(ReactivePolicy::new()),
        1 => Box::new(PredictivePolicy::with_tau(15.0)),
        _ => Box::new(ScriptedPolicy::new(vec![
            (SimTime::ZERO, 2),
            (SimTime::from_millis(600), 4),
            (SimTime::from_millis(1_400), 1),
        ])),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_request_lands_on_exactly_one_replica(
        w in arb_workload(),
        replicas in 1usize..5,
        which_router in 0u8..4,
        which_sched in 0u8..2,
    ) {
        let config = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090())
            .with_max_batch(8);
        let out = run_cluster_with(
            config.clone(),
            replicas,
            router(which_router),
            move || scheduler(which_sched),
            &w,
            Execution::Sequential,
        );
        prop_assert!(out.complete);

        // Executor invariance: the same run on parallel workers must be
        // byte-identical — same assignments, same per-replica records,
        // same merged report.
        let par = run_cluster_with(
            config,
            replicas,
            router(which_router),
            move || scheduler(which_sched),
            &w,
            Execution::parallel(2),
        );
        prop_assert_eq!(&out.assignments, &par.assignments);
        // Executor-mechanics runtime counters (epochs, barrier batching,
        // pool stats) are the one intentionally executor-visible
        // surface; everything else must match byte-for-byte.
        let mut seq_m = out.merged.clone();
        seq_m.runtime = seq_m.runtime.invariant();
        let mut par_m = par.merged.clone();
        par_m.runtime = par_m.runtime.invariant();
        prop_assert_eq!(
            format!("{seq_m:?}"),
            format!("{par_m:?}")
        );
        prop_assert_eq!(seq_m, par_m);
        for (x, y) in out.replicas.iter().zip(&par.replicas) {
            prop_assert_eq!(&x.records, &y.records);
            prop_assert_eq!(x.iterations, y.iterations);
        }

        // One assignment per submitted request, each to a valid replica.
        prop_assert_eq!(out.assignments.len(), w.len());
        for a in &out.assignments {
            prop_assert!(a.replica < replicas);
        }

        // Per-replica assignment counts match what each engine recorded,
        // and local ids are dense per replica (each request materialised
        // exactly once on its replica).
        let mut per_replica = vec![0usize; replicas];
        for a in &out.assignments {
            prop_assert_eq!(a.local_id, RequestId(per_replica[a.replica] as u64));
            per_replica[a.replica] += 1;
        }
        for (idx, o) in out.replicas.iter().enumerate() {
            prop_assert_eq!(o.report.submitted, per_replica[idx]);
        }

        // Merged counts equal the sum of per-replica counts — for the
        // exact record-level merge the cluster reports, and for the
        // summary-level merge in the metrics crate.
        let sums = |f: fn(&RunReport) -> usize| -> usize {
            out.replicas.iter().map(|o| f(&o.report)).sum()
        };
        prop_assert_eq!(out.merged.submitted, sums(|r| r.submitted));
        prop_assert_eq!(out.merged.completed, sums(|r| r.completed));
        prop_assert_eq!(out.merged.completed, w.len());
        let tokens: u64 = out
            .replicas
            .iter()
            .flat_map(|o| o.records.iter().map(|r| r.generated))
            .sum();
        let expected: u64 = w.iter().map(|s| s.output_tokens).sum();
        prop_assert_eq!(tokens, expected);

        let summary_merged = RunReport::merged(out.replicas.iter().map(|o| &o.report));
        prop_assert_eq!(summary_merged.submitted, out.merged.submitted);
        prop_assert_eq!(summary_merged.completed, out.merged.completed);
        prop_assert_eq!(summary_merged.stall_events, out.merged.stall_events);
        prop_assert_eq!(summary_merged.preemptions, out.merged.preemptions);
        prop_assert_eq!(summary_merged.duration, out.merged.duration);
    }
}

// The control-plane analogue of executor invariance: for every shipped
// scale policy, the decision log, fleet accounting, and final reports
// are byte-identical under sequential and parallel epoch execution —
// and conservation (one replica per request, dispatched only while that
// replica was active) still holds on an elastic fleet.
proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn every_scale_policy_is_executor_invariant(
        w in arb_workload(),
        bootstrap in 1usize..4,
        which_policy in 0u8..3,
        which_router in 0u8..4,
    ) {
        let config = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090())
            .with_max_batch(8);
        let control = ControlConfig::for_engine(&config)
            .with_gamma(150.0)
            .with_min_replicas(1)
            .with_max_replicas(6)
            .with_boot_delay(tokenflow_sim::SimDuration::from_millis(500))
            .with_cooldown(tokenflow_sim::SimDuration::ZERO);
        let run = |execution: Execution| {
            run_autoscaled(
                config.clone(),
                bootstrap,
                router(which_router),
                || Box::new(TokenFlowScheduler::new()),
                scale_policy(which_policy),
                control.clone(),
                &w,
                execution,
            )
        };
        let seq = run(Execution::Sequential);
        let par = run(Execution::parallel(3));
        prop_assert!(seq.complete);

        // Byte-identical elastic outcomes: routing, scaling, accounting.
        prop_assert_eq!(&seq.assignments, &par.assignments);
        prop_assert_eq!(&seq.scale_events, &par.scale_events);
        prop_assert_eq!(&seq.fleet, &par.fleet);
        // As above: only the executor-mechanics runtime counters may
        // differ between execution strategies.
        let mut seq_m = seq.merged.clone();
        seq_m.runtime = seq_m.runtime.invariant();
        let mut par_m = par.merged.clone();
        par_m.runtime = par_m.runtime.invariant();
        prop_assert_eq!(
            format!("{:?}{:?}", seq_m, seq.scale_events),
            format!("{:?}{:?}", par_m, par.scale_events)
        );
        prop_assert_eq!(seq_m, par_m);
        prop_assert_eq!(seq.replicas.len(), par.replicas.len());
        for (x, y) in seq.replicas.iter().zip(&par.replicas) {
            prop_assert_eq!(&x.records, &y.records);
            prop_assert_eq!(x.iterations, y.iterations);
        }

        // Conservation still holds with a dynamic fleet.
        prop_assert_eq!(seq.assignments.len(), w.len());
        prop_assert_eq!(seq.merged.submitted, w.len());
        prop_assert_eq!(seq.merged.completed, w.len());
        let mut per_replica = vec![0usize; seq.replicas.len()];
        for a in &seq.assignments {
            prop_assert!(a.replica < seq.replicas.len());
            prop_assert_eq!(a.local_id, RequestId(per_replica[a.replica] as u64));
            per_replica[a.replica] += 1;
        }
        // The bill is consistent: at least min-fleet × duration (one
        // active replica always bills), at most ceiling × duration
        // (billable replicas never exceed max_replicas).
        let fleet = seq.fleet.as_ref().expect("elastic run has fleet stats");
        prop_assert_eq!(seq.merged.replica_seconds, fleet.replica_seconds);
        let dur = seq.merged.duration.as_secs_f64();
        prop_assert!(seq.merged.replica_seconds >= dur - 1e-9);
        prop_assert!(seq.merged.replica_seconds <= 6.0 * dur + 1e-9);
    }
}
