//! Property tests: routing conservation across random workloads, replica
//! counts, routing policies, and *executors*.
//!
//! The conservation contract: every submitted request lands on exactly
//! one replica, and the merged report's counts equal the sum of the
//! per-replica counts — no request is dropped, duplicated, or
//! double-counted by the cluster layer. Every case runs under both the
//! sequential and the parallel epoch executor, and the two runs must be
//! byte-identical — the executor choice is not allowed to touch a single
//! routing decision, record, or merged statistic.

use proptest::prelude::*;

use tokenflow_cluster::{
    run_cluster_with, Execution, LeastLoadedRouter, RateAwareRouter, RoundRobinRouter, Router,
};
use tokenflow_core::EngineConfig;
use tokenflow_metrics::RunReport;
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::{FcfsScheduler, Scheduler, TokenFlowScheduler};
use tokenflow_sim::{RequestId, SimTime};
use tokenflow_workload::{RequestSpec, Workload};

fn arb_workload() -> impl Strategy<Value = Workload> {
    prop::collection::vec((0u64..2_000, 16u64..256, 8u64..160, 5.0f64..40.0), 1..24).prop_map(
        |specs| {
            Workload::new(
                specs
                    .into_iter()
                    .map(|(arrival_ms, prompt, output, rate)| RequestSpec {
                        id: RequestId(0),
                        arrival: SimTime::from_millis(arrival_ms),
                        prompt_tokens: prompt,
                        output_tokens: output,
                        rate,
                    })
                    .collect(),
            )
        },
    )
}

fn router(which: u8) -> Box<dyn Router> {
    match which % 3 {
        0 => Box::new(RoundRobinRouter::new()),
        1 => Box::new(LeastLoadedRouter::new()),
        _ => Box::new(RateAwareRouter::new()),
    }
}

fn scheduler(which: u8) -> Box<dyn Scheduler> {
    if which.is_multiple_of(2) {
        Box::new(FcfsScheduler::new())
    } else {
        Box::new(TokenFlowScheduler::new())
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn every_request_lands_on_exactly_one_replica(
        w in arb_workload(),
        replicas in 1usize..5,
        which_router in 0u8..3,
        which_sched in 0u8..2,
    ) {
        let config = EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090())
            .with_max_batch(8);
        let out = run_cluster_with(
            config.clone(),
            replicas,
            router(which_router),
            || scheduler(which_sched),
            &w,
            Execution::Sequential,
        );
        prop_assert!(out.complete);

        // Executor invariance: the same run on parallel workers must be
        // byte-identical — same assignments, same per-replica records,
        // same merged report.
        let par = run_cluster_with(
            config,
            replicas,
            router(which_router),
            || scheduler(which_sched),
            &w,
            Execution::parallel(2),
        );
        prop_assert_eq!(&out.assignments, &par.assignments);
        prop_assert_eq!(&out.merged, &par.merged);
        prop_assert_eq!(
            format!("{:?}", out.merged),
            format!("{:?}", par.merged)
        );
        for (x, y) in out.replicas.iter().zip(&par.replicas) {
            prop_assert_eq!(&x.records, &y.records);
            prop_assert_eq!(x.iterations, y.iterations);
        }

        // One assignment per submitted request, each to a valid replica.
        prop_assert_eq!(out.assignments.len(), w.len());
        for a in &out.assignments {
            prop_assert!(a.replica < replicas);
        }

        // Per-replica assignment counts match what each engine recorded,
        // and local ids are dense per replica (each request materialised
        // exactly once on its replica).
        let mut per_replica = vec![0usize; replicas];
        for a in &out.assignments {
            prop_assert_eq!(a.local_id, RequestId(per_replica[a.replica] as u64));
            per_replica[a.replica] += 1;
        }
        for (idx, o) in out.replicas.iter().enumerate() {
            prop_assert_eq!(o.report.submitted, per_replica[idx]);
        }

        // Merged counts equal the sum of per-replica counts — for the
        // exact record-level merge the cluster reports, and for the
        // summary-level merge in the metrics crate.
        let sums = |f: fn(&RunReport) -> usize| -> usize {
            out.replicas.iter().map(|o| f(&o.report)).sum()
        };
        prop_assert_eq!(out.merged.submitted, sums(|r| r.submitted));
        prop_assert_eq!(out.merged.completed, sums(|r| r.completed));
        prop_assert_eq!(out.merged.completed, w.len());
        let tokens: u64 = out
            .replicas
            .iter()
            .flat_map(|o| o.records.iter().map(|r| r.generated))
            .sum();
        let expected: u64 = w.iter().map(|s| s.output_tokens).sum();
        prop_assert_eq!(tokens, expected);

        let summary_merged = RunReport::merged(out.replicas.iter().map(|o| &o.report));
        prop_assert_eq!(summary_merged.submitted, out.merged.submitted);
        prop_assert_eq!(summary_merged.completed, out.merged.completed);
        prop_assert_eq!(summary_merged.stall_events, out.merged.stall_events);
        prop_assert_eq!(summary_merged.preemptions, out.merged.preemptions);
        prop_assert_eq!(summary_merged.duration, out.merged.duration);
    }
}
