//! The `Send` surface, pinned at compile time.
//!
//! The parallel epoch executor moves whole replicas (engine + boxed
//! scheduler) onto scoped worker threads, which requires every shipped
//! scheduler, router, engine, and the cluster itself to be `Send`. These
//! assertions fail to *compile* if anyone threads a non-`Send` handle
//! (an `Rc`, a raw pointer, a thread-local cache) into that surface —
//! the regression shows up long before any test runs.

use tokenflow_cluster::{
    run_cluster_with, ClusterEngine, Execution, LeastLoadedRouter, RateAwareRouter,
    RoundRobinRouter, Router,
};
use tokenflow_core::{Engine, EngineConfig};
use tokenflow_model::{HardwareProfile, ModelProfile};
use tokenflow_sched::{
    AndesScheduler, ChunkedPrefillScheduler, FcfsScheduler, Scheduler, TokenFlowScheduler,
};
use tokenflow_workload::{ControlledSetup, RateDist};

fn assert_send<T: Send>() {}

#[test]
fn engines_and_cluster_are_send() {
    assert_send::<Engine>();
    assert_send::<ClusterEngine>();
    assert_send::<Execution>();
}

#[test]
fn all_shipped_schedulers_are_send() {
    assert_send::<FcfsScheduler>();
    assert_send::<ChunkedPrefillScheduler>();
    assert_send::<AndesScheduler>();
    assert_send::<TokenFlowScheduler>();
    assert_send::<Box<dyn Scheduler>>();
}

#[test]
fn all_shipped_routers_are_send() {
    assert_send::<RoundRobinRouter>();
    assert_send::<LeastLoadedRouter>();
    assert_send::<RateAwareRouter>();
    assert_send::<Box<dyn Router>>();
}

/// `Parallel(1)` runs one worker over the same replica list in the same
/// order as `Sequential` — the degenerate case must be *exactly* the
/// sequential result, not merely statistically close.
#[test]
fn parallel_one_equals_sequential() {
    let w = ControlledSetup::rtx4090_a()
        .generator(RateDist::Uniform { lo: 6.0, hi: 30.0 })
        .generate(11);
    let config =
        EngineConfig::new(ModelProfile::llama3_8b(), HardwareProfile::rtx4090()).with_max_batch(16);
    let run = |execution: Execution| {
        run_cluster_with(
            config.clone(),
            3,
            LeastLoadedRouter::new(),
            || Box::new(TokenFlowScheduler::new()),
            &w,
            execution,
        )
    };
    let sequential = run(Execution::Sequential);
    let parallel_one = run(Execution::parallel(1));
    assert!(sequential.complete);
    assert_eq!(sequential.assignments, parallel_one.assignments);
    // Executor-mechanics runtime counters (pool stats) are the one
    // intentionally executor-visible surface; everything else must match.
    let (mut sm, mut pm) = (sequential.merged.clone(), parallel_one.merged.clone());
    sm.runtime = sm.runtime.invariant();
    pm.runtime = pm.runtime.invariant();
    assert_eq!(sm, pm);
    for (x, y) in sequential.replicas.iter().zip(&parallel_one.replicas) {
        assert_eq!(x.records, y.records);
        assert_eq!(x.iterations, y.iterations);
    }
}
